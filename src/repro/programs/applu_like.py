"""An Applu-class whole program (structural substitute for SPECfp95 110.applu).

The real Applu (3868 lines, 16 subroutines, 2565 references) solves five
coupled parabolic/elliptic PDEs with an SSOR scheme: each pseudo-time step
computes the right-hand side, forms the lower/upper Jacobians, performs a
*forward* lower-triangular sweep (blts) and a *backward* upper-triangular
sweep (buts), then adds the correction to the solution.  Every call passes
whole arrays as actuals, and the paper reports that *all* actual parameters
are propagateable.

This builder reproduces that structure on a 2-D grid with the 5-component
leading dimension of the real code (column-major: components contiguous):

* arrays ``U, RSD, FRCT, DIAG`` of shape ``(5, N, N)``,
* subroutines SETIV, ERHS, RHS, JACLD, BLTS, JACU, BUTS, ADDU — every one
  called with whole-array actuals (propagateable, as in the paper),
* a backward sweep with negative loop strides,
* an SSOR time loop in MAIN.

It is a miniature, not a transcription — see DESIGN.md §3 for why the
substitution preserves the experiment.
"""

from __future__ import annotations

from repro.ir import Program, ProgramBuilder


def build_applu_like(n: int = 32, steps: int = 2) -> Program:
    """Build the Applu-class SSOR program on an ``n × n`` grid."""
    pb = ProgramBuilder("APPLU-LIKE")
    shape = (5, n, n)
    u = pb.array("U", shape)
    rsd = pb.array("RSD", shape)
    frct = pb.array("FRCT", shape)
    diag = pb.array("DIAG", shape)

    with pb.subroutine("MAIN"):
        pb.call("SETIV", u)
        pb.call("ERHS", frct)
        with pb.do("ISTEP", 1, steps):
            pb.call("RHS", u, rsd, frct)
            pb.call("JACLD", u, diag)
            pb.call("BLTS", rsd, diag)
            pb.call("JACU", u, diag)
            pb.call("BUTS", rsd, diag)
            pb.call("ADDU", u, rsd)

    with pb.subroutine("SETIV") as s:
        cu = s.array_formal("CU", shape)
        with pb.do("J", 1, n) as j:
            with pb.do("I", 1, n) as i:
                with pb.do("M", 1, 5) as m:
                    pb.assign(cu[m, i, j], label="SV1")

    with pb.subroutine("ERHS") as s:
        cf = s.array_formal("CF", shape)
        with pb.do("J", 1, n) as j:
            with pb.do("I", 1, n) as i:
                with pb.do("M", 1, 5) as m:
                    pb.assign(cf[m, i, j], label="EH1")

    with pb.subroutine("RHS") as s:
        cu = s.array_formal("CU", shape)
        crsd = s.array_formal("CRSD", shape)
        cfrct = s.array_formal("CFRCT", shape)
        with pb.do("J", 2, n - 1) as j:
            with pb.do("I", 2, n - 1) as i:
                with pb.do("M", 1, 5) as m:
                    pb.assign(
                        crsd[m, i, j],
                        cfrct[m, i, j],
                        cu[m, i - 1, j], cu[m, i + 1, j],
                        cu[m, i, j - 1], cu[m, i, j + 1],
                        cu[m, i, j],
                        label="RH1",
                    )

    with pb.subroutine("JACLD") as s:
        cu = s.array_formal("CU", shape)
        cd = s.array_formal("CD", shape)
        with pb.do("J", 2, n - 1) as j:
            with pb.do("I", 2, n - 1) as i:
                with pb.do("M", 1, 5) as m:
                    pb.assign(
                        cd[m, i, j],
                        cu[m, i, j], cu[m, i - 1, j], cu[m, i, j - 1],
                        label="JL1",
                    )

    with pb.subroutine("BLTS") as s:
        crsd = s.array_formal("CRSD", shape)
        cd = s.array_formal("CD", shape)
        with pb.do("J", 2, n - 1) as j:
            with pb.do("I", 2, n - 1) as i:
                with pb.do("M", 1, 5) as m:
                    pb.assign(
                        crsd[m, i, j],
                        crsd[m, i, j],
                        cd[m, i, j],
                        crsd[m, i - 1, j], crsd[m, i, j - 1],
                        label="BL1",
                    )

    with pb.subroutine("JACU") as s:
        cu = s.array_formal("CU", shape)
        cd = s.array_formal("CD", shape)
        with pb.do("J", n - 1, 2, step=-1) as j:
            with pb.do("I", n - 1, 2, step=-1) as i:
                with pb.do("M", 1, 5) as m:
                    pb.assign(
                        cd[m, i, j],
                        cu[m, i, j], cu[m, i + 1, j], cu[m, i, j + 1],
                        label="JU1",
                    )

    with pb.subroutine("BUTS") as s:
        crsd = s.array_formal("CRSD", shape)
        cd = s.array_formal("CD", shape)
        with pb.do("J", n - 1, 2, step=-1) as j:
            with pb.do("I", n - 1, 2, step=-1) as i:
                with pb.do("M", 1, 5) as m:
                    pb.assign(
                        crsd[m, i, j],
                        crsd[m, i, j],
                        cd[m, i, j],
                        crsd[m, i + 1, j], crsd[m, i, j + 1],
                        label="BU1",
                    )

    with pb.subroutine("ADDU") as s:
        cu = s.array_formal("CU", shape)
        crsd = s.array_formal("CRSD", shape)
        with pb.do("J", 2, n - 1) as j:
            with pb.do("I", 2, n - 1) as i:
                with pb.do("M", 1, 5) as m:
                    pb.assign(
                        cu[m, i, j], cu[m, i, j], crsd[m, i, j], label="AD1"
                    )
    return pb.build()
