"""A Swim-class whole program (structural substitute for SPECfp95 102.swim).

The real Swim is a 429-line shallow-water code: thirteen global N×N REAL*8
arrays and a main time loop that makes *parameterless* calls to CALC1
(compute fluxes CU, CV and the vorticity/height fields Z, H from U, V, P),
CALC2 (advance UNEW, VNEW, PNEW from the fluxes) and CALC3 (Robert/Asselin
time smoothing into UOLD, VOLD, POLD).  The paper highlights exactly this
property: "This example demonstrates that we can analyse codes consisting
of call statements.  All calls are parameterless."

This builder reproduces that structure — 4 subroutines + MAIN, 13 global
arrays, 6 call statements per paper's Table 5 shape — at configurable size.
"""

from __future__ import annotations

from repro.ir import Program, ProgramBuilder


def build_swim_like(n: int = 64, steps: int = 2) -> Program:
    """Build the Swim-class shallow-water program on an ``n × n`` grid."""
    pb = ProgramBuilder("SWIM-LIKE")
    dims = (n, n)
    u = pb.array("U", dims)
    v = pb.array("V", dims)
    p = pb.array("P", dims)
    unew = pb.array("UNEW", dims)
    vnew = pb.array("VNEW", dims)
    pnew = pb.array("PNEW", dims)
    uold = pb.array("UOLD", dims)
    vold = pb.array("VOLD", dims)
    pold = pb.array("POLD", dims)
    cu = pb.array("CU", dims)
    cv = pb.array("CV", dims)
    z = pb.array("Z", dims)
    h = pb.array("H", dims)

    with pb.subroutine("MAIN"):
        pb.call("INITAL")
        with pb.do("NCYCLE", 1, steps):
            pb.call("CALC1")
            pb.call("CALC2")
            pb.call("CALC3")

    with pb.subroutine("INITAL"):
        with pb.do("J", 1, n) as j:
            with pb.do("I", 1, n) as i:
                pb.assign(p[i, j], label="I1")
                pb.assign(u[i, j], label="I2")
                pb.assign(v[i, j], label="I3")
                pb.assign(uold[i, j], u[i, j], label="I4")
                pb.assign(vold[i, j], v[i, j], label="I5")
                pb.assign(pold[i, j], p[i, j], label="I6")

    with pb.subroutine("CALC1"):
        with pb.do("J", 1, n - 1) as j:
            with pb.do("I", 1, n - 1) as i:
                pb.assign(cu[i + 1, j], p[i + 1, j], p[i, j], u[i + 1, j], label="C1A")
                pb.assign(cv[i, j + 1], p[i, j + 1], p[i, j], v[i, j + 1], label="C1B")
                pb.assign(
                    z[i + 1, j + 1],
                    v[i + 1, j + 1], v[i, j + 1], u[i + 1, j + 1], u[i + 1, j],
                    p[i, j], p[i + 1, j], p[i + 1, j + 1], p[i, j + 1],
                    label="C1C",
                )
                pb.assign(
                    h[i, j],
                    p[i, j], u[i + 1, j], u[i, j], v[i, j + 1], v[i, j],
                    label="C1D",
                )

    with pb.subroutine("CALC2"):
        with pb.do("J", 1, n - 1) as j:
            with pb.do("I", 1, n - 1) as i:
                pb.assign(
                    unew[i + 1, j],
                    uold[i + 1, j],
                    z[i + 1, j + 1], z[i + 1, j],
                    cv[i + 1, j + 1], cv[i, j + 1], cv[i, j], cv[i + 1, j],
                    h[i + 1, j], h[i, j],
                    label="C2A",
                )
                pb.assign(
                    vnew[i, j + 1],
                    vold[i, j + 1],
                    z[i + 1, j + 1], z[i, j + 1],
                    cu[i + 1, j + 1], cu[i, j + 1], cu[i, j], cu[i + 1, j],
                    h[i, j + 1], h[i, j],
                    label="C2B",
                )
                pb.assign(
                    pnew[i, j],
                    pold[i, j],
                    cu[i + 1, j], cu[i, j], cv[i, j + 1], cv[i, j],
                    label="C2C",
                )

    with pb.subroutine("CALC3"):
        with pb.do("J", 1, n) as j:
            with pb.do("I", 1, n) as i:
                pb.assign(
                    uold[i, j], u[i, j], unew[i, j], uold[i, j], label="C3A"
                )
                pb.assign(
                    vold[i, j], v[i, j], vnew[i, j], vold[i, j], label="C3B"
                )
                pb.assign(
                    pold[i, j], p[i, j], pnew[i, j], pold[i, j], label="C3C"
                )
                pb.assign(u[i, j], unew[i, j], label="C3D")
                pb.assign(v[i, j], vnew[i, j], label="C3E")
                pb.assign(p[i, j], pnew[i, j], label="C3F")
    return pb.build()
