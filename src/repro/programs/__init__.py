"""Whole-program workloads — the Table 5/6 suite.

These are structural substitutes for the SPECfp95 programs the paper
analyses (Tomcatv, Swim, Applu); see DESIGN.md §3 for the substitution
rationale.  Each builder is parameterised by problem size and time steps so
benches can run from seconds (CI) up to paper-scale.
"""

from repro.programs.applu_like import build_applu_like
from repro.programs.swim_like import build_swim_like
from repro.programs.tomcatv_like import build_tomcatv_like

__all__ = ["build_applu_like", "build_swim_like", "build_tomcatv_like"]
