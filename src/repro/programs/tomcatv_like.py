"""A Tomcatv-class whole program (structural substitute for SPECfp95 101.tomcatv).

The real Tomcatv is a 190-line single-routine mesh-generation code: one
outer time-step loop around (1) a 9-point residual stencil over the mesh
coordinate arrays, (2) a forward tridiagonal elimination sweep, (3) a
*backward* substitution sweep (a negative-stride loop) and (4) a correction
update.  This builder reproduces exactly that shape — one subroutine, no
calls, seven N×N REAL*8 arrays, four nests per time step including the
downward DO loop — at configurable problem size.

SPEC sources and reference inputs are licensed artefacts, so the experiment
(Table 5/6 row "Tomcatv") runs on this structurally faithful miniature; see
DESIGN.md §3 for the substitution rationale.
"""

from __future__ import annotations

from repro.ir import Program, ProgramBuilder


def build_tomcatv_like(n: int = 64, steps: int = 2) -> Program:
    """Build the Tomcatv-class program on an ``n × n`` mesh."""
    pb = ProgramBuilder("TOMCATV-LIKE")
    dims = (n, n)
    x = pb.array("X", dims)
    y = pb.array("Y", dims)
    rx = pb.array("RX", dims)
    ry = pb.array("RY", dims)
    aa = pb.array("AA", dims)
    dd = pb.array("DD", dims)
    d = pb.array("D", dims)
    with pb.subroutine("MAIN"):
        with pb.do("ITER", 1, steps):
            # (1) residual stencil over the mesh coordinates
            with pb.do("J", 2, n - 1) as j:
                with pb.do("I", 2, n - 1) as i:
                    pb.assign(
                        rx[i, j],
                        x[i - 1, j], x[i + 1, j], x[i, j - 1], x[i, j + 1],
                        x[i - 1, j - 1], x[i + 1, j + 1], x[i, j],
                        label="T1",
                    )
                    pb.assign(
                        ry[i, j],
                        y[i - 1, j], y[i + 1, j], y[i, j - 1], y[i, j + 1],
                        y[i + 1, j - 1], y[i - 1, j + 1], y[i, j],
                        label="T2",
                    )
                    pb.assign(aa[i, j], x[i, j - 1], x[i, j + 1], label="T3")
                    pb.assign(dd[i, j], y[i, j - 1], y[i, j + 1], label="T4")
            # (2) forward elimination down the columns
            with pb.do("J", 2, n - 1) as j:
                with pb.do("I", 2, n - 1) as i:
                    pb.assign(
                        d[i, j], dd[i, j], aa[i, j], d[i, j - 1], label="T5"
                    )
                    pb.assign(
                        rx[i, j], rx[i, j], aa[i, j], rx[i, j - 1], label="T6"
                    )
                    pb.assign(
                        ry[i, j], ry[i, j], aa[i, j], ry[i, j - 1], label="T7"
                    )
            # (3) backward substitution (downward loop, step -1)
            with pb.do("J", n - 1, 2, step=-1) as j:
                with pb.do("I", 2, n - 1) as i:
                    pb.assign(
                        rx[i, j], rx[i, j], d[i, j], rx[i, j + 1], label="T8"
                    )
                    pb.assign(
                        ry[i, j], ry[i, j], d[i, j], ry[i, j + 1], label="T9"
                    )
            # (4) add the corrections to the mesh
            with pb.do("J", 2, n - 1) as j:
                with pb.do("I", 2, n - 1) as i:
                    pb.assign(x[i, j], x[i, j], rx[i, j], label="T10")
                    pb.assign(y[i, j], y[i, j], ry[i, j], label="T11")
    return pb.build()
