"""Exception hierarchy for the ``repro`` package.

The paper's program model (Section 3) excludes *data-dependent constructs*:
variable loop bounds, data-dependent IF conditionals, indirection arrays and
recursive calls.  Whenever the analyser meets one of these it raises a typed
error from this module so callers can either fix the input program or ask the
analyser to skip the offending construct.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class NonAffineError(ReproError):
    """An expression that must be affine in the loop indices is not.

    Raised for non-affine loop bounds, subscripts and IF conditions —
    the constructs the paper's program model rules out (Section 3).
    """


class NonAnalysableError(ReproError):
    """A construct is data dependent and cannot be analysed statically."""


class NonAnalysableCallError(NonAnalysableError):
    """A CALL statement has at least one non-analysable actual parameter.

    Corresponds to the "N-able" column of Table 2: the call cannot be
    abstractly inlined, so the whole program analysis cannot proceed
    exactly.  The inliner can optionally drop such calls instead.
    """


class RecursionError_(NonAnalysableError):
    """The static call graph contains a cycle (recursive calls)."""


class UnknownSubroutineError(ReproError):
    """A CALL statement names a subroutine that is not defined."""


class FrontendError(ReproError):
    """Base class for mini-FORTRAN frontend failures."""


class LexerError(FrontendError):
    """The lexer met a character sequence it cannot tokenise."""

    def __init__(self, message: str, line: int, column: int = 0) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line
        self.column = column


class ParseError(FrontendError):
    """The parser met an unexpected token."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class LayoutError(ReproError):
    """Memory layout could not be constructed (e.g. unknown array size)."""


class AnalysisError(ReproError):
    """A generic failure inside the cache-behaviour analysis."""


class TraceFormatError(ReproError):
    """A binary trace file violates the ``repro`` trace format.

    Raised by :mod:`repro.sim.tracefile` for bad magic, unknown versions or
    record kinds, truncated payloads, record counts that disagree with the
    file size, and records whose fields overflow the fixed-width encoding.
    """


class MissingDependencyError(ReproError):
    """An optional runtime dependency is not installed.

    Raised with an install hint when a subsystem that needs a third-party
    package (e.g. the vectorized NumPy classification backend of
    :mod:`repro.cme.batch`) is used on an interpreter that lacks it.
    """


class InvariantError(AnalysisError):
    """A solver result violated a structural invariant.

    Raised by :meth:`repro.cme.result.RefResult.check_invariants` when the
    per-outcome tallies of a reference do not add up — which would mean a
    classification backend mis-counted, so it is always a bug, never an
    input-program problem.
    """
