"""Sampling statistics for ``EstimateMisses`` (Fig. 6 of the paper).

``EstimateMisses`` analyses a sample of each reference iteration space sized
so that the estimated miss ratio lands within a confidence interval of width
``w`` at confidence level ``c`` (the paper uses c = 95%, w = 0.05, citing
DeGroot).  For a Bernoulli proportion the classical bound with the worst-case
variance ``p(1−p) ≤ 1/4`` gives

    n₀ = z²_{(1+c)/2} · p(1−p) / w²,

followed by the finite-population correction n = n₀ / (1 + (n₀−1)/V) when
the RIS volume ``V`` is known.  Fig. 6 also specifies the fallback: an RIS
too small for ``(c, w)`` is retried at the default ``(90%, 0.15)``, and if
still too small it is analysed exhaustively.
"""

from __future__ import annotations

import math

#: Fig. 6's fallback accuracy for small reference iteration spaces.
DEFAULT_FALLBACK = (0.90, 0.15)


def _normal_quantile(p: float) -> float:
    """Standard-normal inverse CDF, importable without SciPy.

    SciPy's ``norm.ppf`` is preferred when importable so existing
    environments keep bit-identical sample sizes; interpreters without a
    working SciPy (e.g. the NumPy-less CI leg, where only the scalar
    simulator runs) fall back to :class:`statistics.NormalDist`, whose
    quantiles agree to ~1 ulp.
    """
    try:
        from scipy.stats import norm
    except ImportError:
        from statistics import NormalDist

        return NormalDist().inv_cdf(p)
    return float(norm.ppf(p))


def z_value(confidence: float) -> float:
    """The two-sided standard-normal quantile for a confidence level."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return _normal_quantile((1.0 + confidence) / 2.0)


def sample_size(
    confidence: float,
    width: float,
    population: int | None = None,
    p: float = 0.5,
) -> int:
    """Sample size achieving ``(confidence, width)`` for a proportion.

    ``width`` is the half-width of the confidence interval (the paper's
    ``w``).  With ``population`` given, the finite-population correction is
    applied.  The worst case ``p = 0.5`` is the default.
    """
    if not 0.0 < width < 1.0:
        raise ValueError("width must be in (0, 1)")
    z = z_value(confidence)
    n0 = z * z * p * (1.0 - p) / (width * width)
    if population is not None:
        if population <= 0:
            return 0
        n0 = n0 / (1.0 + (n0 - 1.0) / population)
        return min(population, math.ceil(n0))
    return math.ceil(n0)


def achievable(confidence: float, width: float, population: int) -> bool:
    """True if the RIS is large enough to achieve ``(confidence, width)``.

    Fig. 6 treats an RIS as "too small" when sampling would not beat
    exhaustive analysis.  The threshold uses the *uncorrected* sample size:
    a space smaller than n₀ gains nothing from sampling (the finite-
    population correction would simply shrink the sample towards a census),
    so such spaces are analysed exhaustively or at the fallback accuracy.
    """
    return sample_size(confidence, width) < population


def proportion_interval(
    successes: int, n: int, confidence: float
) -> tuple[float, float]:
    """Normal-approximation confidence interval for a sample proportion."""
    if n <= 0:
        return (0.0, 0.0)
    p = successes / n
    half = z_value(confidence) * math.sqrt(max(p * (1.0 - p), 1e-12) / n)
    return (max(0.0, p - half), min(1.0, p + half))


def wilson_interval(
    successes: int, n: int, confidence: float
) -> tuple[float, float]:
    """Wilson score interval for a sample proportion.

    Unlike the Wald interval of :func:`proportion_interval`, the Wilson
    interval stays honest at the boundaries: a sample with zero observed
    misses still yields a non-degenerate upper bound (≈ ``z²/(n+z²)``),
    which is what the differential harness needs when diffing sampled miss
    ratios against exhaustive ones on nearly-all-hit references.
    """
    if n <= 0:
        return (0.0, 0.0)
    z = z_value(confidence)
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (p + z2 / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return (max(0.0, centre - half), min(1.0, centre + half))
