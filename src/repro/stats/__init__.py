"""Sampling statistics used by ``EstimateMisses`` (Fig. 6)."""

from repro.stats.confidence import (
    DEFAULT_FALLBACK,
    achievable,
    proportion_interval,
    sample_size,
    z_value,
)

__all__ = [
    "DEFAULT_FALLBACK",
    "achievable",
    "proportion_interval",
    "sample_size",
    "z_value",
]
