"""Sampling statistics used by ``EstimateMisses`` (Fig. 6)."""

from repro.stats.confidence import (
    DEFAULT_FALLBACK,
    achievable,
    proportion_interval,
    sample_size,
    wilson_interval,
    z_value,
)

__all__ = [
    "DEFAULT_FALLBACK",
    "achievable",
    "proportion_interval",
    "sample_size",
    "wilson_interval",
    "z_value",
]
