"""High-level façade: prepare once, then analyse or simulate.

This module wires the full pipeline of Fig. 7 together:

    Program  ──inline──► flat body ──normalise──► loop tree
             ──layout──► base addresses ──walker──► access order
             ──reuse──► vectors ──CME──► FindMisses / EstimateMisses
                                  └────► cache simulator (validation)

Typical use::

    from repro import CacheConfig, analyze, prepare, run_simulation
    prepared = prepare(program)
    cache = CacheConfig.kb(32, 32, assoc=2)
    report = analyze(prepared, cache)                 # EstimateMisses
    exact = analyze(prepared, cache, method="find")   # FindMisses
    sim = run_simulation(prepared, cache)             # LRU simulator
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, TYPE_CHECKING, Union

from repro import obs
from repro.ir.nodes import Program
from repro.ir.stats import ProgramStats, program_stats
from repro.inline.abstract_inline import InlineResult, inline_program
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout, layout_for_refs
from repro.normalize.nprogram import NormalizedProgram
from repro.normalize.pipeline import normalize
from repro.iteration.walker import Walker
from repro.reuse.generator import ReuseOptions, ReuseTable, build_reuse_table
from repro.cme.estimate import estimate_misses
from repro.cme.find import find_misses
from repro.cme.regions import region_misses
from repro.cme.result import MissReport
from repro.sim.simulator import (
    HierarchyReport,
    SimReport,
    simulate,
    simulate_hierarchy,
)

if TYPE_CHECKING:  # repro.memo imports repro.cme — keep this lazy
    from repro.memo import Memoizer


@dataclass
class PreparedProgram:
    """A program taken through inlining, normalisation and layout.

    Reuse tables and the compiled walker are cached so that sweeping cache
    configurations (the paper's direct/2-way/4-way columns) re-uses all the
    front-end work.
    """

    program: Program
    inline_result: InlineResult
    nprog: NormalizedProgram
    layout: MemoryLayout
    walker: Walker
    _reuse_cache: dict = field(default_factory=dict, repr=False)

    def reuse_table(
        self, line_bytes: int, options: Optional[ReuseOptions] = None
    ) -> ReuseTable:
        """The reuse table for a given line size (cached)."""
        key = (line_bytes, options)
        table = self._reuse_cache.get(key)
        if table is None:
            table = build_reuse_table(self.nprog, line_bytes, options)
            self._reuse_cache[key] = table
        return table

    def stats(self) -> ProgramStats:
        """Table 5 statistics of the source program."""
        return program_stats(self.program)


def prepare(
    program: Program,
    entry: Optional[str] = None,
    align: int = 32,
    pad_bytes: Union[int, Mapping[str, int]] = 0,
    model_stack: bool = False,
    on_non_analysable: str = "raise",
) -> PreparedProgram:
    """Run the front half of the pipeline (inline, normalise, lay out).

    ``align``/``pad_bytes`` control the memory layout — padding exploration
    is one of the paper's motivating applications.
    """
    with obs.span("prepare/inline"):
        inlined = inline_program(
            program,
            entry=entry,
            on_non_analysable=on_non_analysable,
            model_stack=model_stack,
        )
    with obs.span("prepare/normalise"):
        nprog = normalize(inlined.flat, name=program.name)
    with obs.span("prepare/layout"):
        declared = list(program.all_arrays())
        if inlined.stack_array is not None:
            declared.append(inlined.stack_array)
        layout = layout_for_refs(
            nprog.refs, declared_order=declared, align=align, pad_bytes=pad_bytes
        )
        walker = Walker(nprog, layout)
    return PreparedProgram(program, inlined, nprog, layout, walker)


def _as_prepared(target: Union[Program, PreparedProgram]) -> PreparedProgram:
    if isinstance(target, PreparedProgram):
        return target
    return prepare(target)


def analyze(
    target: Union[Program, PreparedProgram],
    cache: CacheConfig,
    method: str = "estimate",
    confidence: float = 0.95,
    width: float = 0.05,
    seed: int = 0,
    reuse_options: Optional[ReuseOptions] = None,
    jobs: int = 1,
    memo: Optional["Memoizer"] = None,
    backend: Optional[str] = None,
) -> MissReport:
    """Predict the cache behaviour analytically.

    ``method`` selects the solver: ``"estimate"`` (statistical sampling at
    the paper's default c = 95%, w = 0.05), ``"find"`` (exhaustive, exact
    when reuse information is complete) and ``"regions"`` (regional
    decomposition — classifications equal to ``"find"`` with solve time
    independent of the loop bounds wherever closed-form certificates
    apply).
    ``jobs`` shards the per-reference work across worker processes
    (``1`` = serial, ``0``/negative = all CPUs); the report is identical
    for every job count.  ``memo`` (a :class:`repro.memo.Memoizer`) enables
    content-addressed memoization of per-reference solutions — in-run
    dedup, and cross-run persistence when the memoizer carries a store.
    ``backend`` selects the classification backend — ``"numpy"``
    (vectorized batch solving) or ``"scalar"`` (pure Python); ``None``
    means NumPy when installed, scalar otherwise.  Reports are
    bit-identical across backends, jobs and memoization.
    """
    prepared = _as_prepared(target)
    reuse = prepared.reuse_table(cache.line_bytes, reuse_options)
    if method == "find":
        return find_misses(
            prepared.nprog,
            prepared.layout,
            cache,
            reuse=reuse,
            walker=prepared.walker,
            jobs=jobs,
            memo=memo,
            backend=backend,
        )
    if method == "regions":
        return region_misses(
            prepared.nprog,
            prepared.layout,
            cache,
            reuse=reuse,
            walker=prepared.walker,
            jobs=jobs,
            memo=memo,
            backend=backend,
        )
    if method == "estimate":
        return estimate_misses(
            prepared.nprog,
            prepared.layout,
            cache,
            confidence=confidence,
            width=width,
            reuse=reuse,
            walker=prepared.walker,
            seed=seed,
            jobs=jobs,
            memo=memo,
            backend=backend,
        )
    raise ValueError(
        f"unknown method {method!r}; use 'find', 'estimate' or 'regions'"
    )


def run_simulation(
    target: Union[Program, PreparedProgram],
    cache: CacheConfig,
    backend: Optional[str] = None,
    policy: Optional[str] = None,
    seed: int = 0,
    l2_cache: Optional[CacheConfig] = None,
    l2_policy: Optional[str] = None,
) -> Union[SimReport, HierarchyReport]:
    """Run the trace-driven cache simulator on the whole program.

    ``backend`` selects the simulator — ``"numpy"`` (vectorized set
    kernels) or ``"scalar"`` (walker + per-set state machines); ``None``
    means NumPy when installed.  ``policy`` picks the replacement policy
    (:data:`repro.sim.POLICIES`; default LRU) and ``seed`` feeds the
    random policy's victim draw.  With ``l2_cache``, a two-level
    hierarchy is simulated — the L1 miss stream replays through the L2 —
    and a :class:`~repro.sim.simulator.HierarchyReport` is returned
    (``l2_policy`` defaults to ``policy``).  Reports are bit-identical
    across backends for every policy.
    """
    prepared = _as_prepared(target)
    if l2_cache is not None:
        return simulate_hierarchy(
            prepared.nprog,
            prepared.layout,
            cache,
            l2_cache,
            walker=prepared.walker,
            backend=backend,
            policy=policy,
            l2_policy=l2_policy,
            seed=seed,
        )
    return simulate(
        prepared.nprog,
        prepared.layout,
        cache,
        walker=prepared.walker,
        backend=backend,
        policy=policy,
        seed=seed,
    )
