"""``repro.serve`` — analysis-as-a-service on the stdlib only.

The paper's pitch is that analytical CME solving is cheap enough to sit
inside interactive tools.  This package turns the library into a
long-running daemon that amortises every expensive substrate across
requests: one process-wide :class:`~repro.memo.Memoizer` dedups equation
systems *across* clients, one prepared-program LRU re-uses front-end work,
and per-reference analysis units from many concurrent requests interleave
through a single shared worker pool.

Layers (all zero-dependency — ``http.server`` + ``json`` + ``urllib``):

* :mod:`repro.serve.protocol` — the versioned ``repro.serve/v1`` request/
  response schema, typed validation errors with stable HTTP codes, and the
  deterministic report serialisation (bit-identical to offline
  ``repro-cache analyze`` for the same inputs);
* :mod:`repro.serve.engine` — the reusable plan → solve → report engine
  API.  The CLI and the daemon share this one code path; the daemon
  additionally runs the pooled per-reference mode;
* :mod:`repro.serve.queue` — bounded admission queue with per-client
  round-robin fairness and request deadlines;
* :mod:`repro.serve.server` — the HTTP daemon (``POST /v1/analyze``,
  ``POST /v1/batch``, ``GET /v1/jobs/<id>``, ``GET /v1/healthz``,
  ``GET /v1/metrics``);
* :mod:`repro.serve.client` — the stdlib ``urllib`` client used by tests,
  ``repro-cache submit`` and the load generator.

Quickstart::

    from repro.serve import AnalysisServer, ServeClient

    with AnalysisServer(port=0, workers=2).start() as server:
        client = ServeClient(server.url)
        doc = client.analyze({"kernel": "hydro", "size": 32,
                              "cache": "4:32:2", "method": "find"})
        print(doc["report"]["totals"]["miss_ratio_percent"])
"""

from repro.serve.client import ServeClient
from repro.serve.engine import AnalysisEngine, load_kernel, program_from_source
from repro.serve.protocol import (
    SERVE_SCHEMA,
    AnalyzeRequest,
    BadRequest,
    JobNotFound,
    MalformedBody,
    NotAnalysable,
    ParseFailure,
    QueueFull,
    RequestTimeout,
    ServeError,
    UnknownKernel,
    error_doc,
    error_from_doc,
    parse_cache_spec,
    report_doc,
    validate_request,
    version_info,
)
from repro.serve.queue import FairQueue, Job
from repro.serve.server import AnalysisServer, start_server

__all__ = [
    "SERVE_SCHEMA",
    "AnalysisEngine",
    "AnalysisServer",
    "AnalyzeRequest",
    "BadRequest",
    "FairQueue",
    "Job",
    "JobNotFound",
    "MalformedBody",
    "NotAnalysable",
    "ParseFailure",
    "QueueFull",
    "RequestTimeout",
    "ServeClient",
    "ServeError",
    "UnknownKernel",
    "error_doc",
    "error_from_doc",
    "load_kernel",
    "parse_cache_spec",
    "program_from_source",
    "report_doc",
    "start_server",
    "validate_request",
    "version_info",
]
