"""The versioned ``repro.serve/v1`` wire schema.

Everything that crosses the HTTP boundary is defined here: the request
document and its typed validation, the error taxonomy with stable codes
and HTTP statuses, the deterministic report serialisation, and the
version/health document shared by ``repro-cache version`` and
``GET /v1/healthz``.

Error contract
--------------

Every failure a client can cause maps to a :class:`ServeError` subclass
with a stable ``code`` and ``http_status`` — never a stack trace in a
response body:

===============  ====  =============================================
code             HTTP  raised when
===============  ====  =============================================
``bad_json``     400   the request body is not valid JSON
``bad_request``  400   a field is missing, mistyped or out of range
``unknown_kernel`` 404 ``kernel`` names no builtin workload
``job_not_found``  404 ``GET /v1/jobs/<id>`` for an unknown id
``parse_error``  422   ``source`` fails the mini-FORTRAN frontend
``not_analysable`` 422 the program violates the paper's model
``queue_full``   429   the admission queue is at capacity
``timeout``      504   the request deadline expired (queued or solving)
``internal``     500   anything else (a server bug, still JSON-shaped)
===============  ====  =============================================

Determinism contract
--------------------

:func:`report_doc` serialises only classification outcomes (method, cache
geometry, per-reference tallies, derived totals) — never timings, job
counts or server metadata.  Two :class:`~repro.cme.result.MissReport`\\ s
that compare equal produce byte-identical documents, which is what lets
the tests assert daemon responses equal offline ``analyze`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from repro.errors import ReproError
from repro.layout.cache import CacheConfig

#: Wire schema version; bump on any change to request/response layouts.
SERVE_SCHEMA = "repro.serve/v1"

#: The CME solvers a request may select.
METHODS = ("estimate", "find", "regions")

#: Accepted classification backend names (``None``/"auto" = resolve).
BACKEND_NAMES = (None, "auto", "scalar", "numpy")

#: Default per-request deadline (seconds) when the client sends none.
DEFAULT_TIMEOUT = 60.0


# -- errors --------------------------------------------------------------------


class ServeError(ReproError):
    """Base of the service error taxonomy (code + HTTP status)."""

    code = "internal"
    http_status = 500


class MalformedBody(ServeError):
    """The request body is not parseable JSON."""

    code = "bad_json"
    http_status = 400


class BadRequest(ServeError):
    """A request field is missing, mistyped or out of range."""

    code = "bad_request"
    http_status = 400


class UnknownKernel(ServeError):
    """``kernel`` names no builtin workload."""

    code = "unknown_kernel"
    http_status = 404


class JobNotFound(ServeError):
    """A job id that the server does not know."""

    code = "job_not_found"
    http_status = 404


class ParseFailure(ServeError):
    """``source`` was rejected by the mini-FORTRAN frontend."""

    code = "parse_error"
    http_status = 422


class NotAnalysable(ServeError):
    """The program violates the paper's analysable model (Section 3)."""

    code = "not_analysable"
    http_status = 422


class QueueFull(ServeError):
    """The admission queue is at capacity; retry later."""

    code = "queue_full"
    http_status = 429


class RequestTimeout(ServeError):
    """The request deadline expired while queued or solving."""

    code = "timeout"
    http_status = 504


#: code -> exception class, for re-raising errors client-side.
ERROR_CLASSES: dict[str, type] = {
    cls.code: cls
    for cls in (
        ServeError,
        MalformedBody,
        BadRequest,
        UnknownKernel,
        JobNotFound,
        ParseFailure,
        NotAnalysable,
        QueueFull,
        RequestTimeout,
    )
}


def error_doc(exc: ServeError) -> dict:
    """The JSON body of an error response."""
    return {
        "schema": SERVE_SCHEMA,
        "status": "error",
        "error": {"code": exc.code, "message": str(exc)},
    }


def error_from_doc(doc: Mapping, http_status: int = 500) -> ServeError:
    """Rebuild the typed error of an error response (client side)."""
    err = doc.get("error") if isinstance(doc, Mapping) else None
    if not isinstance(err, Mapping):
        exc = ServeError(f"malformed error response (HTTP {http_status})")
        exc.http_status = http_status
        return exc
    cls = ERROR_CLASSES.get(err.get("code"), ServeError)
    return cls(str(err.get("message", "unknown error")))


# -- requests ------------------------------------------------------------------


@dataclass
class AnalyzeRequest:
    """One validated analysis request.

    Exactly one of ``kernel`` (builtin workload name), ``source``
    (mini-FORTRAN text) or ``program`` (an in-process
    :class:`~repro.ir.nodes.Program` — CLI/library use only, never set by
    :func:`validate_request`) identifies the program.
    """

    cache: CacheConfig
    kernel: Optional[str] = None
    source: Optional[str] = None
    program: Optional[object] = field(default=None, repr=False)
    size: Optional[int] = None
    steps: int = 2
    method: str = "estimate"
    confidence: float = 0.95
    width: float = 0.05
    seed: int = 0
    backend: Optional[str] = None
    timeout: float = DEFAULT_TIMEOUT
    client: str = "anonymous"

    def doc(self) -> dict:
        """The wire document of this request (for clients and tests)."""
        doc: dict = {
            "cache": {
                "size_bytes": self.cache.size_bytes,
                "line_bytes": self.cache.line_bytes,
                "assoc": self.cache.assoc,
            },
            "method": self.method,
            "confidence": self.confidence,
            "width": self.width,
            "seed": self.seed,
            "steps": self.steps,
            "timeout": self.timeout,
            "client": self.client,
        }
        if self.kernel is not None:
            doc["kernel"] = self.kernel
        if self.source is not None:
            doc["source"] = self.source
        if self.size is not None:
            doc["size"] = self.size
        if self.backend is not None:
            doc["backend"] = self.backend
        return doc


def parse_cache_spec(value: Union[str, Mapping]) -> CacheConfig:
    """A :class:`CacheConfig` from ``"KB:LINE:ASSOC"`` or a geometry dict."""
    if isinstance(value, str):
        try:
            size_kb, line, assoc = (int(p) for p in value.split(":"))
            return CacheConfig(size_kb * 1024, line, assoc)
        except ValueError as exc:
            raise BadRequest(
                f"bad cache spec {value!r}: expected SIZE_KB:LINE_BYTES:ASSOC"
            ) from exc
    if isinstance(value, Mapping):
        try:
            size_bytes = value.get("size_bytes")
            if size_bytes is None:
                size_bytes = int(value["size_kb"]) * 1024
            return CacheConfig(
                int(size_bytes),
                int(value["line_bytes"]),
                int(value.get("assoc", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BadRequest(f"bad cache geometry {value!r}: {exc}") from exc
    raise BadRequest(
        f"cache must be a 'KB:LINE:ASSOC' string or a geometry object, "
        f"got {type(value).__name__}"
    )


def _field(doc: Mapping, name: str, kind, default):
    """Typed scalar field access; a wrong type is a :class:`BadRequest`."""
    value = doc.get(name, default)
    if value is default:
        return default
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise BadRequest(
            f"field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def validate_request(
    doc, default_timeout: float = DEFAULT_TIMEOUT
) -> AnalyzeRequest:
    """Validate one wire document into an :class:`AnalyzeRequest`.

    Every violation raises :class:`BadRequest` with a message naming the
    offending field — typed errors, never ``KeyError``/``TypeError``
    escaping into a 500.
    """
    if not isinstance(doc, Mapping):
        raise BadRequest(
            f"request must be a JSON object, got {type(doc).__name__}"
        )
    kernel = _field(doc, "kernel", str, None)
    source = _field(doc, "source", str, None)
    if (kernel is None) == (source is None):
        raise BadRequest("exactly one of 'kernel' or 'source' is required")
    if "cache" not in doc:
        raise BadRequest("field 'cache' is required")
    cache = parse_cache_spec(doc["cache"])
    method = _field(doc, "method", str, "estimate")
    if method not in METHODS:
        raise BadRequest(
            f"field 'method' must be one of {METHODS}, got {method!r}"
        )
    size = _field(doc, "size", int, None)
    if size is not None and size <= 0:
        raise BadRequest(f"field 'size' must be positive, got {size}")
    steps = _field(doc, "steps", int, 2)
    if steps <= 0:
        raise BadRequest(f"field 'steps' must be positive, got {steps}")
    confidence = _field(doc, "confidence", float, 0.95)
    if not 0.0 < confidence < 1.0:
        raise BadRequest(
            f"field 'confidence' must be in (0, 1), got {confidence}"
        )
    width = _field(doc, "width", float, 0.05)
    if not 0.0 < width < 1.0:
        raise BadRequest(f"field 'width' must be in (0, 1), got {width}")
    seed = _field(doc, "seed", int, 0)
    backend = _field(doc, "backend", str, None)
    if backend not in BACKEND_NAMES:
        raise BadRequest(
            f"field 'backend' must be one of "
            f"{[b for b in BACKEND_NAMES if b]}, got {backend!r}"
        )
    timeout = _field(doc, "timeout", float, float(default_timeout))
    if timeout <= 0.0:
        raise BadRequest(f"field 'timeout' must be positive, got {timeout}")
    client = _field(doc, "client", str, "anonymous")
    return AnalyzeRequest(
        cache=cache,
        kernel=kernel,
        source=source,
        size=size,
        steps=steps,
        method=method,
        confidence=confidence,
        width=width,
        seed=seed,
        backend=backend,
        timeout=timeout,
        client=client or "anonymous",
    )


# -- responses -----------------------------------------------------------------


def report_doc(report) -> dict:
    """Deterministic serialisation of a :class:`~repro.cme.result.MissReport`.

    Contains classifications only (no timings, jobs or metrics), with
    references sorted by uid — so equal reports serialise byte-identically
    no matter which process, backend, job count or memo state produced
    them.
    """
    refs = [
        {
            "uid": r.ref_uid,
            "name": r.ref_name,
            "population": r.population,
            "analysed": r.analysed,
            "cold": r.cold,
            "replacement": r.replacement,
            "hits": r.hits,
        }
        for _, r in sorted(report.results.items())
    ]
    return {
        "method": report.method,
        "cache": {
            "size_bytes": report.cache.size_bytes,
            "line_bytes": report.cache.line_bytes,
            "assoc": report.cache.assoc,
        },
        "totals": {
            "accesses": report.total_accesses,
            "analysed": report.analysed_points,
            "misses": report.total_misses,
            "miss_ratio_percent": report.miss_ratio_percent,
        },
        "refs": refs,
    }


def version_info() -> dict:
    """Package version, code fingerprint and schema versions.

    The single source for ``repro-cache version`` and ``GET /v1/healthz``.
    The 16-hex ``fingerprint`` is the same prefix the memo store and the
    run ledger stamp into their headers — matching fingerprints mean
    matching solver code, so memoized results are interchangeable.
    """
    from repro import __version__
    from repro.memo.key import code_fingerprint
    from repro.memo.store import STORE_SCHEMA
    from repro.obs.export import SCHEMA as METRICS_SCHEMA
    from repro.obs.ledger import LEDGER_SCHEMA

    return {
        "package": "repro",
        "version": __version__,
        "fingerprint": code_fingerprint()[:16],
        "schemas": {
            "serve": SERVE_SCHEMA,
            "metrics": METRICS_SCHEMA,
            "ledger": LEDGER_SCHEMA,
            "memo": STORE_SCHEMA,
        },
    }
