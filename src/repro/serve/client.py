"""Stdlib HTTP client for the analysis service.

Used by the tests, ``repro-cache submit`` and the service benchmark; the
only dependency is ``urllib``.  Error responses are rebuilt into the same
typed :class:`~repro.serve.protocol.ServeError` subclasses the server
raised, so ``except QueueFull`` works identically in-process and over the
wire.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.serve.protocol import RequestTimeout, error_from_doc


class ServeClient:
    """A thin JSON client bound to one server base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _call(self, method: str, path: str, body: Optional[dict] = None):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                doc = json.loads(exc.read())
            except ValueError:
                doc = {}
            raise error_from_doc(doc, exc.code) from None

    # -- endpoints -------------------------------------------------------------

    def analyze(self, doc: dict) -> dict:
        """``POST /v1/analyze`` — solve one request synchronously."""
        return self._call("POST", "/v1/analyze", doc)

    def batch(self, docs: list) -> dict:
        """``POST /v1/batch`` — admit many requests; returns their ids."""
        return self._call("POST", "/v1/batch", {"requests": list(docs)})

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>`` — poll one job."""
        return self._call("GET", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 60.0, poll: float = 0.05) -> dict:
        """Poll a job until it leaves the queued/running states.

        Raises :class:`RequestTimeout` if it has not settled within
        ``timeout`` seconds; returns the final job document otherwise
        (whose ``status`` is ``done`` or ``error``).
        """
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc.get("status") in ("done", "error"):
                return doc
            if time.monotonic() >= deadline:
                raise RequestTimeout(
                    f"job {job_id} still {doc.get('status')!r} "
                    f"after {timeout:.3f}s"
                )
            time.sleep(poll)

    def healthz(self) -> dict:
        """``GET /v1/healthz``."""
        return self._call("GET", "/v1/healthz")

    def metrics(self) -> dict:
        """``GET /v1/metrics``."""
        return self._call("GET", "/v1/metrics")
