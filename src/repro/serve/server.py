"""The HTTP daemon: stdlib ``ThreadingHTTPServer`` over the shared engine.

Request flow::

    client ──POST /v1/analyze──► handler ──validate──► FairQueue
                                              │             │ round-robin
                                              ▼             ▼
                                        429 / 400     dispatcher thread
                                                            │
                                                   AnalysisEngine.run
                                                   (shared Memoizer,
                                                    shared unit pool)

Handlers run on ``ThreadingHTTPServer``'s per-connection threads; they
only validate, admit and wait.  All solving happens on ``dispatchers``
dispatcher threads, which pull jobs fairly across clients and fan each
job's per-reference units out to one shared ``ThreadPoolExecutor`` — so
units of concurrent requests interleave and a long analysis cannot
monopolise the pool.

Endpoints (all JSON, schema ``repro.serve/v1``):

* ``POST /v1/analyze`` — solve one request synchronously (within its
  deadline);
* ``POST /v1/batch`` — admit many requests, return their job ids;
* ``GET /v1/jobs/<id>`` — poll one job;
* ``GET /v1/healthz`` — liveness + version/fingerprint/schema info;
* ``GET /v1/metrics`` — counters, latency quantiles, memo tallies.
"""

from __future__ import annotations

import json
import logging
import statistics
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro import obs
from repro.errors import ReproError
from repro.memo import Memoizer
from repro.serve.engine import AnalysisEngine
from repro.serve.protocol import (
    DEFAULT_TIMEOUT,
    JobNotFound,
    MalformedBody,
    RequestTimeout,
    SERVE_SCHEMA,
    ServeError,
    error_doc,
    report_doc,
    validate_request,
    version_info,
)
from repro.serve.queue import FairQueue, Job

log = logging.getLogger("repro.serve")

#: Completed jobs kept for ``GET /v1/jobs/<id>`` before eviction.
MAX_FINISHED_JOBS = 1024

#: Request latencies retained for the metrics quantiles.
MAX_LATENCIES = 4096

#: Maximum request body accepted (guards the JSON parser).
MAX_BODY_BYTES = 4 << 20


def _quantile(values: list, q: float) -> float:
    if not values:
        return 0.0
    if len(values) == 1:
        return values[0]
    cut = statistics.quantiles(values, n=100, method="inclusive")
    return cut[min(98, max(0, int(q * 100) - 1))]


class AnalysisServer:
    """The daemon: queue + dispatchers + shared engine + HTTP front end.

    ``port=0`` binds an ephemeral port (read :attr:`url` after
    :meth:`start`).  ``queue_limit`` bounds admission (429 past it);
    ``workers`` sizes the shared per-reference unit pool; ``dispatchers``
    is the number of concurrently-solving requests.  ``cache_dir`` makes
    the shared memoizer persistent; otherwise it is in-memory only (still
    deduping across requests).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        dispatchers: int = 2,
        queue_limit: int = 64,
        cache_dir: Optional[str] = None,
        memo: Optional[Memoizer] = None,
        default_timeout: float = DEFAULT_TIMEOUT,
    ):
        if memo is None:
            memo = Memoizer.open(cache_dir) if cache_dir else Memoizer()
        self.memo = memo
        self.engine = AnalysisEngine(memo=memo)
        self.queue = FairQueue(capacity=queue_limit)
        self.default_timeout = default_timeout
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-serve-unit"
        )
        self._dispatcher_count = max(1, dispatchers)
        self._dispatcher_threads: list[threading.Thread] = []
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._jobs_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=MAX_LATENCIES)
        self._counts = {
            "requests": 0,
            "completed": 0,
            "errors": 0,
            "timeouts": 0,
            "rejected": 0,
        }
        self._started_at = time.monotonic()
        self._closed = False
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self
        self._http_thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "AnalysisServer":
        """Serve in background threads; returns self (context manager)."""
        for i in range(self._dispatcher_count):
            t = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-serve-dispatch-{i}",
                daemon=True,
            )
            t.start()
            self._dispatcher_threads.append(t)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        log.info("serving on %s", self.url)
        return self

    def run(self) -> None:
        """Serve on the calling thread until interrupted (the CLI mode)."""
        self.start()
        try:
            while not self._closed:
                time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.queue.close()
        self._httpd.shutdown()
        self._httpd.server_close()
        for t in self._dispatcher_threads:
            t.join(timeout=5.0)
        self._pool.shutdown(wait=False, cancel_futures=True)
        self.memo.flush()

    def __enter__(self) -> "AnalysisServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- admission (handler side) ----------------------------------------------

    def submit(self, doc) -> Job:
        """Validate + admit one request document; returns its job."""
        request = validate_request(doc, default_timeout=self.default_timeout)
        job = Job(request)
        with self._stats_lock:
            self._counts["requests"] += 1
        obs.counter("serve.requests").inc()
        try:
            self.queue.put(job)
        except ServeError:
            with self._stats_lock:
                self._counts["rejected"] += 1
            obs.counter("serve.rejected").inc()
            raise
        with self._jobs_lock:
            self._jobs[job.id] = job
            while len(self._jobs) > MAX_FINISHED_JOBS:
                oldest = next(iter(self._jobs.values()))
                if not oldest.done.is_set():
                    break  # never evict live jobs
                self._jobs.popitem(last=False)
        return job

    def job(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(f"no such job: {job_id!r}")
        return job

    # -- dispatch (worker side) ------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            self.queue.drain_expired()
            job = self.queue.get(timeout=0.1)
            if job is None:
                if self._closed:
                    return
                continue
            self._dispatch(job)

    def _dispatch(self, job: Job) -> None:
        if job.expired:
            job.fail(
                RequestTimeout(
                    f"request expired after "
                    f"{job.request.timeout:.3f}s in the queue"
                )
            )
            self._note_finished(job)
            return
        job.start()
        try:
            report, info = self.engine.run(
                job.request, pool=self._pool, deadline=job.deadline
            )
        except ServeError as exc:
            job.fail(exc)
        except ReproError as exc:
            failure = ServeError(f"analysis failed: {exc}")
            job.fail(failure)
        except Exception as exc:  # a server bug — still a JSON error
            log.exception("dispatch failed for job %s", job.id)
            job.fail(ServeError(f"internal error: {exc}"))
        else:
            job.finish(
                {
                    "schema": SERVE_SCHEMA,
                    "status": "ok",
                    "job": job.id,
                    "report": report_doc(report),
                    "server": {
                        "queued_seconds": job.queued_seconds,
                        "solve_seconds": info["solve_seconds"],
                        "memo": info["memo"],
                    },
                }
            )
        self._note_finished(job)

    def _note_finished(self, job: Job) -> None:
        with self._stats_lock:
            if job.status == "done":
                self._counts["completed"] += 1
                self._latencies.append(job.elapsed_seconds)
            else:
                self._counts["errors"] += 1
                if isinstance(job.error, RequestTimeout):
                    self._counts["timeouts"] += 1
        obs.counter(
            "serve.completed" if job.status == "done" else "serve.errors"
        ).inc()

    # -- introspection ---------------------------------------------------------

    def healthz(self) -> dict:
        return {
            "schema": SERVE_SCHEMA,
            "status": "ok",
            **version_info(),
            "uptime_seconds": time.monotonic() - self._started_at,
            "queue_depth": self.queue.depth,
        }

    def metrics(self) -> dict:
        with self._stats_lock:
            counts = dict(self._counts)
            latencies = sorted(self._latencies)
        memo = self.memo
        return {
            "schema": SERVE_SCHEMA,
            "uptime_seconds": time.monotonic() - self._started_at,
            "queue_depth": self.queue.depth,
            "requests": counts,
            "latency_seconds": {
                "count": len(latencies),
                "p50": _quantile(latencies, 0.50),
                "p99": _quantile(latencies, 0.99),
            },
            "memo": {
                "hits": memo.hits,
                "misses": memo.misses,
                "groups": memo.groups,
                "store_hits": memo.store_hits,
                "persisted": memo.persisted,
            },
        }


class _Handler(BaseHTTPRequestHandler):
    """Route table + JSON plumbing; all state lives on ``server.app``."""

    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> AnalysisServer:
        return self.server.app

    def log_message(self, fmt, *args):  # route BaseHTTPServer noise to logging
        log.debug("%s - %s", self.address_string(), fmt % args)

    # -- plumbing --------------------------------------------------------------

    def _send_json(self, status: int, doc: dict) -> None:
        body = json.dumps(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_doc(self, exc: ServeError) -> None:
        self._send_json(exc.http_status, error_doc(exc))

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            raise MalformedBody(
                f"request body must be 1..{MAX_BODY_BYTES} bytes, "
                f"got {length}"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise MalformedBody(f"request body is not valid JSON: {exc}")

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:
        try:
            if self.path == "/v1/healthz":
                self._send_json(200, self.app.healthz())
            elif self.path == "/v1/metrics":
                self._send_json(200, self.app.metrics())
            elif self.path.startswith("/v1/jobs/"):
                job = self.app.job(self.path[len("/v1/jobs/"):])
                self._send_json(200, job.to_doc())
            else:
                exc = JobNotFound(f"no such endpoint: GET {self.path}")
                self._send_error_doc(exc)
        except ServeError as exc:
            self._send_error_doc(exc)
        except Exception as exc:
            log.exception("GET %s failed", self.path)
            self._send_error_doc(ServeError(f"internal error: {exc}"))

    def do_POST(self) -> None:
        try:
            if self.path == "/v1/analyze":
                self._analyze()
            elif self.path == "/v1/batch":
                self._batch()
            else:
                exc = JobNotFound(f"no such endpoint: POST {self.path}")
                self._send_error_doc(exc)
        except ServeError as exc:
            self._send_error_doc(exc)
        except Exception as exc:
            log.exception("POST %s failed", self.path)
            self._send_error_doc(ServeError(f"internal error: {exc}"))

    def _analyze(self) -> None:
        """Synchronous solve: admit, wait (bounded by the deadline), reply."""
        doc = self._read_json()
        job = self.app.submit(doc)
        # Grace covers dispatcher handoff so the solver's own timeout
        # (precise, raised between units) is the one that usually fires.
        wait = job.request.timeout + 0.5
        if not job.done.wait(wait):
            self._send_error_doc(
                RequestTimeout(
                    f"no result within {job.request.timeout:.3f}s "
                    f"(job {job.id} still {job.status})"
                )
            )
            return
        if job.error is not None:
            self._send_error_doc(job.error)
        else:
            self._send_json(200, job.result)

    def _batch(self) -> None:
        """Asynchronous admission: one job id (or error) per request."""
        doc = self._read_json()
        if not isinstance(doc, dict) or not isinstance(
            doc.get("requests"), list
        ):
            raise MalformedBody("batch body must be {'requests': [...]}")
        jobs = []
        for item in doc["requests"]:
            try:
                job = self.app.submit(item)
                jobs.append({"id": job.id, "status": job.status})
            except ServeError as exc:
                jobs.append({"error": error_doc(exc)["error"]})
        self._send_json(
            200, {"schema": SERVE_SCHEMA, "status": "ok", "jobs": jobs}
        )


def start_server(**kwargs) -> AnalysisServer:
    """Create and start an :class:`AnalysisServer` in one call."""
    return AnalysisServer(**kwargs).start()
