"""Bounded admission queue with per-client fairness and deadlines.

The daemon admits requests through one :class:`FairQueue`:

* **bounded** — at most ``capacity`` jobs may be queued; admission past
  that raises :class:`~repro.serve.protocol.QueueFull` (HTTP 429) instead
  of letting a flood build unbounded latency;
* **fair** — jobs are grouped by client id and dispatched round-robin
  across clients, so one client streaming hundreds of requests cannot
  starve another's single interactive one.  Within a client, order is
  FIFO;
* **deadline-aware** — every :class:`Job` carries an absolute deadline
  (monotonic clock).  Dispatchers drop expired jobs with
  :class:`~repro.serve.protocol.RequestTimeout` (HTTP 504) before wasting
  solver time on them.

The queue is plain ``threading`` — no asyncio — matching the
thread-per-connection model of ``http.server.ThreadingHTTPServer``.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from typing import Optional

from repro.serve.protocol import (
    AnalyzeRequest,
    QueueFull,
    RequestTimeout,
    SERVE_SCHEMA,
    ServeError,
    error_doc,
)


class Job:
    """One admitted request: state machine ``queued → running → done/error``."""

    def __init__(self, request: AnalyzeRequest, job_id: Optional[str] = None):
        self.id = job_id or uuid.uuid4().hex[:12]
        self.request = request
        self.status = "queued"
        self.result: Optional[dict] = None
        self.error: Optional[ServeError] = None
        self.done = threading.Event()
        self.enqueued = time.monotonic()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        #: Absolute monotonic deadline; expired jobs fail with ``timeout``.
        self.deadline = self.enqueued + request.timeout

    # -- state transitions (dispatcher side) -----------------------------------

    def start(self) -> None:
        self.status = "running"
        self.started = time.monotonic()

    def finish(self, result: dict) -> None:
        self.result = result
        self.status = "done"
        self.finished = time.monotonic()
        self.done.set()

    def fail(self, exc: ServeError) -> None:
        self.error = exc
        self.status = "error"
        self.finished = time.monotonic()
        self.done.set()

    # -- views -----------------------------------------------------------------

    @property
    def expired(self) -> bool:
        """True once the deadline has passed (regardless of state)."""
        return time.monotonic() >= self.deadline

    @property
    def queued_seconds(self) -> float:
        """Time spent waiting for a dispatcher."""
        return (self.started or self.finished or time.monotonic()) - self.enqueued

    @property
    def elapsed_seconds(self) -> float:
        """Admission-to-completion wall time (so far, if unfinished)."""
        return (self.finished or time.monotonic()) - self.enqueued

    def to_doc(self) -> dict:
        """The ``GET /v1/jobs/<id>`` document."""
        doc = {
            "schema": SERVE_SCHEMA,
            "id": self.id,
            "status": self.status,
            "client": self.request.client,
            "queued_seconds": self.queued_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "result": self.result,
        }
        if self.error is not None:
            doc["error"] = error_doc(self.error)["error"]
        return doc


class FairQueue:
    """Bounded multi-client queue with round-robin dispatch.

    ``capacity <= 0`` means "admit nothing" — useful for drain mode and
    for deterministically testing the 429 path.
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._lanes: dict[str, deque[Job]] = {}
        self._order: deque[str] = deque()  # round-robin client rotation
        self._size = 0
        self._closed = False
        self._cond = threading.Condition()

    # -- producer side ---------------------------------------------------------

    def put(self, job: Job) -> None:
        """Admit ``job`` under its request's client id.

        Raises :class:`QueueFull` when at capacity and :class:`ServeError`
        when the queue is closed; never blocks.
        """
        client = job.request.client
        with self._cond:
            if self._closed:
                raise ServeError("server is shutting down")
            if self._size >= self.capacity:
                raise QueueFull(
                    f"admission queue full ({self._size}/{self.capacity}); "
                    f"retry later"
                )
            lane = self._lanes.get(client)
            if lane is None:
                lane = self._lanes[client] = deque()
            if not lane:
                self._order.append(client)
            lane.append(job)
            self._size += 1
            self._cond.notify()

    # -- consumer side ---------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """The next job, round-robin across clients.

        Blocks up to ``timeout`` seconds (``None`` = forever); returns
        ``None`` on timeout or once the queue is closed and drained.
        """
        with self._cond:
            while self._size == 0:
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None
            client = self._order.popleft()
            lane = self._lanes[client]
            job = lane.popleft()
            if lane:
                self._order.append(client)  # rotate: next client first
            else:
                del self._lanes[client]
            self._size -= 1
            return job

    def drain_expired(self) -> list[Job]:
        """Remove and fail every queued job whose deadline has passed."""
        expired: list[Job] = []
        with self._cond:
            for client in list(self._lanes):
                lane = self._lanes[client]
                keep = deque(j for j in lane if not j.expired)
                expired.extend(j for j in lane if j.expired)
                if keep:
                    self._lanes[client] = keep
                else:
                    del self._lanes[client]
                    if client in self._order:
                        self._order.remove(client)
            self._size -= len(expired)
        for job in expired:
            job.fail(
                RequestTimeout(
                    f"request expired after {job.request.timeout:.3f}s "
                    f"in the queue"
                )
            )
        return expired

    def close(self) -> None:
        """Stop admitting; wake every blocked :meth:`get`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def depth(self) -> int:
        """Jobs currently queued (not yet dispatched)."""
        with self._cond:
            return self._size
