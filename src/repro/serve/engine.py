"""The reusable plan → solve → report engine behind the CLI and the daemon.

This module is the code-path split the service forces: *resolving* a
request to a prepared program, *planning* its per-reference work through a
(shared) memoizer, *solving* the plan, and *reporting* the result are now
one engine API instead of logic buried in ``repro-cache analyze``.

Two solve modes, bit-identical by construction:

* **offline** (``pool=None``) — delegates to :func:`repro.analysis.analyze`
  — the exact path the CLI always ran, including ``--jobs`` process
  sharding.  ``repro-cache analyze`` goes through here.
* **pooled** (``pool=`` a ``ThreadPoolExecutor``) — the daemon mode: the
  memo plan runs under the shared memoizer's lock, then each representative
  reference becomes one unit on the *shared* pool, where units from many
  concurrent requests interleave.  Units call the very same per-reference
  functions the serial solvers and the process pool run
  (:func:`~repro.cme.find.find_ref_misses`,
  :func:`~repro.cme.estimate.estimate_ref_misses`), so a pooled report is
  field-for-field identical to an offline one.

Per analysis state — ``(program, cache geometry, backend)`` — the engine
caches the prepared program, the reuse table and the classifier in LRU
maps, and serialises units of the *same* state behind a per-state lock
(classifiers keep internal caches that are not thread-safe); units of
*different* states run concurrently.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.analysis import PreparedProgram, analyze, prepare
from repro.cme.backend import make_classifier, resolve_backend
from repro.cme.estimate import estimate_ref_misses
from repro.cme.find import find_ref_misses
from repro.cme.regions import region_ref_misses
from repro.cme.result import MissReport
from repro.errors import FrontendError, ReproError
from repro.ir.nodes import Program
from repro.serve.protocol import (
    AnalyzeRequest,
    BadRequest,
    NotAnalysable,
    ParseFailure,
    RequestTimeout,
    UnknownKernel,
)

if TYPE_CHECKING:
    from concurrent.futures import ThreadPoolExecutor

    from repro.memo import Memoizer

#: Prepared programs kept in the engine's LRU (front-end work is cheap but
#: not free; a daemon sees the same few programs over and over).
MAX_PREPARED = 32

#: Classifier states kept per engine (one per program x cache x backend).
MAX_STATES = 64


def load_kernel(name: str, size: Optional[int] = None, steps: int = 2) -> Program:
    """Build a builtin workload by name (the CLI's and the daemon's table).

    Raises :class:`UnknownKernel` for names outside the builtin set — the
    404 of the service, a ``SystemExit``-worthy message in the CLI.
    """
    from repro.kernels import build_hydro, build_mgrid, build_mmt
    from repro.programs import (
        build_applu_like,
        build_swim_like,
        build_tomcatv_like,
    )

    builders = {
        "hydro": lambda: build_hydro(size or 64, size or 64),
        "mgrid": lambda: build_mgrid(size or 20),
        "mmt": lambda: build_mmt(size or 48, (size or 48) // 2, (size or 48) // 4),
        "tomcatv": lambda: build_tomcatv_like(size or 48, steps),
        "swim": lambda: build_swim_like(size or 48, steps),
        "applu": lambda: build_applu_like(size or 24, steps),
    }
    builder = builders.get(name)
    if builder is None:
        raise UnknownKernel(
            f"unknown kernel {name!r}: use one of {sorted(builders)}"
        )
    return builder()


def program_from_source(source: str) -> Program:
    """Parse mini-FORTRAN ``source`` text into a :class:`Program`.

    Frontend rejections become :class:`ParseFailure` (HTTP 422) so a bad
    program is the client's typed error, never a server stack trace.
    """
    from repro.frontend import parse_program

    try:
        return parse_program(source)
    except FrontendError as exc:
        raise ParseFailure(f"source rejected by the frontend: {exc}") from exc


@dataclass
class _State:
    """One cached analysis state: prepared program + classifier + lock."""

    prepared: PreparedProgram
    cache: object  # CacheConfig
    backend: str
    reuse: object  # ReuseTable
    classifier: object
    #: Serialises pooled units of this state — classifiers carry internal
    #: caches that are not safe under concurrent classification.
    lock: threading.Lock = field(default_factory=threading.Lock)


class AnalysisEngine:
    """Plan → solve → report, with shared caches across requests.

    One engine owns (optionally) one :class:`~repro.memo.Memoizer` shared
    by *every* request it solves — the cross-request dedup that makes a
    warm daemon answer repeated systems without classifying anything.
    """

    def __init__(
        self,
        memo: Optional["Memoizer"] = None,
        max_prepared: int = MAX_PREPARED,
        max_states: int = MAX_STATES,
    ):
        self.memo = memo
        self._max_prepared = max_prepared
        self._max_states = max_states
        self._prepared: OrderedDict[str, PreparedProgram] = OrderedDict()
        self._states: OrderedDict[tuple, _State] = OrderedDict()
        self._lock = threading.RLock()

    # -- resolve ---------------------------------------------------------------

    def program_key(self, request: AnalyzeRequest) -> str:
        """A stable cache key for the request's program identity."""
        if request.program is not None:
            return f"obj:{id(request.program)}"
        if request.source is not None:
            digest = hashlib.sha256(request.source.encode()).hexdigest()[:16]
            return f"src:{digest}"
        return f"kernel:{request.kernel}:{request.size}:{request.steps}"

    def prepared_for(self, request: AnalyzeRequest) -> PreparedProgram:
        """The prepared program of ``request`` (LRU-cached).

        Model violations surfacing during inlining/normalisation map to
        :class:`NotAnalysable` (HTTP 422).
        """
        key = self.program_key(request)
        with self._lock:
            prepared = self._prepared.get(key)
            if prepared is not None:
                self._prepared.move_to_end(key)
                return prepared
        if request.program is not None:
            program = request.program
        elif request.source is not None:
            program = program_from_source(request.source)
        else:
            program = load_kernel(request.kernel, request.size, request.steps)
        if not isinstance(program, Program):
            raise BadRequest(
                f"request program must be a Program, "
                f"got {type(program).__name__}"
            )
        try:
            prepared = prepare(program)
        except ReproError as exc:
            raise NotAnalysable(f"program cannot be analysed: {exc}") from exc
        with self._lock:
            self._prepared[key] = prepared
            while len(self._prepared) > self._max_prepared:
                self._prepared.popitem(last=False)
        return prepared

    def _state_for(self, request: AnalyzeRequest) -> _State:
        """The classifier state of ``(program, cache, backend)`` (LRU)."""
        backend = resolve_backend(request.backend)
        cache = request.cache
        key = (
            self.program_key(request),
            cache.size_bytes,
            cache.line_bytes,
            cache.assoc,
            backend,
        )
        with self._lock:
            state = self._states.get(key)
            if state is not None:
                self._states.move_to_end(key)
                return state
        prepared = self.prepared_for(request)
        with self._lock:
            # Re-check: another thread may have built it while we prepared.
            state = self._states.get(key)
            if state is None:
                reuse = prepared.reuse_table(cache.line_bytes)
                classifier = make_classifier(
                    backend,
                    prepared.nprog,
                    prepared.layout,
                    cache,
                    reuse,
                    prepared.walker,
                )
                state = _State(prepared, cache, backend, reuse, classifier)
                self._states[key] = state
                while len(self._states) > self._max_states:
                    self._states.popitem(last=False)
        return state

    # -- solve -----------------------------------------------------------------

    def run(
        self,
        request: AnalyzeRequest,
        jobs: int = 1,
        pool: Optional["ThreadPoolExecutor"] = None,
        deadline: Optional[float] = None,
    ) -> tuple[MissReport, dict]:
        """Solve one request; returns ``(report, info)``.

        ``info`` carries per-request accounting — memo hits/misses and
        solve wall time — without touching the report (whose serialisation
        must stay deterministic).  ``deadline`` is an absolute monotonic
        time; crossing it raises :class:`RequestTimeout`.
        """
        started = time.perf_counter()
        self._check_deadline(deadline)
        if pool is None:
            report, memo_info = self._run_offline(request, jobs)
        else:
            report, memo_info = self._run_pooled(request, pool, deadline)
        info = {
            "memo": memo_info,
            "solve_seconds": time.perf_counter() - started,
        }
        return report, info

    def _run_offline(
        self, request: AnalyzeRequest, jobs: int
    ) -> tuple[MissReport, dict]:
        """The CLI path: the unmodified library solvers, end to end."""
        prepared = self.prepared_for(request)
        memo = self.memo
        before = (
            (memo.hits, memo.misses, memo.store_hits)
            if memo is not None
            else (0, 0, 0)
        )
        report = analyze(
            prepared,
            request.cache,
            method=request.method,
            confidence=request.confidence,
            width=request.width,
            seed=request.seed,
            jobs=jobs,
            memo=memo,
            backend=request.backend,
        )
        if memo is not None:
            memo_info = {
                "hits": memo.hits - before[0],
                "misses": memo.misses - before[1],
                "store_hits": memo.store_hits - before[2],
            }
        else:
            memo_info = {"hits": 0, "misses": 0, "store_hits": 0}
        return report, memo_info

    def _run_pooled(
        self,
        request: AnalyzeRequest,
        pool: "ThreadPoolExecutor",
        deadline: Optional[float],
    ) -> tuple[MissReport, dict]:
        """The daemon path: shared memo plan + shared unit pool."""
        state = self._state_for(request)
        nprog = state.prepared.nprog
        method = request.method
        targets = list(nprog.refs)
        plan = None
        if self.memo is not None:
            if method == "estimate":
                session = self.memo.session(
                    method,
                    nprog,
                    state.prepared.layout,
                    state.cache,
                    state.reuse,
                    request.confidence,
                    request.width,
                    request.seed,
                )
            else:
                session = self.memo.session(
                    method,
                    nprog,
                    state.prepared.layout,
                    state.cache,
                    state.reuse,
                )
            plan = session.plan(targets)
            solve_list = plan.solve
        else:
            solve_list = targets
        store_hits_before = self.memo.store_hits if self.memo else 0
        self._check_deadline(deadline)
        name = {
            "find": "FindMisses",
            "regions": "RegionMisses",
        }.get(method, "EstimateMisses")
        report = MissReport(name, state.cache)
        futures = [
            pool.submit(self._solve_unit, state, ref, request)
            for ref in solve_list
        ]
        try:
            for ref, future in zip(solve_list, futures):
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                try:
                    report.results[ref.uid] = future.result(timeout=remaining)
                except FutureTimeout:
                    raise RequestTimeout(
                        f"deadline expired while solving {ref.name()} "
                        f"({len(solve_list)} unit(s) in flight)"
                    ) from None
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        if plan is not None:
            for ref in plan.solve:
                plan.add(ref, report.results[ref.uid])
            report.results = plan.finish(report.results)
            self.memo.flush()
            memo_info = {
                "hits": plan.replays,
                "misses": len(plan.solve),
                "store_hits": self.memo.store_hits - store_hits_before,
            }
        else:
            memo_info = {"hits": 0, "misses": len(solve_list), "store_hits": 0}
        report.solver_seconds = report.elapsed_seconds = 0.0
        return report, memo_info

    @staticmethod
    def _solve_unit(state: _State, ref, request: AnalyzeRequest):
        """One per-reference unit on the shared pool (the daemon's shard)."""
        with state.lock:
            if request.method == "find":
                return find_ref_misses(state.classifier, state.prepared.nprog, ref)
            if request.method == "regions":
                return region_ref_misses(
                    state.classifier, state.prepared.nprog, ref
                )
            return estimate_ref_misses(
                state.classifier,
                state.prepared.nprog,
                ref,
                request.confidence,
                request.width,
                request.seed,
            )

    @staticmethod
    def _check_deadline(deadline: Optional[float]) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            raise RequestTimeout("request deadline expired before solving")
