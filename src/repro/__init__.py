"""repro — analytical whole-program cache behaviour prediction.

A from-scratch Python reproduction of Vera & Xue, *"Let's Study
Whole-Program Cache Behaviour Analytically"* (HPCA 2002): reuse vectors
generalised across multiple loop nests, abstract inlining of subroutine
calls, Cache Miss Equations with exhaustive (``FindMisses``) and sampled
(``EstimateMisses``) solvers, and a trace-driven LRU cache simulator used as
the validation baseline.

Quickstart::

    from repro import CacheConfig, ProgramBuilder, analyze, run_simulation

    pb = ProgramBuilder("DEMO")
    a = pb.array("A", (256, 256))
    with pb.subroutine("MAIN"):
        with pb.do("J", 1, 256) as j:
            with pb.do("I", 1, 256) as i:
                pb.assign(a[i, j])

    cache = CacheConfig.kb(32, 32, assoc=2)
    report = analyze(pb.build(), cache)           # analytical (sampled)
    ground = run_simulation(pb.build(), cache)    # simulator
    print(report.miss_ratio_percent, ground.miss_ratio_percent)
"""

from repro import obs
from repro.analysis import PreparedProgram, analyze, prepare, run_simulation
from repro.cme import (
    MissReport,
    Outcome,
    RefResult,
    compare_reports,
    estimate_misses,
    find_misses,
    numpy_available,
    resolve_backend,
)
from repro.errors import (
    FrontendError,
    InvariantError,
    MissingDependencyError,
    NonAffineError,
    NonAnalysableCallError,
    NonAnalysableError,
    ReproError,
)
from repro.inline import CallStats, classify_program, inline_program
from repro.ir import (
    Array,
    ArrayView,
    Program,
    ProgramBuilder,
    Scalar,
    ProgramStats,
    print_program,
    program_stats,
)
from repro.layout import CacheConfig, MemoryLayout, layout_for_refs
from repro.memo import Memoizer
from repro.normalize import NormalizedProgram, normalize
from repro.parallel import ParallelEngine, solve_parallel
from repro.polyhedra import Affine, Var
from repro.reuse import ReuseOptions, ReuseTable, build_reuse_table
from repro.sim import SimReport, simulate
from repro.stats import sample_size

__version__ = "1.0.0"

__all__ = [
    "obs",
    "PreparedProgram",
    "analyze",
    "prepare",
    "run_simulation",
    "MissReport",
    "Outcome",
    "RefResult",
    "compare_reports",
    "estimate_misses",
    "find_misses",
    "numpy_available",
    "resolve_backend",
    "FrontendError",
    "InvariantError",
    "MissingDependencyError",
    "NonAffineError",
    "NonAnalysableCallError",
    "NonAnalysableError",
    "ReproError",
    "CallStats",
    "classify_program",
    "inline_program",
    "Array",
    "ArrayView",
    "Program",
    "ProgramBuilder",
    "Scalar",
    "ProgramStats",
    "print_program",
    "program_stats",
    "CacheConfig",
    "MemoryLayout",
    "layout_for_refs",
    "Memoizer",
    "NormalizedProgram",
    "normalize",
    "ParallelEngine",
    "solve_parallel",
    "Affine",
    "Var",
    "ReuseOptions",
    "ReuseTable",
    "build_reuse_table",
    "SimReport",
    "simulate",
    "sample_size",
    "__version__",
]
