"""AST for the mini-FORTRAN frontend (syntax only; lowering builds the IR)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# -- expressions -----------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """An integer or real literal (reals only appear as data, never in
    subscripts/bounds of analysable programs)."""

    text: str

    @property
    def is_int(self) -> bool:
        return self.text.isdigit() or (
            self.text.startswith("-") and self.text[1:].isdigit()
        )

    def int_value(self) -> int:
        return int(self.text)


@dataclass(frozen=True)
class Ident:
    """A bare identifier: scalar, parameter or array name."""

    name: str


@dataclass(frozen=True)
class Apply:
    """``NAME(args…)``: an array element or an intrinsic call."""

    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class BinOp:
    """A binary operation (arithmetic, relational or logical)."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnOp:
    """Unary minus / plus / .NOT."""

    op: str
    operand: "Expr"


Expr = Union[Num, Ident, Apply, BinOp, UnOp]


# -- statements --------------------------------------------------------------------


@dataclass
class Assign:
    """``lhs = rhs``; lhs is an Ident (scalar) or Apply (array element)."""

    lhs: Expr
    rhs: Expr
    line: int


@dataclass
class DoLoop:
    """``DO [label] var = lo, hi [, step]``."""

    var: str
    lower: Expr
    upper: Expr
    step: Optional[Expr]
    body: list["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class IfBlock:
    """``IF (cond) THEN … ENDIF`` or the one-line form."""

    cond: Expr
    body: list["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class CallStmt:
    """``CALL name(args…)``."""

    name: str
    args: list[Expr] = field(default_factory=list)
    line: int = 0


Stmt = Union[Assign, DoLoop, IfBlock, CallStmt]


# -- declarations & units -----------------------------------------------------------


@dataclass
class ArrayDecl:
    """``DIMENSION name(d1, …, dk)`` (``*`` allowed last)."""

    name: str
    dims: list[Optional[Expr]]  # None = assumed size '*'


@dataclass
class Unit:
    """One program unit: the PROGRAM or a SUBROUTINE."""

    kind: str  # "PROGRAM" | "SUBROUTINE"
    name: str
    formals: list[str] = field(default_factory=list)
    array_decls: dict[str, ArrayDecl] = field(default_factory=dict)
    parameters: dict[str, int] = field(default_factory=dict)
    body: list[Stmt] = field(default_factory=list)


@dataclass
class SourceFile:
    """All units of one source file (first PROGRAM unit is the entry)."""

    units: list[Unit] = field(default_factory=list)

    def unit(self, name: str) -> Unit:
        for u in self.units:
            if u.name == name:
                return u
        raise KeyError(name)
