"""Recursive-descent parser for the mini-FORTRAN subset.

Covers the constructs the paper's program model admits: PROGRAM/SUBROUTINE
units, ``REAL[*8]``/``INTEGER``/``DIMENSION``/``PARAMETER`` declarations,
``DO`` loops (block ``ENDDO`` form and labelled ``DO 400 … 400 CONTINUE``
form, including *shared* labels as in the MGRID kernel of Fig. 8), block
and one-line ``IF``, assignments and ``CALL``.  I/O statements are skipped
(the paper excludes system-call memory traffic from its analysis).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.frontend.ast_nodes import (
    Apply,
    ArrayDecl,
    Assign,
    BinOp,
    CallStmt,
    DoLoop,
    Expr,
    Ident,
    IfBlock,
    Num,
    SourceFile,
    Stmt,
    UnOp,
    Unit,
)
from repro.frontend.lexer import EOF, INT, LABEL, NAME, NEWLINE, OP, REAL, Token, tokenize

_SKIPPED = {"WRITE", "READ", "PRINT", "FORMAT", "GOTO", "DATA", "IMPLICIT", "SAVE"}

_REL_OPS = {".EQ.", ".NE.", ".LT.", ".LE.", ".GT.", ".GE."}


class Parser:
    """Token-stream parser producing a :class:`SourceFile`."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- cursor helpers ---------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.advance()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want}, found {tok.value or tok.kind}", tok.line)
        return tok

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def eat_newlines(self) -> None:
        while self.at(NEWLINE):
            self.advance()

    def skip_line(self) -> None:
        while not self.at(NEWLINE) and not self.at(EOF):
            self.advance()
        if self.at(NEWLINE):
            self.advance()

    # -- units ---------------------------------------------------------------------

    def parse_source(self) -> SourceFile:
        """Parse the whole file (one PROGRAM and any SUBROUTINEs)."""
        sf = SourceFile()
        self.eat_newlines()
        while not self.at(EOF):
            sf.units.append(self.parse_unit())
            self.eat_newlines()
        if not sf.units:
            raise ParseError("empty source", 1)
        return sf

    def parse_unit(self) -> Unit:
        tok = self.expect(NAME)
        if tok.value == "PROGRAM":
            name = self.expect(NAME).value
            unit = Unit("PROGRAM", name)
        elif tok.value == "SUBROUTINE":
            name = self.expect(NAME).value
            unit = Unit("SUBROUTINE", name)
            if self.at(OP, "("):
                self.advance()
                while not self.at(OP, ")"):
                    unit.formals.append(self.expect(NAME).value)
                    if self.at(OP, ","):
                        self.advance()
                self.expect(OP, ")")
        else:
            raise ParseError(
                f"expected PROGRAM or SUBROUTINE, found {tok.value}", tok.line
            )
        self.expect(NEWLINE)
        self.parse_declarations(unit)
        unit.body = self.parse_body(unit, terminators={"END"})
        return unit

    # -- declarations -----------------------------------------------------------------

    def parse_declarations(self, unit: Unit) -> None:
        while True:
            self.eat_newlines()
            tok = self.peek()
            if tok.kind != NAME:
                return
            word = tok.value
            if word in ("REAL", "INTEGER", "DOUBLE"):
                self.advance()
                if word == "DOUBLE":  # DOUBLE PRECISION
                    self.expect(NAME, "PRECISION")
                if self.at(OP, "*"):
                    self.advance()
                    self.expect(INT)  # REAL*8
                self._declare_list(unit)
            elif word == "DIMENSION":
                self.advance()
                self._declare_list(unit, require_dims=True)
            elif word == "PARAMETER":
                self.advance()
                self.expect(OP, "(")
                while not self.at(OP, ")"):
                    pname = self.expect(NAME).value
                    self.expect(OP, "=")
                    value = self.parse_expr()
                    unit.parameters[pname] = _const_int(value, unit, tok.line)
                    if self.at(OP, ","):
                        self.advance()
                self.expect(OP, ")")
                self.expect(NEWLINE)
            elif word == "COMMON":
                self.skip_line()  # names must still be DIMENSIONed to be arrays
            elif word in ("IMPLICIT", "SAVE", "DATA", "EXTERNAL", "INTRINSIC"):
                self.skip_line()
            else:
                return

    def _declare_list(self, unit: Unit, require_dims: bool = False) -> None:
        while True:
            name = self.expect(NAME).value
            if self.at(OP, "("):
                self.advance()
                dims: list[Optional[Expr]] = []
                while not self.at(OP, ")"):
                    if self.at(OP, "*"):
                        self.advance()
                        dims.append(None)
                    else:
                        dims.append(self.parse_expr())
                    if self.at(OP, ","):
                        self.advance()
                self.expect(OP, ")")
                unit.array_decls[name] = ArrayDecl(name, dims)
            elif require_dims:
                raise ParseError(
                    f"DIMENSION {name} lacks dimensions", self.peek().line
                )
            if self.at(OP, ","):
                self.advance()
                continue
            break
        self.expect(NEWLINE)

    # -- statement bodies ----------------------------------------------------------------

    def parse_body(self, unit: Unit, terminators: set[str]) -> list[Stmt]:
        """Parse statements until one of ``terminators`` (consumed)."""
        body: list[Stmt] = []
        # stack of (DoLoop, end_label or None); loops with labels close when
        # their labelled terminal statement is reached (MGRID shares labels).
        loop_stack: list[tuple[DoLoop, Optional[str]]] = []

        def current_body() -> list[Stmt]:
            return loop_stack[-1][0].body if loop_stack else body

        while True:
            self.eat_newlines()
            tok = self.peek()
            if tok.kind == EOF:
                raise ParseError("unexpected end of file", tok.line)
            label: Optional[str] = None
            if tok.kind == LABEL:
                label = self.advance().value
                tok = self.peek()
            word = tok.value if tok.kind == NAME else ""
            if word in terminators and not loop_stack:
                self.advance()
                self.skip_line()
                return body
            if word == "ENDDO" or (word == "END" and self.peek(1).value == "DO"):
                if not loop_stack:
                    raise ParseError("ENDDO without DO", tok.line)
                self.advance()
                if word == "END":
                    self.advance()
                self.skip_line()
                loop, end_label = loop_stack.pop()
                if end_label is not None:
                    raise ParseError(
                        f"loop expects label {end_label}, found ENDDO", tok.line
                    )
                (loop_stack[-1][0].body if loop_stack else body).append(loop)
                continue
            if word == "DO" and self.peek(1).kind in (LABEL, INT, NAME):
                self.advance()
                end_label = None
                if self.peek().kind in (LABEL, INT):
                    end_label = self.advance().value
                var = self.expect(NAME).value
                self.expect(OP, "=")
                lower = self.parse_expr()
                self.expect(OP, ",")
                upper = self.parse_expr()
                step = None
                if self.at(OP, ","):
                    self.advance()
                    step = self.parse_expr()
                self.expect(NEWLINE)
                loop_stack.append(
                    (DoLoop(var, lower, upper, step, [], tok.line), end_label)
                )
                continue
            stmt = self.parse_simple_statement(tok, unit)
            if stmt is not None:
                current_body().append(stmt)
            # A labelled statement terminates every loop waiting on it.
            if label is not None:
                while loop_stack and loop_stack[-1][1] == label:
                    loop, _ = loop_stack.pop()
                    (loop_stack[-1][0].body if loop_stack else body).append(loop)

    def parse_simple_statement(self, tok: Token, unit: Unit) -> Optional[Stmt]:
        word = tok.value if tok.kind == NAME else ""
        if word == "CONTINUE":
            self.advance()
            self.skip_line()
            return None
        if word in ("RETURN", "STOP"):
            self.advance()
            self.skip_line()
            return None
        if word in _SKIPPED:
            self.skip_line()
            return None
        if word == "CALL":
            self.advance()
            name = self.expect(NAME).value
            args: list[Expr] = []
            if self.at(OP, "("):
                self.advance()
                while not self.at(OP, ")"):
                    args.append(self.parse_expr())
                    if self.at(OP, ","):
                        self.advance()
                self.expect(OP, ")")
            self.expect(NEWLINE)
            return CallStmt(name, args, tok.line)
        if word == "IF":
            self.advance()
            self.expect(OP, "(")
            cond = self.parse_expr(stop_paren=True)
            self.expect(OP, ")")
            if self.at(NAME, "THEN"):
                self.advance()
                self.expect(NEWLINE)
                block = IfBlock(cond, [], tok.line)
                block.body = self.parse_body(unit, terminators={"ENDIF"})
                return block
            inner = self.parse_simple_statement(self.peek(), unit)
            block = IfBlock(cond, [inner] if inner is not None else [], tok.line)
            return block
        if word == "ELSE":
            raise ParseError("ELSE blocks are not supported by the model", tok.line)
        # assignment
        lhs = self.parse_primary()
        self.expect(OP, "=")
        rhs = self.parse_expr()
        self.expect(NEWLINE)
        return Assign(lhs, rhs, tok.line)

    # -- expressions -------------------------------------------------------------------------

    def parse_expr(self, stop_paren: bool = False) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.at(OP, ".OR."):
            self.advance()
            left = BinOp(".OR.", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.at(OP, ".AND."):
            self.advance()
            left = BinOp(".AND.", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self.at(OP, ".NOT."):
            self.advance()
            return UnOp(".NOT.", self._parse_not())
        return self._parse_rel()

    def _parse_rel(self) -> Expr:
        left = self._parse_add()
        tok = self.peek()
        if tok.kind == OP and tok.value in _REL_OPS:
            self.advance()
            return BinOp(tok.value, left, self._parse_add())
        return left

    def _parse_add(self) -> Expr:
        left = self._parse_mul()
        while self.peek().kind == OP and self.peek().value in ("+", "-"):
            op = self.advance().value
            left = BinOp(op, left, self._parse_mul())
        return left

    def _parse_mul(self) -> Expr:
        left = self._parse_unary()
        while self.peek().kind == OP and self.peek().value in ("*", "/"):
            op = self.advance().value
            left = BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self.peek().kind == OP and self.peek().value in ("+", "-"):
            op = self.advance().value
            return UnOp(op, self._parse_unary())
        return self._parse_power()

    def _parse_power(self) -> Expr:
        left = self.parse_primary()
        if self.at(OP, "**"):
            self.advance()
            return BinOp("**", left, self._parse_unary())
        return left

    def parse_primary(self) -> Expr:
        tok = self.advance()
        if tok.kind == INT:
            return Num(tok.value)
        if tok.kind == REAL:
            return Num(tok.value)
        if tok.kind == OP and tok.value == "(":
            inner = self.parse_expr()
            self.expect(OP, ")")
            return inner
        if tok.kind == NAME:
            if tok.value in (".TRUE.", ".FALSE."):
                return Ident(tok.value)
            if self.at(OP, "("):
                self.advance()
                args: list[Expr] = []
                while not self.at(OP, ")"):
                    args.append(self.parse_expr())
                    if self.at(OP, ","):
                        self.advance()
                self.expect(OP, ")")
                return Apply(tok.value, tuple(args))
            return Ident(tok.value)
        if tok.kind == OP and tok.value in (".TRUE.", ".FALSE."):
            return Ident(tok.value)
        raise ParseError(f"unexpected token {tok.value or tok.kind}", tok.line)


def _const_int(expr: Expr, unit: Unit, line: int) -> int:
    """Fold a constant integer expression using the unit's PARAMETERs."""
    if isinstance(expr, Num):
        if not expr.is_int:
            raise ParseError(f"expected integer constant, got {expr.text}", line)
        return expr.int_value()
    if isinstance(expr, Ident):
        if expr.name in unit.parameters:
            return unit.parameters[expr.name]
        raise ParseError(f"unknown parameter {expr.name}", line)
    if isinstance(expr, UnOp) and expr.op == "-":
        return -_const_int(expr.operand, unit, line)
    if isinstance(expr, BinOp):
        left = _const_int(expr.left, unit, line)
        right = _const_int(expr.right, unit, line)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left // right
    raise ParseError("expression is not a compile-time integer constant", line)


def parse_source(source: str) -> SourceFile:
    """Parse mini-FORTRAN text into a :class:`SourceFile`."""
    return Parser(source).parse_source()
