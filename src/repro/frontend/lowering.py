"""Lowering the mini-FORTRAN AST to the analysable IR.

Enforces the paper's program model while translating: loop bounds, IF
conditions and subscripts must lower to affine expressions of the loop
indices with compile-time-known constants; anything else raises
:class:`~repro.errors.NonAffineError` (the data-dependent constructs the
model excludes).

Reads are collected from right-hand sides in left-to-right source order and
the write is appended last, matching the access order the analysis and the
simulator share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NonAffineError, ParseError
from repro.polyhedra.affine import Affine, Var
from repro.polyhedra.constraints import Constraint, ConstraintSet
from repro.ir.arrays import Array
from repro.ir.nodes import (
    Actual,
    ActualArray,
    ActualElement,
    ActualExpr,
    ActualScalar,
    Call,
    If,
    Loop,
    Node,
    Program,
    Ref,
    Statement,
    Subroutine,
)
from repro.ir.arrays import Scalar
from repro.frontend.ast_nodes import (
    Apply,
    Assign,
    BinOp,
    CallStmt,
    DoLoop,
    Expr,
    Ident,
    IfBlock,
    Num,
    SourceFile,
    Stmt,
    UnOp,
    Unit,
)
from repro.frontend.parser import parse_source


@dataclass
class _Scope:
    """Per-unit lowering context."""

    arrays: dict[str, Array]
    params: dict[str, int]
    scalars: dict[str, Scalar] = field(default_factory=dict)
    loop_vars: set[str] = field(default_factory=set)
    stmt_counter: int = 0

    def scalar(self, name: str) -> Scalar:
        if name not in self.scalars:
            self.scalars[name] = Scalar(name)
        return self.scalars[name]

    def next_label(self) -> str:
        self.stmt_counter += 1
        return f"L{self.stmt_counter}"


def _to_affine(expr: Expr, scope: _Scope) -> Affine:
    """Lower an expression to an affine form over the loop indices."""
    if isinstance(expr, Num):
        if not expr.is_int:
            raise NonAffineError(f"real literal {expr.text} in an index expression")
        return Affine.const(expr.int_value())
    if isinstance(expr, Ident):
        if expr.name in scope.loop_vars:
            return Var(expr.name)
        if expr.name in scope.params:
            return Affine.const(scope.params[expr.name])
        raise NonAffineError(
            f"{expr.name} is not a loop index or PARAMETER: index expressions "
            "must be compile-time analysable"
        )
    if isinstance(expr, UnOp):
        if expr.op == "-":
            return -_to_affine(expr.operand, scope)
        if expr.op == "+":
            return _to_affine(expr.operand, scope)
        raise NonAffineError(f"operator {expr.op} in an index expression")
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return _to_affine(expr.left, scope) + _to_affine(expr.right, scope)
        if expr.op == "-":
            return _to_affine(expr.left, scope) - _to_affine(expr.right, scope)
        if expr.op == "*":
            return _to_affine(expr.left, scope) * _to_affine(expr.right, scope)
        if expr.op == "/":
            return _to_affine(expr.left, scope) // _to_affine(expr.right, scope)
        raise NonAffineError(f"operator {expr.op} in an index expression")
    raise NonAffineError(f"{expr!r} is not affine")


def _collect_reads(expr: Expr, scope: _Scope, out: list[Ref]) -> None:
    """Array reads of an expression, in left-to-right source order."""
    if isinstance(expr, Apply):
        if expr.name in scope.arrays:
            array = scope.arrays[expr.name]
            subs = [_to_affine(a, scope) for a in expr.args]
            out.append(Ref(array, subs, False))
        else:
            # intrinsic function: only its arguments touch memory
            for arg in expr.args:
                _collect_reads(arg, scope, out)
    elif isinstance(expr, BinOp):
        _collect_reads(expr.left, scope, out)
        _collect_reads(expr.right, scope, out)
    elif isinstance(expr, UnOp):
        _collect_reads(expr.operand, scope, out)
    # Num / Ident (scalars are register-allocated): no memory access


def _to_guard(expr: Expr, scope: _Scope) -> ConstraintSet:
    """Lower an IF condition to a conjunction of affine constraints."""
    if isinstance(expr, BinOp):
        if expr.op == ".AND.":
            return _to_guard(expr.left, scope).conjoin(_to_guard(expr.right, scope))
        rel = {
            ".EQ.": lambda l, r: l.eq(r),
            ".NE.": None,
            ".LT.": lambda l, r: l.lt(r),
            ".LE.": lambda l, r: l.le(r),
            ".GT.": lambda l, r: l.gt(r),
            ".GE.": lambda l, r: l.ge(r),
        }.get(expr.op, "missing")
        if rel is None:
            raise NonAffineError(".NE. guards describe a non-convex region")
        if rel != "missing":
            left = _to_affine(expr.left, scope)
            right = _to_affine(expr.right, scope)
            return ConstraintSet([rel(left, right)])
    if isinstance(expr, Ident) and expr.name == ".TRUE.":
        return ConstraintSet.true()
    raise NonAffineError(f"condition {expr!r} is not analysable")


def _lower_call_arg(expr: Expr, scope: _Scope) -> Actual:
    if isinstance(expr, Ident):
        if expr.name in scope.arrays:
            return ActualArray(scope.arrays[expr.name])
        if expr.name in scope.params:
            return ActualExpr(expr.name)
        return ActualScalar(scope.scalar(expr.name))
    if isinstance(expr, Apply) and expr.name in scope.arrays:
        try:
            subs = [_to_affine(a, scope) for a in expr.args]
        except NonAffineError:
            return ActualExpr(repr(expr))
        return ActualElement(scope.arrays[expr.name], subs)
    return ActualExpr(repr(expr))


def _lower_stmt(stmt: Stmt, scope: _Scope) -> Optional[Node]:
    if isinstance(stmt, Assign):
        reads: list[Ref] = []
        _collect_reads(stmt.rhs, scope, reads)
        if isinstance(stmt.lhs, Apply) and stmt.lhs.name in scope.arrays:
            array = scope.arrays[stmt.lhs.name]
            subs = [_to_affine(a, scope) for a in stmt.lhs.args]
            write = Ref(array, subs, True)
            return Statement(reads + [write], scope.next_label())
        # scalar assignment: register write, only the reads touch memory
        if reads:
            return Statement(reads, scope.next_label())
        return None
    if isinstance(stmt, DoLoop):
        lower = _to_affine(stmt.lower, scope)
        upper = _to_affine(stmt.upper, scope)
        step = 1
        if stmt.step is not None:
            step_expr = _to_affine(stmt.step, scope)
            step = step_expr.constant_value()
        scope.loop_vars.add(stmt.var)
        body = _lower_body(stmt.body, scope)
        scope.loop_vars.discard(stmt.var)
        return Loop(stmt.var, lower, upper, body, step)
    if isinstance(stmt, IfBlock):
        guard = _to_guard(stmt.cond, scope)
        return If(guard, _lower_body(stmt.body, scope))
    if isinstance(stmt, CallStmt):
        return Call(stmt.name, [_lower_call_arg(a, scope) for a in stmt.args])
    raise ParseError(f"cannot lower {stmt!r}", getattr(stmt, "line", 0))


def _lower_body(stmts: list[Stmt], scope: _Scope) -> list[Node]:
    out: list[Node] = []
    for s in stmts:
        node = _lower_stmt(s, scope)
        if node is not None:
            out.append(node)
    return out


def _unit_params(unit: Unit, globals_: dict[str, int]) -> dict[str, int]:
    merged = dict(globals_)
    merged.update(unit.parameters)
    return merged


def _fold_dims(unit: Unit, params: dict[str, int]) -> dict[str, tuple]:
    from repro.frontend.parser import _const_int

    dims: dict[str, tuple] = {}
    probe = Unit(unit.kind, unit.name, parameters=params)
    for name, decl in unit.array_decls.items():
        folded = []
        for d in decl.dims:
            folded.append(None if d is None else _const_int(d, probe, 0))
        dims[name] = tuple(folded)
    return dims


def lower_source(sf: SourceFile) -> Program:
    """Lower a parsed source file to an IR :class:`~repro.ir.Program`."""
    program_units = [u for u in sf.units if u.kind == "PROGRAM"]
    if not program_units:
        raise ParseError("no PROGRAM unit found", 1)
    main_unit = program_units[0]
    program = Program(main_unit.name, entry=main_unit.name)
    global_params = dict(main_unit.parameters)

    # Pass 1: declare everything so calls can be lowered in any order.
    scopes: dict[str, _Scope] = {}
    for unit in sf.units:
        params = _unit_params(unit, global_params)
        dims = _fold_dims(unit, params)
        sub = Subroutine(unit.name)
        arrays: dict[str, Array] = {}
        if unit.kind == "PROGRAM":
            for name, d in dims.items():
                arrays[name] = program.add_global_array(name, d)
        else:
            for formal_name in unit.formals:
                if formal_name in dims:
                    arrays[formal_name] = sub.add_array_formal(
                        formal_name, dims[formal_name]
                    )
                else:
                    sub.add_scalar_formal(formal_name)
            for name, d in dims.items():
                if name not in unit.formals:
                    arrays[name] = sub.add_local_array(name, d)
            # globals of the main unit are visible (COMMON-style)
            for g in program.global_arrays:
                arrays.setdefault(g.name, g)
        program.add_subroutine(sub)
        scopes[unit.name] = _Scope(arrays=arrays, params=params)

    # Give subroutines access to globals declared in the PROGRAM unit even
    # when the PROGRAM unit is parsed after them.
    for unit in sf.units:
        if unit.kind != "PROGRAM":
            for g in program.global_arrays:
                scopes[unit.name].arrays.setdefault(g.name, g)

    # Pass 2: lower bodies.
    for unit in sf.units:
        scope = scopes[unit.name]
        program.subroutine(unit.name).body = _lower_body(unit.body, scope)
    return program


def parse_program(source: str) -> Program:
    """Parse mini-FORTRAN text directly into an IR program."""
    return lower_source(parse_source(source))
