"""Lexer for the FORTRAN-77 subset of the paper's program model.

Accepts both fixed-form conventions (comment letter in column 1,
continuation marker in column 6) and lightly free-form code (``!``
comments, ``&`` continuations), since the bundled kernels are transcribed
from the paper's figures rather than from original punched-card sources.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexerError

# Token kinds
NAME = "NAME"
INT = "INT"
REAL = "REAL"
OP = "OP"
NEWLINE = "NEWLINE"
EOF = "EOF"
LABEL = "LABEL"
STRING = "STRING"

#: Dotted logical/relational operators, longest first.
_DOT_OPS = [
    ".FALSE.",
    ".TRUE.",
    ".AND.",
    ".NOT.",
    ".EQ.",
    ".NE.",
    ".GE.",
    ".GT.",
    ".LE.",
    ".LT.",
    ".OR.",
]

_TWO_CHAR = ["**"]
_ONE_CHAR = "+-*/(),=:<>"


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str
    value: str
    line: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.value})@{self.line}"


def _strip_comment_lines(source: str) -> list[tuple[int, str]]:
    """Physical lines minus comments, keeping original line numbers."""
    lines: list[tuple[int, str]] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        if not raw.strip():
            continue
        first = raw.lstrip()[:1]
        if raw[:1] in ("C", "c", "*") and not raw[:1].isspace():
            # fixed-form comment: marker in column 1 only
            if raw is raw.lstrip():
                continue
        if first == "!":
            continue
        code = raw.split("!", 1)[0]
        if code.strip():
            lines.append((lineno, code))
    return lines


def _join_continuations(lines: list[tuple[int, str]]) -> list[tuple[int, str]]:
    """Merge fixed-form (column 6) and free-form (&) continuations."""
    logical: list[tuple[int, str]] = []
    for lineno, code in lines:
        is_fixed_cont = (
            len(code) > 5
            and code[:5].strip() == ""
            and code[5] not in (" ", "0")
        )
        if logical and is_fixed_cont:
            prev_no, prev = logical[-1]
            logical[-1] = (prev_no, prev + " " + code[6:])
            continue
        if logical and logical[-1][1].rstrip().endswith("&"):
            prev_no, prev = logical[-1]
            logical[-1] = (prev_no, prev.rstrip()[:-1] + " " + code.lstrip())
            continue
        logical.append((lineno, code))
    return logical


def tokenize(source: str) -> list[Token]:
    """Tokenise a mini-FORTRAN source into a flat token list.

    Statement labels (a leading integer in a fixed-form line) become
    ``LABEL`` tokens; every logical line ends with a ``NEWLINE`` token and
    the stream ends with ``EOF``.
    """
    tokens: list[Token] = []
    for lineno, code in _join_continuations(_strip_comment_lines(source)):
        text = code.rstrip()
        i = 0
        n = len(text)
        at_line_start = True
        while i < n:
            ch = text[i]
            if ch in " \t":
                i += 1
                continue
            if at_line_start and ch.isdigit():
                # A statement label (e.g. "100 CONTINUE", "DO 400 ..." targets)
                j = i
                while j < n and text[j].isdigit():
                    j += 1
                if j < n and text[j] in " \t":
                    tokens.append(Token(LABEL, text[i:j], lineno))
                    i = j
                    at_line_start = False
                    continue
            at_line_start = False
            if ch in ("'", '"'):
                j = i + 1
                while j < n:
                    if text[j] == ch:
                        if j + 1 < n and text[j + 1] == ch:  # doubled quote
                            j += 2
                            continue
                        break
                    j += 1
                if j >= n:
                    raise LexerError("unterminated string literal", lineno, i)
                tokens.append(Token(STRING, text[i + 1 : j], lineno))
                i = j + 1
                continue
            if ch == ".":
                upper = text[i:].upper()
                for op in _DOT_OPS:
                    if upper.startswith(op):
                        tokens.append(Token(OP, op, lineno))
                        i += len(op)
                        break
                else:
                    # a real literal like .5D0
                    j = i + 1
                    while j < n and (text[j].isalnum() or text[j] in "+-."):
                        j += 1
                    tokens.append(Token(REAL, text[i:j], lineno))
                    i = j
                continue
            if ch.isdigit():
                j = i
                while j < n and text[j].isdigit():
                    j += 1
                if j < n and text[j] in ".DdEe" and not _looks_like_name(text, j):
                    k = j + 1
                    while k < n and (text[k].isalnum() or text[k] in "+-."):
                        k += 1
                    tokens.append(Token(REAL, text[i:k], lineno))
                    i = k
                else:
                    tokens.append(Token(INT, text[i:j], lineno))
                    i = j
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                tokens.append(Token(NAME, text[i:j].upper(), lineno))
                i = j
                continue
            two = text[i : i + 2]
            if two in _TWO_CHAR:
                tokens.append(Token(OP, two, lineno))
                i += 2
                continue
            if ch in _ONE_CHAR:
                tokens.append(Token(OP, ch, lineno))
                i += 1
                continue
            raise LexerError(f"unexpected character {ch!r}", lineno, i)
        tokens.append(Token(NEWLINE, "", lineno))
    tokens.append(Token(EOF, "", tokens[-1].line + 1 if tokens else 1))
    return tokens


def _looks_like_name(text: str, j: int) -> bool:
    """Disambiguate ``100D0`` (real) from ``100 DO`` style adjacency."""
    if text[j] in "Dd" and j + 1 < len(text) and text[j + 1].isalpha():
        return True
    return False
