"""Mini-FORTRAN frontend: lexer, parser and lowering to the IR.

Replaces the Polaris-IR front end of the paper's prototype (Fig. 7) for the
FORTRAN-77 subset the program model admits.  Typical use::

    from repro.frontend import parse_program
    program = parse_program(open("hydro.f").read())
"""

from repro.frontend.ast_nodes import SourceFile, Unit
from repro.frontend.lexer import Token, tokenize
from repro.frontend.lowering import lower_source, parse_program
from repro.frontend.parser import Parser, parse_source

__all__ = [
    "SourceFile",
    "Unit",
    "Token",
    "tokenize",
    "lower_source",
    "parse_program",
    "Parser",
    "parse_source",
]
