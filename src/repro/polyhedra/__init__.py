"""Minimal polyhedral machinery for analytical cache modelling.

The paper manipulates its miss equations "by polyhedral theory" using tools of
the era (the Omega calculator, PolyLib, Ehrhart polynomials).  This package
implements, from scratch, exactly the slice of that machinery the method
needs:

* :class:`~repro.polyhedra.affine.Affine` — integer affine expressions over
  named loop indices,
* :class:`~repro.polyhedra.constraints.Constraint` /
  :class:`~repro.polyhedra.constraints.ConstraintSet` — conjunctions of affine
  equalities and inequalities (the guards of references),
* :mod:`~repro.polyhedra.intsolve` — integer linear algebra (Hermite normal
  form, particular solutions, null-space lattice bases) used to solve the
  reuse equations ``M·x = m_p − m_c`` of Section 3.5,
* :class:`~repro.polyhedra.space.BoundedSpace` — per-dimension affine bounds
  plus guard constraints, with exact point counting, membership, lexicographic
  enumeration and uniform integer-point sampling (the "volume of a RIS"
  computation of Fig. 6).
"""

from repro.polyhedra.affine import Affine, Var
from repro.polyhedra.constraints import Constraint, ConstraintSet
from repro.polyhedra.intsolve import (
    hermite_normal_form,
    nullspace_basis,
    solve_integer,
)
from repro.polyhedra.space import BoundedSpace

__all__ = [
    "Affine",
    "Var",
    "Constraint",
    "ConstraintSet",
    "hermite_normal_form",
    "nullspace_basis",
    "solve_integer",
    "BoundedSpace",
]
