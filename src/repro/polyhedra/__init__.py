"""Minimal polyhedral machinery for analytical cache modelling.

The paper manipulates its miss equations "by polyhedral theory" using tools of
the era (the Omega calculator, PolyLib, Ehrhart polynomials).  This package
implements, from scratch, exactly the slice of that machinery the method
needs:

* :class:`~repro.polyhedra.affine.Affine` — integer affine expressions over
  named loop indices,
* :class:`~repro.polyhedra.constraints.Constraint` /
  :class:`~repro.polyhedra.constraints.ConstraintSet` — conjunctions of affine
  equalities and inequalities (the guards of references),
* :mod:`~repro.polyhedra.intsolve` — integer linear algebra (Hermite normal
  form, particular solutions, null-space lattice bases) used to solve the
  reuse equations ``M·x = m_p − m_c`` of Section 3.5,
* :class:`~repro.polyhedra.space.BoundedSpace` — per-dimension affine bounds
  plus guard constraints, with exact point counting, membership, lexicographic
  enumeration and uniform integer-point sampling (the "volume of a RIS"
  computation of Fig. 6),
* :class:`~repro.polyhedra.regions.RegionSpace` — bounded spaces extended
  with residue-class constraints and periodic counting, the cells of the
  regional CME solver (loop-bound-independent exact counts).
"""

from repro.polyhedra.affine import Affine, Var
from repro.polyhedra.constraints import Constraint, ConstraintSet
from repro.polyhedra.intsolve import (
    count_range_residue,
    first_range_residue,
    hermite_normal_form,
    nullspace_basis,
    residue_period,
    solve_integer,
)
from repro.polyhedra.regions import (
    RegionSpace,
    ResidueConstraint,
    negate_constraint,
    region_of_space,
)
from repro.polyhedra.space import (
    BoundedSpace,
    cached_count,
    clear_count_cache,
    count_cache_size,
)

__all__ = [
    "Affine",
    "Var",
    "Constraint",
    "ConstraintSet",
    "count_range_residue",
    "first_range_residue",
    "hermite_normal_form",
    "nullspace_basis",
    "residue_period",
    "solve_integer",
    "BoundedSpace",
    "RegionSpace",
    "ResidueConstraint",
    "negate_constraint",
    "region_of_space",
    "cached_count",
    "clear_count_cache",
    "count_cache_size",
]
