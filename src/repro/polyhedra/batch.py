"""Vectorized counterparts of the :class:`~repro.polyhedra.space.BoundedSpace`
point operations (enumeration and membership) used by the NumPy
classification backend (:mod:`repro.cme.batch`).

Everything here is exact integer arithmetic on ``int64`` arrays: the batch
enumeration yields precisely the points of
:meth:`~repro.polyhedra.space.BoundedSpace.enumerate_points` in the same
lexicographic order, and the batch membership test agrees point-for-point
with :meth:`~repro.polyhedra.space.BoundedSpace.contains` — properties the
bit-identity contract of the batch backend rests on (and the tests assert).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MissingDependencyError
from repro.polyhedra.affine import Affine
from repro.polyhedra.constraints import EQ, Constraint
from repro.polyhedra.space import BoundedSpace

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised via import gate test
    raise MissingDependencyError(
        "repro.polyhedra.batch requires NumPy; install it with "
        "`pip install numpy` (or `pip install repro`), or select the "
        "pure-Python solver with backend='scalar' / --backend scalar"
    ) from exc


def affine_row(
    expr: Affine, dim_index: dict[str, int], width: int
) -> tuple["np.ndarray", int]:
    """``expr`` as a dense coefficient row over ``width`` ordered dimensions."""
    row = np.zeros(width, dtype=np.int64)
    for name, coeff in expr.coeffs.items():
        row[dim_index[name]] = coeff
    return row, int(expr.constant)


def eval_affine(
    expr: Affine, points: "np.ndarray", dim_index: dict[str, int]
) -> "np.ndarray":
    """Evaluate an affine expression at every row of ``points``."""
    row, const = affine_row(expr, dim_index, points.shape[1])
    return points @ row + const


def _guard_mask(
    constraints: Sequence[Constraint],
    points: "np.ndarray",
    dim_index: dict[str, int],
) -> "np.ndarray":
    """Conjunction of affine guard constraints over a batch of points."""
    mask = np.ones(len(points), dtype=bool)
    for c in constraints:
        value = eval_affine(c.expr, points, dim_index)
        mask &= (value == 0) if c.kind == EQ else (value >= 0)
    return mask


def enumerate_points_array(space: BoundedSpace) -> "np.ndarray":
    """Every integer point of ``space`` as an ``(N, n)`` int64 array.

    Rows appear in lexicographic order — exactly the order (and set) of
    :meth:`BoundedSpace.enumerate_points`.  The expansion is dimension by
    dimension: evaluate the affine bounds over the current prefixes, repeat
    each prefix once per value in its range, then drop the rows that
    violate the guard constraints anchored at this depth.
    """
    n = space.ndim
    if space.is_trivially_empty():
        return np.empty((0, n), dtype=np.int64)
    dim_index = {name: k for k, name in enumerate(space.dims)}
    points = np.empty((1, 0), dtype=np.int64)
    for d in range(n):
        lo = eval_affine(space.bounds[d][0], points, dim_index)
        hi = eval_affine(space.bounds[d][1], points, dim_index)
        counts = np.maximum(hi - lo + 1, 0)
        total = int(counts.sum())
        if total == 0:
            return np.empty((0, n), dtype=np.int64)
        rows = np.repeat(np.arange(len(points)), counts)
        ends = np.cumsum(counts)
        starts = np.repeat(ends - counts, counts)
        values = np.arange(total, dtype=np.int64) - starts + lo[rows]
        points = np.column_stack([points[rows], values])
        guards = space.constraints_at(d)
        if guards:
            points = points[_guard_mask(guards, points, dim_index)]
            if len(points) == 0:
                return np.empty((0, n), dtype=np.int64)
    return points


def contains_batch(space: BoundedSpace, points: "np.ndarray") -> "np.ndarray":
    """Boolean membership mask for a batch of candidate points.

    Agrees entry-for-entry with :meth:`BoundedSpace.contains`: a point is a
    member iff it satisfies every per-dimension bound pair and every guard
    constraint.  (Bounds of dimension ``k`` only reference outer dimensions,
    so evaluating them on the full point rows is sound.)
    """
    points = np.asarray(points, dtype=np.int64)
    if points.ndim != 2 or points.shape[1] != space.ndim:
        raise ValueError(
            f"expected an (N, {space.ndim}) point array, got {points.shape}"
        )
    if space.is_trivially_empty():
        return np.zeros(len(points), dtype=bool)
    dim_index = {name: k for k, name in enumerate(space.dims)}
    mask = np.ones(len(points), dtype=bool)
    for d in range(space.ndim):
        lo = eval_affine(space.bounds[d][0], points, dim_index)
        hi = eval_affine(space.bounds[d][1], points, dim_index)
        mask &= (points[:, d] >= lo) & (points[:, d] <= hi)
        for c in space.constraints_at(d):
            value = eval_affine(c.expr, points, dim_index)
            mask &= (value == 0) if c.kind == EQ else (value >= 0)
    return mask
