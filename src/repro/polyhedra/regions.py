"""Region cells: bounded spaces extended with residue-class constraints.

The regional CME solver (:mod:`repro.cme.regions`) decomposes a reference
iteration space into disjoint *cells*: the per-dimension bounds of the RIS
conjoined with translated producer-RIS constraints (general affine
equalities/inequalities over all dimensions) and with *residue constraints*
— the memory-line equality of the cold equations confines the consumer's
byte address modulo the line size to an interval.  A :class:`RegionSpace`
is one such cell, and its operations are engineered so that exact counting
costs a function of the cell's *structure*, never of the loop bounds:

* affine constraints are resolved by **bound tightening** — a constraint
  anchored at its deepest dimension reduces, once the outer dimensions are
  fixed, to ``c·v + k ⋈ 0`` and therefore to an interval adjustment, so no
  constraint ever forces per-value iteration;
* residue constraints are resolved by **periodic counting** — satisfaction
  of ``(c·v + k) mod m ∈ [a, b]`` is periodic in ``v`` with period
  ``m / gcd(c, m)``, so one period is scanned and each class is weighted by
  the closed-form :func:`~repro.polyhedra.intsolve.count_range_residue`;
* memo keys at each depth use, for outer variables that matter only through
  a residue constraint, the *partial sum modulo the modulus* instead of the
  raw value — so an outer loop of a million iterations collapses onto at
  most ``m`` distinct subproblems.

Counts are memoized per instance and shared across instances through the
canonical-signature cache of :mod:`repro.polyhedra.space`
(``polyhedra.count.cache_hits``).  Enumeration and representative search
exist for the solver's fallback and probing paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.polyhedra.affine import Affine
from repro.polyhedra.constraints import Constraint, ConstraintSet, EQ
from repro.polyhedra.intsolve import count_range_residue, residue_period
from repro.polyhedra.space import cached_count

#: Default cap on subtree-count probes during representative search.
REPRESENTATIVE_BUDGET = 4096


@dataclass(frozen=True)
class ResidueConstraint:
    """The constraint ``(expr mod modulus) ∈ [lo, hi]``.

    ``expr`` is canonicalised modulo ``modulus`` at construction (every
    coefficient and the constant reduced into ``[0, modulus)``), so two
    constraints describing the same residue condition share one signature
    and therefore one cached count.
    """

    expr: Affine
    modulus: int
    lo: int
    hi: int

    @staticmethod
    def make(
        expr: Affine, modulus: int, lo: int, hi: int
    ) -> "ResidueConstraint":
        """Build a canonical residue constraint (validates the interval)."""
        if modulus <= 0:
            raise ValueError(f"modulus must be positive, got {modulus}")
        if not (0 <= lo <= hi < modulus):
            raise ValueError(
                f"residue interval [{lo}, {hi}] not within [0, {modulus})"
            )
        reduced = Affine(
            {v: c % modulus for v, c in expr.coeffs.items()},
            expr.constant % modulus,
        )
        return ResidueConstraint(reduced, modulus, lo, hi)

    def satisfied(self, env: Mapping[str, int]) -> bool:
        """True if the residue condition holds at the point ``env``."""
        return self.lo <= self.expr.evaluate(env) % self.modulus <= self.hi

    def variables(self) -> frozenset[str]:
        """Variables with non-vanishing coefficients modulo the modulus."""
        return self.expr.variables()

    def __repr__(self) -> str:
        return f"({self.expr} mod {self.modulus} in [{self.lo}, {self.hi}])"


def _anchor(vars_: frozenset[str], dim_index: dict[str, int]) -> int:
    """The deepest dimension index a variable set mentions."""
    return max(dim_index[v] for v in vars_)


class RegionSpace:
    """An integer region: per-dimension bounds + affine + residue constraints.

    Parameters
    ----------
    dims:
        Ordered variable names ``(v1, …, vn)``.
    bounds:
        One affine ``(lower, upper)`` pair per dimension; the bounds of
        dimension ``k`` may reference only ``v1..v(k-1)`` (the RIS shape).
    constraints:
        General affine constraints over any of the dimensions (translated
        producer bounds, guards, negated cold conditions).
    residues:
        :class:`ResidueConstraint` conjuncts (memory-line conditions).
    """

    def __init__(
        self,
        dims: Sequence[str],
        bounds: Sequence[tuple[Affine, Affine]],
        constraints: Iterable[Constraint] = (),
        residues: Iterable[ResidueConstraint] = (),
    ):
        if len(dims) != len(bounds):
            raise ValueError("one (lower, upper) bound pair required per dimension")
        self.dims = tuple(dims)
        self.bounds = tuple(
            (Affine.coerce(lo), Affine.coerce(hi)) for lo, hi in bounds
        )
        self._n = len(self.dims)
        self._dim_index = {name: k for k, name in enumerate(self.dims)}
        known = set(self.dims)
        self._empty = False
        # Constraints: drop trivially-true, detect trivially-false, anchor
        # the rest at the deepest dimension they mention.
        kept_cons: list[Constraint] = []
        self._cons_at: list[list[Constraint]] = [[] for _ in range(self._n)]
        for c in constraints:
            if c.trivially_true():
                continue
            if c.trivially_false():
                self._empty = True
                continue
            extra = c.variables() - known
            if extra:
                raise ValueError(
                    f"constraint {c!r} references unknown variables {sorted(extra)}"
                )
            kept_cons.append(c)
            self._cons_at[_anchor(c.variables(), self._dim_index)].append(c)
        self.constraints = tuple(kept_cons)
        # Residues: constant ones resolve now, the rest anchor like guards.
        kept_res: list[ResidueConstraint] = []
        self._res_at: list[list[ResidueConstraint]] = [[] for _ in range(self._n)]
        for r in residues:
            vs = r.variables()
            if not vs:
                if not (r.lo <= r.expr.constant % r.modulus <= r.hi):
                    self._empty = True
                continue
            extra = vs - known
            if extra:
                raise ValueError(
                    f"residue {r!r} references unknown variables {sorted(extra)}"
                )
            kept_res.append(r)
            self._res_at[_anchor(vs, self._dim_index)].append(r)
        self.residues = tuple(kept_res)
        for k, (lo, hi) in enumerate(self.bounds):
            allowed = set(self.dims[:k])
            for expr in (lo, hi):
                extra = expr.variables() - allowed
                if extra:
                    raise ValueError(
                        f"bound {expr} of dimension {self.dims[k]} references "
                        f"non-outer variables {sorted(extra)}"
                    )
        # Relevance, per depth d:
        #  * raw vars — already-fixed variables whose *value* the subproblem
        #    at depth d depends on (bounds or affine constraints at >= d);
        #  * residue partials — residues anchored at >= d contribute their
        #    partial sum mod m to the memo key instead of raw values.
        self._raw_vars: list[tuple[str, ...]] = []
        self._res_from: list[tuple[ResidueConstraint, ...]] = []
        for d in range(self._n + 1):
            raw: set[str] = set()
            for e in range(d, self._n):
                for expr in self.bounds[e]:
                    raw |= expr.variables()
                for c in self._cons_at[e]:
                    raw |= c.variables()
            self._raw_vars.append(
                tuple(v for v in self.dims[:d] if v in raw)
            )
            suffix: list[ResidueConstraint] = []
            for e in range(d, self._n):
                suffix.extend(self._res_at[e])
            self._res_from.append(tuple(suffix))
        self._count_memo: dict[tuple, int] = {}

    # -- basic queries ---------------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self._n

    def is_trivially_empty(self) -> bool:
        """True if a constant constraint already rules out all points."""
        return self._empty

    def _base_constraints(self) -> tuple[Constraint, ...]:
        """The kept constraints, plus an explicit ``false`` when the space
        was emptied by a *constant* constraint or residue.

        Construction drops constant conjuncts after folding them into
        ``_empty`` — derived spaces must re-materialise that emptiness, or
        ``conjoin``/``with_residue`` on an empty region would resurrect
        points.
        """
        if self._empty:
            return self.constraints + (
                Constraint.inequality(Affine.const(-1)),
            )
        return self.constraints

    def conjoin(self, constraint: Constraint) -> "RegionSpace":
        """A new region with one more affine constraint."""
        return RegionSpace(
            self.dims,
            self.bounds,
            self._base_constraints() + (constraint,),
            self.residues,
        )

    def with_residue(
        self, expr: Affine, modulus: int, lo: int, hi: int
    ) -> "RegionSpace":
        """A new region additionally requiring ``expr mod modulus ∈ [lo, hi]``."""
        return RegionSpace(
            self.dims,
            self.bounds,
            self._base_constraints(),
            self.residues + (ResidueConstraint.make(expr, modulus, lo, hi),),
        )

    def tight_ranges(self) -> dict[str, tuple[int, int]]:
        """Conservative per-dimension ``(min, max)`` box, constraint-aware.

        Like ``BoundedSpace.var_ranges`` but each affine constraint anchored
        at a dimension also narrows that dimension's interval (one forward
        pass of interval arithmetic).  Crucial for the crossing-window
        certificate: a decided cell's thinness lives in its *constraints*
        (negated earlier cold conditions, producer containment), not in the
        raw loop bounds.
        """
        ranges: dict[str, tuple[int, int]] = {}
        for d, (lo_e, hi_e) in enumerate(self.bounds):
            lo, _ = lo_e.bounds(ranges)
            _, hi = hi_e.bounds(ranges)
            var = self.dims[d]
            for c in self._cons_at[d]:
                coeff = c.expr.coeff(var)
                if coeff == 0:
                    continue
                rest = Affine(
                    {v: k for v, k in c.expr.coeffs.items() if v != var},
                    c.expr.constant,
                )
                r_lo, r_hi = rest.bounds(ranges)
                # coeff·v + rest >= 0 over rest ∈ [r_lo, r_hi] (weakest case).
                if coeff > 0:
                    lo = max(lo, -(r_hi // coeff))
                else:
                    hi = min(hi, r_hi // -coeff)
                if c.kind == EQ:  # also -coeff·v - rest >= 0
                    if coeff > 0:
                        hi = min(hi, (-r_lo) // coeff)
                    else:
                        lo = max(lo, -((-r_lo) // -coeff))
            ranges[var] = (lo, max(lo, hi))
        return ranges

    def contains(self, point: Sequence[int]) -> bool:
        """True if ``point`` (one integer per dimension) lies in the region."""
        if len(point) != self._n or self._empty:
            return False
        env = dict(zip(self.dims, point))
        for k, (lo, hi) in enumerate(self.bounds):
            if not (lo.evaluate(env) <= point[k] <= hi.evaluate(env)):
                return False
        return all(c.satisfied(env) for c in self.constraints) and all(
            r.satisfied(env) for r in self.residues
        )

    # -- counting ----------------------------------------------------------------

    def signature(self) -> tuple:
        """Canonical hashable signature (shared-count cache key)."""
        return (
            "region",
            self.dims,
            self.bounds,
            frozenset(self.constraints),
            frozenset(self.residues),
        )

    def count(self) -> int:
        """The exact number of integer points in the region.

        Memoized per instance and, via the canonical signature, across
        instances (``polyhedra.count.cache_hits``).
        """
        if self._empty:
            return 0
        return cached_count(
            self.signature(), lambda: self._count_from(0, {})
        )

    def _memo_key(self, d: int, env: dict[str, int]) -> tuple:
        key: list = [d]
        for v in self._raw_vars[d]:
            key.append(env[v])
        for r in self._res_from[d]:
            key.append(self._res_partial(r, env))
        return tuple(key)

    @staticmethod
    def _res_partial(r: ResidueConstraint, env: Mapping[str, int]) -> int:
        """The fixed-variable part of a residue expression, mod the modulus."""
        total = r.expr.constant
        for name, c in r.expr.coeffs.items():
            v = env.get(name)
            if v is not None:
                total += c * v
        return total % r.modulus

    @staticmethod
    def _split_var(
        expr: Affine, var: str, env: Mapping[str, int]
    ) -> tuple[int, int]:
        """``expr = coeff·var + rest`` with ``rest`` evaluated under ``env``."""
        coeff = 0
        rest = expr.constant
        for name, c in expr.coeffs.items():
            if name == var:
                coeff = c
            else:
                rest += c * env[name]
        return coeff, rest

    def _tightened_range(
        self, d: int, env: dict[str, int]
    ) -> Optional[tuple[int, int]]:
        """The value range of dimension ``d`` under bounds + anchored affine
        constraints (``None`` = provably empty).

        Every affine constraint anchored at ``d`` mentions only already-fixed
        variables besides ``dims[d]``, so it always reduces to an interval
        adjustment — never to a per-value check.
        """
        lo = self.bounds[d][0].evaluate(env)
        hi = self.bounds[d][1].evaluate(env)
        var = self.dims[d]
        for c in self._cons_at[d]:
            coeff, rest = self._split_var(c.expr, var, env)
            if c.kind == EQ:
                if coeff == 0:
                    if rest != 0:
                        return None
                elif rest % coeff:
                    return None
                else:
                    pinned = -rest // coeff
                    lo = max(lo, pinned)
                    hi = min(hi, pinned)
            else:  # coeff·v + rest >= 0
                if coeff > 0:
                    lo = max(lo, -(rest // coeff))
                elif coeff < 0:
                    hi = min(hi, rest // -coeff)
                elif rest < 0:
                    return None
        return (lo, hi) if hi >= lo else None

    def _anchored_checks(
        self, d: int, env: dict[str, int]
    ) -> list[tuple[int, int, int, int, int]]:
        """Residues anchored at ``d`` reduced to ``(coeff, rest, m, lo, hi)``."""
        var = self.dims[d]
        checks = []
        for r in self._res_at[d]:
            coeff, rest = self._split_var(r.expr, var, env)
            checks.append((coeff, rest, r.modulus, r.lo, r.hi))
        return checks

    def _count_from(self, d: int, env: dict[str, int]) -> int:
        if d == self._n:
            return 1
        key = self._memo_key(d, env)
        cached = self._count_memo.get(key)
        if cached is not None:
            return cached
        total = 0
        rng = self._tightened_range(d, env)
        if rng is not None:
            lo, hi = rng
            var = self.dims[d]
            checks = self._anchored_checks(d, env)
            if var not in self._raw_vars[d + 1]:
                # This dimension matters below (if at all) only through
                # residue partials — satisfaction and every deeper count are
                # periodic in it, so scan one period and weight each class
                # by its closed-form multiplicity.
                period = 1
                for coeff, _, m, _, _ in checks:
                    period = math.lcm(period, residue_period(coeff, m))
                for r in self._res_from[d + 1]:
                    coeff = r.expr.coeff(var)
                    if coeff:
                        period = math.lcm(
                            period, residue_period(coeff, r.modulus)
                        )
                if period < hi - lo + 1:
                    for w in range(lo, lo + period):
                        if all(
                            rl <= (cf * w + rest) % m <= rh
                            for cf, rest, m, rl, rh in checks
                        ):
                            env[var] = w
                            inner = self._count_from(d + 1, env)
                            if inner:
                                total += inner * count_range_residue(
                                    lo, hi, period, w % period
                                )
                    env.pop(var, None)
                    self._count_memo[key] = total
                    return total
            for value in range(lo, hi + 1):
                if all(
                    rl <= (cf * value + rest) % m <= rh
                    for cf, rest, m, rl, rh in checks
                ):
                    env[var] = value
                    total += self._count_from(d + 1, env)
            env.pop(var, None)
        self._count_memo[key] = total
        return total

    # -- enumeration ---------------------------------------------------------------

    def enumerate_points(self) -> Iterator[tuple[int, ...]]:
        """Yield every integer point in lexicographic order."""
        if self._empty:
            return
        yield from self._enumerate_from(0, {}, [])

    def _enumerate_from(
        self, d: int, env: dict[str, int], prefix: list[int]
    ) -> Iterator[tuple[int, ...]]:
        if d == self._n:
            yield tuple(prefix)
            return
        rng = self._tightened_range(d, env)
        if rng is None:
            return
        lo, hi = rng
        var = self.dims[d]
        checks = self._anchored_checks(d, env)
        for value in range(lo, hi + 1):
            if all(
                rl <= (cf * value + rest) % m <= rh
                for cf, rest, m, rl, rh in checks
            ):
                env[var] = value
                prefix.append(value)
                yield from self._enumerate_from(d + 1, env, prefix)
                prefix.pop()
        env.pop(var, None)

    # -- representative search ----------------------------------------------------

    def representative(
        self, budget: int = REPRESENTATIVE_BUDGET
    ) -> Optional[tuple[int, ...]]:
        """One point of the region, or ``None`` if empty or over budget.

        Count-guided lexmin descent: at each dimension the first value whose
        subtree is non-empty is fixed.  Subtree probes share the counting
        memo, so a successful search after a :meth:`count` call costs almost
        nothing extra.  ``budget`` caps the total number of candidate-value
        probes — exhaustion returns ``None`` and the caller falls back to
        enumeration, so the search can never silently degrade to a scan of
        the loop bounds.
        """
        if self._empty or self.count() == 0:
            return None
        env: dict[str, int] = {}
        point: list[int] = []
        for d in range(self._n):
            rng = self._tightened_range(d, env)
            if rng is None:
                return None  # unreachable after the count() > 0 check
            lo, hi = rng
            var = self.dims[d]
            checks = self._anchored_checks(d, env)
            found = False
            for value in range(lo, hi + 1):
                budget -= 1
                if budget < 0:
                    return None
                if not all(
                    rl <= (cf * value + rest) % m <= rh
                    for cf, rest, m, rl, rh in checks
                ):
                    continue
                env[var] = value
                if self._count_from(d + 1, env) > 0:
                    point.append(value)
                    found = True
                    break
            if not found:
                return None
        return tuple(point)

    def __repr__(self) -> str:
        parts = [
            f"{lo} <= {v} <= {hi}"
            for v, (lo, hi) in zip(self.dims, self.bounds)
        ]
        parts.extend(map(repr, self.constraints))
        parts.extend(map(repr, self.residues))
        return "RegionSpace(" + ", ".join(parts) + ")"


def negate_constraint(c: Constraint) -> list[Constraint]:
    """The complement of one affine constraint over integer points.

    ``expr >= 0`` negates to the single constraint ``expr <= -1``;
    ``expr == 0`` negates to the *disjunction* ``expr >= 1 | expr <= -1``,
    returned as a list — the regional decomposition turns each disjunct
    into its own cell (sequential set difference keeps cells disjoint).
    """
    if c.kind == EQ:
        return [
            Constraint.inequality(c.expr - 1),
            Constraint.inequality(-c.expr - 1),
        ]
    return [Constraint.inequality(-c.expr - 1)]


def region_of_space(space) -> RegionSpace:
    """The :class:`RegionSpace` form of a ``BoundedSpace`` (same points)."""
    guard = space.guard if isinstance(space.guard, ConstraintSet) else ConstraintSet(space.guard)
    return RegionSpace(space.dims, space.bounds, tuple(guard), ())
