"""Bounded integer spaces: per-dimension affine bounds plus guards.

A :class:`BoundedSpace` represents the set of integer points

    { (v₁, …, vₙ) | lbₖ(v₁..vₖ₋₁) ≤ vₖ ≤ ubₖ(v₁..vₖ₋₁), guard(v₁..vₙ) }

which is exactly the shape of a reference iteration space (RIS, Section 3.3):
normalised loop bounds are affine in the outer indices and IF guards add a
conjunction of affine constraints.

The class provides the polyhedral operations the solvers of Fig. 6 need:

* :meth:`contains` — membership test (used by the cold equations),
* :meth:`count` — the exact number of integer points (the "volume of a RIS"),
* :meth:`enumerate_points` — lexicographic enumeration (``FindMisses``),
* :meth:`sample` — *uniform* sampling of integer points
  (``EstimateMisses``), implemented by count-weighted descent so that
  triangular and guarded spaces are sampled without bias.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

import random

from repro import obs
from repro.polyhedra.affine import Affine
from repro.polyhedra.constraints import Constraint, ConstraintSet

#: Cross-instance count cache keyed by canonical constraint-system signature.
#: Spaces are built afresh per reference (and per region cell in the regional
#: solver), but structurally identical systems recur constantly — translated
#: producer spaces, residue cells differing only in dead constraints, the
#: same RIS rebuilt in a worker process.  Caching per *signature* rather
#: than per instance means a count is ever computed once per process.
_COUNT_CACHE: dict[tuple, int] = {}


def cached_count(signature: tuple, compute: Callable[[], int]) -> int:
    """Return the memoized count for ``signature``, computing on first use.

    Hits are observable as ``polyhedra.count.cache_hits``.
    """
    cached = _COUNT_CACHE.get(signature)
    if cached is not None:
        obs.counter("polyhedra.count.cache_hits").inc()
        return cached
    value = compute()
    _COUNT_CACHE[signature] = value
    return value


def count_cache_size() -> int:
    """Number of cached constraint-system counts (for tests/diagnostics)."""
    return len(_COUNT_CACHE)


def clear_count_cache() -> None:
    """Drop every cached count (tests, and long-lived service processes)."""
    _COUNT_CACHE.clear()


class BoundedSpace:
    """An integer space with per-dimension affine bounds and a guard.

    Parameters
    ----------
    dims:
        Ordered variable names ``(v1, …, vn)``.
    bounds:
        One ``(lower, upper)`` pair of :class:`Affine` per dimension; the
        bounds of dimension ``k`` may reference only ``v1..v(k-1)``.
    guard:
        Extra affine constraints over all dimensions (IF guards).
    """

    def __init__(
        self,
        dims: Sequence[str],
        bounds: Sequence[tuple[Affine, Affine]],
        guard: ConstraintSet | None = None,
    ):
        if len(dims) != len(bounds):
            raise ValueError("one (lower, upper) bound pair required per dimension")
        self.dims = tuple(dims)
        self.bounds = tuple((Affine.coerce(lo), Affine.coerce(hi)) for lo, hi in bounds)
        self.guard = guard if guard is not None else ConstraintSet.true()
        self._n = len(self.dims)
        self._dim_index = {name: k for k, name in enumerate(self.dims)}
        for k, (lo, hi) in enumerate(self.bounds):
            allowed = set(self.dims[:k])
            for expr in (lo, hi):
                extra = expr.variables() - allowed
                if extra:
                    raise ValueError(
                        f"bound {expr} of dimension {self.dims[k]} references "
                        f"non-outer variables {sorted(extra)}"
                    )
        # Assign every guard constraint to the deepest dimension it mentions,
        # so it is checked as soon as that dimension is fixed.
        self._cons_at: list[list[Constraint]] = [[] for _ in range(self._n)]
        self._const_cons: list[Constraint] = []
        for c in self.guard:
            vs = c.variables()
            if not vs:
                self._const_cons.append(c)
                continue
            unknown = vs - set(self.dims)
            if unknown:
                raise ValueError(
                    f"guard {c!r} references unknown variables {sorted(unknown)}"
                )
            level = max(self._dim_index[v] for v in vs)
            self._cons_at[level].append(c)
        # Memoisation keys: the outer variables that still matter at depth d.
        self._memo_vars: list[tuple[str, ...]] = []
        for d in range(self._n + 1):
            relevant: set[str] = set()
            for e in range(d, self._n):
                for expr in self.bounds[e]:
                    relevant |= expr.variables()
                for c in self._cons_at[e]:
                    relevant |= c.variables()
            self._memo_vars.append(
                tuple(v for v in self.dims[:d] if v in relevant)
            )
        self._count_memo: dict[tuple, int] = {}

    # -- basic queries ---------------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self._n

    def is_trivially_empty(self) -> bool:
        """True if a constant guard constraint already rules out all points."""
        return any(c.trivially_false() for c in self._const_cons)

    def constraints_at(self, level: int) -> tuple[Constraint, ...]:
        """The guard constraints anchored at dimension ``level``.

        A constraint is anchored at the deepest dimension it mentions, so
        it becomes checkable as soon as that dimension is fixed — the same
        schedule :meth:`contains`, :meth:`count` and :meth:`enumerate_points`
        use, exposed for the vectorized helpers of
        :mod:`repro.polyhedra.batch`.
        """
        return tuple(self._cons_at[level])

    def contains(self, point: Sequence[int]) -> bool:
        """True if ``point`` (one integer per dimension) lies in the space."""
        if len(point) != self._n:
            return False
        if self.is_trivially_empty():
            return False
        env: dict[str, int] = {}
        for k, value in enumerate(point):
            lo, hi = self.bounds[k]
            if not (lo.evaluate(env) <= value <= hi.evaluate(env)):
                return False
            env[self.dims[k]] = value
            for c in self._cons_at[k]:
                if not c.satisfied(env):
                    return False
        return True

    def var_ranges(self) -> dict[str, tuple[int, int]]:
        """Conservative per-dimension ``(min, max)`` box via interval arithmetic."""
        ranges: dict[str, tuple[int, int]] = {}
        for k, (lo, hi) in enumerate(self.bounds):
            lo_lo, _ = lo.bounds(ranges)
            _, hi_hi = hi.bounds(ranges)
            ranges[self.dims[k]] = (lo_lo, max(lo_lo, hi_hi))
        return ranges

    # -- counting ----------------------------------------------------------------

    def signature(self) -> tuple:
        """A canonical, hashable signature of the constraint system.

        Two spaces with equal signatures contain exactly the same points, so
        counts may be shared across instances (:func:`cached_count`).  The
        guard is a set — constraint order never affects the point set.
        """
        return ("space", self.dims, self.bounds, frozenset(self.guard))

    def count(self) -> int:
        """The exact number of integer points in the space.

        Memoized per instance *and*, keyed by :meth:`signature`, across
        instances (``polyhedra.count.cache_hits``) — repeated region counts
        inside one solve never recompute structurally identical systems.
        """
        if self.is_trivially_empty():
            return 0
        return cached_count(
            self.signature(), lambda: self._count_from(0, {})
        )

    def _count_from(self, d: int, env: dict[str, int]) -> int:
        if d == self._n:
            return 1
        key = (d,) + tuple(env[v] for v in self._memo_vars[d])
        cached = self._count_memo.get(key)
        if cached is not None:
            return cached
        lo = self.bounds[d][0].evaluate(env)
        hi = self.bounds[d][1].evaluate(env)
        total = 0
        if hi >= lo:
            var = self.dims[d]
            cons = self._cons_at[d]
            # Fast path: no guard at this level and the inner count does not
            # depend on this variable -> multiply instead of iterating.
            if not cons and var not in self._memo_vars[d + 1]:
                env[var] = lo
                inner = self._count_from(d + 1, env)
                del env[var]
                total = (hi - lo + 1) * inner
            else:
                for value in range(lo, hi + 1):
                    env[var] = value
                    if all(c.satisfied(env) for c in cons):
                        total += self._count_from(d + 1, env)
                del env[var]
        self._count_memo[key] = total
        return total

    # -- enumeration ---------------------------------------------------------------

    def enumerate_points(self) -> Iterator[tuple[int, ...]]:
        """Yield every integer point in lexicographic order."""
        if self.is_trivially_empty():
            return
        yield from self._enumerate_from(0, {}, [])

    def _enumerate_from(
        self, d: int, env: dict[str, int], prefix: list[int]
    ) -> Iterator[tuple[int, ...]]:
        if d == self._n:
            yield tuple(prefix)
            return
        lo = self.bounds[d][0].evaluate(env)
        hi = self.bounds[d][1].evaluate(env)
        var = self.dims[d]
        cons = self._cons_at[d]
        for value in range(lo, hi + 1):
            env[var] = value
            if all(c.satisfied(env) for c in cons):
                prefix.append(value)
                yield from self._enumerate_from(d + 1, env, prefix)
                prefix.pop()
        env.pop(var, None)

    # -- uniform sampling -------------------------------------------------------------

    def sample(
        self, n: int, rng: random.Random | None = None
    ) -> list[tuple[int, ...]]:
        """Draw ``n`` points uniformly at random (with replacement).

        Sampling descends the dimensions weighting each candidate value by
        the exact count of the subtree below it, which yields an exactly
        uniform distribution over the integer points even for triangular or
        guarded spaces.  Raises ``ValueError`` on an empty space.
        """
        rng = rng if rng is not None else random.Random()
        total = self.count()
        if total == 0:
            raise ValueError("cannot sample from an empty space")
        return [self._sample_one(rng) for _ in range(n)]

    def _sample_one(self, rng: random.Random) -> tuple[int, ...]:
        env: dict[str, int] = {}
        point: list[int] = []
        for d in range(self._n):
            lo = self.bounds[d][0].evaluate(env)
            hi = self.bounds[d][1].evaluate(env)
            var = self.dims[d]
            cons = self._cons_at[d]
            # Weight each candidate value by its subtree count.
            weights: list[tuple[int, int]] = []
            running = 0
            for value in range(lo, hi + 1):
                env[var] = value
                if all(c.satisfied(env) for c in cons):
                    w = self._count_from(d + 1, env)
                    if w:
                        running += w
                        weights.append((value, running))
            if not weights:
                raise ValueError("cannot sample from an empty space")
            pick = rng.randrange(weights[-1][1])
            chosen = weights[-1][0]
            for value, cumulative in weights:
                if pick < cumulative:
                    chosen = value
                    break
            env[var] = chosen
            point.append(chosen)
        return tuple(point)

    def __repr__(self) -> str:
        parts = [
            f"{lo} <= {v} <= {hi}"
            for v, (lo, hi) in zip(self.dims, self.bounds)
        ]
        if not self.guard.is_true():
            parts.append(repr(self.guard))
        return "BoundedSpace(" + ", ".join(parts) + ")"
