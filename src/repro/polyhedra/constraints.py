"""Affine constraints and conjunctions of constraints.

A :class:`Constraint` is either an equality ``expr == 0`` or an inequality
``expr >= 0`` over integer points.  A :class:`ConstraintSet` is a conjunction,
used for IF guards and reference iteration spaces (Section 3.3 of the paper).
Disjunctions never arise in the paper's program model, which keeps the
machinery simple and exact.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.polyhedra.affine import Affine, AffineLike

EQ = "=="
GE = ">="


class Constraint:
    """A single affine constraint: ``expr == 0`` or ``expr >= 0``."""

    __slots__ = ("expr", "kind")

    def __init__(self, expr: Affine, kind: str):
        if kind not in (EQ, GE):
            raise ValueError(f"unknown constraint kind {kind!r}")
        self.expr = expr
        self.kind = kind

    @staticmethod
    def equality(expr: AffineLike) -> "Constraint":
        """The constraint ``expr == 0``."""
        return Constraint(Affine.coerce(expr), EQ)

    @staticmethod
    def inequality(expr: AffineLike) -> "Constraint":
        """The constraint ``expr >= 0``."""
        return Constraint(Affine.coerce(expr), GE)

    def satisfied(self, env: Mapping[str, int]) -> bool:
        """True if the constraint holds at the integer point ``env``."""
        value = self.expr.evaluate(env)
        return value == 0 if self.kind == EQ else value >= 0

    def substitute(self, mapping: Mapping[str, AffineLike]) -> "Constraint":
        """Substitute variables by affine expressions."""
        return Constraint(self.expr.substitute(mapping), self.kind)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        """Rename variables."""
        return Constraint(self.expr.rename(mapping), self.kind)

    def partial_evaluate(self, env: Mapping[str, int]) -> "Constraint":
        """Bind the variables present in ``env``; keep the rest symbolic."""
        return Constraint(self.expr.partial_evaluate(env), self.kind)

    def variables(self) -> frozenset[str]:
        """Variables appearing in the constraint."""
        return self.expr.variables()

    def trivially_true(self) -> bool:
        """True for a variable-free constraint that always holds."""
        if not self.expr.is_constant():
            return False
        v = self.expr.constant
        return v == 0 if self.kind == EQ else v >= 0

    def trivially_false(self) -> bool:
        """True for a variable-free constraint that never holds."""
        if not self.expr.is_constant():
            return False
        v = self.expr.constant
        return v != 0 if self.kind == EQ else v < 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.kind == other.kind and self.expr == other.expr

    def __hash__(self) -> int:
        return hash((self.kind, self.expr))

    def __repr__(self) -> str:
        op = "==" if self.kind == EQ else ">="
        return f"({self.expr} {op} 0)"


class ConstraintSet:
    """An immutable conjunction of affine constraints.

    Used for the guards that loop sinking introduces (Section 3.1) and for
    IF conditionals in the program model.  The empty set is the trivially
    true guard.
    """

    __slots__ = ("constraints",)

    def __init__(self, constraints: Iterable[Constraint] = ()):
        seen: list[Constraint] = []
        for c in constraints:
            if c.trivially_true():
                continue
            if c not in seen:
                seen.append(c)
        self.constraints = tuple(seen)

    @staticmethod
    def true() -> "ConstraintSet":
        """The always-true guard."""
        return ConstraintSet(())

    def conjoin(self, other: "ConstraintSet | Constraint") -> "ConstraintSet":
        """The conjunction of this set with another set or single constraint."""
        if isinstance(other, Constraint):
            other = ConstraintSet((other,))
        return ConstraintSet(self.constraints + other.constraints)

    def satisfied(self, env: Mapping[str, int]) -> bool:
        """True if every constraint holds at the point ``env``."""
        return all(c.satisfied(env) for c in self.constraints)

    def substitute(self, mapping: Mapping[str, AffineLike]) -> "ConstraintSet":
        """Substitute variables by affine expressions in every constraint."""
        return ConstraintSet(c.substitute(mapping) for c in self.constraints)

    def rename(self, mapping: Mapping[str, str]) -> "ConstraintSet":
        """Rename variables in every constraint."""
        return ConstraintSet(c.rename(mapping) for c in self.constraints)

    def partial_evaluate(self, env: Mapping[str, int]) -> "ConstraintSet":
        """Bind the variables present in ``env`` in every constraint."""
        return ConstraintSet(c.partial_evaluate(env) for c in self.constraints)

    def variables(self) -> frozenset[str]:
        """Variables appearing in any constraint."""
        names: set[str] = set()
        for c in self.constraints:
            names |= c.variables()
        return frozenset(names)

    def trivially_false(self) -> bool:
        """True if some constraint can never hold."""
        return any(c.trivially_false() for c in self.constraints)

    def is_true(self) -> bool:
        """True if the conjunction is empty (always holds)."""
        return not self.constraints

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return set(self.constraints) == set(other.constraints)

    def __hash__(self) -> int:
        return hash(frozenset(self.constraints))

    def __repr__(self) -> str:
        if not self.constraints:
            return "TRUE"
        return " & ".join(map(repr, self.constraints))
