"""Integer affine expressions over named loop indices.

The paper's program model (Section 3) requires loop bounds, IF conditions and
array subscripts to be *affine* expressions of the enclosing loop indices with
compile-time-known constants.  :class:`Affine` is the single representation
used for all of them throughout the package.

An affine expression is ``sum(coeff[v] * v for v in vars) + const`` with
integer coefficients.  Instances are immutable and hashable, support the usual
arithmetic, substitution and evaluation, and provide comparison helpers that
build :class:`~repro.polyhedra.constraints.Constraint` objects.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

from repro.errors import NonAffineError

AffineLike = Union["Affine", int]


class Affine:
    """An immutable integer affine expression ``Σ cᵥ·v + c₀``.

    Parameters
    ----------
    coeffs:
        Mapping from variable name to integer coefficient.  Zero
        coefficients are dropped.
    const:
        The constant term ``c₀``.
    """

    __slots__ = ("_coeffs", "_const", "_hash")

    def __init__(self, coeffs: Mapping[str, int] | None = None, const: int = 0):
        items = []
        if coeffs:
            for name, c in coeffs.items():
                if not isinstance(c, int):
                    raise NonAffineError(
                        f"coefficient of {name!r} must be an integer, got {c!r}"
                    )
                if c != 0:
                    items.append((name, c))
        if not isinstance(const, int):
            raise NonAffineError(f"constant term must be an integer, got {const!r}")
        items.sort()
        object.__setattr__(self, "_coeffs", tuple(items))
        object.__setattr__(self, "_const", const)
        object.__setattr__(self, "_hash", hash((self._coeffs, const)))

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def const(value: int) -> "Affine":
        """The constant expression ``value``."""
        return Affine({}, value)

    @staticmethod
    def var(name: str) -> "Affine":
        """The expression consisting of the single variable ``name``."""
        return Affine({name: 1}, 0)

    @staticmethod
    def coerce(value: AffineLike) -> "Affine":
        """Return ``value`` as an :class:`Affine` (ints become constants)."""
        if isinstance(value, Affine):
            return value
        if isinstance(value, int):
            return Affine({}, value)
        raise NonAffineError(f"cannot interpret {value!r} as an affine expression")

    # -- read access -----------------------------------------------------------

    @property
    def coeffs(self) -> dict[str, int]:
        """A fresh dict of the non-zero coefficients."""
        return dict(self._coeffs)

    @property
    def constant(self) -> int:
        """The constant term."""
        return self._const

    def coeff(self, name: str) -> int:
        """The coefficient of variable ``name`` (0 if absent)."""
        for n, c in self._coeffs:
            if n == name:
                return c
        return 0

    def variables(self) -> frozenset[str]:
        """The set of variables with non-zero coefficients."""
        return frozenset(n for n, _ in self._coeffs)

    def is_constant(self) -> bool:
        """True if the expression has no variable part."""
        return not self._coeffs

    def constant_value(self) -> int:
        """The value of a constant expression (raises otherwise)."""
        if self._coeffs:
            raise NonAffineError(f"{self} is not a compile-time constant")
        return self._const

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: AffineLike) -> "Affine":
        other = Affine.coerce(other)
        coeffs = dict(self._coeffs)
        for name, c in other._coeffs:
            coeffs[name] = coeffs.get(name, 0) + c
        return Affine(coeffs, self._const + other._const)

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine({n: -c for n, c in self._coeffs}, -self._const)

    def __sub__(self, other: AffineLike) -> "Affine":
        return self + (-Affine.coerce(other))

    def __rsub__(self, other: AffineLike) -> "Affine":
        return Affine.coerce(other) + (-self)

    def __mul__(self, other: AffineLike) -> "Affine":
        other = Affine.coerce(other)
        if other.is_constant():
            k = other._const
            return Affine({n: c * k for n, c in self._coeffs}, self._const * k)
        if self.is_constant():
            k = self._const
            return Affine({n: c * k for n, c in other._coeffs}, other._const * k)
        raise NonAffineError(f"product of {self} and {other} is not affine")

    __rmul__ = __mul__

    def __floordiv__(self, other: AffineLike) -> "Affine":
        """Exact division by a constant; raises if it does not divide evenly.

        The paper's model only ever divides by constants that divide all
        coefficients (e.g. when normalising loop strides), so an inexact
        division indicates a non-affine construct.
        """
        other = Affine.coerce(other)
        k = other.constant_value()
        if k == 0:
            raise ZeroDivisionError("affine division by zero")
        coeffs = {}
        for n, c in self._coeffs:
            if c % k:
                raise NonAffineError(f"{self} is not exactly divisible by {k}")
            coeffs[n] = c // k
        if self._const % k:
            raise NonAffineError(f"{self} is not exactly divisible by {k}")
        return Affine(coeffs, self._const // k)

    # -- substitution and evaluation --------------------------------------------

    def substitute(self, mapping: Mapping[str, AffineLike]) -> "Affine":
        """Replace every variable in ``mapping`` by the given expression."""
        result = Affine.const(self._const)
        for name, c in self._coeffs:
            if name in mapping:
                result = result + Affine.coerce(mapping[name]) * c
            else:
                result = result + Affine({name: c})
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Affine":
        """Rename variables according to ``mapping`` (missing names kept)."""
        coeffs: dict[str, int] = {}
        for name, c in self._coeffs:
            new = mapping.get(name, name)
            coeffs[new] = coeffs.get(new, 0) + c
        return Affine(coeffs, self._const)

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate with every variable bound in ``env``."""
        total = self._const
        for name, c in self._coeffs:
            total += c * env[name]
        return total

    def partial_evaluate(self, env: Mapping[str, int]) -> "Affine":
        """Evaluate the variables present in ``env``; keep the rest symbolic."""
        coeffs = {}
        const = self._const
        for name, c in self._coeffs:
            if name in env:
                const += c * env[name]
            else:
                coeffs[name] = c
        return Affine(coeffs, const)

    def bounds(self, ranges: Mapping[str, tuple[int, int]]) -> tuple[int, int]:
        """Interval-arithmetic bounds given per-variable ``(lo, hi)`` ranges."""
        lo = hi = self._const
        for name, c in self._coeffs:
            vlo, vhi = ranges[name]
            if c >= 0:
                lo += c * vlo
                hi += c * vhi
            else:
                lo += c * vhi
                hi += c * vlo
        return lo, hi

    # -- comparisons building constraints ---------------------------------------
    # (imported lazily to avoid a circular import)

    def eq(self, other: AffineLike):
        """The constraint ``self == other``."""
        from repro.polyhedra.constraints import Constraint

        return Constraint.equality(self - other)

    def le(self, other: AffineLike):
        """The constraint ``self <= other``."""
        from repro.polyhedra.constraints import Constraint

        return Constraint.inequality(Affine.coerce(other) - self)

    def ge(self, other: AffineLike):
        """The constraint ``self >= other``."""
        from repro.polyhedra.constraints import Constraint

        return Constraint.inequality(self - Affine.coerce(other))

    def lt(self, other: AffineLike):
        """The constraint ``self < other`` (integer: ``self <= other - 1``)."""
        return self.le(Affine.coerce(other) - 1)

    def gt(self, other: AffineLike):
        """The constraint ``self > other`` (integer: ``self >= other + 1``)."""
        return self.ge(Affine.coerce(other) + 1)

    # -- dunder plumbing ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = Affine.const(other)
        if not isinstance(other, Affine):
            return NotImplemented
        return self._coeffs == other._coeffs and self._const == other._const

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Affine({self})"

    def __str__(self) -> str:
        parts: list[str] = []
        for name, c in self._coeffs:
            if c == 1:
                term = name
            elif c == -1:
                term = f"-{name}"
            else:
                term = f"{c}*{name}"
            if parts and not term.startswith("-"):
                parts.append(f"+{term}")
            else:
                parts.append(term)
        if self._const or not parts:
            if parts and self._const >= 0:
                parts.append(f"+{self._const}")
            else:
                parts.append(str(self._const))
        return "".join(parts)


class Var(Affine):
    """Sugar: ``Var('I1')`` is the affine expression for the variable ``I1``.

    Handy in the builder DSL and in tests::

        I1, I2 = Var("I1"), Var("I2")
        subscript = 2 * I1 - I2 + 3
    """

    __slots__ = ()

    def __init__(self, name: str):
        super().__init__({name: 1}, 0)


def vars_of(exprs: Iterable[Affine]) -> frozenset[str]:
    """Union of the variables of a collection of affine expressions."""
    names: set[str] = set()
    for e in exprs:
        names |= e.variables()
    return frozenset(names)
