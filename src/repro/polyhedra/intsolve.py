"""Exact integer linear algebra for the reuse equations.

Section 3.5 of the paper derives temporal reuse vectors by solving

    M · x = m_p − m_c

over the integers, and spatial reuse vectors by solving the same system with
the first row removed.  This module provides the necessary machinery using
arbitrary-precision Python integers (no floating point, hence no rounding
error):

* :func:`hermite_normal_form` — column-style HNF ``H = A·U`` with ``U``
  unimodular,
* :func:`solve_integer` — a particular integer solution of ``A·x = b`` (or
  ``None`` when no integer solution exists),
* :func:`nullspace_basis` — a lattice basis of ``{x : A·x = 0}``.

It also provides the residue-class arithmetic of the regional CME solver
(:mod:`repro.cme.regions`): the memory-line equality of the cold equations
confines an address expression modulo the line size, so counting a region
reduces to counting ``v ≡ r (mod p)`` inside an interval — closed forms
(:func:`count_range_residue`, :func:`first_range_residue`) whose cost is
independent of the interval length, which is precisely what makes regional
analysis time flat in the loop bounds.

Matrices are plain ``list[list[int]]`` (rows); vectors are ``list[int]``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro import obs

Matrix = list[list[int]]
Vector = list[int]


def _copy_matrix(a: Sequence[Sequence[int]]) -> Matrix:
    return [list(map(int, row)) for row in a]


def _identity(n: int) -> Matrix:
    return [[1 if i == j else 0 for j in range(n)] for i in range(n)]


def _swap_columns(mat: Matrix, i: int, j: int) -> None:
    if i == j:
        return
    for row in mat:
        row[i], row[j] = row[j], row[i]


def _add_column_multiple(mat: Matrix, dst: int, src: int, factor: int) -> None:
    """col[dst] += factor * col[src]."""
    if factor == 0:
        return
    for row in mat:
        row[dst] += factor * row[src]


def _negate_column(mat: Matrix, j: int) -> None:
    for row in mat:
        row[j] = -row[j]


def hermite_normal_form(
    a: Sequence[Sequence[int]],
) -> tuple[Matrix, Matrix, list[tuple[int, int]]]:
    """Column-style Hermite normal form.

    Returns ``(H, U, pivots)`` with ``H = A·U``, ``U`` unimodular, ``H`` in
    column echelon form (each pivot column has its first non-zero entry on a
    strictly increasing row), and ``pivots`` the list of ``(row, col)`` pivot
    positions.  Columns of ``U`` beyond the pivot columns span the null space
    of ``A``.
    """
    h = _copy_matrix(a)
    m = len(h)
    n = len(h[0]) if m else 0
    u = _identity(n)
    pivots: list[tuple[int, int]] = []
    col = 0
    for row in range(m):
        if col >= n:
            break
        # Reduce all entries in this row at columns >= col to a single pivot.
        while True:
            nonzero = [j for j in range(col, n) if h[row][j] != 0]
            if not nonzero:
                break
            # Move the smallest-magnitude non-zero entry into the pivot column.
            j_min = min(nonzero, key=lambda j: abs(h[row][j]))
            _swap_columns(h, col, j_min)
            _swap_columns(u, col, j_min)
            pivot = h[row][col]
            done = True
            for j in range(col + 1, n):
                if h[row][j] != 0:
                    q = h[row][j] // pivot
                    _add_column_multiple(h, j, col, -q)
                    _add_column_multiple(u, j, col, -q)
                    if h[row][j] != 0:
                        done = False
            if done:
                break
        if col < n and h[row][col] != 0:
            if h[row][col] < 0:
                _negate_column(h, col)
                _negate_column(u, col)
            pivots.append((row, col))
            col += 1
    return h, u, pivots


def solve_integer(
    a: Sequence[Sequence[int]], b: Sequence[int]
) -> Optional[Vector]:
    """A particular integer solution ``x`` of ``A·x = b``, or ``None``.

    Free coordinates are set to zero, so for full-column-rank systems the
    unique solution is returned; otherwise any solution differing by a null
    space lattice vector is equally valid (the reuse-vector generator
    enumerates the lattice separately).

    Each call counts toward ``polyhedra.intsolve.calls`` and, by outcome,
    ``polyhedra.intsolve.solutions`` / ``polyhedra.intsolve.infeasible``.
    """
    x = _solve_integer(a, b)
    obs.counter("polyhedra.intsolve.calls").inc()
    if x is None:
        obs.counter("polyhedra.intsolve.infeasible").inc()
    else:
        obs.counter("polyhedra.intsolve.solutions").inc()
    return x


def _solve_integer(
    a: Sequence[Sequence[int]], b: Sequence[int]
) -> Optional[Vector]:
    m = len(a)
    n = len(a[0]) if m else 0
    if len(b) != m:
        raise ValueError("dimension mismatch between matrix and right-hand side")
    if n == 0:
        return [] if all(v == 0 for v in b) else None
    h, u, pivots = hermite_normal_form(a)
    y = [0] * n
    pivot_by_row = dict(pivots)
    for row in range(m):
        residual = b[row] - sum(h[row][c] * y[c] for c in range(n))
        if row in pivot_by_row:
            col = pivot_by_row[row]
            pivot = h[row][col]
            if residual % pivot:
                return None  # no integer solution
            y[col] = residual // pivot
        elif residual != 0:
            return None  # inconsistent system
    # x = U · y
    return [sum(u[i][j] * y[j] for j in range(n)) for i in range(n)]


def nullspace_basis(a: Sequence[Sequence[int]]) -> list[Vector]:
    """A lattice basis of the integer null space ``{x : A·x = 0}``.

    Counted as ``polyhedra.nullspace.calls``.
    """
    obs.counter("polyhedra.nullspace.calls").inc()
    m = len(a)
    n = len(a[0]) if m else 0
    if n == 0:
        return []
    if m == 0:
        return [[1 if i == j else 0 for i in range(n)] for j in range(n)]
    h, u, pivots = hermite_normal_form(a)
    pivot_cols = {col for _, col in pivots}
    basis = []
    for j in range(n):
        if j not in pivot_cols:
            basis.append([u[i][j] for i in range(n)])
    return basis


def matvec(a: Sequence[Sequence[int]], x: Sequence[int]) -> Vector:
    """The product ``A·x`` with exact integers."""
    return [sum(row[j] * x[j] for j in range(len(x))) for row in a]


def is_zero_vector(v: Sequence[int]) -> bool:
    """True if every component is zero."""
    return all(c == 0 for c in v)


# -- residue-class (periodic) counting ----------------------------------------
#
# The cold equations of the regional solver confine a byte-address expression
# ``a(i) mod L`` to an interval, so the innermost counting problem is always
# "how many v in [lo, hi] satisfy a congruence" — answered in closed form.


def residue_period(coeff: int, modulus: int) -> int:
    """The period of ``v ↦ (coeff·v) mod modulus`` over consecutive ``v``.

    ``modulus / gcd(coeff, modulus)`` — 1 when ``coeff ≡ 0 (mod modulus)``,
    so constraints whose variable coefficient vanishes modulo the line size
    cost nothing to iterate.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    return modulus // math.gcd(coeff, modulus)


def count_range_residue(lo: int, hi: int, period: int, residue: int) -> int:
    """``|{v ∈ [lo, hi] : v ≡ residue (mod period)}|`` in closed form."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if hi < lo:
        return 0
    first = lo + ((residue - lo) % period)
    if first > hi:
        return 0
    return (hi - first) // period + 1


def first_range_residue(
    lo: int, hi: int, period: int, residue: int
) -> Optional[int]:
    """The smallest ``v ∈ [lo, hi]`` with ``v ≡ residue (mod period)``."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if hi < lo:
        return None
    first = lo + ((residue - lo) % period)
    return first if first <= hi else None
