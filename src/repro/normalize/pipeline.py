"""The five loop-nest normalisation steps of Section 3.1.

Given a call-free subroutine body the pipeline produces a
:class:`~repro.normalize.nprogram.NormalizedProgram` with the paper's four
guarantees: unit steps, ``n``-dimensional nests everywhere, canonical index
names ``Ik``, and every statement inside an innermost loop.

The steps, in implementation order:

1. **Step normalisation** — ``DO I = lb, ub, s`` becomes a unit-step loop
   ``1..K`` with ``I`` rewritten to ``lb + (I−1)·s`` everywhere (affine).
2. **Guard flattening** — IF nodes are dissolved by pushing their conditions
   onto the statements they dominate (a guard never mentions the inner loop
   variables of the statements it guards, so this is semantics-preserving).
3. **Loop sinking** — a statement next to a sibling loop is moved inside it,
   guarded by the boundary iteration (``I == lb`` when sunk forwards into
   the next loop, ``I == ub`` when sunk backwards into the previous one),
   exactly as ``S1`` and ``S4`` of Fig. 2.
4. **Depth padding** — statements shallower than ``n`` get enclosing unit
   ``1..1`` loops (``S5`` of Fig. 2).
5. **Index renaming** — the loop variable at depth ``k`` becomes ``Ik``.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.errors import NonAffineError, NonAnalysableError
from repro.polyhedra.affine import Affine, Var
from repro.polyhedra.constraints import ConstraintSet
from repro.ir.nodes import Call, If, Loop, Node, Statement, Subroutine
from repro.normalize.nprogram import (
    NLeaf,
    NLoop,
    NormalizedProgram,
    index_var,
)


class _GStmt:
    """A statement with its accumulated guard (flattening output)."""

    __slots__ = ("stmt", "guard")

    def __init__(self, stmt: Statement, guard: ConstraintSet):
        self.stmt = stmt
        self.guard = guard


class _FLoop:
    """A unit-step loop during normalisation."""

    __slots__ = ("var", "lower", "upper", "body")

    def __init__(self, var: str, lower: Affine, upper: Affine, body: list):
        self.var = var
        self.lower = lower
        self.upper = upper
        self.body = body


_FItem = Union[_FLoop, _GStmt]


def _trip_count(lower: Affine, upper: Affine, step: int) -> Affine:
    """The trip count of ``DO I = lower, upper, step`` as an affine expression.

    For symbolic bounds the span must divide the step exactly — otherwise
    the trip count involves a floor and is not affine (the program is then
    outside the paper's model).
    """
    span = (upper - lower) if step > 0 else (lower - upper)
    magnitude = abs(step)
    if span.is_constant():
        return Affine.const(max(0, span.constant_value() // magnitude + 1))
    try:
        return span // magnitude + 1
    except NonAffineError:
        raise NonAffineError(
            f"loop span {span} is not divisible by step {step}; "
            "trip count is not affine"
        ) from None


def _flatten(body: Sequence[Node], guard: ConstraintSet) -> list[_FItem]:
    """Steps 1 + 2: unit steps everywhere, IF guards pushed onto statements."""
    items: list[_FItem] = []
    for node in body:
        if isinstance(node, Statement):
            items.append(_GStmt(node, guard))
        elif isinstance(node, If):
            items.extend(_flatten(node.body, guard.conjoin(node.guard)))
        elif isinstance(node, Loop):
            inner = _flatten(node.body, guard)
            if node.step == 1:
                items.append(_FLoop(node.var, node.lower, node.upper, inner))
            else:
                # DO I = lb, ub, s  ->  DO I' = 1, K with I := lb + (I'-1)*s
                count = _trip_count(node.lower, node.upper, node.step)
                mapping = {node.var: node.lower + (Var(node.var) - 1) * node.step}
                rewritten: list[_FItem] = []
                for it in inner:
                    rewritten.append(_substitute_item(it, mapping))
                items.append(
                    _FLoop(node.var, Affine.const(1), count, rewritten)
                )
        elif isinstance(node, Call):
            raise NonAnalysableError(
                f"CALL {node.callee} reached the normaliser; "
                "run abstract inlining first"
            )
        else:  # pragma: no cover - defensive
            raise NonAnalysableError(f"unsupported IR node {node!r}")
    return items


def _substitute_item(item: _FItem, mapping) -> _FItem:
    if isinstance(item, _GStmt):
        return _GStmt(item.stmt.substitute(mapping), item.guard.substitute(mapping))
    body = [_substitute_item(it, mapping) for it in item.body]
    return _FLoop(
        item.var,
        item.lower.substitute(mapping),
        item.upper.substitute(mapping),
        body,
    )


def _max_depth(items: Sequence[_FItem]) -> int:
    depth = 0
    for it in items:
        if isinstance(it, _FLoop):
            depth = max(depth, 1 + _max_depth(it.body))
    return depth


_pad_counter = 0


def _fresh_pad_var() -> str:
    global _pad_counter
    _pad_counter += 1
    return f"_PAD{_pad_counter}"


def _sink(items: list[_FItem], depth: int, n: int) -> list[_FItem]:
    """Steps 3 + 4: sink statements into sibling loops; pad shallow nests."""
    has_loops = any(isinstance(it, _FLoop) for it in items)
    if not has_loops:
        if depth == n:
            return items  # innermost level: statements stay
        # Step 4: wrap the statements in a unit loop and keep sinking.
        pad = _FLoop(_fresh_pad_var(), Affine.const(1), Affine.const(1), list(items))
        pad.body = _sink(pad.body, depth + 1, n)
        return [pad]
    # Step 3: statements must sink into an adjacent sibling loop.
    loops: list[_FLoop] = []
    pending: list[_GStmt] = []
    for it in items:
        if isinstance(it, _GStmt):
            pending.append(it)
        else:
            if pending:
                # Sink forwards: guard with the first iteration of this loop.
                bound = Var(it.var).eq(it.lower)
                for g in pending:
                    g.guard = g.guard.conjoin(bound)
                it.body = list(pending) + it.body
                pending = []
            loops.append(it)
    if pending:
        # Trailing statements sink backwards into the last loop's last iteration.
        last = loops[-1]
        bound = Var(last.var).eq(last.upper)
        for g in pending:
            g.guard = g.guard.conjoin(bound)
        last.body = last.body + list(pending)
    for loop in loops:
        loop.body = _sink(loop.body, depth + 1, n)
    return loops


def _prune_empty(items: list[_FItem]) -> list[_FItem]:
    """Drop loops that contain no statements at any depth."""
    kept: list[_FItem] = []
    for it in items:
        if isinstance(it, _GStmt):
            kept.append(it)
        else:
            it.body = _prune_empty(it.body)
            if it.body:
                kept.append(it)
    return kept


def _build(loop: _FLoop, depth: int, ordinal: int, rename: dict[str, str]) -> NLoop:
    """Step 5: canonical renaming while materialising the NLoop tree."""
    if loop.var in rename:
        raise NonAffineError(
            f"loop variable {loop.var!r} is reused by an enclosing loop"
        )
    nloop = NLoop(
        depth,
        ordinal,
        loop.lower.rename(rename),
        loop.upper.rename(rename),
    )
    inner_rename = dict(rename)
    inner_rename[loop.var] = index_var(depth)
    label_prefix_done = False
    child_ordinal = 0
    for it in loop.body:
        if isinstance(it, _FLoop):
            child_ordinal += 1
            nloop.loops.append(_build(it, depth + 1, child_ordinal, inner_rename))
        else:
            label_prefix_done = True
            leaf = NLeaf(
                _label_placeholder, it.guard.rename(inner_rename), it.stmt.label
            )
            for ref in it.stmt.refs:
                leaf.add_ref(
                    ref.array,
                    tuple(s.rename(inner_rename) for s in ref.subscripts),
                    ref.is_write,
                )
            nloop.leaves.append(leaf)
    if nloop.loops and nloop.leaves:  # pragma: no cover - sinking prevents this
        raise NonAffineError("internal error: mixed loops and statements survive")
    del label_prefix_done
    return nloop


_label_placeholder: tuple[int, ...] = ()


def _assign_labels(loop: NLoop, path: tuple[int, ...]) -> None:
    label = path + (loop.ordinal,)
    for leaf in loop.leaves:
        leaf.label = label
    for child in loop.loops:
        _assign_labels(child, label)


def normalize(source: Union[Subroutine, Sequence[Node]], name: str = "") -> NormalizedProgram:
    """Run the full normalisation pipeline on a call-free body.

    Parameters
    ----------
    source:
        A :class:`~repro.ir.nodes.Subroutine` (typically the result of
        abstract inlining) or a raw list of IR nodes.
    name:
        A display name for the normalised program.

    Returns
    -------
    NormalizedProgram
        The loop tree with labels, guards and lexical positions assigned.
    """
    if isinstance(source, Subroutine):
        body: Sequence[Node] = source.body
        name = name or source.name
    else:
        body = source
        name = name or "anonymous"
    flat = _flatten(body, ConstraintSet.true())
    n = max(1, _max_depth(flat))
    sunk = _prune_empty(_sink(flat, 0, n))
    roots = []
    for ordinal, item in enumerate(sunk, start=1):
        assert isinstance(item, _FLoop)
        roots.append(_build(item, 1, ordinal, {}))
    for root in roots:
        _assign_labels(root, ())
    return NormalizedProgram(name, n, roots)
