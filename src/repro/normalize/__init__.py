"""Loop nest normalisation (Section 3.1 of the paper)."""

from repro.normalize.nprogram import (
    NLeaf,
    NLoop,
    NormalizedProgram,
    NRef,
    index_var,
)
from repro.normalize.pipeline import normalize

__all__ = [
    "NLeaf",
    "NLoop",
    "NormalizedProgram",
    "NRef",
    "index_var",
    "normalize",
]
