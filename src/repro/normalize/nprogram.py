"""The normalised program representation (output of Section 3.1).

After the five normalisation steps every statement sits inside an
``n``-dimensional loop nest, all loops have unit steps, and the loop variable
at depth ``k`` is ``Ik``.  The natural representation is a *loop tree*:

* :class:`NLoop` — a loop at depth ``d`` with affine bounds over
  ``I1..I(d-1)`` and an ordinal (its label component);
* :class:`NLeaf` — a guarded statement inside an innermost (depth ``n``)
  loop, carrying its references;
* :class:`NRef` — one reference with its *lexical position*, the global
  intra-iteration access index used by the ``≪``/``≫`` bracket rules of the
  interference sets (Section 4.1.2).

A leaf's *label* is the vector of ordinals along its path (Section 3.2), and
its *reference iteration space* (Section 3.3) is the
:class:`~repro.polyhedra.space.BoundedSpace` formed by the path's loop bounds
plus the leaf's guard.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from repro.polyhedra.affine import Affine
from repro.polyhedra.constraints import ConstraintSet
from repro.polyhedra.space import BoundedSpace
from repro.ir.arrays import Array


def index_var(depth: int) -> str:
    """The canonical loop variable at ``depth`` (1-based): ``I1``, ``I2``, …"""
    return f"I{depth}"


class NRef:
    """A reference of a normalised leaf statement."""

    __slots__ = ("array", "subscripts", "is_write", "lexpos", "leaf", "uid")

    def __init__(
        self,
        array: Array,
        subscripts: tuple[Affine, ...],
        is_write: bool,
        leaf: "NLeaf",
    ):
        self.array = array
        self.subscripts = subscripts
        self.is_write = is_write
        self.leaf = leaf
        self.lexpos: int = -1  # assigned when the tree is sealed
        self.uid: int = -1

    @property
    def label(self) -> tuple[int, ...]:
        """The loop label of the enclosing innermost loop."""
        return self.leaf.label

    def variables(self) -> frozenset[str]:
        """Loop variables appearing in the subscripts."""
        names: set[str] = set()
        for s in self.subscripts:
            names |= s.variables()
        return frozenset(names)

    def name(self) -> str:
        """A short human-readable identifier."""
        subs = ",".join(map(str, self.subscripts))
        kind = "W" if self.is_write else "R"
        return f"{self.leaf.stmt_label}:{self.array.name}({subs}):{kind}"

    def __repr__(self) -> str:
        return f"NRef({self.name()})"


class NLeaf:
    """A guarded statement inside an innermost loop."""

    __slots__ = ("label", "guard", "stmt_label", "refs")

    def __init__(
        self, label: tuple[int, ...], guard: ConstraintSet, stmt_label: str
    ):
        self.label = label
        self.guard = guard
        self.stmt_label = stmt_label
        self.refs: list[NRef] = []

    def add_ref(self, array: Array, subscripts: tuple[Affine, ...], is_write: bool):
        """Append a reference (access order = append order)."""
        ref = NRef(array, subscripts, is_write, self)
        self.refs.append(ref)
        return ref

    def __repr__(self) -> str:
        return f"NLeaf({self.stmt_label}@{self.label}, {len(self.refs)} refs)"


class NLoop:
    """A normalised loop at depth ``d`` (unit step, affine bounds)."""

    __slots__ = ("depth", "ordinal", "lower", "upper", "loops", "leaves")

    def __init__(self, depth: int, ordinal: int, lower: Affine, upper: Affine):
        self.depth = depth
        self.ordinal = ordinal
        self.lower = lower
        self.upper = upper
        self.loops: list["NLoop"] = []  # children at depth+1 (non-innermost)
        self.leaves: list[NLeaf] = []  # guarded statements (innermost only)

    @property
    def is_innermost(self) -> bool:
        """True when this loop directly contains statements."""
        return bool(self.leaves) or not self.loops

    def __repr__(self) -> str:
        return (
            f"NLoop(d={self.depth}, #{self.ordinal}, "
            f"{self.lower}..{self.upper}, "
            f"{len(self.loops)} loops, {len(self.leaves)} leaves)"
        )


class NormalizedProgram:
    """The whole normalised program: a forest of depth-1 loops.

    All properties guaranteed by Section 3.1 hold by construction:

    * all loops have unit steps,
    * all loop nests are ``n``-dimensional,
    * the loop variable at depth ``k`` is ``Ik``,
    * all statements are nested in ``n``-dimensional loop nests.
    """

    def __init__(self, name: str, depth: int, roots: Sequence[NLoop]):
        self.name = name
        self.depth = depth
        self.roots = list(roots)
        self.index_vars = tuple(index_var(d) for d in range(1, depth + 1))
        self.leaves: list[NLeaf] = []
        self.refs: list[NRef] = []
        self._loops_by_label: dict[tuple[int, ...], NLoop] = {}
        self._ris_cache: dict[tuple[int, ...], BoundedSpace] = {}
        self._seal()

    # -- construction ----------------------------------------------------------

    def _seal(self) -> None:
        """Index loops by label, collect leaves/refs, assign lexical positions."""

        def visit(loop: NLoop, path: tuple[int, ...]) -> None:
            label = path + (loop.ordinal,)
            self._loops_by_label[label] = loop
            if loop.leaves:
                lexpos = 0
                for leaf in loop.leaves:
                    if leaf.label != label:
                        raise ValueError(
                            f"leaf {leaf} label does not match its path {label}"
                        )
                    self.leaves.append(leaf)
                    for ref in leaf.refs:
                        ref.lexpos = lexpos
                        ref.uid = len(self.refs)
                        lexpos += 1
                        self.refs.append(ref)
            for child in loop.loops:
                visit(child, label)

        for root in self.roots:
            visit(root, ())

    # -- lookups -----------------------------------------------------------------

    def loop_at(self, label: tuple[int, ...]) -> NLoop:
        """The loop whose label is ``label``."""
        return self._loops_by_label[label]

    def loops_on_path(self, label: tuple[int, ...]) -> list[NLoop]:
        """The loops enclosing statements with this innermost label."""
        return [self.loop_at(label[: d + 1]) for d in range(len(label))]

    def ris(self, leaf: NLeaf) -> BoundedSpace:
        """The reference iteration space of ``leaf`` over ``(I1..In)``.

        Cached per ``(label, guard)`` pair; leaves sharing a label and a
        guard share the space object (and its memoised counts).
        """
        key = (leaf.label, leaf.guard)
        cached = self._ris_cache.get(key)
        if cached is not None:
            return cached
        bounds = [
            (loop.lower, loop.upper) for loop in self.loops_on_path(leaf.label)
        ]
        space = BoundedSpace(self.index_vars, bounds, leaf.guard)
        self._ris_cache[key] = space
        return space

    def iter_innermost(self) -> Iterator[NLoop]:
        """Yield every innermost loop (the loops containing leaves)."""

        def visit(loop: NLoop) -> Iterator[NLoop]:
            if loop.leaves or not loop.loops:
                yield loop
            for child in loop.loops:
                yield from visit(child)

        for root in self.roots:
            yield from visit(root)

    def __repr__(self) -> str:
        return (
            f"NormalizedProgram({self.name}, n={self.depth}, "
            f"{len(self.leaves)} leaves, {len(self.refs)} refs)"
        )
