"""Baseline estimators the paper compares against (Section 7, Table 7)."""

from repro.baselines.probabilistic import ProbabilisticReport, probabilistic_misses

__all__ = ["ProbabilisticReport", "probabilistic_misses"]
