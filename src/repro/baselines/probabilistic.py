"""A Fraguela-style probabilistic miss estimator (the Table 7 comparator).

The paper compares ``EstimateMisses`` against Fraguela, Doallo & Zapata's
probabilistic analytical method (PACT'99) on the MMT kernel over sixteen
cache configurations (Table 7).  That method never examines individual
iteration points: it models, per reference, the probability that the
accessed line survives its reuse window, using *footprints* (how many
distinct lines competing references touch in the window) and a uniform
set-mapping assumption.

This module implements an independent estimator in the same spirit:

* the reuse fraction along a reference's nearest reuse vector is computed
  exactly (a polyhedral count of the shifted-RIS intersection), the
  remainder being cold;
* the interference footprint of the window is estimated per intervening
  reference from its stride pattern (``lines ≈ iterations × min(1,
  stride/Ls)``), *not* by enumeration;
* the line is assumed to land in a uniformly random set, so eviction
  probability is ``P(Binomial(F, 1/num_sets) ≥ k)``.

Like the original, it is very fast and reasonably accurate for friendly
strides, but its footprint approximation degrades as the line size grows —
the qualitative behaviour Table 7 exhibits (Δ_P up to ~44% at Ls = 32).

Besides the paper's LRU model, ``policy="random"`` swaps in the
random-replacement eviction probability: under uniform set mapping an
interfering line fill lands in the target's set with probability ``1/S``
and then victimises the target's way with probability ``1/k``, so the
target survives ``F`` independent fills with probability
``(1 - 1/(S·k))^F`` and

    ``p_evict = 1 - (1 - 1/(S·k))^F``

— a closed form (the binomial probability generating function evaluated
at the per-fill survival rate) that needs no scipy at all, which is why
the LRU branch's ``binom`` import is lazy.  FIFO and tree-PLRU are not
stack algorithms and admit no such per-window closed form; asking for
them raises :class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReproError
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.polyhedra.affine import Var
from repro.polyhedra.space import BoundedSpace
from repro.reuse.generator import ReuseTable, build_reuse_table
from repro.reuse.ugs import linear_part
from repro.reuse.vectors import ReuseVector


@dataclass
class ProbabilisticReport:
    """Aggregate result of the probabilistic estimator."""

    cache: CacheConfig
    ref_ratios: dict[int, float] = field(default_factory=dict)
    populations: dict[int, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def total_accesses(self) -> float:
        """Total modelled accesses."""
        return sum(self.populations.values())

    @property
    def miss_ratio(self) -> float:
        """Population-weighted miss ratio in [0, 1]."""
        total = self.total_accesses
        if not total:
            return 0.0
        weighted = sum(
            self.ref_ratios[uid] * self.populations[uid]
            for uid in self.ref_ratios
        )
        return weighted / total

    @property
    def miss_ratio_percent(self) -> float:
        """Miss ratio as a percentage."""
        return 100.0 * self.miss_ratio


def _reuse_fraction(
    nprog: NormalizedProgram, ref: NRef, rv: ReuseVector
) -> float:
    """Exact fraction of consumer points whose producer point is in its RIS."""
    consumer_ris = nprog.ris(ref.leaf)
    total = consumer_ris.count()
    if total == 0:
        return 0.0
    x = rv.index_part()
    producer_ris = nprog.ris(rv.producer.leaf)
    # Shift the producer's bounds/guard by x: constraints on (I - x).
    shift = {
        var: Var(var) - dx for var, dx in zip(nprog.index_vars, x)
    }
    guard = consumer_ris.guard
    for d, (lo, hi) in enumerate(producer_ris.bounds):
        var = nprog.index_vars[d]
        shifted_var = shift[var]
        guard = guard.conjoin(shifted_var.ge(lo.substitute(shift)))
        guard = guard.conjoin(shifted_var.le(hi.substitute(shift)))
    guard = guard.conjoin(producer_ris.guard.substitute(shift))
    both = BoundedSpace(consumer_ris.dims, consumer_ris.bounds, guard)
    return both.count() / total


def _window_iterations(
    rv: ReuseVector, extents: list[int]
) -> int:
    """Approximate number of iteration points spanned by a reuse vector."""
    x = rv.index_part()
    labels = rv.label_part()
    n = len(x)
    span = 0
    for d in range(n):
        deeper = 1
        for e in range(d + 1, n):
            deeper *= max(1, extents[e])
        span += abs(x[d]) * deeper
        if labels[d]:
            # crossing to another nest at depth d re-runs deeper iterations
            span += deeper
    return max(1, span)


def _lines_per_iteration(
    ref: NRef, depth: int, line_bytes: int
) -> float:
    """Estimated distinct memory lines one reference touches per iteration."""
    m = linear_part(ref, depth)
    strides = ref.array.strides()
    esize = ref.array.element_size
    # stride of the fastest-varying (deepest) index with a non-zero coefficient
    for d in range(depth - 1, -1, -1):
        step_elems = sum(strides[dim] * m[dim][d] for dim in range(len(m)))
        if step_elems:
            return min(1.0, abs(step_elems) * esize / line_bytes)
    return 1.0 / max(1, line_bytes // esize)


def _depth_extents(nprog: NormalizedProgram) -> list[int]:
    extents = [1] * nprog.depth
    for leaf in nprog.leaves:
        ranges = nprog.ris(leaf).var_ranges()
        for d, var in enumerate(nprog.index_vars):
            lo, hi = ranges[var]
            extents[d] = max(extents[d], hi - lo + 1)
    return extents


def probabilistic_misses(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    reuse: ReuseTable | None = None,
    policy: Optional[str] = None,
) -> ProbabilisticReport:
    """Estimate the program miss ratio without examining iteration points.

    ``policy`` selects the eviction-probability model: ``"lru"`` (the
    default; the binomial survival model above) or ``"random"`` (the
    closed-form random-replacement equation).  Other simulator policies
    have no probabilistic closed form and raise
    :class:`~repro.errors.ReproError`.
    """
    from repro.sim.policy import resolve_policy

    policy = resolve_policy(policy)
    if policy not in ("lru", "random"):
        raise ReproError(
            f"no probabilistic closed form for policy {policy!r}; "
            f"only lru and random are modelled"
        )
    if policy == "lru":
        from scipy.stats import binom
    started = time.perf_counter()
    if reuse is None:
        reuse = build_reuse_table(nprog, cache.line_bytes)
    extents = _depth_extents(nprog)
    num_sets = cache.num_sets
    k = cache.assoc
    report = ProbabilisticReport(cache)
    lines_rate = {
        r.uid: _lines_per_iteration(r, nprog.depth, cache.line_bytes)
        for r in nprog.refs
    }
    population = {r.uid: nprog.ris(r.leaf).count() for r in nprog.refs}
    for ref in nprog.refs:
        vectors = reuse.vectors_for(ref)
        if not vectors or population[ref.uid] == 0:
            report.ref_ratios[ref.uid] = 1.0
            report.populations[ref.uid] = population[ref.uid]
            continue
        # The nearest vector dominates, but a thin group vector (e.g. a
        # diagonal producer) may cover few points — scan a handful and use
        # the best coverage, with the window of the first covering vector.
        rv = vectors[0]
        f_reuse = 0.0
        for candidate in vectors[:5]:
            f = _reuse_fraction(nprog, ref, candidate)
            if f > f_reuse:
                f_reuse = f
                rv = candidate
            if f_reuse > 0.999:
                break
        window = _window_iterations(rv, extents)
        # Footprint: distinct lines the other references push through the
        # cache inside the window, assuming they are active in it.
        footprint = 0.0
        for other in nprog.refs:
            if population[other.uid]:
                footprint += window * lines_rate[other.uid]
        fills = max(1, round(footprint))
        if policy == "random":
            p_evict = 1.0 - (1.0 - 1.0 / (num_sets * k)) ** fills
        else:
            p_conflict = min(1.0, 1.0 / num_sets)
            p_evict = float(binom.sf(k - 1, fills, p_conflict))
        report.ref_ratios[ref.uid] = (1.0 - f_reuse) + f_reuse * p_evict
        report.populations[ref.uid] = population[ref.uid]
    report.elapsed_seconds = time.perf_counter() - started
    return report
