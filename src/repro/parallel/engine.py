"""Parallel per-reference CME engine.

Once the reuse table and the walker order are fixed, the per-reference work
of ``FindMisses`` and ``EstimateMisses`` is embarrassingly parallel: each
reference owns a disjoint slice of the report and (for ``EstimateMisses``)
its own derived RNG seed ``seed ^ ref.uid``.  The engine shards references
across a :class:`concurrent.futures.ProcessPoolExecutor`:

* the immutable analysis state — ``(NormalizedProgram, MemoryLayout,
  CacheConfig, ReuseTable)`` — is pickled **once**, shipped to each worker
  through the pool initializer, and unpickled **once per worker**; every
  task afterwards only carries reference uids;
* workers run the exact same per-reference units as the serial solvers
  (:func:`~repro.cme.find.find_ref_misses`,
  :func:`~repro.cme.estimate.estimate_ref_misses`), so a parallel report is
  bit-identical to the serial one and ``MissReport.__eq__`` holds across
  ``jobs`` (timing fields are excluded from equality);
* references are dealt round-robin into a few chunks per worker, which
  balances the skewed RIS volumes of triangular and guarded spaces;
* when observability (:mod:`repro.obs`) is enabled in the parent, each task
  carries a flag telling the worker to record into its *own* registry and
  tracer; finished chunks ship a ``{"metrics", "spans"}`` snapshot back with
  the results and the parent folds it in under its ``parallel/solve`` span —
  so merged counters across any ``jobs`` equal the serial run's, and worker
  time appears nested in the parent's span tree.

Use :class:`ParallelEngine` to keep the pool (and the per-worker caches)
alive across several solves — e.g. sweeping cache associativities or
benchmarks plotting scaling curves — or the one-shot
:func:`solve_parallel` convenience wrapper.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, Optional, Sequence, TYPE_CHECKING

from repro import obs
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.reuse.generator import ReuseTable
from repro.cme.backend import make_classifier, resolve_backend
from repro.cme.result import MissReport, RefResult

if TYPE_CHECKING:  # repro.memo imports repro.cme.result — keep this lazy
    from repro.memo import Memoizer

#: Chunks dealt per worker; >1 smooths out skewed per-reference volumes.
CHUNKS_PER_JOB = 4

#: Per-worker cache: ``(NormalizedProgram, classifier)`` — the classifier is
#: built by :func:`repro.cme.backend.make_classifier` from the backend name
#: shipped in the payload, so every worker uses the caller's backend.
_STATE: Optional[tuple[NormalizedProgram, object]] = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a job count: ``None``/``0``/negative mean all CPUs."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _pool_context():
    """Prefer ``fork`` (cheap, inherits the interpreter) when available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _load_state(payload: bytes) -> None:
    """Unpickle the shared analysis state into this process's cache."""
    global _STATE
    nprog, layout, cache, reuse, backend = pickle.loads(payload)
    _STATE = (nprog, make_classifier(backend, nprog, layout, cache, reuse))


def _init_worker(payload: bytes) -> None:
    """Pool initializer: load the shared state once per worker.

    Observability starts *disabled* in every worker — with the ``fork``
    start method a worker would otherwise inherit a copy of the parent's
    already-accumulated metrics and double-count them on merge.  Each task
    carries its own flag to switch recording on per chunk.
    """
    _load_state(payload)
    obs.disable()


#: A solve task:
#: ``(method, uids, confidence, width, seed, ship_obs, ship_timeline)``.
Task = tuple[str, tuple[int, ...], float, float, int, bool, bool]


def _solve_chunk(task: Task) -> tuple[list[RefResult], float, Optional[dict]]:
    """Solve one chunk of reference uids inside a worker process.

    Returns ``(results, solver_seconds, obs_snapshot)``.  The snapshot is
    ``None`` unless the task's ``ship_obs`` flag is set, in which case the
    worker-local metrics and spans recorded while solving this chunk are
    serialised and the worker-side instruments reset (so chunks never
    double-count).  ``ship_timeline`` additionally ships the individual
    span events (with this worker's pid, so the parent's Chrome-trace
    export renders each worker as its own lane) and the worker's peak RSS
    (``parallel.worker_peak_rss_bytes``).
    """
    from repro.cme.estimate import estimate_ref_misses
    from repro.cme.find import find_ref_misses
    from repro.cme.regions import region_ref_misses
    from repro.obs.resource import peak_rss_bytes

    method, uids, confidence, width, seed, ship_obs, ship_timeline = task
    assert _STATE is not None, "worker used before initialisation"
    nprog, classifier = _STATE
    if ship_obs and not obs.is_enabled():
        obs.enable()
    if ship_timeline:
        obs.enable_timeline()
    started = time.perf_counter()
    results: list[RefResult] = []
    for uid in uids:
        ref = nprog.refs[uid]
        if method == "find":
            results.append(find_ref_misses(classifier, nprog, ref))
        elif method == "regions":
            results.append(region_ref_misses(classifier, nprog, ref))
        else:
            results.append(
                estimate_ref_misses(
                    classifier, nprog, ref, confidence, width, seed
                )
            )
    solver_seconds = time.perf_counter() - started
    snap: Optional[dict] = None
    if ship_obs:
        obs.histogram("parallel.worker_peak_rss_bytes").observe(
            float(peak_rss_bytes())
        )
        snap = {
            "metrics": obs.registry().snapshot(),
            "spans": obs.tracer().snapshot(),
        }
        if ship_timeline:
            snap["timeline"] = obs.timeline_events()
        obs.reset()
    return results, solver_seconds, snap


def _deal_chunks(uids: Sequence[int], jobs: int) -> list[tuple[int, ...]]:
    """Round-robin the uids into at most ``jobs * CHUNKS_PER_JOB`` chunks."""
    n = max(1, min(len(uids), jobs * CHUNKS_PER_JOB))
    return [tuple(uids[i::n]) for i in range(n)]


class ParallelEngine:
    """A process pool bound to one prepared analysis state.

    The constructor pickles the state once; :meth:`find` and
    :meth:`estimate` then dispatch per-reference chunks.  The pool is
    created lazily (and only when ``jobs > 1``) so an engine with
    ``jobs=1`` is a zero-overhead serial solver — handy for sweeping the
    ``jobs`` axis in benchmarks with one code path.
    """

    def __init__(
        self,
        nprog: NormalizedProgram,
        layout: MemoryLayout,
        cache: CacheConfig,
        reuse: ReuseTable,
        jobs: Optional[int] = None,
        memo: Optional["Memoizer"] = None,
        backend: Optional[str] = None,
    ):
        self.nprog = nprog
        self.layout = layout
        self.cache = cache
        self.reuse = reuse
        self.memo = memo
        self.jobs = resolve_jobs(jobs)
        # Resolve the backend in the parent so every worker (and the serial
        # path) builds the same classifier, even if workers could differ in
        # what they can import.
        self.backend = resolve_backend(backend)
        self._payload = pickle.dumps(
            (nprog, layout, cache, reuse, self.backend),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(self._payload,),
            )
        return self._pool

    # -- solving -----------------------------------------------------------------

    def find(self, refs: Optional[Iterable[NRef]] = None) -> MissReport:
        """Exhaustive ``FindMisses`` across the pool."""
        return self._solve("find", refs, 0.0, 0.0, 0)

    def regions(self, refs: Optional[Iterable[NRef]] = None) -> MissReport:
        """Regional ``RegionMisses`` across the pool (equal to :meth:`find`)."""
        return self._solve("regions", refs, 0.0, 0.0, 0)

    def estimate(
        self,
        refs: Optional[Iterable[NRef]] = None,
        confidence: float = 0.95,
        width: float = 0.05,
        seed: int = 0,
    ) -> MissReport:
        """Sampling ``EstimateMisses`` across the pool."""
        return self._solve("estimate", refs, confidence, width, seed)

    def _solve(
        self,
        method: str,
        refs: Optional[Iterable[NRef]],
        confidence: float,
        width: float,
        seed: int,
    ) -> MissReport:
        started = time.perf_counter()
        targets = list(refs) if refs is not None else list(self.nprog.refs)
        # Memo planning happens in the parent, against its preloaded store
        # snapshot, *before* sharding: only one representative per distinct
        # equation system is dispatched; workers never touch the store.  The
        # identical planning code runs in the serial solvers, so ``memo.*``
        # counters match across any ``jobs`` value.
        plan = None
        if self.memo is not None:
            plan = self.memo.session(
                method,
                self.nprog,
                self.layout,
                self.cache,
                self.reuse,
                confidence,
                width,
                seed,
            ).plan(targets)
            targets = plan.solve
        uids = [ref.uid for ref in targets]
        name = {
            "find": "FindMisses",
            "regions": "RegionMisses",
        }.get(method, "EstimateMisses")
        report = MissReport(name, self.cache, jobs=self.jobs)
        obs.gauge("parallel.jobs").set(self.jobs)
        with obs.span("parallel/solve"):
            if not uids:
                by_uid: dict[int, RefResult] = {}
            elif self.jobs <= 1 or len(uids) <= 1:
                # Serial path through the identical chunk code (no pool).
                # ``ship_obs=False``: this process's live instruments record
                # directly, so nothing must be snapshot/reset here.
                _load_state(self._payload)
                results, solver, _ = _solve_chunk(
                    (method, tuple(uids), confidence, width, seed, False, False)
                )
                by_uid = {r.ref_uid: r for r in results}
                report.solver_seconds = solver
            else:
                pool = self._ensure_pool()
                ship_obs = obs.is_enabled()
                ship_timeline = obs.timeline_enabled()
                chunks = _deal_chunks(uids, self.jobs)
                shard_hist = obs.histogram("parallel.shard_size")
                for chunk in chunks:
                    shard_hist.observe(len(chunk))
                obs.counter("parallel.chunks").inc(len(chunks))
                tasks = [
                    (method, chunk, confidence, width, seed, ship_obs,
                     ship_timeline)
                    for chunk in chunks
                ]
                by_uid = {}
                solver = 0.0
                worker_hist = obs.histogram("parallel.worker_seconds")
                try:
                    for results, chunk_seconds, snap in pool.map(
                        _solve_chunk, tasks
                    ):
                        solver += chunk_seconds
                        worker_hist.observe(chunk_seconds)
                        if snap is not None:
                            obs.merge_snapshot(snap)
                        for r in results:
                            by_uid[r.ref_uid] = r
                except BrokenProcessPool:
                    # A worker died mid-task (OOM-killed, crashed).  The
                    # per-reference work is deterministic and the parent
                    # holds the full state, so recover by re-solving the
                    # whole shard serially — identical results, degraded
                    # wall time, and a counter so the ledger records it.
                    obs.counter("parallel.pool_broken").inc()
                    self.close()
                    _load_state(self._payload)
                    results, solver, _ = _solve_chunk(
                        (method, tuple(uids), confidence, width, seed,
                         False, False)
                    )
                    by_uid = {r.ref_uid: r for r in results}
                report.solver_seconds = solver
            # Reassemble in the caller's reference order: identical to serial.
            for uid in uids:
                report.results[uid] = by_uid[uid]
            if plan is not None:
                for ref in plan.solve:
                    plan.add(ref, by_uid[ref.uid])
                report.results = plan.finish(report.results)
        report.elapsed_seconds = time.perf_counter() - started
        if obs.is_enabled():
            report.metrics = obs.snapshot()
        return report


def solve_parallel(
    method: str,
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    reuse: ReuseTable,
    jobs: Optional[int],
    refs: Optional[Iterable[NRef]] = None,
    confidence: float = 0.95,
    width: float = 0.05,
    seed: int = 0,
    memo: Optional["Memoizer"] = None,
    backend: Optional[str] = None,
) -> MissReport:
    """One-shot parallel solve (ephemeral :class:`ParallelEngine`).

    ``method`` is ``"find"``, ``"estimate"`` or ``"regions"``; everything
    else mirrors the serial solvers in :mod:`repro.cme`.
    """
    if method not in ("find", "estimate", "regions"):
        raise ValueError(
            f"unknown method {method!r}; use 'find', 'estimate' or 'regions'"
        )
    with ParallelEngine(nprog, layout, cache, reuse, jobs, memo, backend) as engine:
        if method == "find":
            return engine.find(refs)
        if method == "regions":
            return engine.regions(refs)
        return engine.estimate(refs, confidence, width, seed)
