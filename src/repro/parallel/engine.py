"""Parallel per-reference CME engine.

Once the reuse table and the walker order are fixed, the per-reference work
of ``FindMisses`` and ``EstimateMisses`` is embarrassingly parallel: each
reference owns a disjoint slice of the report and (for ``EstimateMisses``)
its own derived RNG seed ``seed ^ ref.uid``.  The engine shards references
across a :class:`concurrent.futures.ProcessPoolExecutor`:

* the immutable analysis state — ``(NormalizedProgram, MemoryLayout,
  CacheConfig, ReuseTable)`` — is pickled **once**, shipped to each worker
  through the pool initializer, and unpickled **once per worker**; every
  task afterwards only carries reference uids;
* workers run the exact same per-reference units as the serial solvers
  (:func:`~repro.cme.find.find_ref_misses`,
  :func:`~repro.cme.estimate.estimate_ref_misses`), so a parallel report is
  bit-identical to the serial one and ``MissReport.__eq__`` holds across
  ``jobs`` (timing fields are excluded from equality);
* references are dealt round-robin into a few chunks per worker, which
  balances the skewed RIS volumes of triangular and guarded spaces.

Use :class:`ParallelEngine` to keep the pool (and the per-worker caches)
alive across several solves — e.g. sweeping cache associativities or
benchmarks plotting scaling curves — or the one-shot
:func:`solve_parallel` convenience wrapper.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Optional, Sequence

from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.reuse.generator import ReuseTable
from repro.cme.point import PointClassifier
from repro.cme.result import MissReport, RefResult

#: Chunks dealt per worker; >1 smooths out skewed per-reference volumes.
CHUNKS_PER_JOB = 4

#: Per-worker cache: ``(NormalizedProgram, PointClassifier)``.
_STATE: Optional[tuple[NormalizedProgram, PointClassifier]] = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a job count: ``None``/``0``/negative mean all CPUs."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _pool_context():
    """Prefer ``fork`` (cheap, inherits the interpreter) when available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle the shared state once per worker."""
    global _STATE
    nprog, layout, cache, reuse = pickle.loads(payload)
    _STATE = (nprog, PointClassifier(nprog, layout, cache, reuse))


def _solve_chunk(
    task: tuple[str, tuple[int, ...], float, float, int],
) -> tuple[list[RefResult], float]:
    """Solve one chunk of reference uids inside a worker process."""
    from repro.cme.estimate import estimate_ref_misses
    from repro.cme.find import find_ref_misses

    method, uids, confidence, width, seed = task
    assert _STATE is not None, "worker used before initialisation"
    nprog, classifier = _STATE
    started = time.perf_counter()
    results: list[RefResult] = []
    for uid in uids:
        ref = nprog.refs[uid]
        if method == "find":
            results.append(find_ref_misses(classifier, nprog, ref))
        else:
            results.append(
                estimate_ref_misses(
                    classifier, nprog, ref, confidence, width, seed
                )
            )
    return results, time.perf_counter() - started


def _deal_chunks(uids: Sequence[int], jobs: int) -> list[tuple[int, ...]]:
    """Round-robin the uids into at most ``jobs * CHUNKS_PER_JOB`` chunks."""
    n = max(1, min(len(uids), jobs * CHUNKS_PER_JOB))
    return [tuple(uids[i::n]) for i in range(n)]


class ParallelEngine:
    """A process pool bound to one prepared analysis state.

    The constructor pickles the state once; :meth:`find` and
    :meth:`estimate` then dispatch per-reference chunks.  The pool is
    created lazily (and only when ``jobs > 1``) so an engine with
    ``jobs=1`` is a zero-overhead serial solver — handy for sweeping the
    ``jobs`` axis in benchmarks with one code path.
    """

    def __init__(
        self,
        nprog: NormalizedProgram,
        layout: MemoryLayout,
        cache: CacheConfig,
        reuse: ReuseTable,
        jobs: Optional[int] = None,
    ):
        self.nprog = nprog
        self.jobs = resolve_jobs(jobs)
        self._payload = pickle.dumps(
            (nprog, layout, cache, reuse), protocol=pickle.HIGHEST_PROTOCOL
        )
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(self._payload,),
            )
        return self._pool

    # -- solving -----------------------------------------------------------------

    def find(self, refs: Optional[Iterable[NRef]] = None) -> MissReport:
        """Exhaustive ``FindMisses`` across the pool."""
        return self._solve("find", refs, 0.0, 0.0, 0)

    def estimate(
        self,
        refs: Optional[Iterable[NRef]] = None,
        confidence: float = 0.95,
        width: float = 0.05,
        seed: int = 0,
    ) -> MissReport:
        """Sampling ``EstimateMisses`` across the pool."""
        return self._solve("estimate", refs, confidence, width, seed)

    def _solve(
        self,
        method: str,
        refs: Optional[Iterable[NRef]],
        confidence: float,
        width: float,
        seed: int,
    ) -> MissReport:
        started = time.perf_counter()
        targets = list(refs) if refs is not None else list(self.nprog.refs)
        uids = [ref.uid for ref in targets]
        name = "FindMisses" if method == "find" else "EstimateMisses"
        cache = pickle.loads(self._payload)[2]
        report = MissReport(name, cache, jobs=self.jobs)
        if self.jobs <= 1 or len(uids) <= 1:
            # Serial path through the identical chunk code (no pool).
            _init_worker(self._payload)
            results, solver = _solve_chunk(
                (method, tuple(uids), confidence, width, seed)
            )
            by_uid = {r.ref_uid: r for r in results}
            report.solver_seconds = solver
        else:
            pool = self._ensure_pool()
            tasks = [
                (method, chunk, confidence, width, seed)
                for chunk in _deal_chunks(uids, self.jobs)
            ]
            by_uid = {}
            solver = 0.0
            for results, chunk_seconds in pool.map(_solve_chunk, tasks):
                solver += chunk_seconds
                for r in results:
                    by_uid[r.ref_uid] = r
            report.solver_seconds = solver
        # Reassemble in the caller's reference order: identical to serial.
        for uid in uids:
            report.results[uid] = by_uid[uid]
        report.elapsed_seconds = time.perf_counter() - started
        return report


def solve_parallel(
    method: str,
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    reuse: ReuseTable,
    jobs: Optional[int],
    refs: Optional[Iterable[NRef]] = None,
    confidence: float = 0.95,
    width: float = 0.05,
    seed: int = 0,
) -> MissReport:
    """One-shot parallel solve (ephemeral :class:`ParallelEngine`).

    ``method`` is ``"find"`` or ``"estimate"``; everything else mirrors the
    serial solvers in :mod:`repro.cme`.
    """
    if method not in ("find", "estimate"):
        raise ValueError(f"unknown method {method!r}; use 'find' or 'estimate'")
    with ParallelEngine(nprog, layout, cache, reuse, jobs) as engine:
        if method == "find":
            return engine.find(refs)
        return engine.estimate(refs, confidence, width, seed)
