"""Process-pool parallelisation of the per-reference CME solves."""

from repro.parallel.engine import (
    CHUNKS_PER_JOB,
    ParallelEngine,
    resolve_jobs,
    solve_parallel,
)

__all__ = [
    "CHUNKS_PER_JOB",
    "ParallelEngine",
    "resolve_jobs",
    "solve_parallel",
]
