"""The cache model of Section 2 of the paper.

A uniprocessor data cache: ``k``-way set associative with LRU replacement and
a fetch-on-write policy, so writes and reads are modelled identically.
``Cs`` (cache size) and ``Ls`` (line size) follow the paper's notation; the
paper quotes ``Ls`` in array elements, so a helper converts from elements of
a given size.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """A ``k``-way set associative cache with LRU replacement.

    Attributes
    ----------
    size_bytes:
        Total capacity ``Cs`` in bytes.
    line_bytes:
        Line size ``Ls`` in bytes.
    assoc:
        Associativity ``k`` (1 = direct mapped).
    """

    size_bytes: int
    line_bytes: int
    assoc: int = 1

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.size_bytes <= 0 or self.assoc <= 0:
            raise ValueError("cache parameters must be positive")
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError(
                f"cache size {self.size_bytes} is not divisible by "
                f"line_bytes*assoc = {self.line_bytes * self.assoc}"
            )

    @staticmethod
    def kb(size_kb: int, line_bytes: int = 32, assoc: int = 1) -> "CacheConfig":
        """The paper's usual spec: ``CacheConfig.kb(32, 32, k)`` = 32KB/32B."""
        return CacheConfig(size_kb * 1024, line_bytes, assoc)

    @property
    def num_lines(self) -> int:
        """Number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.num_lines // self.assoc

    def line_elements(self, element_size: int = 8) -> int:
        """``Ls`` in array elements of the given size (paper notation)."""
        return max(1, self.line_bytes // element_size)

    def memory_line(self, address: int) -> int:
        """The memory line containing byte ``address``."""
        return address // self.line_bytes

    def set_of_line(self, line: int) -> int:
        """The cache set a memory line maps to."""
        return line % self.num_sets

    def set_of_address(self, address: int) -> int:
        """The cache set a byte address maps to."""
        return (address // self.line_bytes) % self.num_sets

    def describe(self) -> str:
        """Human-readable summary, e.g. ``32KB/32B 2-way``."""
        kb = self.size_bytes / 1024
        way = "direct" if self.assoc == 1 else f"{self.assoc}-way"
        return f"{kb:g}KB/{self.line_bytes}B {way}"
