"""Memory layout: compile-time base addresses for column-major arrays.

The paper requires "the base addresses of all non-register variables … known
at compile time" (Section 3).  :class:`MemoryLayout` assigns byte base
addresses to root arrays in declaration order; :class:`~repro.ir.ArrayView`
objects (the renamed actuals of abstract inlining) resolve to the base of
their storage root, so ``@B = @B1 = @B2`` exactly as in Fig. 5.

Inter-array padding is supported directly because choosing pad sizes is one
of the paper's motivating applications ("guide compiler locality
optimisations", e.g. Rivera & Tseng-style padding).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import LayoutError
from repro.ir.arrays import Array


class MemoryLayout:
    """Byte base addresses for a set of root arrays.

    Parameters
    ----------
    arrays:
        Root arrays in placement order.  Views must not be passed; they
        inherit placement from their storage root.
    base:
        Address of the first array.
    align:
        Alignment (bytes) applied to every base address.
    pad_bytes:
        Extra bytes placed *after* each array: either a single int applied
        uniformly or a mapping from array name to pad size.
    """

    def __init__(
        self,
        arrays: Sequence[Array],
        base: int = 0,
        align: int = 8,
        pad_bytes: int | Mapping[str, int] = 0,
    ):
        if align <= 0:
            raise LayoutError("alignment must be positive")
        self._bases: dict[str, int] = {}
        self._arrays: list[Array] = []
        cursor = base
        for array in arrays:
            if array.storage() is not array:
                raise LayoutError(
                    f"{array.name} is a view; lay out its storage root instead"
                )
            if array.name in self._bases:
                raise LayoutError(f"duplicate array name {array.name!r}")
            elements = array.known_elements()
            if elements is None:
                raise LayoutError(
                    f"root array {array.name} has an assumed-size dimension; "
                    "its total size must be known to lay out memory"
                )
            cursor = -(-cursor // align) * align  # round up
            self._bases[array.name] = cursor
            self._arrays.append(array)
            cursor += elements * array.element_size
            if isinstance(pad_bytes, int):
                cursor += pad_bytes
            else:
                cursor += pad_bytes.get(array.name, 0)
        self._end = cursor

    @property
    def arrays(self) -> tuple[Array, ...]:
        """The laid-out root arrays in placement order."""
        return tuple(self._arrays)

    @property
    def total_bytes(self) -> int:
        """One past the last allocated byte."""
        return self._end

    def base_of(self, array: Array) -> int:
        """Base byte address of ``array`` (views resolve to their root)."""
        root = array.storage()
        try:
            return self._bases[root.name]
        except KeyError:
            raise LayoutError(f"array {root.name} has no assigned base") from None

    def __contains__(self, array: Array) -> bool:
        return array.storage().name in self._bases

    def signature(self) -> tuple:
        """Canonical content signature: sorted ``(name, base)`` pairs.

        Placement *addresses* are the only thing downstream analyses read
        (set mapping, line equality), so two layouts that assign the same
        bases are interchangeable even if built in a different placement
        order.  Sorting by name makes the signature order-independent and
        hashable — memo keys and caches rely on this.
        """
        return tuple(sorted(self._bases.items()))

    def __eq__(self, other) -> bool:
        if not isinstance(other, MemoryLayout):
            return NotImplemented
        return self._bases == other._bases

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        rows = ", ".join(f"{a.name}@{self._bases[a.name]}" for a in self._arrays)
        return f"MemoryLayout({rows})"


def layout_for_refs(
    refs: Iterable,
    base: int = 0,
    align: int = 8,
    pad_bytes: int | Mapping[str, int] = 0,
    declared_order: Optional[Sequence[Array]] = None,
) -> MemoryLayout:
    """Build a layout covering the storage roots of a collection of references.

    ``declared_order`` pins the placement order (e.g. the program's
    declaration order); any additional roots found in the references are
    appended in first-use order.
    """
    roots: list[Array] = []
    seen: set[str] = set()
    if declared_order:
        for a in declared_order:
            root = a.storage()
            if root.name not in seen:
                seen.add(root.name)
                roots.append(root)
    for ref in refs:
        root = ref.array.storage()
        if root.name not in seen:
            seen.add(root.name)
            roots.append(root)
    return MemoryLayout(roots, base=base, align=align, pad_bytes=pad_bytes)
