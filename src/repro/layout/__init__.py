"""Memory layout and cache model (Section 2 of the paper)."""

from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout, layout_for_refs

__all__ = ["CacheConfig", "MemoryLayout", "layout_for_refs"]
