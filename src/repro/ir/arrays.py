"""Arrays, array views and scalars of the program model.

The paper analyses FORTRAN programs, so arrays are column-major and 1-based.
The sizes of an array in all but the last dimension must be known statically
(Section 3); the last dimension may be assumed-size (``*`` in FORTRAN,
``None`` here), which is enough to compute addresses because the column-major
stride of the last dimension never enters the address formula of earlier
dimensions.

:class:`ArrayView` implements the *renamed* actuals of abstract inlining
(Fig. 5): a view shares the storage (base address) of a root array but is
addressed with its own shape — exactly the ``B1``/``B2`` arrays of the paper,
whose declarations "do not compile" but can be analysed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import LayoutError
from repro.polyhedra.affine import Affine, AffineLike

#: Default element size in bytes (``REAL*8``).
REAL8 = 8


class Array:
    """A statically-declared column-major array.

    Parameters
    ----------
    name:
        The FORTRAN-style identifier.
    dims:
        Dimension extents; only the last may be ``None`` (assumed size).
    element_size:
        Bytes per element (default ``REAL*8`` = 8).
    is_formal:
        True for a formal parameter of a subroutine (no storage of its own;
        the inliner rebinds references to it).
    """

    def __init__(
        self,
        name: str,
        dims: Sequence[Optional[int]],
        element_size: int = REAL8,
        is_formal: bool = False,
    ):
        dims = tuple(dims)
        if not dims:
            raise LayoutError(f"array {name} must have at least one dimension")
        for k, d in enumerate(dims):
            if d is None:
                if k != len(dims) - 1:
                    raise LayoutError(
                        f"array {name}: only the last dimension may be assumed-size"
                    )
            elif not isinstance(d, int) or d <= 0:
                raise LayoutError(
                    f"array {name}: dimension {k + 1} must be a positive integer"
                )
        self.name = name
        self.dims = dims
        self.element_size = element_size
        self.is_formal = is_formal

    # -- geometry ---------------------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    def strides(self) -> tuple[int, ...]:
        """Column-major strides in *elements* (first dimension is contiguous)."""
        strides = [1]
        for d in self.dims[:-1]:
            if d is None:
                raise LayoutError(
                    f"array {self.name}: assumed-size dimension has no stride"
                )
            strides.append(strides[-1] * d)
        return tuple(strides)

    def known_elements(self) -> Optional[int]:
        """Total element count, or ``None`` for assumed-size arrays."""
        total = 1
        for d in self.dims:
            if d is None:
                return None
            total *= d
        return total

    def element_offset(self, subscripts: Sequence[AffineLike]) -> Affine:
        """Element offset of ``A(s1, …, sk)`` from the array base (1-based)."""
        if len(subscripts) != self.ndim:
            raise LayoutError(
                f"array {self.name} has {self.ndim} dimensions, "
                f"got {len(subscripts)} subscripts"
            )
        offset = Affine.const(0)
        for sub, stride in zip(subscripts, self.strides()):
            offset = offset + (Affine.coerce(sub) - 1) * stride
        return offset

    def storage(self) -> "Array":
        """The root array owning the storage (``self`` for a plain array)."""
        return self

    def __getitem__(self, subscripts):
        """Build a (read) reference: ``A[i, j]`` — sugar for the builder DSL."""
        from repro.ir.nodes import Ref

        if not isinstance(subscripts, tuple):
            subscripts = (subscripts,)
        return Ref(self, subscripts)

    def __repr__(self) -> str:
        dims = ", ".join("*" if d is None else str(d) for d in self.dims)
        return f"{self.name}({dims})"


class ArrayView(Array):
    """A renamed window onto another array's storage (Fig. 5's ``B1``, ``B2``).

    The view has its own shape (taken from the formal parameter declaration)
    but its storage — hence its base address — is that of the root array the
    actual parameter named.  Offsets of subscripted actuals are folded by the
    inliner into the first subscript, which is address-exact because the
    first dimension of a column-major array has unit stride.
    """

    def __init__(
        self,
        name: str,
        parent: Array,
        dims: Sequence[Optional[int]],
        element_size: Optional[int] = None,
    ):
        super().__init__(
            name,
            dims,
            element_size if element_size is not None else parent.element_size,
        )
        self.parent = parent

    def storage(self) -> Array:
        """The root array owning the storage."""
        return self.parent.storage()

    def __repr__(self) -> str:
        dims = ", ".join("*" if d is None else str(d) for d in self.dims)
        return f"{self.name}({dims})@{self.storage().name}"


class Scalar:
    """A scalar variable.

    Following the paper's prototype (the *Opts* component "allocates
    variables to registers or memory"), scalars are register-allocated by
    default and contribute no memory accesses; pass ``in_memory=True`` to
    model a memory-resident scalar as a one-element array instead.
    """

    def __init__(self, name: str, element_size: int = REAL8, in_memory: bool = False):
        self.name = name
        self.element_size = element_size
        self.in_memory = in_memory
        self._backing: Optional[Array] = None

    def backing_array(self) -> Array:
        """The one-element array backing a memory-resident scalar."""
        if not self.in_memory:
            raise LayoutError(f"scalar {self.name} is register-allocated")
        if self._backing is None:
            self._backing = Array(self.name, (1,), self.element_size)
        return self._backing

    def __repr__(self) -> str:
        return f"Scalar({self.name})"
