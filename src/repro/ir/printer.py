"""FORTRAN-style pretty printer for the IR.

Used for debugging, for the documentation examples (Figs. 1, 2 and 5 of the
paper are regenerated from the IR) and for the ``#lines`` column of the
program statistics (Table 5).
"""

from __future__ import annotations

from typing import Sequence

from repro.polyhedra.constraints import EQ
from repro.ir.nodes import (
    Call,
    If,
    Loop,
    Node,
    Program,
    Statement,
    Subroutine,
)


def _format_statement(stmt: Statement) -> str:
    reads = [repr(r).rstrip("=W") for r in stmt.refs if not r.is_write]
    writes = [repr(r)[: -len("=W")] for r in stmt.refs if r.is_write]
    label = f"{stmt.label}: " if stmt.label else ""
    if writes and reads:
        return f"{label}{writes[0]} = {' + '.join(reads)}"
    if writes:
        return f"{label}{writes[0]} = ..."
    if reads:
        return f"{label}... = {' + '.join(reads)}"
    return f"{label}CONTINUE"


def _format_guard(node: If) -> str:
    parts = []
    for c in node.guard:
        op = ".EQ." if c.kind == EQ else ".GE."
        parts.append(f"({c.expr} {op} 0)")
    return " .AND. ".join(parts) if parts else "(.TRUE.)"


def _print_body(body: Sequence[Node], out: list[str], indent: int) -> None:
    pad = "  " * indent
    for node in body:
        if isinstance(node, Loop):
            step = f", {node.step}" if node.step != 1 else ""
            out.append(f"{pad}DO {node.var} = {node.lower}, {node.upper}{step}")
            _print_body(node.body, out, indent + 1)
            out.append(f"{pad}ENDDO")
        elif isinstance(node, If):
            out.append(f"{pad}IF {_format_guard(node)} THEN")
            _print_body(node.body, out, indent + 1)
            out.append(f"{pad}ENDIF")
        elif isinstance(node, Statement):
            out.append(f"{pad}{_format_statement(node)}")
        elif isinstance(node, Call):
            actuals = ", ".join(map(repr, node.actuals))
            out.append(f"{pad}CALL {node.callee}({actuals})")
        else:  # pragma: no cover - defensive
            out.append(f"{pad}! <unknown node {node!r}>")


def print_subroutine(sub: Subroutine) -> str:
    """Render one subroutine as FORTRAN-style text."""
    out: list[str] = []
    formals = ", ".join(f.name for f in sub.formals)
    out.append(f"SUBROUTINE {sub.name}({formals})")
    for f in sub.formals:
        if f.array is not None:
            dims = ", ".join("*" if d is None else str(d) for d in f.array.dims)
            out.append(f"  DIMENSION {f.name}({dims})")
    for a in sub.local_arrays:
        dims = ", ".join("*" if d is None else str(d) for d in a.dims)
        out.append(f"  DIMENSION {a.name}({dims})")
    _print_body(sub.body, out, 1)
    out.append("END")
    return "\n".join(out)


def print_program(program: Program) -> str:
    """Render the whole program as FORTRAN-style text."""
    out: list[str] = [f"PROGRAM {program.name}"]
    for a in program.global_arrays:
        dims = ", ".join("*" if d is None else str(d) for d in a.dims)
        out.append(f"  DIMENSION {a.name}({dims})")
    out.append("")
    for sub in program.subroutines.values():
        out.append(print_subroutine(sub))
        out.append("")
    return "\n".join(out)


def line_count(program: Program) -> int:
    """Number of non-blank printed lines (the Table 5 ``#lines`` metric)."""
    return sum(1 for line in print_program(program).splitlines() if line.strip())
