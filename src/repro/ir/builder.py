"""A fluent Python DSL for building programs in the paper's model.

The kernels of Fig. 8 and the whole programs of Table 5 are written with this
builder.  A small example — the subroutine of Fig. 1::

    pb = ProgramBuilder("FOO", n=...)
    A = pb.array("A", (N,))
    B = pb.array("B", (N, N))
    with pb.subroutine("MAIN"):
        with pb.do("I1", 2, N) as i1:
            pb.assign(A[i1 - 1])                       # S1
            with pb.do("I2", i1, N) as i2:
                pb.assign(B[i2 - 1, i1], A[i2 - 1])    # S2
            with pb.do("I2", 1, N) as i2:
                pb.read(B[i2, i1])                     # S3
        with pb.do("I1", 1, N - 1) as i1:
            pb.assign(A[i1 + 1])                       # S5
    program = pb.build()

Loop variables are ordinary :class:`~repro.polyhedra.affine.Var` expressions,
array indexing builds references, and ``assign(lhs, *reads)`` records reads
in order followed by the write — matching the access order the analysis and
the simulator both use.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Union

from repro.errors import ReproError
from repro.polyhedra.affine import Affine, AffineLike, Var
from repro.polyhedra.constraints import Constraint, ConstraintSet
from repro.ir.arrays import Array, Scalar
from repro.ir.nodes import (
    Actual,
    ActualArray,
    ActualElement,
    ActualExpr,
    ActualScalar,
    Call,
    If,
    Loop,
    Node,
    Program,
    Ref,
    Statement,
    Subroutine,
)


class ProgramBuilder:
    """Builds a :class:`~repro.ir.nodes.Program` with nested ``with`` blocks."""

    def __init__(self, name: str):
        self.program = Program(name)
        self._current_sub: Optional[Subroutine] = None
        self._body_stack: list[list[Node]] = []
        self._stmt_counter = 0

    # -- declarations ------------------------------------------------------------

    def array(self, name: str, dims: Sequence[int], element_size: int = 8) -> Array:
        """Declare a global array."""
        array = Array(name, dims, element_size)
        self.program.global_arrays.append(array)
        return array

    def scalar(self, name: str, in_memory: bool = False) -> Scalar:
        """Declare a (register-allocated by default) scalar."""
        return Scalar(name, in_memory=in_memory)

    # -- subroutine scope -----------------------------------------------------------

    @contextmanager
    def subroutine(self, name: str) -> Iterator["SubroutineBuilder"]:
        """Open a subroutine scope; yields a :class:`SubroutineBuilder`."""
        if self._current_sub is not None:
            raise ReproError("subroutines cannot be nested")
        sub = Subroutine(name)
        self.program.add_subroutine(sub)
        self._current_sub = sub
        self._body_stack.append(sub.body)
        try:
            yield SubroutineBuilder(self, sub)
        finally:
            self._body_stack.pop()
            self._current_sub = None

    # -- structured statements ---------------------------------------------------------

    def _emit(self, node: Node) -> None:
        if not self._body_stack:
            raise ReproError("statements must appear inside a subroutine")
        self._body_stack[-1].append(node)

    @contextmanager
    def do(
        self, var: str, lower: AffineLike, upper: AffineLike, step: int = 1
    ) -> Iterator[Var]:
        """Open a DO loop scope; yields the loop variable as an expression."""
        loop = Loop(var, lower, upper, step=step)
        self._emit(loop)
        self._body_stack.append(loop.body)
        try:
            yield Var(var)
        finally:
            self._body_stack.pop()

    @contextmanager
    def if_(self, *conditions: Union[Constraint, ConstraintSet]) -> Iterator[None]:
        """Open an IF scope guarded by the conjunction of ``conditions``."""
        guard = ConstraintSet.true()
        for c in conditions:
            guard = guard.conjoin(c)
        node = If(guard)
        self._emit(node)
        self._body_stack.append(node.body)
        try:
            yield None
        finally:
            self._body_stack.pop()

    # -- leaf statements -------------------------------------------------------------------

    def _next_label(self) -> str:
        self._stmt_counter += 1
        return f"S{self._stmt_counter}"

    def assign(self, lhs: Ref, *reads: Ref, label: str = "") -> Statement:
        """Emit ``lhs = f(reads…)``: reads in order, then the write of ``lhs``."""
        stmt = Statement.assign(lhs, reads, label or self._next_label())
        self._emit(stmt)
        return stmt

    def read(self, *reads: Ref, label: str = "") -> Statement:
        """Emit a statement that only reads (e.g. ``… = B(I2, I1)``)."""
        stmt = Statement(tuple(reads), label or self._next_label())
        self._emit(stmt)
        return stmt

    def stmt(self, refs: Sequence[Ref], label: str = "") -> Statement:
        """Emit a statement with an explicit reference access order."""
        stmt = Statement(refs, label or self._next_label())
        self._emit(stmt)
        return stmt

    def call(self, callee: str, *actuals) -> Call:
        """Emit ``CALL callee(actuals…)``.

        Actuals are classified automatically: an :class:`Array` is a whole
        array, a :class:`Ref` is a subscripted element, a :class:`Scalar`
        a scalar, and a string marks a non-analysable expression.
        """
        converted: list[Actual] = []
        for a in actuals:
            if isinstance(a, Actual):
                converted.append(a)
            elif isinstance(a, Array):
                converted.append(ActualArray(a))
            elif isinstance(a, Ref):
                converted.append(ActualElement(a.array, a.subscripts))
            elif isinstance(a, Scalar):
                converted.append(ActualScalar(a))
            elif isinstance(a, str):
                converted.append(ActualExpr(a))
            elif isinstance(a, (int, Affine)):
                converted.append(ActualExpr(str(a)))
            else:
                raise ReproError(f"cannot pass {a!r} as an actual parameter")
        node = Call(callee, converted)
        self._emit(node)
        return node

    def build(self) -> Program:
        """Return the completed program."""
        return self.program


class SubroutineBuilder:
    """Scope handle yielded by :meth:`ProgramBuilder.subroutine`."""

    def __init__(self, pb: ProgramBuilder, sub: Subroutine):
        self._pb = pb
        self.subroutine = sub

    def scalar_formal(self, name: str) -> Scalar:
        """Declare a scalar formal parameter."""
        return self.subroutine.add_scalar_formal(name)

    def array_formal(self, name: str, dims: Sequence[Optional[int]]) -> Array:
        """Declare an array formal parameter (last dim may be ``None`` = ``*``)."""
        return self.subroutine.add_array_formal(name, dims)

    def local_array(self, name: str, dims: Sequence[int]) -> Array:
        """Declare a local array with static storage."""
        return self.subroutine.add_local_array(name, dims)
