"""IR nodes: references, statements, loops, IFs, calls, subroutines, programs.

This is the structured program representation of Section 3 of the paper —
subroutines made of possibly IF statements, CALL statements and arbitrarily
nested loops, where every array subscript, loop bound and IF condition is an
affine expression of the enclosing loop indices.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.errors import NonAffineError, UnknownSubroutineError
from repro.polyhedra.affine import Affine, AffineLike
from repro.polyhedra.constraints import ConstraintSet
from repro.ir.arrays import Array, Scalar


class Ref:
    """A single array reference ``A(s1, …, sk)``, read or write."""

    __slots__ = ("array", "subscripts", "is_write")

    def __init__(
        self, array: Array, subscripts: Sequence[AffineLike], is_write: bool = False
    ):
        if len(subscripts) != array.ndim:
            raise NonAffineError(
                f"reference to {array.name}: expected {array.ndim} subscripts, "
                f"got {len(subscripts)}"
            )
        self.array = array
        self.subscripts = tuple(Affine.coerce(s) for s in subscripts)
        self.is_write = is_write

    def as_write(self) -> "Ref":
        """The same reference marked as a write."""
        return Ref(self.array, self.subscripts, True)

    def substitute(self, mapping: Mapping[str, AffineLike]) -> "Ref":
        """Substitute loop variables in every subscript."""
        return Ref(
            self.array,
            [s.substitute(mapping) for s in self.subscripts],
            self.is_write,
        )

    def rename(self, mapping: Mapping[str, str]) -> "Ref":
        """Rename loop variables in every subscript."""
        return Ref(
            self.array, [s.rename(mapping) for s in self.subscripts], self.is_write
        )

    def rebind(self, array: Array, subscripts: Sequence[AffineLike]) -> "Ref":
        """A reference to a different array with new subscripts (inlining)."""
        return Ref(array, subscripts, self.is_write)

    def variables(self) -> frozenset[str]:
        """Loop variables appearing in the subscripts."""
        names: set[str] = set()
        for s in self.subscripts:
            names |= s.variables()
        return frozenset(names)

    def __repr__(self) -> str:
        subs = ", ".join(map(str, self.subscripts))
        mark = "=W" if self.is_write else ""
        return f"{self.array.name}({subs}){mark}"


class Statement:
    """An executable statement with its memory references in access order.

    For an assignment ``lhs = rhs`` the references are the reads of the
    right-hand side in source order followed by the write of the left-hand
    side — the "relative access order of memory references" the paper takes
    from its load/store-level IR.
    """

    __slots__ = ("label", "refs")

    def __init__(self, refs: Sequence[Ref], label: str = ""):
        self.refs = tuple(refs)
        self.label = label

    @staticmethod
    def assign(write: Ref, reads: Sequence[Ref] = (), label: str = "") -> "Statement":
        """An assignment: reads in order, then the write."""
        return Statement(tuple(reads) + (write.as_write(),), label)

    def substitute(self, mapping: Mapping[str, AffineLike]) -> "Statement":
        """Substitute loop variables in every reference."""
        return Statement([r.substitute(mapping) for r in self.refs], self.label)

    def rename(self, mapping: Mapping[str, str]) -> "Statement":
        """Rename loop variables in every reference."""
        return Statement([r.rename(mapping) for r in self.refs], self.label)

    def __repr__(self) -> str:
        name = self.label or "S"
        return f"{name}:{list(self.refs)!r}"


class Loop:
    """A DO loop with affine bounds and a constant integer step."""

    __slots__ = ("var", "lower", "upper", "step", "body")

    def __init__(
        self,
        var: str,
        lower: AffineLike,
        upper: AffineLike,
        body: Sequence["Node"] = (),
        step: int = 1,
    ):
        if not isinstance(step, int) or step == 0:
            raise NonAffineError(f"loop {var}: step must be a non-zero integer")
        self.var = var
        self.lower = Affine.coerce(lower)
        self.upper = Affine.coerce(upper)
        self.step = step
        self.body = list(body)

    def __repr__(self) -> str:
        s = f", {self.step}" if self.step != 1 else ""
        return f"DO {self.var} = {self.lower}, {self.upper}{s} [{len(self.body)} items]"


class If:
    """A guarded block: the conjunction ``guard`` must hold for the body.

    The paper's model requires conditions to be analysable at compile time
    (expressions of loop indices and constants); we represent them as
    conjunctions of affine equalities/inequalities.
    """

    __slots__ = ("guard", "body")

    def __init__(self, guard: ConstraintSet, body: Sequence["Node"] = ()):
        self.guard = guard
        self.body = list(body)

    def __repr__(self) -> str:
        return f"IF {self.guard!r} [{len(self.body)} items]"


class Actual:
    """Base class of actual parameters at a call site."""

    __slots__ = ()


class ActualArray(Actual):
    """A whole-array actual: ``CALL f(..., A, ...)``."""

    __slots__ = ("array",)

    def __init__(self, array: Array):
        self.array = array

    def __repr__(self) -> str:
        return self.array.name


class ActualElement(Actual):
    """A subscripted actual with an affine access: ``CALL f(..., A(i,j), ...)``."""

    __slots__ = ("array", "subscripts")

    def __init__(self, array: Array, subscripts: Sequence[AffineLike]):
        self.array = array
        self.subscripts = tuple(Affine.coerce(s) for s in subscripts)

    def __repr__(self) -> str:
        return f"{self.array.name}({', '.join(map(str, self.subscripts))})"


class ActualScalar(Actual):
    """A scalar variable actual."""

    __slots__ = ("scalar",)

    def __init__(self, scalar: Scalar):
        self.scalar = scalar

    def __repr__(self) -> str:
        return self.scalar.name


class ActualExpr(Actual):
    """A non-analysable actual (general expression, indirection, …)."""

    __slots__ = ("text",)

    def __init__(self, text: str = "<expr>"):
        self.text = text

    def __repr__(self) -> str:
        return self.text


class Call:
    """A CALL statement."""

    __slots__ = ("callee", "actuals")

    def __init__(self, callee: str, actuals: Sequence[Actual] = ()):
        self.callee = callee
        self.actuals = list(actuals)

    def __repr__(self) -> str:
        return f"CALL {self.callee}({', '.join(map(repr, self.actuals))})"


Node = Union[Loop, If, Statement, Call]


class Formal:
    """A formal parameter declaration of a subroutine."""

    __slots__ = ("name", "array", "scalar")

    def __init__(self, name: str, array: Optional[Array], scalar: Optional[Scalar]):
        self.name = name
        self.array = array
        self.scalar = scalar

    @property
    def is_scalar(self) -> bool:
        """True for a scalar formal."""
        return self.scalar is not None

    def __repr__(self) -> str:
        return f"Formal({self.name})"


class Subroutine:
    """A subroutine: formals, local arrays and a body of IR nodes."""

    def __init__(self, name: str):
        self.name = name
        self.formals: list[Formal] = []
        self.local_arrays: list[Array] = []
        self.body: list[Node] = []

    def add_scalar_formal(self, name: str) -> Scalar:
        """Declare a scalar formal parameter."""
        scalar = Scalar(name)
        self.formals.append(Formal(name, None, scalar))
        return scalar

    def add_array_formal(self, name: str, dims: Sequence[Optional[int]]) -> Array:
        """Declare an array formal parameter."""
        array = Array(name, dims, is_formal=True)
        self.formals.append(Formal(name, array, None))
        return array

    def add_local_array(self, name: str, dims: Sequence[int]) -> Array:
        """Declare a local array (static storage, as in FORTRAN SAVE)."""
        array = Array(name, dims)
        self.local_arrays.append(array)
        return array

    def formal_by_name(self, name: str) -> Formal:
        """Look up a formal by name."""
        for f in self.formals:
            if f.name == name:
                return f
        raise KeyError(f"subroutine {self.name} has no formal {name!r}")

    def __repr__(self) -> str:
        return f"Subroutine({self.name}, {len(self.formals)} formals)"


class Program:
    """A whole program: global arrays plus a set of subroutines.

    Global arrays model FORTRAN COMMON blocks / main-program arrays whose
    base addresses are known at compile time, which the paper requires for
    its miss equations to be solvable.
    """

    def __init__(self, name: str, entry: str = "MAIN"):
        self.name = name
        self.entry = entry
        self.global_arrays: list[Array] = []
        self.subroutines: dict[str, Subroutine] = {}

    def add_global_array(self, name: str, dims: Sequence[int]) -> Array:
        """Declare a global (COMMON-style) array."""
        array = Array(name, dims)
        self.global_arrays.append(array)
        return array

    def add_subroutine(self, sub: Subroutine) -> Subroutine:
        """Register a subroutine."""
        self.subroutines[sub.name] = sub
        return sub

    def subroutine(self, name: str) -> Subroutine:
        """Look up a subroutine by name."""
        try:
            return self.subroutines[name]
        except KeyError:
            raise UnknownSubroutineError(name) from None

    @property
    def main(self) -> Subroutine:
        """The entry subroutine."""
        return self.subroutine(self.entry)

    def all_arrays(self) -> list[Array]:
        """Every root array with storage, in declaration order."""
        arrays = list(self.global_arrays)
        for sub in self.subroutines.values():
            arrays.extend(sub.local_arrays)
        return arrays

    def __repr__(self) -> str:
        return f"Program({self.name}, {len(self.subroutines)} subroutines)"


def walk_nodes(body: Iterable[Node]) -> Iterator[Node]:
    """Yield every node of a body, depth first, in source order."""
    for node in body:
        yield node
        if isinstance(node, (Loop, If)):
            yield from walk_nodes(node.body)


def statements_of(body: Iterable[Node]) -> Iterator[Statement]:
    """Yield every :class:`Statement` of a body, depth first."""
    for node in walk_nodes(body):
        if isinstance(node, Statement):
            yield node


def calls_of(body: Iterable[Node]) -> Iterator[Call]:
    """Yield every :class:`Call` of a body, depth first."""
    for node in walk_nodes(body):
        if isinstance(node, Call):
            yield node
