"""Program intermediate representation (the paper's program model, Section 3).

The IR represents FORTRAN-style programs with regular computations:
subroutines containing IF statements, CALL statements and arbitrarily nested
DO loops, with affine loop bounds, affine subscripts and compile-time-known
array shapes and base addresses.  Data-dependent constructs are excluded by
construction (building them raises a typed error from :mod:`repro.errors`).
"""

from repro.ir.arrays import Array, ArrayView, Scalar, REAL8
from repro.ir.builder import ProgramBuilder, SubroutineBuilder
from repro.ir.nodes import (
    Actual,
    ActualArray,
    ActualElement,
    ActualExpr,
    ActualScalar,
    Call,
    Formal,
    If,
    Loop,
    Node,
    Program,
    Ref,
    Statement,
    Subroutine,
    calls_of,
    statements_of,
    walk_nodes,
)
from repro.ir.printer import line_count, print_program, print_subroutine
from repro.ir.stats import ProgramStats, program_stats

__all__ = [
    "Array",
    "ArrayView",
    "Scalar",
    "REAL8",
    "ProgramBuilder",
    "SubroutineBuilder",
    "Actual",
    "ActualArray",
    "ActualElement",
    "ActualExpr",
    "ActualScalar",
    "Call",
    "Formal",
    "If",
    "Loop",
    "Node",
    "Program",
    "Ref",
    "Statement",
    "Subroutine",
    "calls_of",
    "statements_of",
    "walk_nodes",
    "line_count",
    "print_program",
    "print_subroutine",
    "ProgramStats",
    "program_stats",
]
