"""Whole-program statistics — the metrics of Table 5 of the paper.

Table 5 characterises the analysed programs by ``#lines``, ``#subroutines``,
``#call-statements`` and ``#references``.  :func:`program_stats` computes the
same four numbers for any IR program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.nodes import Program, calls_of, statements_of
from repro.ir.printer import line_count


@dataclass(frozen=True)
class ProgramStats:
    """The Table 5 row for one program."""

    name: str
    lines: int
    subroutines: int
    call_statements: int
    references: int

    def as_row(self) -> tuple[str, int, int, int, int]:
        """The row in Table 5 column order."""
        return (
            self.name,
            self.lines,
            self.subroutines,
            self.call_statements,
            self.references,
        )


def program_stats(program: Program) -> ProgramStats:
    """Compute the Table 5 statistics for ``program``."""
    n_calls = 0
    n_refs = 0
    for sub in program.subroutines.values():
        n_calls += sum(1 for _ in calls_of(sub.body))
        for stmt in statements_of(sub.body):
            n_refs += len(stmt.refs)
    return ProgramStats(
        name=program.name,
        lines=line_count(program),
        subroutines=len(program.subroutines),
        call_statements=n_calls,
        references=n_refs,
    )
