"""Persistent JSON-lines store for memoized per-reference CME solutions.

On-disk format (``<cache-dir>/cme-memo.jsonl``)::

    {"schema": "repro.memo/v1", "fingerprint": "<sha256 of solver sources>"}
    {"k": "<hex key>", "p": [population, analysed, cold, replacement, hits]}
    {"k": "...", "p": [...]}

The first line is the header.  A missing, unparsable or mismatched header
(wrong schema version *or* wrong code fingerprint) marks the whole file
stale: :meth:`MemoStore.load` returns no entries, bumps the
``memo.store.invalid`` counter, and the next :meth:`MemoStore.append`
rewrites the file from scratch under the current header.  Individually
corrupt lines (truncation, bad JSON, malformed payloads) are skipped with
the same counter bump — a damaged store degrades to a cold run, never to a
crash or a wrong result.
"""

from __future__ import annotations

import json
import os
from typing import Mapping, Optional, Sequence

from repro import obs
from repro.memo.key import code_fingerprint

#: On-disk schema version; bump on any change to the file format.
STORE_SCHEMA = "repro.memo/v1"

#: File name used inside a ``--cache-dir`` directory.
STORE_FILENAME = "cme-memo.jsonl"


def _valid_payload(payload) -> bool:
    """True for a well-formed ``[population, analysed, cold, repl, hits]``."""
    if not isinstance(payload, list) or len(payload) != 5:
        return False
    if not all(isinstance(n, int) and n >= 0 for n in payload):
        return False
    return payload[1] == payload[2] + payload[3] + payload[4]


class MemoStore:
    """One JSON-lines solution store bound to a path and a fingerprint."""

    def __init__(self, path: str, fingerprint: Optional[str] = None):
        self.path = path
        self.fingerprint = fingerprint or code_fingerprint()
        self._stale = False  # set by load(); forces a full rewrite on append

    @classmethod
    def at(cls, cache_dir: str) -> "MemoStore":
        """The store inside ``cache_dir`` (created if missing)."""
        os.makedirs(cache_dir, exist_ok=True)
        return cls(os.path.join(cache_dir, STORE_FILENAME))

    def _header(self) -> str:
        return json.dumps(
            {"schema": STORE_SCHEMA, "fingerprint": self.fingerprint},
            separators=(",", ":"),
        )

    def load(self) -> dict:
        """Read every valid entry, keyed by hex key.

        Never raises on a damaged file: a bad header invalidates the whole
        store, bad lines are skipped, and each problem bumps
        ``memo.store.invalid``.
        """
        entries: dict[str, list] = {}
        try:
            fh = open(self.path, "r", encoding="utf-8")
        except OSError:
            return entries
        with fh:
            header_line = fh.readline()
            try:
                header = json.loads(header_line)
                ok = (
                    isinstance(header, dict)
                    and header.get("schema") == STORE_SCHEMA
                    and header.get("fingerprint") == self.fingerprint
                )
            except ValueError:
                ok = False
            if not ok:
                self._stale = True
                obs.counter("memo.store.invalid").inc()
                return entries
            for line in fh:
                try:
                    entry = json.loads(line)
                    key = entry["k"]
                    payload = entry["p"]
                    if not isinstance(key, str) or not _valid_payload(payload):
                        raise ValueError(line)
                except (ValueError, KeyError, TypeError):
                    obs.counter("memo.store.invalid").inc()
                    continue
                entries[key] = payload
        obs.counter("memo.store.loaded").inc(len(entries))
        return entries

    def append(self, entries: Mapping[str, Sequence[int]]) -> None:
        """Persist ``entries``; rewrites the file when missing or stale."""
        fresh = self._stale or not os.path.exists(self.path)
        if not entries and not fresh:
            return
        with open(self.path, "w" if fresh else "a", encoding="utf-8") as fh:
            if fresh:
                fh.write(self._header() + "\n")
                self._stale = False
            for key, payload in entries.items():
                fh.write(
                    json.dumps(
                        {"k": key, "p": list(payload)}, separators=(",", ":")
                    )
                    + "\n"
                )
        obs.counter("memo.store.appended").inc(len(entries))
