"""Persistent JSON-lines store for memoized per-reference CME solutions.

On-disk format (``<cache-dir>/cme-memo.jsonl``)::

    {"schema": "repro.memo/v1", "fingerprint": "<sha256 of solver sources>"}
    {"k": "<hex key>", "p": [population, analysed, cold, replacement, hits]}
    {"k": "...", "p": [...]}

The first line is the header.  A missing, unparsable or mismatched header
(wrong schema version *or* wrong code fingerprint) marks the whole file
stale: :meth:`MemoStore.load` returns no entries, bumps the
``memo.store.invalid`` counter, and the next :meth:`MemoStore.append`
rewrites the file from scratch under the current header.  Individually
corrupt lines (truncation, bad JSON, malformed payloads) are skipped with
the same counter bump — a damaged store degrades to a cold run, never to a
crash or a wrong result.

Concurrent writers
------------------

One store file may be appended to by many threads *and* many processes at
once (the service daemon's dispatchers, a ``--jobs`` process pool, several
CLI runs sharing a ``--cache-dir``).  :meth:`MemoStore.append` is safe
under all of them:

* every append is serialised under an advisory lock on a ``.lock``
  sibling file (``fcntl.flock``; a no-op on platforms without ``fcntl``,
  where the remaining guarantees still hold);
* appended entries are emitted as **one** ``os.write`` on an ``O_APPEND``
  descriptor — POSIX appends are atomic per ``write``, so concurrent
  appends interleave at line-batch granularity and never tear a line;
* a fresh/stale file is rewritten to a private temp file and published
  with ``os.replace`` — readers and other writers only ever observe a
  complete, headered file.

Entries are idempotent (same key ⇒ same payload for one fingerprint), so
the duplicate keys that concurrent cold runs may both persist are
harmless: ``load`` keeps the last occurrence.
"""

from __future__ import annotations

import json
import os
from typing import Mapping, Optional, Sequence

try:
    import fcntl
except ImportError:  # non-POSIX: single-write O_APPEND is the only guard
    fcntl = None

from repro import obs
from repro.memo.key import code_fingerprint

#: On-disk schema version; bump on any change to the file format.
STORE_SCHEMA = "repro.memo/v1"

#: File name used inside a ``--cache-dir`` directory.
STORE_FILENAME = "cme-memo.jsonl"


class _FileLock:
    """Advisory inter-process lock on ``path`` (no-op without ``fcntl``)."""

    def __init__(self, path: str):
        self.path = path
        self._fd: Optional[int] = None

    def __enter__(self) -> "_FileLock":
        if fcntl is not None:
            self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc) -> None:
        if self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


def _valid_payload(payload) -> bool:
    """True for a well-formed ``[population, analysed, cold, repl, hits]``."""
    if not isinstance(payload, list) or len(payload) != 5:
        return False
    if not all(isinstance(n, int) and n >= 0 for n in payload):
        return False
    return payload[1] == payload[2] + payload[3] + payload[4]


class MemoStore:
    """One JSON-lines solution store bound to a path and a fingerprint."""

    def __init__(self, path: str, fingerprint: Optional[str] = None):
        self.path = path
        self.fingerprint = fingerprint or code_fingerprint()
        self._stale = False  # set by load(); forces a full rewrite on append

    @classmethod
    def at(cls, cache_dir: str) -> "MemoStore":
        """The store inside ``cache_dir`` (created if missing)."""
        os.makedirs(cache_dir, exist_ok=True)
        return cls(os.path.join(cache_dir, STORE_FILENAME))

    def _header(self) -> str:
        return json.dumps(
            {"schema": STORE_SCHEMA, "fingerprint": self.fingerprint},
            separators=(",", ":"),
        )

    def load(self) -> dict:
        """Read every valid entry, keyed by hex key.

        Never raises on a damaged file: a bad header invalidates the whole
        store, bad lines are skipped, and each problem bumps
        ``memo.store.invalid``.
        """
        entries: dict[str, list] = {}
        try:
            fh = open(self.path, "r", encoding="utf-8")
        except OSError:
            return entries
        with fh:
            header_line = fh.readline()
            try:
                header = json.loads(header_line)
                ok = (
                    isinstance(header, dict)
                    and header.get("schema") == STORE_SCHEMA
                    and header.get("fingerprint") == self.fingerprint
                )
            except ValueError:
                ok = False
            if not ok:
                self._stale = True
                obs.counter("memo.store.invalid").inc()
                return entries
            for line in fh:
                try:
                    entry = json.loads(line)
                    key = entry["k"]
                    payload = entry["p"]
                    if not isinstance(key, str) or not _valid_payload(payload):
                        raise ValueError(line)
                except (ValueError, KeyError, TypeError):
                    obs.counter("memo.store.invalid").inc()
                    continue
                entries[key] = payload
        obs.counter("memo.store.loaded").inc(len(entries))
        return entries

    def append(self, entries: Mapping[str, Sequence[int]]) -> None:
        """Persist ``entries``; rewrites the file when missing or stale.

        Safe under concurrent writers — threads and processes — see the
        module docstring for the exact guarantees.
        """
        if not entries and not self._stale and os.path.exists(self.path):
            return
        lines = "".join(
            json.dumps({"k": key, "p": list(payload)}, separators=(",", ":"))
            + "\n"
            for key, payload in entries.items()
        )
        with _FileLock(self.path + ".lock"):
            # Re-check under the lock: a concurrent writer may have
            # created/rewritten the file since we looked.
            fresh = self._stale or not os.path.exists(self.path)
            if fresh:
                tmp = f"{self.path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as fh:
                    fh.write(self._header() + "\n" + lines)
                os.replace(tmp, self.path)
                self._stale = False
            elif lines:
                fd = os.open(
                    self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
                )
                try:
                    os.write(fd, lines.encode("utf-8"))
                finally:
                    os.close(fd)
        obs.counter("memo.store.appended").inc(len(entries))
