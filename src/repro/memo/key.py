"""Canonical structural keys for per-reference CME analysis units.

A key must capture *everything* the per-reference solvers read, so that two
references with equal keys provably receive identical ``RefResult`` tallies:

* the reference's **interference span** — the contiguous run of top-level
  nests from the earliest producer of any of its reuse vectors through its
  own nest.  ``Walker.walk_between`` only ever visits accesses between the
  producer and consumer positions, so nests outside the span can never
  enter a reuse window of the reference;
* the **structure** of every nest in the span: loop bounds, IF guards and
  the ordered references of every statement (array strides, element sizes,
  subscripts, read/write kind) — with loop variables replaced by positional
  dimension indices and nests identified by their *offset inside the span*,
  which is what makes keys invariant under loop-variable renaming and the
  reordering of independent nests;
* the **memory placement** of every storage root used in the span,
  expressed relative to the span's smallest base rounded down to a multiple
  of ``num_sets * line_bytes`` — translating the whole layout by a whole
  number of cache extents changes no line/set relationship, so such
  translations share keys;
* the reference's own **reuse vectors** in solver order (the generator's
  global extents can differ between otherwise identical spans, so the
  vectors are part of the key rather than re-derived from it);
* the **cache geometry** ``(C, Ls, k)``.

``EstimateMisses`` keys additionally carry ``(confidence, width,
seed ^ ref.uid)`` — the per-reference RNG seed — so warm replays are
bit-identical to the sampling run that produced them.

Keys deliberately do *not* hash the solver implementation; that is the job
of :func:`code_fingerprint`, which the persistent store records once per
file so a solver change invalidates every stored entry at load time.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from typing import Callable, Optional, Sequence

from repro.errors import AnalysisError
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NLeaf, NLoop, NormalizedProgram, NRef
from repro.polyhedra.affine import Affine
from repro.polyhedra.constraints import EQ, ConstraintSet
from repro.reuse.generator import ReuseTable

#: Version tag hashed into every key; bump on any change to the key layout.
KEY_SCHEMA = "repro.memo.key/1"

#: Modules whose source code determines solver outcomes.  The persistent
#: store stamps their combined hash into its header: editing any of them
#: (including this module) invalidates every stored entry.
FINGERPRINT_MODULES = (
    "repro.cme.point",
    "repro.cme.find",
    "repro.cme.estimate",
    "repro.iteration.walker",
    "repro.iteration.position",
    "repro.polyhedra.affine",
    "repro.polyhedra.constraints",
    "repro.polyhedra.space",
    "repro.polyhedra.intsolve",
    "repro.reuse.generator",
    "repro.reuse.ugs",
    "repro.reuse.vectors",
    "repro.stats.confidence",
    "repro.layout.cache",
    "repro.layout.memory",
    "repro.memo.key",
)

_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over the source of every solver-relevant module (cached)."""
    global _fingerprint_cache
    if _fingerprint_cache is None:
        h = hashlib.sha256()
        for name in FINGERPRINT_MODULES:
            module = importlib.import_module(name)
            with open(module.__file__, "rb") as fh:
                h.update(name.encode())
                h.update(b"\0")
                h.update(fh.read())
                h.update(b"\0")
        _fingerprint_cache = h.hexdigest()
    return _fingerprint_cache


def _affine_doc(expr: Affine) -> list:
    """``[const, [[dim, coeff], ...]]`` with positional dimension indices."""
    terms = []
    for name, coeff in expr.coeffs.items():
        if not name.startswith("I"):
            raise AnalysisError(f"unexpected variable {name!r} in {expr}")
        terms.append([int(name[1:]) - 1, coeff])
    terms.sort()
    return [expr.constant, terms]


def _guard_doc(guard: ConstraintSet) -> list:
    """Order-canonical guard document (conjunction order is irrelevant)."""
    return sorted(
        [0 if c.kind == EQ else 1, _affine_doc(c.expr)] for c in guard
    )


class KeyBuilder:
    """Computes canonical keys for the references of one analysis state.

    One builder is bound to a ``(NormalizedProgram, MemoryLayout,
    CacheConfig, ReuseTable)`` quadruple — exactly the state a solver run is
    bound to — and caches span documents and per-reference fragments, so
    sweeping all references of a program costs one structural walk per
    distinct interference span.
    """

    def __init__(
        self,
        nprog: NormalizedProgram,
        layout: MemoryLayout,
        cache: CacheConfig,
        reuse: ReuseTable,
    ):
        self.nprog = nprog
        self.layout = layout
        self.cache = cache
        self.reuse = reuse
        self._ord2idx = {root.ordinal: i for i, root in enumerate(nprog.roots)}
        self._set_span = cache.num_sets * cache.line_bytes
        self._geometry = [cache.size_bytes, cache.line_bytes, cache.assoc]
        self._span_docs: dict[tuple[int, int], list] = {}
        self._locators: dict[int, list] = {}
        self._fragments: dict[int, str] = {}

    # -- canonical structure ---------------------------------------------------

    def _locator(self, ref: NRef) -> list:
        """``[sibling-index path below the root, lexpos]`` — the position of
        a reference inside its own nest, independent of ordinal numbering."""
        loc = self._locators.get(ref.uid)
        if loc is None:
            label = ref.leaf.label
            path: list[int] = []
            node = self.nprog.loop_at(label[:1])
            for d in range(1, len(label)):
                child = self.nprog.loop_at(label[: d + 1])
                path.append(node.loops.index(child))
                node = child
            loc = [path, ref.lexpos]
            self._locators[ref.uid] = loc
        return loc

    def _ref_doc(self, ref: NRef, storage_idx: Callable) -> list:
        array = ref.array
        return [
            "R",
            storage_idx(array),
            array.element_size,
            list(array.strides()),
            [_affine_doc(s) for s in ref.subscripts],
            1 if ref.is_write else 0,
        ]

    def _leaf_doc(self, leaf: NLeaf, storage_idx: Callable) -> list:
        return [
            "S",
            _guard_doc(leaf.guard),
            [self._ref_doc(r, storage_idx) for r in leaf.refs],
        ]

    def _loop_doc(self, loop: NLoop, storage_idx: Callable) -> list:
        return [
            "L",
            _affine_doc(loop.lower),
            _affine_doc(loop.upper),
            [self._loop_doc(c, storage_idx) for c in loop.loops],
            [self._leaf_doc(l, storage_idx) for l in loop.leaves],
        ]

    def _span_doc(self, first: int, last: int) -> list:
        """Structure + relative placement of the nests ``roots[first..last]``."""
        doc = self._span_docs.get((first, last))
        if doc is not None:
            return doc
        storages: list = []
        index: dict[int, int] = {}

        def storage_idx(array) -> int:
            root = array.storage()
            i = index.get(id(root))
            if i is None:
                i = len(storages)
                index[id(root)] = i
                storages.append(root)
            return i

        roots = [
            self._loop_doc(r, storage_idx)
            for r in self.nprog.roots[first : last + 1]
        ]
        bases = [self.layout.base_of(a) for a in storages]
        rebase = (min(bases) // self._set_span) * self._set_span if bases else 0
        doc = [roots, [b - rebase for b in bases]]
        self._span_docs[(first, last)] = doc
        return doc

    # -- keys -----------------------------------------------------------------

    def fragment(self, ref: NRef) -> str:
        """The method-independent structural JSON fragment of ``ref``."""
        frag = self._fragments.get(ref.uid)
        if frag is None:
            c_idx = self._ord2idx[ref.label[0]]
            first = c_idx
            vectors = []
            for rv in self.reuse.vectors_for(ref):
                p_idx = self._ord2idx[rv.producer.label[0]]
                first = min(first, p_idx)
                vectors.append(
                    [
                        list(rv.vec),
                        rv.kind,
                        c_idx - p_idx,
                        self._locator(rv.producer),
                    ]
                )
            doc = [
                KEY_SCHEMA,
                self._geometry,
                self._span_doc(first, c_idx),
                self._locator(ref),
                vectors,
            ]
            frag = json.dumps(doc, separators=(",", ":"))
            self._fragments[ref.uid] = frag
        return frag

    def key(self, ref: NRef, method: str, params: Sequence = ()) -> str:
        """The content hash of ``ref``'s analysis unit.

        ``params`` carries the solver inputs outside the structural fragment
        — empty for ``FindMisses``, ``(confidence, width, seed ^ uid)`` for
        ``EstimateMisses``.
        """
        head = json.dumps([method, list(params)], separators=(",", ":"))
        return hashlib.sha256((head + self.fragment(ref)).encode()).hexdigest()
