"""In-run dedup + cross-run persistence of per-reference CME solutions.

The :class:`Memoizer` holds one shared result table for a process; each
solver invocation opens a :class:`MemoSession` binding the table to the
analysis state (program, layout, cache, reuse table, method parameters) and
asks it to :meth:`~MemoSession.plan` the target references.  The plan
partitions the targets into

* **replays** — references whose key already has a solution (from earlier
  in this run, or from the persistent store), and
* **solves** — one representative per distinct *new* equation system.

Both the serial solvers and the parallel engine run exactly this planning
code and then solve exactly ``plan.solve``, so the ``memo.hits`` /
``memo.misses`` / ``memo.dedup.groups`` counters are identical for any
``--jobs`` value — a duplicate of a not-yet-solved system counts as a hit
in either case, because only one classification pays for the whole group.

Replayed results are rebuilt by :func:`replay` with the *consumer's* own
name and uid, so a memoized report is field-for-field identical to an
unmemoized one.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence, TYPE_CHECKING

from repro import obs
from repro.cme.result import RefResult
from repro.memo.key import KeyBuilder
from repro.memo.store import MemoStore

if TYPE_CHECKING:  # imported lazily to avoid cycles with the solvers
    from repro.layout.cache import CacheConfig
    from repro.layout.memory import MemoryLayout
    from repro.normalize.nprogram import NormalizedProgram, NRef
    from repro.reuse.generator import ReuseTable


def payload_of(result: RefResult) -> list:
    """The storable tallies of ``result`` (name/uid are per-consumer)."""
    return [
        result.population,
        result.analysed,
        result.cold,
        result.replacement,
        result.hits,
    ]


def replay(payload: Sequence[int], ref: "NRef") -> RefResult:
    """A :class:`RefResult` for ``ref`` carrying the memoized tallies."""
    population, analysed, cold, replacement, hits = payload
    return RefResult(
        ref.name(),
        ref.uid,
        population=population,
        analysed=analysed,
        cold=cold,
        replacement=replacement,
        hits=hits,
    )


class Memoizer:
    """Process-wide memo table, optionally backed by a persistent store.

    Counters (mirrored into ``obs`` metrics):

    * ``hits`` — references answered without classification;
    * ``misses`` — distinct systems actually classified;
    * ``groups`` — distinct keys seen (``hits + misses`` counts refs);
    * ``store_hits`` — the subset of hits answered from disk.

    One memoizer may be shared by concurrent threads (the service daemon
    plans every request through a single process-wide instance): planning,
    recording and flushing all serialise on :attr:`lock`, so counters and
    the result table stay consistent under concurrent sessions.
    """

    def __init__(self, store: Optional[MemoStore] = None):
        self.store = store
        #: Serialises plan/record/flush across threads sharing this table.
        self.lock = threading.RLock()
        self._results: dict[str, list] = {}  # solved this run
        self._persisted = store.load() if store is not None else {}
        self._new: dict[str, list] = {}  # solved this run, not yet on disk
        self._seen: set[str] = set()  # keys counted towards ``groups``
        self.hits = 0
        self.misses = 0
        self.groups = 0
        self.store_hits = 0

    @classmethod
    def open(cls, cache_dir: str) -> "Memoizer":
        """A memoizer persisting to ``cache_dir`` (created if missing)."""
        return cls(MemoStore.at(cache_dir))

    @property
    def persisted(self) -> int:
        """Number of solutions loaded from the persistent store."""
        return len(self._persisted)

    def session(
        self,
        method: str,
        nprog: "NormalizedProgram",
        layout: "MemoryLayout",
        cache: "CacheConfig",
        reuse: "ReuseTable",
        confidence: Optional[float] = None,
        width: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> "MemoSession":
        """Bind the memo table to one solver invocation's analysis state."""
        return MemoSession(
            self, method, nprog, layout, cache, reuse, confidence, width, seed
        )

    def flush(self) -> int:
        """Write solutions accumulated since the last flush to the store."""
        if self.store is None:
            return 0
        with self.lock:
            written = len(self._new)
            if written or self.store._stale:
                with obs.span("memo/store"):
                    self.store.append(self._new)
                self._persisted.update(self._new)
                self._new = {}
            return written

    def __enter__(self) -> "Memoizer":
        return self

    def __exit__(self, *exc) -> None:
        self.flush()

    # -- internal (used by MemoSession/MemoPlan) -------------------------------

    def _lookup(self, key: str) -> Optional[list]:
        payload = self._results.get(key)
        if payload is not None:
            return payload
        payload = self._persisted.get(key)
        if payload is not None:
            self.store_hits += 1
            obs.counter("memo.store.hits").inc()
        return payload

    def _record(self, key: str, payload: list) -> None:
        with self.lock:
            self._results[key] = payload
            if self.store is not None and key not in self._persisted:
                self._new[key] = payload


class MemoSession:
    """Key computation + planning for one solver invocation."""

    def __init__(
        self,
        memo: Memoizer,
        method: str,
        nprog: "NormalizedProgram",
        layout: "MemoryLayout",
        cache: "CacheConfig",
        reuse: "ReuseTable",
        confidence: Optional[float],
        width: Optional[float],
        seed: Optional[int],
    ):
        self.memo = memo
        self.method = method
        self._builder = KeyBuilder(nprog, layout, cache, reuse)
        self._confidence = confidence
        self._width = width
        self._seed = seed
        self._keys: dict[int, str] = {}

    def key_for(self, ref: "NRef") -> str:
        """The content key of ``ref`` under this session's parameters."""
        key = self._keys.get(ref.uid)
        if key is None:
            if self.method == "estimate":
                params: Sequence = [
                    self._confidence,
                    self._width,
                    (self._seed or 0) ^ ref.uid,
                ]
            else:
                params = []
            key = self._builder.key(ref, self.method, params)
            self._keys[ref.uid] = key
        return key

    def plan(self, targets: Iterable["NRef"]) -> "MemoPlan":
        """Partition ``targets`` into replays and representative solves."""
        memo = self.memo
        plan = MemoPlan(self, list(targets))
        with memo.lock, obs.span("memo/probe"):
            pending: dict[str, int] = {}  # key -> index of the representative
            for ref in plan.targets:
                key = self.key_for(ref)
                if key not in memo._seen:
                    memo._seen.add(key)
                    memo.groups += 1
                    obs.counter("memo.dedup.groups").inc()
                payload = memo._lookup(key)
                if payload is not None:
                    memo.hits += 1
                    obs.counter("memo.hits").inc()
                    plan._replays.append((ref, key, payload))
                elif key in pending:
                    # A duplicate of a system already queued for solving:
                    # the group is classified once, so this ref is a hit.
                    memo.hits += 1
                    obs.counter("memo.hits").inc()
                    plan._replays.append((ref, key, None))
                else:
                    memo.misses += 1
                    obs.counter("memo.misses").inc()
                    pending[key] = len(plan.solve)
                    plan.solve.append(ref)
        return plan


class MemoPlan:
    """The work split of one solver invocation.

    Solve every reference in :attr:`solve` (in order — the list preserves
    the target order, which the parallel engine relies on for deterministic
    sharding), feed each result to :meth:`add`, then call :meth:`finish` to
    obtain the complete ``uid -> RefResult`` mapping including replays.
    """

    def __init__(self, session: MemoSession, targets: list):
        self.session = session
        self.targets = targets
        self.solve: list = []  # representative refs that need classification
        self._replays: list = []  # (ref, key, payload-or-None)
        self._solved: dict[str, list] = {}

    @property
    def replays(self) -> int:
        """References answered without classification under this plan."""
        return len(self._replays)

    def add(self, ref: "NRef", result: RefResult) -> None:
        """Record the classification of one representative reference."""
        key = self.session.key_for(ref)
        payload = payload_of(result)
        self._solved[key] = payload
        self.session.memo._record(key, payload)

    def finish(self, results: dict[int, RefResult]) -> dict[int, RefResult]:
        """Fill in the replayed duplicates; returns ``uid -> RefResult``
        in original target order (so memoized and unmemoized reports render
        identically, not just compare equal)."""
        for ref, key, payload in self._replays:
            if payload is None:
                payload = self._solved[key]
            results[ref.uid] = replay(payload, ref)
        return {ref.uid: results[ref.uid] for ref in self.targets}
