"""``repro.memo`` — content-addressed memoization of CME solutions.

The paper's scalability argument (Sections 4–5) rests on *uniformly
generated sets*: references sharing the linear part of their subscript
function give rise to structurally identical Cache Miss Equation systems,
so classifying one member classifies them all.  This package generalises
that observation into a content-addressed cache keyed on everything the
per-reference solvers actually read:

* :mod:`repro.memo.key` — a **canonical structural key** per reference:
  a SHA-256 over the normalised interference span (loop bounds, guards,
  references, memory placement), the reference's position inside it, its
  reuse vectors and the cache geometry ``(C, Ls, k)`` — invariant under
  loop-variable renaming and the reordering of independent nests;
* :mod:`repro.memo.store` — a versioned JSON-lines **persistent store**
  (``--cache-dir``) whose header carries a schema version and a fingerprint
  of the solver source code, so stale entries self-invalidate;
* :mod:`repro.memo.memoizer` — the **in-run dedup layer**: references are
  grouped by key, each distinct equation system is classified once, and
  duplicates replay the stored tallies.  The same planning code drives the
  serial solvers and the parallel engine, so ``memo.*`` counters are
  identical for any ``--jobs`` value.

Typical use::

    from repro import CacheConfig, analyze, prepare
    from repro.memo import Memoizer

    prepared = prepare(program)
    with Memoizer.open(".memo") as memo:          # flushes on exit
        report = analyze(prepared, cache, method="find", memo=memo)
"""

from repro.memo.key import KEY_SCHEMA, KeyBuilder, code_fingerprint
from repro.memo.memoizer import (
    MemoPlan,
    MemoSession,
    Memoizer,
    payload_of,
    replay,
)
from repro.memo.store import STORE_SCHEMA, MemoStore

__all__ = [
    "KEY_SCHEMA",
    "KeyBuilder",
    "code_fingerprint",
    "MemoPlan",
    "MemoSession",
    "Memoizer",
    "payload_of",
    "replay",
    "STORE_SCHEMA",
    "MemoStore",
]
