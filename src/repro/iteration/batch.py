"""Vectorized access-order machinery for the NumPy classification backend.

Two pieces live here:

* :class:`BatchAffine` — a stack of
  :class:`~repro.iteration.walker.CompiledAffine` expressions compiled to one
  ``(m, n)`` coefficient matrix, so bounds, guards and address polynomials
  evaluate over whole ``(N, n)`` point batches as a single matrix product;
* :class:`TraceIndex` — the whole-program access trace materialised as flat
  NumPy arrays.  Execution order is recovered by lex-sorting interleaved
  iteration vectors (the Section 3.2 property: lexicographic order on
  ``(ℓ1, I1, …, ℓn, In, lexpos)`` *is* execution order), after which the
  interference window of the replacement equations — all accesses strictly
  between a producer and a consumer position — becomes a contiguous slice of
  per-cache-set position arrays, and the ``k`` distinct-line test of Section
  4.1.2 a vectorized distinct-count over that slice.

The index answers exactly the query
:meth:`repro.iteration.walker.Walker.distinct_conflicts_reach` answers, so
the NumPy backend stays bit-identical to the scalar solver.  Building it
costs ``O(T log T)`` in the trace length ``T`` — the right trade for
``FindMisses`` (which classifies all ``T`` points anyway) but wrong for
``EstimateMisses`` (whose whole pitch is cost *independent* of ``T``), so
the batch classifier only uses it on the exhaustive path.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MissingDependencyError
from repro.iteration.walker import CompiledAffine, Walker
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.polyhedra.batch import enumerate_points_array

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised via import gate test
    raise MissingDependencyError(
        "repro.iteration.batch requires NumPy; install it with "
        "`pip install numpy` (or `pip install repro`), or select the "
        "pure-Python solver with backend='scalar' / --backend scalar"
    ) from exc

#: Traces larger than this are not materialised (the classifier falls back
#: to the scalar per-window walker instead); ~50M accesses ≈ 400MB of keys.
MAX_TRACE_ACCESSES = 50_000_000

#: Mixed-radix point keys must fit comfortably in int64.
_MAX_KEY = 1 << 62

#: Length of the vectorized probe prefix of each interference window; only
#: windows longer than this whose probe stays below ``k`` distinct lines
#: (rare) fall back to a per-window ``np.unique``.
_SMALL_WINDOW = 64

#: Rows of the probe matrix processed per chunk (bounds peak memory).
_CHUNK = 1 << 15


class TraceInfeasible(Exception):
    """The trace cannot be materialised (too long, or keys overflow int64).

    Internal control flow only: the batch classifier catches it and keeps
    the scalar walker as the window oracle, so callers never see it.
    """


class BatchAffine:
    """A stack of compiled affine expressions as one coefficient matrix."""

    __slots__ = ("matrix", "const")

    def __init__(self, affines: Sequence[CompiledAffine], depth: int):
        self.matrix = np.zeros((len(affines), depth), dtype=np.int64)
        self.const = np.zeros(len(affines), dtype=np.int64)
        for i, ca in enumerate(affines):
            self.const[i] = ca.const
            for d, coeff in ca.terms:
                self.matrix[i, d] = coeff

    def eval(self, points: "np.ndarray") -> "np.ndarray":
        """Evaluate every expression at every point: ``(N, n) -> (N, m)``."""
        return points @ self.matrix.T + self.const

    def eval_single(self, points: "np.ndarray") -> "np.ndarray":
        """Evaluate a single-expression stack to a flat ``(N,)`` array."""
        return points @ self.matrix[0] + self.const[0]


class _LeafBlock:
    """Per-leaf enumeration: points, mixed-radix keys, per-ref trace slots."""

    __slots__ = ("points", "keys", "lows", "strides", "start_of")

    def __init__(self, points: "np.ndarray", ranges: list[tuple[int, int]]):
        self.points = points
        self.lows = np.array([lo for lo, _ in ranges], dtype=np.int64)
        strides = [1] * len(ranges)
        for d in range(len(ranges) - 2, -1, -1):
            lo, hi = ranges[d + 1]
            strides[d] = strides[d + 1] * (hi - lo + 1)
        head_lo, head_hi = ranges[0] if ranges else (0, 0)
        if ranges and strides[0] * (head_hi - head_lo + 1) >= _MAX_KEY:
            raise TraceInfeasible("point keys overflow int64")
        self.strides = np.array(strides, dtype=np.int64)
        self.keys = self.encode(points)
        self.start_of: dict[int, int] = {}  # ref.uid -> first trace slot

    def encode(self, points: "np.ndarray") -> "np.ndarray":
        """Mixed-radix key per point; monotone in lexicographic order."""
        return (points - self.lows) @ self.strides


class TraceIndex:
    """The full access trace, indexed for vectorized window queries."""

    def __init__(
        self,
        nprog: NormalizedProgram,
        walker: Walker,
        line_bytes: int,
        num_sets: int,
        max_accesses: int = MAX_TRACE_ACCESSES,
    ):
        self.num_sets = num_sets
        total = sum(
            nprog.ris(leaf).count() * len(leaf.refs) for leaf in nprog.leaves
        )
        if total > max_accesses:
            raise TraceInfeasible(f"trace of {total} accesses exceeds budget")
        n = nprog.depth
        self._blocks: dict[int, _LeafBlock] = {}  # id(leaf) -> block
        self._block_of_ref: dict[int, _LeafBlock] = {}  # ref.uid -> block
        space_points: dict[int, "np.ndarray"] = {}  # id(space) -> points
        pos_cols: list[list["np.ndarray"]] = [[] for _ in range(2 * n + 1)]
        line_parts: list["np.ndarray"] = []
        slot = 0
        for leaf in nprog.leaves:
            space = nprog.ris(leaf)
            points = space_points.get(id(space))
            if points is None:
                points = enumerate_points_array(space)
                space_points[id(space)] = points
            ranges = space.var_ranges()
            block = _LeafBlock(
                points, [ranges[var] for var in nprog.index_vars]
            )
            self._blocks[id(leaf)] = block
            count = len(points)
            for ref in leaf.refs:
                addr = BatchAffine(
                    [walker.compiled_ref(ref).addr], n
                ).eval_single(points)
                block.start_of[ref.uid] = slot
                self._block_of_ref[ref.uid] = block
                slot += count
                for d in range(n):
                    pos_cols[2 * d].append(
                        np.full(count, leaf.label[d], dtype=np.int64)
                    )
                    pos_cols[2 * d + 1].append(points[:, d])
                pos_cols[2 * n].append(
                    np.full(count, ref.lexpos, dtype=np.int64)
                )
                line_parts.append(addr // line_bytes)
        self.total = slot
        if slot == 0:
            self._inv = np.empty(0, dtype=np.int64)
            self._set_keys = np.empty(0, dtype=np.int64)
            self._lines_by_set = np.empty(0, dtype=np.int64)
            return
        cols = [np.concatenate(parts) for parts in pos_cols]
        lines = np.concatenate(line_parts)
        # np.lexsort keys run minor -> major; execution order is lex order
        # on (l1, I1, ..., ln, In, lexpos), so feed the columns reversed.
        order = np.lexsort(tuple(reversed(cols)))
        inv = np.empty(slot, dtype=np.int64)
        inv[order] = np.arange(slot, dtype=np.int64)
        self._inv = inv
        line_at_t = lines[order]
        set_at_t = line_at_t % num_sets
        by_set = np.argsort(set_at_t, kind="stable")  # (set, t) ascending
        # One sorted key ``set·(T+1) + t`` per access: window boundaries in
        # any set become a single vectorized searchsorted over all queries
        # (keys of other sets land outside the query's [base, base+T] band).
        self._set_keys = set_at_t[by_set] * np.int64(slot + 1) + by_set
        self._lines_by_set = line_at_t[by_set]

    # -- position lookup ---------------------------------------------------------

    def t_of(self, ref: NRef, points: "np.ndarray") -> "np.ndarray":
        """Trace times of ``ref``'s accesses at the given iteration points.

        Every row must lie inside the reference's RIS (the cold equations
        guarantee that for producer points; consumers enumerate their RIS).
        """
        block = self._block_of_ref[ref.uid]
        rows = np.searchsorted(block.keys, block.encode(points))
        return self._inv[block.start_of[ref.uid] + rows]

    # -- the replacement-equation window query -------------------------------------

    def conflicts_reach(
        self,
        t_lo: "np.ndarray",
        t_hi: "np.ndarray",
        reused_lines: "np.ndarray",
        k: int,
    ) -> "np.ndarray":
        """Vectorized :meth:`Walker.distinct_conflicts_reach` over queries.

        For each query ``q``: True iff at least ``k`` *distinct* memory
        lines other than ``reused_lines[q]`` map to the reused line's cache
        set among the accesses with trace time strictly between
        ``t_lo[q]`` and ``t_hi[q]``.
        """
        count = len(t_lo)
        result = np.zeros(count, dtype=bool)
        if count == 0:
            return result
        base = (reused_lines % self.num_sets) * np.int64(self.total + 1)
        lo = np.searchsorted(self._set_keys, base + t_lo, side="right")
        hi = np.searchsorted(self._set_keys, base + t_hi, side="left")
        lengths = hi - lo
        # < k accesses cannot hold k distinct lines.
        queries = np.flatnonzero(lengths >= k)
        for chunk_at in range(0, len(queries), _CHUNK):
            chunk = queries[chunk_at : chunk_at + _CHUNK]
            # Probe pass: the distinct count over the first
            # min(length, _SMALL_WINDOW) accesses of every window at once.
            # Reaching k inside the prefix settles the query (distinct
            # counts only grow with the window); a short window is its own
            # prefix, so staying below k settles it too.  Only long windows
            # whose probe stayed below k need an exact per-window count —
            # in practice a handful, because k is the associativity (2–8)
            # and prefixes of long reuse windows reach it almost always.
            width = min(int(lengths[chunk].max()), _SMALL_WINDOW)
            distinct = self._distinct_prefix(
                lo[chunk],
                np.minimum(lengths[chunk], width),
                reused_lines[chunk],
                width,
            )
            settled = distinct >= k
            result[chunk] = settled
            for q in chunk[~settled & (lengths[chunk] > width)]:
                window = self._lines_by_set[lo[q] : hi[q]]
                unique = np.unique(window)
                conflicts = len(unique) - int(
                    np.searchsorted(unique, reused_lines[q], side="right")
                    > np.searchsorted(unique, reused_lines[q], side="left")
                )
                result[q] = conflicts >= k
        return result

    def _distinct_prefix(
        self,
        lo: "np.ndarray",
        lengths: "np.ndarray",
        reused_lines: "np.ndarray",
        width: int,
    ) -> "np.ndarray":
        """Distinct lines (excluding the reused one) per window prefix.

        Window prefixes (``lengths`` ≤ ``width``) are gathered into one
        padded ``(Q, width)`` matrix; the reused line and the padding become
        a sentinel, rows are sorted, and the distinct count is the number of
        value transitions — one ``np.unique`` semantics pass for the whole
        batch.
        """
        offsets = np.arange(width, dtype=np.int64)
        index = lo[:, None] + offsets[None, :]
        valid = offsets[None, :] < lengths[:, None]
        index = np.minimum(index, max(self.total - 1, 0))
        values = self._lines_by_set[index]
        sentinel = np.iinfo(np.int64).max
        values = np.where(valid, values, sentinel)
        values = np.where(values == reused_lines[:, None], sentinel, values)
        values.sort(axis=1)
        real = values != sentinel
        distinct = real[:, 0].astype(np.int64)
        if width > 1:
            distinct += (
                (values[:, 1:] != values[:, :-1]) & real[:, 1:]
            ).sum(axis=1)
        return distinct
