"""Iteration vectors, positions and the access-order walker (Section 3.2)."""

from repro.iteration.position import (
    IterVec,
    Position,
    interleave,
    lex_nonnegative,
    lex_positive,
    split,
    subtract,
)
from repro.iteration.walker import CompiledRef, Walker, compile_affine

__all__ = [
    "IterVec",
    "Position",
    "interleave",
    "lex_nonnegative",
    "lex_positive",
    "split",
    "subtract",
    "CompiledRef",
    "Walker",
    "compile_affine",
]
