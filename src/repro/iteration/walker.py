"""The access-order walker: one oracle for simulator and miss equations.

The walker compiles a :class:`~repro.normalize.NormalizedProgram` plus a
:class:`~repro.layout.MemoryLayout` into a lightweight tree of evaluable
bounds, guards and address polynomials, and then enumerates memory accesses
in exact execution order:

* :meth:`Walker.walk` visits *every* access — this drives the trace-driven
  cache simulator (the paper's validation baseline);
* :meth:`Walker.walk_between` visits only the accesses strictly between two
  :data:`~repro.iteration.position.Position` s — this is the interference
  window ``J`` of the replacement equations (Section 4.1.2), whose cost is
  proportional to the reuse distance rather than to the whole trace.  That
  asymmetry is precisely why ``EstimateMisses`` beats simulation.

Because both consumers share this single enumeration, the analytical model
and the simulator are guaranteed to agree on the access order — the property
that lets ``FindMisses`` match simulation exactly (Table 3).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import AnalysisError
from repro.polyhedra.affine import Affine
from repro.polyhedra.constraints import EQ
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NLeaf, NLoop, NormalizedProgram, NRef
from repro.iteration.position import Position

Visit = Callable[["CompiledRef", int], bool]


class CompiledAffine:
    """An affine expression compiled to ``const + Σ coeff·idx[dim]``."""

    __slots__ = ("const", "terms")

    def __init__(self, const: int, terms: tuple[tuple[int, int], ...]):
        self.const = const
        self.terms = terms

    def eval(self, idx: Sequence[int]) -> int:
        """Evaluate at an index vector (0-based positions)."""
        v = self.const
        for d, c in self.terms:
            v += c * idx[d]
        return v


def compile_affine(expr: Affine, depth: int) -> CompiledAffine:
    """Compile an affine expression over the canonical variables ``I1..In``."""
    terms = []
    for name, coeff in expr.coeffs.items():
        if not name.startswith("I"):
            raise AnalysisError(f"unexpected variable {name!r} in {expr}")
        d = int(name[1:]) - 1
        if not 0 <= d < depth:
            raise AnalysisError(f"variable {name!r} out of depth {depth}")
        terms.append((d, coeff))
    return CompiledAffine(expr.constant, tuple(terms))


class CompiledRef:
    """A reference with its byte-address polynomial."""

    __slots__ = ("nref", "lexpos", "addr")

    def __init__(self, nref: NRef, addr: CompiledAffine):
        self.nref = nref
        self.lexpos = nref.lexpos
        self.addr = addr

    def address_at(self, idx: Sequence[int]) -> int:
        """Byte address accessed at index vector ``idx``."""
        return self.addr.eval(idx)

    def __repr__(self) -> str:
        return f"CompiledRef({self.nref.name()})"


class _CLeaf:
    __slots__ = ("guard", "refs")

    def __init__(self, guard, refs):
        self.guard = guard  # tuple[(is_eq, CompiledAffine)]
        self.refs = refs  # tuple[CompiledRef]


class _CLoop:
    __slots__ = ("depth", "ordinal", "lb", "ub", "loops", "leaves", "pos")

    def __init__(self, depth, ordinal, lb, ub, loops, leaves):
        self.depth = depth
        self.ordinal = ordinal
        self.lb = lb
        self.ub = ub
        self.loops = loops
        self.leaves = leaves
        self.pos = 2 * (depth - 1)  # position of the label component in ivec


class Walker:
    """Compiled access-order enumerator for a normalised program."""

    def __init__(self, nprog: NormalizedProgram, layout: MemoryLayout):
        self.nprog = nprog
        self.layout = layout
        self._crefs: dict[int, CompiledRef] = {}
        self.roots = tuple(self._compile_loop(r) for r in nprog.roots)

    # -- compilation -------------------------------------------------------------

    def _compile_ref(self, nref: NRef) -> CompiledRef:
        array = nref.array
        base = self.layout.base_of(array)
        offset = array.element_offset(nref.subscripts)
        addr_expr = offset * array.element_size + base
        cref = CompiledRef(nref, compile_affine(addr_expr, self.nprog.depth))
        self._crefs[nref.uid] = cref
        return cref

    def _compile_leaf(self, leaf: NLeaf) -> _CLeaf:
        guard = tuple(
            (c.kind == EQ, compile_affine(c.expr, self.nprog.depth))
            for c in leaf.guard
        )
        refs = tuple(self._compile_ref(r) for r in leaf.refs)
        return _CLeaf(guard, refs)

    def _compile_loop(self, loop: NLoop) -> _CLoop:
        n = self.nprog.depth
        return _CLoop(
            loop.depth,
            loop.ordinal,
            compile_affine(loop.lower, n),
            compile_affine(loop.upper, n),
            tuple(self._compile_loop(c) for c in loop.loops),
            tuple(self._compile_leaf(l) for l in loop.leaves),
        )

    def compiled_ref(self, nref: NRef) -> CompiledRef:
        """The compiled form of a reference (for address queries)."""
        return self._crefs[nref.uid]

    def address_of(self, nref: NRef, index: Sequence[int]) -> int:
        """Byte address of ``nref`` at index vector ``index``."""
        return self._crefs[nref.uid].address_at(index)

    # -- full walk ----------------------------------------------------------------

    def walk(self, visit: Visit) -> bool:
        """Visit every access in execution order.

        ``visit(cref, address)`` returning truthy stops the walk; the method
        returns True iff it was stopped.
        """
        idx = [0] * self.nprog.depth
        for root in self.roots:
            if self._walk(root, idx, visit):
                return True
        return False

    def _walk(self, cloop: _CLoop, idx: list[int], visit: Visit) -> bool:
        lb = cloop.lb.eval(idx)
        ub = cloop.ub.eval(idx)
        d = cloop.depth - 1
        if cloop.leaves:
            leaves = cloop.leaves
            for i in range(lb, ub + 1):
                idx[d] = i
                for leaf in leaves:
                    satisfied = True
                    for is_eq, ca in leaf.guard:
                        v = ca.eval(idx)
                        if (v != 0) if is_eq else (v < 0):
                            satisfied = False
                            break
                    if not satisfied:
                        continue
                    for cr in leaf.refs:
                        if visit(cr, cr.addr.eval(idx)):
                            return True
        else:
            for i in range(lb, ub + 1):
                idx[d] = i
                for child in cloop.loops:
                    if self._walk(child, idx, visit):
                        return True
        return False

    # -- windowed walk ----------------------------------------------------------------

    def walk_between(
        self, lo: Optional[Position], hi: Optional[Position], visit: Visit
    ) -> None:
        """Visit the accesses with position strictly between ``lo`` and ``hi``.

        ``lo``/``hi`` are ``(iteration_vector, lexical_position)`` pairs; a
        ``None`` end is unbounded.  Both ends are exclusive — the paper's
        open/closed bracket rules for interference sets reduce to exactly
        this strict comparison of full access positions.
        """
        idx = [0] * self.nprog.depth
        self._lo = lo
        self._hi = hi
        for root in self.roots:
            if self._walk_b(root, idx, lo is not None, hi is not None, visit):
                return

    def _walk_b(
        self, cloop: _CLoop, idx: list[int], tlo: bool, thi: bool, visit: Visit
    ) -> bool:
        """Returns True to terminate the entire walk (visitor stop or past hi)."""
        if not (tlo or thi):
            return self._walk(cloop, idx, visit)
        pos = cloop.pos
        lo, hi = self._lo, self._hi
        if tlo:
            c = lo[0][pos]
            if cloop.ordinal < c:
                return False  # whole subtree before lo; try later siblings
            tlo = cloop.ordinal == c
        if thi:
            c = hi[0][pos]
            if cloop.ordinal > c:
                return True  # whole subtree (and everything later) after hi
            thi = cloop.ordinal == c
        lb = cloop.lb.eval(idx)
        ub = cloop.ub.eval(idx)
        d = cloop.depth - 1
        start, end = lb, ub
        if tlo and lo[0][pos + 1] > start:
            start = lo[0][pos + 1]
        if thi and hi[0][pos + 1] < end:
            end = hi[0][pos + 1]
        innermost = bool(cloop.leaves)
        for i in range(start, end + 1):
            t_lo_i = tlo and i == lo[0][pos + 1]
            t_hi_i = thi and i == hi[0][pos + 1]
            idx[d] = i
            if innermost:
                at_lo = t_lo_i  # full iteration vector equals lo's
                at_hi = t_hi_i
                lo_lex = lo[1] if at_lo else -1
                hi_lex = hi[1] if at_hi else None
                for leaf in cloop.leaves:
                    satisfied = True
                    for is_eq, ca in leaf.guard:
                        v = ca.eval(idx)
                        if (v != 0) if is_eq else (v < 0):
                            satisfied = False
                            break
                    if not satisfied:
                        continue
                    for cr in leaf.refs:
                        if cr.lexpos <= lo_lex:
                            continue
                        if hi_lex is not None and cr.lexpos >= hi_lex:
                            return True  # reached hi: nothing later qualifies
                        if visit(cr, cr.addr.eval(idx)):
                            return True
            else:
                for child in cloop.loops:
                    if not (t_lo_i or t_hi_i):
                        if self._walk(child, idx, visit):
                            return True
                    elif self._walk_b(child, idx, t_lo_i, t_hi_i, visit):
                        return True
        return False

    # -- specialised window queries ------------------------------------------------------

    def distinct_conflicts_reach(
        self,
        lo: Position,
        hi: Position,
        target_set: int,
        reused_line: int,
        k: int,
        line_bytes: int,
        num_sets: int,
    ) -> bool:
        """True iff ≥ ``k`` *distinct* memory lines other than ``reused_line``
        map to ``target_set`` among the accesses strictly between ``lo`` and
        ``hi`` — the replacement condition of Section 4.1.2 for a ``k``-way
        LRU cache.
        """
        found: set[int] = set()

        def visit(cr: CompiledRef, addr: int) -> bool:
            line = addr // line_bytes
            if line != reused_line and line % num_sets == target_set:
                found.add(line)
                return len(found) >= k
            return False

        self.walk_between(lo, hi, visit)
        return len(found) >= k
