"""Iteration vectors and access positions (Section 3.2 of the paper).

An *iteration vector* is the 2n-dimensional interleaving
``(ℓ1, I1, ℓ2, I2, …, ℓn, In)`` of the loop label and the loop indices; the
paper's key property is that lexicographic order on these vectors is exactly
global execution order across *multiple* nests.

Within one iteration of an innermost loop, several references execute; their
relative order is the *lexical position* (the access order the paper obtains
from its load/store-level IR).  A :class:`Position` — an
``(iteration vector, lexical position)`` pair ordered lexicographically —
therefore totally orders every memory access of the program.  This is the
precise form of the ``≪``/``≫`` bracket rules of the interference sets
(Section 4.1.2): whether an end point of a reuse window is open or closed
falls out of comparing full positions strictly.
"""

from __future__ import annotations

from typing import Sequence

IterVec = tuple[int, ...]
Position = tuple[IterVec, int]


def interleave(label: Sequence[int], index: Sequence[int]) -> IterVec:
    """Build ``(ℓ1, I1, …, ℓn, In)`` from a label and an index vector."""
    if len(label) != len(index):
        raise ValueError("label and index vectors must have equal length")
    ivec: list[int] = []
    for l, i in zip(label, index):
        ivec.append(l)
        ivec.append(i)
    return tuple(ivec)


def split(ivec: IterVec) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Split an interleaved iteration vector back into ``(label, index)``."""
    if len(ivec) % 2:
        raise ValueError("iteration vectors have even length")
    return tuple(ivec[0::2]), tuple(ivec[1::2])


def subtract(ivec: IterVec, reuse: Sequence[int]) -> IterVec:
    """``ivec − r``: the producer point of a consumer along reuse vector r."""
    if len(ivec) != len(reuse):
        raise ValueError("vector length mismatch")
    return tuple(a - b for a, b in zip(ivec, reuse))


def lex_nonnegative(vec: Sequence[int]) -> bool:
    """True if ``vec ⪰ 0`` in lexicographic order (the reuse direction test)."""
    for c in vec:
        if c > 0:
            return True
        if c < 0:
            return False
    return True


def lex_positive(vec: Sequence[int]) -> bool:
    """True if ``vec ≻ 0`` (strictly) in lexicographic order."""
    return lex_nonnegative(vec) and any(c != 0 for c in vec)
