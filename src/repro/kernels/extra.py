"""Additional validation kernels from the suites the paper names.

Section 6 states the method was validated against "programs from SPECfp95,
Perfect Suite, Livermore kernels, Linpack and Lapack"; only three kernels
made it into the paper's tables.  This module adds representatives of the
remaining families, chosen to stress distinct analysis features:

* :func:`build_daxpy` — Linpack's vector update (streaming, pure spatial
  reuse across two arrays);
* :func:`build_lu` — right-looking LU factorisation without pivoting
  (triangular, index-dependent loop bounds — the RIS machinery's hard
  case);
* :func:`build_adi` — an ADI-style sweep pair (forward sweep along rows,
  then a *downward* sweep along columns — negative strides plus
  cross-nest reuse).
"""

from __future__ import annotations

from repro.ir import Program, ProgramBuilder


def build_daxpy(n: int = 1024, repeats: int = 2) -> Program:
    """Linpack DAXPY: ``Y = Y + a*X``, repeated to expose temporal reuse."""
    pb = ProgramBuilder("DAXPY")
    x = pb.array("X", (n,))
    y = pb.array("Y", (n,))
    with pb.subroutine("MAIN"):
        with pb.do("R", 1, repeats):
            with pb.do("I", 1, n) as i:
                pb.assign(y[i], y[i], x[i], label="D1")
    return pb.build()


def build_lu(n: int = 24) -> Program:
    """Right-looking LU factorisation (no pivoting) of ``A(n, n)``.

    The update nest's bounds depend on the outer index ``K`` — triangular
    iteration spaces whose volumes the RIS counter must get exactly right
    for ``EstimateMisses``' population weighting.
    """
    pb = ProgramBuilder("LU")
    a = pb.array("A", (n, n))
    with pb.subroutine("MAIN"):
        with pb.do("K", 1, n - 1) as k:
            with pb.do("I", k + 1, n) as i:
                # A(I,K) = A(I,K) / A(K,K)
                pb.assign(a[i, k], a[i, k], a[k, k], label="L1")
            with pb.do("J", k + 1, n) as j:
                with pb.do("I", k + 1, n) as i:
                    # A(I,J) = A(I,J) - A(I,K) * A(K,J)
                    pb.assign(a[i, j], a[i, j], a[i, k], a[k, j], label="L2")
    return pb.build()


def build_adi(n: int = 32, steps: int = 2) -> Program:
    """An ADI-style alternating sweep pair over ``X`` with coefficients ``A``.

    The column sweep runs *downwards* (negative stride), so its reuse of
    the row sweep's results crosses nests with reversed index directions.
    """
    pb = ProgramBuilder("ADI")
    x = pb.array("X", (n, n))
    a = pb.array("A", (n, n))
    b = pb.array("B", (n, n))
    with pb.subroutine("MAIN"):
        with pb.do("T", 1, steps):
            # forward sweep along each column (unit stride, column major)
            with pb.do("J", 1, n) as j:
                with pb.do("I", 2, n) as i:
                    pb.assign(
                        x[i, j], x[i, j], x[i - 1, j], a[i, j], b[i, j],
                        label="A1",
                    )
            # downward sweep along each row
            with pb.do("J", n - 1, 1, step=-1) as j:
                with pb.do("I", 1, n) as i:
                    pb.assign(
                        x[i, j], x[i, j], x[i, j + 1], a[i, j], label="A2"
                    )
    return pb.build()
