"""MGRID — the 3-D interpolation loop nest from SPECfp95 MGRID (Fig. 8).

An imperfect three-deep nest: the coarse grid ``Z(M, M, M)`` is prolonged
onto the fine grid ``U``.  Fig. 8 declares ``U(M, M, M)``, but the fine-grid
subscripts ``2·I−1`` reach up to ``2M−3``; the real MGRID dimensions the
fine grid ``(2M−1)³``, so we do the same — otherwise U's accesses would run
off the end of its storage into the next array (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.ir import Program, ProgramBuilder


def build_mgrid(m: int = 100) -> Program:
    """Build the MGRID interpolation nest for coarse-grid size ``m``."""
    pb = ProgramBuilder("MGRID")
    fine = 2 * m - 1
    u = pb.array("U", (fine, fine, fine))
    z = pb.array("Z", (m, m, m))
    with pb.subroutine("MAIN"):
        with pb.do("I3", 2, m - 1) as i3:
            with pb.do("I2", 2, m - 1) as i2:
                with pb.do("I1", 2, m - 1) as i1:
                    pb.assign(
                        u[2 * i1 - 1, 2 * i2 - 1, 2 * i3 - 1],
                        u[2 * i1 - 1, 2 * i2 - 1, 2 * i3 - 1],
                        z[i1, i2, i3],
                        label="M1",
                    )
                with pb.do("I1", 2, m - 1) as i1:
                    pb.assign(
                        u[2 * i1 - 2, 2 * i2 - 1, 2 * i3 - 1],
                        u[2 * i1 - 2, 2 * i2 - 1, 2 * i3 - 1],
                        z[i1 - 1, i2, i3],
                        z[i1, i2, i3],
                        label="M2",
                    )
            with pb.do("I2", 2, m - 1) as i2:
                with pb.do("I1", 2, m - 1) as i1:
                    pb.assign(
                        u[2 * i1 - 1, 2 * i2 - 2, 2 * i3 - 1],
                        u[2 * i1 - 1, 2 * i2 - 2, 2 * i3 - 1],
                        z[i1, i2 - 1, i3],
                        z[i1, i2, i3],
                        label="M3",
                    )
                with pb.do("I1", 2, m - 1) as i1:
                    pb.assign(
                        u[2 * i1 - 2, 2 * i2 - 2, 2 * i3 - 1],
                        u[2 * i1 - 2, 2 * i2 - 2, 2 * i3 - 1],
                        z[i1 - 1, i2 - 1, i3],
                        z[i1 - 1, i2, i3],
                        z[i1, i2 - 1, i3],
                        z[i1, i2, i3],
                        label="M4",
                    )
    return pb.build()
