"""The three kernels of Fig. 8: Hydro, MGRID and MMT.

Each kernel exists twice: as a parameterised Python builder
(``build_hydro(jn, kn)`` …) and as a mini-FORTRAN source at the paper's
problem sizes (``fortran/*.f``) exercising the frontend.  The FORTRAN
transcriptions keep one load per distinct address per statement, matching
the register promotion the paper's load/store-level IR performs.
"""

from importlib import resources

from repro.frontend import parse_program
from repro.ir import Program
from repro.kernels.hydro import build_hydro
from repro.kernels.mgrid import build_mgrid
from repro.kernels.mmt import build_mmt

FORTRAN_KERNELS = ("hydro", "mgrid", "mmt")


def fortran_source(name: str) -> str:
    """The bundled mini-FORTRAN source of a kernel (paper-scale sizes)."""
    if name not in FORTRAN_KERNELS:
        raise KeyError(f"unknown FORTRAN kernel {name!r}; have {FORTRAN_KERNELS}")
    return (
        resources.files("repro.kernels") / "fortran" / f"{name}.f"
    ).read_text()


def load_fortran_kernel(name: str) -> Program:
    """Parse a bundled ``.f`` kernel into an IR program."""
    return parse_program(fortran_source(name))


__all__ = [
    "build_hydro",
    "build_mgrid",
    "build_mmt",
    "FORTRAN_KERNELS",
    "fortran_source",
    "load_fortran_kernel",
]
