"""Hydro — 2-D explicit hydrodynamics fragment, Livermore kernel 18 (Fig. 8).

Three consecutive ``(k, j)`` nests over nine ``(JN+1) × (KN+1)`` REAL*8
arrays, exactly as the paper's figure.  Table 3 evaluates this kernel with
KN = JN = 100; the builders accept any size so the benches can run scaled
down.
"""

from __future__ import annotations

from repro.ir import Program, ProgramBuilder


def build_hydro(jn: int = 100, kn: int = 100) -> Program:
    """Build the Hydro kernel for grid sizes ``jn``/``kn``."""
    pb = ProgramBuilder("HYDRO")
    dims = (jn + 1, kn + 1)
    za = pb.array("ZA", dims)
    zp = pb.array("ZP", dims)
    zq = pb.array("ZQ", dims)
    zr = pb.array("ZR", dims)
    zm = pb.array("ZM", dims)
    zb = pb.array("ZB", dims)
    zu = pb.array("ZU", dims)
    zv = pb.array("ZV", dims)
    zz = pb.array("ZZ", dims)
    with pb.subroutine("MAIN"):
        with pb.do("K", 2, kn) as k:
            with pb.do("J", 2, jn) as j:
                pb.assign(
                    za[j, k],
                    zp[j - 1, k + 1],
                    zq[j - 1, k + 1],
                    zp[j - 1, k],
                    zq[j - 1, k],
                    zr[j, k],
                    zr[j - 1, k],
                    zm[j - 1, k],
                    zm[j - 1, k + 1],
                    label="H1",
                )
                pb.assign(
                    zb[j, k],
                    zp[j - 1, k],
                    zq[j - 1, k],
                    zp[j, k],
                    zq[j, k],
                    zr[j, k],
                    zr[j, k - 1],
                    zm[j, k],
                    zm[j - 1, k],
                    label="H2",
                )
        with pb.do("K", 2, kn) as k:
            with pb.do("J", 2, jn) as j:
                pb.assign(
                    zu[j, k],
                    zu[j, k],
                    za[j, k],
                    zz[j, k],
                    zz[j + 1, k],
                    za[j - 1, k],
                    zz[j - 1, k],
                    zb[j, k],
                    zz[j, k - 1],
                    zb[j, k + 1],
                    zz[j, k + 1],
                    label="H3",
                )
                pb.assign(
                    zv[j, k],
                    zv[j, k],
                    za[j, k],
                    zr[j, k],
                    zr[j + 1, k],
                    za[j - 1, k],
                    zr[j - 1, k],
                    zb[j, k],
                    zr[j, k - 1],
                    zb[j, k + 1],
                    zr[j, k + 1],
                    label="H4",
                )
        with pb.do("K", 2, kn) as k:
            with pb.do("J", 2, jn) as j:
                pb.assign(zr[j, k], zr[j, k], zu[j, k], label="H5")
                pb.assign(zz[j, k], zz[j, k], zv[j, k], label="H6")
    return pb.build()
