C     MMT -- 3-D blocked matrix multiplication D = A * B**T
C     Transcribed from Fig. 8 of Vera & Xue, HPCA 2002.
      PROGRAM MMT
      PARAMETER (N=100, BJ=100, BK=50)
      REAL*8 A, B, D, WB
      DIMENSION A(N,N), B(N,N), D(N,N), WB(N,N)
      DO J2 = 1, N, BJ
        DO K2 = 1, N, BK
          DO J = J2, J2+BJ-1
            DO K = K2, K2+BK-1
              WB(J-J2+1,K-K2+1) = B(K,J)
            ENDDO
          ENDDO
          DO I = 1, N
            DO K = K2, K2+BK-1
              RA = A(I,K)
              DO J = J2, J2+BJ-1
                D(I,J) = D(I,J) + WB(J-J2+1,K-K2+1)*RA
              ENDDO
            ENDDO
          ENDDO
        ENDDO
      ENDDO
      STOP
      END
