C     MGRID -- 3-D interpolation loop nest from SPECfp95 MGRID
C     Transcribed from Fig. 8 of Vera & Xue, HPCA 2002 (labelled-DO form;
C     U is dimensioned on the fine grid, see DESIGN.md).
      PROGRAM MGRID
      PARAMETER (M=100, MF=199)
      REAL*8 U, Z
      DIMENSION U(MF,MF,MF), Z(M,M,M)
      DO 400 I3 = 2, M-1
        DO 200 I2 = 2, M-1
          DO 100 I1 = 2, M-1
            U(2*I1-1,2*I2-1,2*I3-1) = U(2*I1-1,2*I2-1,2*I3-1)
     &        + Z(I1,I2,I3)
100       CONTINUE
          DO 200 I1 = 2, M-1
            U(2*I1-2,2*I2-1,2*I3-1) = U(2*I1-2,2*I2-1,2*I3-1)
     &        + 0.5D0*(Z(I1-1,I2,I3) + Z(I1,I2,I3))
200     CONTINUE
        DO 400 I2 = 2, M-1
          DO 300 I1 = 2, M-1
            U(2*I1-1,2*I2-2,2*I3-1) = U(2*I1-1,2*I2-2,2*I3-1)
     &        + 0.5D0*(Z(I1,I2-1,I3) + Z(I1,I2,I3))
300       CONTINUE
          DO 400 I1 = 2, M-1
            U(2*I1-2,2*I2-2,2*I3-1) = U(2*I1-2,2*I2-2,2*I3-1)
     &        + 0.25D0*(Z(I1-1,I2-1,I3) + Z(I1-1,I2,I3)
     &        + Z(I1,I2-1,I3) + Z(I1,I2,I3))
400   CONTINUE
      STOP
      END
