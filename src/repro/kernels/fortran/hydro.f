C     Hydro -- 2-D explicit hydrodynamics (Livermore kernel 18)
C     Transcribed from Fig. 8 of Vera & Xue, HPCA 2002.
      PROGRAM HYDRO
      PARAMETER (JN=100, KN=100)
      REAL*8 ZA, ZP, ZQ, ZR, ZM, ZB, ZU, ZV, ZZ
      DIMENSION ZA(JN+1,KN+1), ZP(JN+1,KN+1), ZQ(JN+1,KN+1)
      DIMENSION ZR(JN+1,KN+1), ZM(JN+1,KN+1)
      DIMENSION ZB(JN+1,KN+1), ZU(JN+1,KN+1), ZV(JN+1,KN+1)
      DIMENSION ZZ(JN+1,KN+1)
      T = 0.003700D0
      S = 0.004100D0
      DO K = 2, KN
        DO J = 2, JN
          ZA(J,K) = (ZP(J-1,K+1) + ZQ(J-1,K+1) - ZP(J-1,K) - ZQ(J-1,K))
     &      * (ZR(J,K) + ZR(J-1,K)) / (ZM(J-1,K) + ZM(J-1,K+1))
          ZB(J,K) = (ZP(J-1,K) + ZQ(J-1,K) - ZP(J,K) - ZQ(J,K))
     &      * (ZR(J,K) + ZR(J,K-1)) / (ZM(J,K) + ZM(J-1,K))
        ENDDO
      ENDDO
      DO K = 2, KN
        DO J = 2, JN
          ZU(J,K) = ZU(J,K) + S*(ZA(J,K)*(ZZ(J,K) - ZZ(J+1,K))
     &      - ZA(J-1,K)*(ZZ(J-1,K))
     &      - ZB(J,K)*(ZZ(J,K-1)) + ZB(J,K+1)*(ZZ(J,K+1)))
          ZV(J,K) = ZV(J,K) + S*(ZA(J,K)*(ZR(J,K) - ZR(J+1,K))
     &      - ZA(J-1,K)*(ZR(J-1,K))
     &      - ZB(J,K)*(ZR(J,K-1)) + ZB(J,K+1)*(ZR(J,K+1)))
        ENDDO
      ENDDO
      DO K = 2, KN
        DO J = 2, JN
          ZR(J,K) = ZR(J,K) + T*ZU(J,K)
          ZZ(J,K) = ZZ(J,K) + T*ZV(J,K)
        ENDDO
      ENDDO
      END
