"""MMT — 3-D blocked matrix multiplication ``D = A·Bᵀ`` (Fig. 8).

Taken from Fraguela et al.'s probabilistic-method paper; used by the paper
both for Table 3/4 (accuracy of FindMisses/EstimateMisses) and for the
Table 7 head-to-head comparison across sixteen cache configurations.

The block copy ``WB(J−J2+1, K−K2+1) = B(K, J)`` transposes B, so the two
B/WB references are *not* uniformly generated — the reason the paper's
method (and ours) slightly over-estimates MMT's misses.

``RA = A(I, K)`` assigns to a register-allocated scalar: only the read of
``A`` touches memory, matching the paper's load/store-level reference
counts.
"""

from __future__ import annotations

from repro.ir import Program, ProgramBuilder


def build_mmt(n: int = 100, bj: int = 100, bk: int = 50) -> Program:
    """Build the blocked ``A·Bᵀ`` kernel with block sizes ``bj``/``bk``."""
    pb = ProgramBuilder("MMT")
    a = pb.array("A", (n, n))
    b = pb.array("B", (n, n))
    d = pb.array("D", (n, n))
    wb = pb.array("WB", (n, n))
    with pb.subroutine("MAIN"):
        with pb.do("J2", 1, n, step=bj) as j2:
            with pb.do("K2", 1, n, step=bk) as k2:
                with pb.do("J", j2, j2 + bj - 1) as j:
                    with pb.do("K", k2, k2 + bk - 1) as k:
                        pb.assign(wb[j - j2 + 1, k - k2 + 1], b[k, j], label="T1")
                with pb.do("I", 1, n) as i:
                    with pb.do("K", k2, k2 + bk - 1) as k:
                        pb.read(a[i, k], label="T2")  # RA = A(I,K): register
                        with pb.do("J", j2, j2 + bj - 1) as j:
                            pb.assign(
                                d[i, j],
                                d[i, j],
                                wb[j - j2 + 1, k - k2 + 1],
                                label="T3",
                            )
    return pb.build()
