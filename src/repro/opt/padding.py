"""Analytical inter-array padding selection.

One of the two compiler applications the paper's introduction motivates
(Rivera & Tseng-style conflict-miss elimination): the layout of arrays
relative to the cache geometry decides the conflict misses, and the
analytical model can evaluate a candidate pad in a fraction of a
simulation.  :func:`search_padding` sweeps pad sizes for a chosen array
(or one shared pad for all arrays), scores each layout with the analytical
model and returns the ranked outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, TYPE_CHECKING, Union

from repro.analysis import analyze, prepare
from repro.ir.nodes import Program
from repro.layout.cache import CacheConfig
from repro.opt.select import choose_method

if TYPE_CHECKING:
    from repro.memo import Memoizer


@dataclass(frozen=True)
class PaddingChoice:
    """One evaluated padding configuration."""

    pad_bytes: Union[int, tuple[tuple[str, int], ...]]
    miss_ratio_percent: float
    analysis_seconds: float

    def pads(self) -> Union[int, dict[str, int]]:
        """The pad specification in the form ``prepare`` accepts."""
        if isinstance(self.pad_bytes, int):
            return self.pad_bytes
        return dict(self.pad_bytes)


def evaluate_padding(
    program: Program,
    cache: CacheConfig,
    pad_bytes: Union[int, Mapping[str, int]],
    method: Optional[str] = None,
    seed: int = 0,
    memo: Optional["Memoizer"] = None,
) -> PaddingChoice:
    """Score one padding configuration analytically.

    ``method=None`` picks the cheapest sound inner solver per layout
    (:func:`repro.opt.select.choose_method`): exact ``regions`` when the
    program is fully covered by closed-form certificates, ``estimate``
    otherwise.  ``memo`` makes sweeps near-free after the first
    configurations: pads that leave the relevant base-address
    relationships unchanged replay memoized solutions instead of
    re-solving.
    """
    prepared = prepare(program, align=cache.line_bytes, pad_bytes=pad_bytes)
    if method is None:
        method = choose_method(prepared, cache)
    report = analyze(prepared, cache, method=method, seed=seed, memo=memo)
    key = (
        pad_bytes
        if isinstance(pad_bytes, int)
        else tuple(sorted(pad_bytes.items()))
    )
    return PaddingChoice(key, report.miss_ratio_percent, report.elapsed_seconds)


def search_padding(
    program: Program,
    cache: CacheConfig,
    candidates: Sequence[int] = (0, 32, 64, 128, 256),
    array: Optional[str] = None,
    method: Optional[str] = None,
    seed: int = 0,
    memo: Optional["Memoizer"] = None,
) -> list[PaddingChoice]:
    """Evaluate candidate pads and return choices sorted best first.

    ``array`` restricts the pad to one array (others stay unpadded);
    ``None`` applies the same pad after every array.  ``method=None``
    defaults each evaluation to the cheapest sound solver (``regions``
    under full closed-form coverage, else ``estimate``).  ``memo`` is
    shared across all candidates, so equivalent layouts are only solved
    once.
    """
    results = []
    for pad in candidates:
        spec: Union[int, dict[str, int]] = pad if array is None else {array: pad}
        results.append(
            evaluate_padding(
                program, cache, spec, method=method, seed=seed, memo=memo
            )
        )
    results.sort(key=lambda c: c.miss_ratio_percent)
    return results
