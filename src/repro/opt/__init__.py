"""Locality-optimisation advisors built on the analytical model.

The paper's stated purpose is to "guide compiler locality optimisations"
— these helpers turn the analyser into exactly that: fast analytical
scoring for padding (conflict misses) and tiling (capacity misses).
"""

from repro.opt.geometry import GeometryPoint, miss_ratio_curve, sweep_geometries
from repro.opt.padding import PaddingChoice, evaluate_padding, search_padding
from repro.opt.select import choose_method
from repro.opt.tiling import TileChoice, best_tile, search_tiles

__all__ = [
    "GeometryPoint",
    "miss_ratio_curve",
    "sweep_geometries",
    "PaddingChoice",
    "evaluate_padding",
    "search_padding",
    "TileChoice",
    "best_tile",
    "search_tiles",
    "choose_method",
]
