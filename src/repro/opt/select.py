"""Inner-solver selection for the optimisation searches.

The padding and tiling sweeps evaluate many candidate layouts; the cost of
one evaluation depends on which CME solver scores it.  ``regions`` is both
exact and bound-independent — but only when the program's reuse structure
is covered by its closed-form certificates; residual regions enumerate
point by point and would make a sweep scale with the loop bounds again.
``EstimateMisses`` is always bound-independent but statistical.

:func:`choose_method` makes that call per ``(program, cache)`` with the
static probe :func:`repro.cme.regions.regional_coverage` (no decomposition
or counting): ``regions`` when every (consumer, vector) pair has a
closed-form certificate, ``estimate`` otherwise.  Every decision is
observable as ``opt.method.regions`` / ``opt.method.estimate``.
"""

from __future__ import annotations

from repro import obs
from repro.analysis import PreparedProgram
from repro.cme.regions import regional_coverage
from repro.layout.cache import CacheConfig

#: Minimum closed-form coverage for ``regions`` to be the cheaper scorer.
#: Below full coverage the residual regions are enumerated exhaustively,
#: whose cost grows with the loop bounds — exactly what a sweep must avoid.
COVERAGE_THRESHOLD = 1.0


def choose_method(
    prepared: PreparedProgram, cache: CacheConfig
) -> str:
    """The cheapest sound inner solver for scoring ``prepared`` layouts.

    Returns ``"regions"`` (exact, bound-independent) when the static
    coverage probe reaches :data:`COVERAGE_THRESHOLD`, else
    ``"estimate"`` (statistical, bound-independent).
    """
    reuse = prepared.reuse_table(cache.line_bytes)
    coverage = regional_coverage(
        prepared.nprog, prepared.layout, cache, reuse
    )
    method = "regions" if coverage >= COVERAGE_THRESHOLD else "estimate"
    obs.counter(f"opt.method.{method}").inc()
    return method
