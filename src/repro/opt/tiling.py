"""Analytical tile-size selection for blocked loop nests.

The other motivating application of the paper ("tile and padding sizes"):
given a builder that produces the blocked kernel for a candidate tile, the
search scores each candidate with the analytical model and returns the
ranking.  With ``EstimateMisses`` the cost per candidate is independent of
the kernel's trace length, so sweeps over many tiles stay cheap — the
property that makes analytical models usable inside a compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TYPE_CHECKING

from repro.analysis import analyze, prepare
from repro.ir.nodes import Program
from repro.layout.cache import CacheConfig
from repro.opt.select import choose_method

if TYPE_CHECKING:
    from repro.memo import Memoizer


@dataclass(frozen=True)
class TileChoice:
    """One evaluated tile configuration."""

    tile: tuple[int, ...]
    miss_ratio_percent: float
    analysis_seconds: float


def search_tiles(
    builder: Callable[..., Program],
    candidates: Sequence[tuple[int, ...]],
    cache: CacheConfig,
    method: Optional[str] = None,
    seed: int = 0,
    memo: Optional["Memoizer"] = None,
) -> list[TileChoice]:
    """Score each candidate tile (builder is called as ``builder(*tile)``).

    Returns the choices sorted best (lowest predicted miss ratio) first.
    ``method=None`` defaults each evaluation to the cheapest sound solver
    (exact ``regions`` under full closed-form coverage, ``estimate``
    otherwise — blocked kernels differ per tile, so the probe runs per
    candidate).  ``memo`` is shared across candidates (and, with a
    persistent store, across whole sweeps), so repeated equation systems
    are solved once.
    """
    results = []
    for tile in candidates:
        prepared = prepare(builder(*tile))
        tile_method = (
            choose_method(prepared, cache) if method is None else method
        )
        report = analyze(
            prepared, cache, method=tile_method, seed=seed, memo=memo
        )
        results.append(
            TileChoice(tuple(tile), report.miss_ratio_percent,
                       report.elapsed_seconds)
        )
    results.sort(key=lambda c: c.miss_ratio_percent)
    return results


def best_tile(
    builder: Callable[..., Program],
    candidates: Sequence[tuple[int, ...]],
    cache: CacheConfig,
    method: Optional[str] = None,
    seed: int = 0,
    memo: Optional["Memoizer"] = None,
) -> TileChoice:
    """The single best candidate tile under the analytical model."""
    return search_tiles(
        builder, candidates, cache, method=method, seed=seed, memo=memo
    )[0]
