"""Cache-geometry exploration — the memory-designer use case.

The paper's introduction names a second consumer besides compilers:
"memory system designers often use cache simulators to evaluate
alternative design options".  :func:`sweep_geometries` produces the
miss-ratio curve over a set of cache configurations analytically, orders of
magnitude cheaper per point than re-simulating the trace, and
:func:`miss_ratio_curve` gives the classic capacity curve (miss ratio vs
cache size at fixed line size and associativity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.analysis import PreparedProgram, analyze, prepare
from repro.ir.nodes import Program
from repro.layout.cache import CacheConfig


@dataclass(frozen=True)
class GeometryPoint:
    """One evaluated cache configuration."""

    cache: CacheConfig
    miss_ratio_percent: float
    analysis_seconds: float


def sweep_geometries(
    target: Union[Program, PreparedProgram],
    caches: Sequence[CacheConfig],
    method: str = "estimate",
    seed: int = 0,
) -> list[GeometryPoint]:
    """Analytical miss ratios over a list of cache configurations.

    The prepared front end (inlining, normalisation, layout, walker) is
    shared across all points; reuse tables are shared across points with
    equal line sizes.
    """
    prepared = target if isinstance(target, PreparedProgram) else prepare(target)
    points = []
    for cache in caches:
        report = analyze(prepared, cache, method=method, seed=seed)
        points.append(
            GeometryPoint(cache, report.miss_ratio_percent,
                          report.elapsed_seconds)
        )
    return points


def miss_ratio_curve(
    target: Union[Program, PreparedProgram],
    sizes_kb: Sequence[int],
    line_bytes: int = 32,
    assoc: int = 1,
    method: str = "estimate",
    seed: int = 0,
) -> list[GeometryPoint]:
    """The capacity curve: miss ratio as a function of cache size."""
    caches = [CacheConfig.kb(kb, line_bytes, assoc) for kb in sizes_kb]
    return sweep_geometries(target, caches, method=method, seed=seed)
