"""Resource accounting: peak RSS, GC activity, optional tracemalloc.

Everything here is stdlib-only, mirroring the zero-dependency discipline
of the rest of :mod:`repro.obs`:

* :func:`peak_rss_bytes` — the process's lifetime peak resident set, from
  ``resource.getrusage`` (``ru_maxrss`` is kilobytes on Linux, bytes on
  macOS; normalised to bytes here).  Returns 0 on platforms without the
  ``resource`` module;
* :class:`SpanResourceMonitor` — attaches to the tracer's exit hook and
  records, per span name, the peak RSS observed at that span's last exit
  (gauge ``resource.rss_peak_bytes.<name>``); :meth:`finalize` adds the
  run-wide gauges (``resource.peak_rss_bytes``, GC collection/collected
  deltas since install);
* :class:`MemProfiler` — opt-in ``tracemalloc`` wrapper behind the CLI's
  ``--mem-profile``: start, run, and report the top-N allocation sites
  plus the traced-memory peak (gauge ``resource.tracemalloc_peak_bytes``).

``ru_maxrss`` is monotonic (a lifetime high-water mark), so the per-span
gauges read as "how high had memory climbed by the time this phase
finished" — the jump between consecutive phases attributes growth.
Worker processes of the parallel engine report their own peaks through
the ``parallel.worker_peak_rss_bytes`` histogram shipped with each chunk
snapshot.
"""

from __future__ import annotations

import gc
import sys
from typing import Callable, Optional

try:
    import resource as _resource
except ImportError:  # pragma: no cover — Windows
    _resource = None


def peak_rss_bytes() -> int:
    """Lifetime peak resident-set size of this process, in bytes."""
    if _resource is None:  # pragma: no cover — Windows
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def gc_totals() -> tuple[int, int, int]:
    """``(collections, collected, uncollectable)`` summed over generations."""
    collections = collected = uncollectable = 0
    for stat in gc.get_stats():
        collections += stat.get("collections", 0)
        collected += stat.get("collected", 0)
        uncollectable += stat.get("uncollectable", 0)
    return collections, collected, uncollectable


class SpanResourceMonitor:
    """Per-span peak-RSS and run-wide GC accounting via tracer hooks.

    Chains with whatever exit hook is already installed (the profiling
    layer uses the same slot), so ``--profile-span`` and resource
    accounting compose.
    """

    def __init__(self):
        self._tracer = None
        self._prev_exit: Optional[Callable[[str], None]] = None
        self._gc_base = gc_totals()

    def install(self, tracer) -> None:
        """Start recording: wrap the tracer's ``on_exit`` hook."""
        from repro import obs

        self._tracer = tracer
        self._prev_exit = tracer.on_exit
        self._gc_base = gc_totals()

        def on_exit(name: str) -> None:
            obs.gauge(f"resource.rss_peak_bytes.{name}").set(
                float(peak_rss_bytes())
            )
            if self._prev_exit is not None:
                self._prev_exit(name)

        tracer.on_exit = on_exit

    def uninstall(self) -> None:
        """Restore the previous exit hook (idempotent)."""
        if self._tracer is not None:
            self._tracer.on_exit = self._prev_exit
            self._tracer = None
            self._prev_exit = None

    def finalize(self) -> None:
        """Record the run-wide gauges (call before exporting metrics)."""
        from repro import obs

        obs.gauge("resource.peak_rss_bytes").set(float(peak_rss_bytes()))
        collections, collected, uncollectable = gc_totals()
        base_collections, base_collected, base_uncollectable = self._gc_base
        obs.gauge("resource.gc.collections").set(
            collections - base_collections
        )
        obs.gauge("resource.gc.collected").set(collected - base_collected)
        obs.gauge("resource.gc.uncollectable").set(
            uncollectable - base_uncollectable
        )


class MemProfiler:
    """Opt-in ``tracemalloc`` top-N allocation-site attribution.

    Usage (what ``--mem-profile`` does)::

        prof = MemProfiler(top=10)
        prof.start()
        ...           # the traced work
        sites = prof.stop()   # [{"site", "size_bytes", "count"}, ...]
    """

    def __init__(self, top: int = 10):
        self.top = top
        self.peak_bytes = 0
        self._started = False

    def start(self) -> None:
        import tracemalloc

        tracemalloc.start()
        self._started = True

    def stop(self) -> list[dict]:
        """Stop tracing; return the top-N allocation sites by total size."""
        import tracemalloc

        if not self._started:
            return []
        snapshot = tracemalloc.take_snapshot()
        self.peak_bytes = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        self._started = False

        from repro import obs

        obs.gauge("resource.tracemalloc_peak_bytes").set(
            float(self.peak_bytes)
        )
        sites = []
        for stat in snapshot.statistics("lineno")[: self.top]:
            frame = stat.traceback[0]
            sites.append(
                {
                    "site": f"{frame.filename}:{frame.lineno}",
                    "size_bytes": stat.size,
                    "count": stat.count,
                }
            )
        return sites

    @staticmethod
    def format_sites(sites: list[dict]) -> str:
        """Human-readable report lines for stderr."""
        lines = ["tracemalloc top allocation sites:"]
        if not sites:
            lines.append("  (no allocations traced)")
        for s in sites:
            lines.append(
                f"  {s['size_bytes'] / 1024.0:10.1f} KiB  "
                f"x{s['count']:<8d} {s['site']}"
            )
        return "\n".join(lines)
