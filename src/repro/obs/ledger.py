"""The append-only run ledger — the perf trajectory, one JSON line per run.

Where ``BENCH_*.json`` files are *snapshots* (each run overwrites the
last), the ledger is *history*: every analysed run — CLI invocations with
``--ledger`` and every benchmark via ``benchmarks/_common.emit_json`` —
appends one self-describing row, and the regression checker
(:mod:`repro.obs.regress`) and HTML dashboard
(:mod:`repro.obs.htmlreport`) read the accumulated trajectory.

The ``repro.ledger/v1`` row schema::

    {
      "schema": "repro.ledger/v1",
      "ts": <unix seconds>,
      "run_id": <12-hex>,                  # unique per row
      "fingerprint": <16-hex>,             # solver code fingerprint
      "host": <str>, "python": <str>,
      "label": <str>,                      # "analyze:hydro", "bench:table3"
      "program": <str|null>,
      "cache": <str|null>,                 # CacheConfig.describe()
      "config": {<solver/backend knobs>},  # part of the baseline key
      "phases": {"<span>": <seconds>},     # top-level span wall times
      "wall_seconds": <number|null>,
      "peak_rss_bytes": <int>,
      "counters": {<dotted.name>: <int>},  # full counter snapshot
      "derived": {"memo.hit_ratio": ..., "points_per_second": ...}
    }

Rows regression-check against each other only when they share a
*baseline key* (:func:`row_key`): the digest of ``(label, program, cache,
config)``.  Change the workload or any solver knob and the history
restarts rather than comparing apples to oranges.

The file is JSON-lines and append-only; a torn final line (crash mid
write) is skipped on read, never repaired in place.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from typing import Optional

LEDGER_SCHEMA = "repro.ledger/v1"


def build_row(
    label: str,
    program: Optional[str] = None,
    cache: Optional[object] = None,
    config: Optional[dict] = None,
    phases: Optional[dict] = None,
    wall_seconds: Optional[float] = None,
    counters: Optional[dict] = None,
    derived: Optional[dict] = None,
) -> dict:
    """Assemble one ledger row, defaulting to the live observability state.

    ``phases`` defaults to the current tracer's top-level span times and
    ``counters`` to the current registry's counter snapshot, so a CLI run
    that just finished under ``obs.enable()`` needs only a label and its
    configuration.  ``cache`` accepts a :class:`~repro.layout.cache.
    CacheConfig` (stored as ``describe()``) or a plain string.
    ``derived`` is merged over the auto-derived ratios.
    """
    import platform

    from repro import obs
    from repro.memo.key import code_fingerprint
    from repro.obs.resource import peak_rss_bytes

    if phases is None:
        phases = {name: secs for name, _count, secs in obs.phase_times()}
    phases = {name: float(secs) for name, secs in phases.items()}
    if counters is None:
        counters = obs.registry().snapshot()["counters"]
    if wall_seconds is None and phases:
        wall_seconds = sum(phases.values())

    auto: dict = {}
    hits = counters.get("memo.hits", 0)
    misses = counters.get("memo.misses", 0)
    if hits + misses:
        auto["memo.hit_ratio"] = hits / (hits + misses)
    if counters.get("sim.backend.fallbacks"):
        auto["sim.backend.fallbacks"] = counters["sim.backend.fallbacks"]
    points = counters.get("cme.points.classified", 0)
    if points and wall_seconds:
        auto["points_per_second"] = points / wall_seconds
    exact = counters.get("cme.regions.exact_regions", 0)
    fallback = counters.get("cme.regions.fallback_regions", 0)
    if exact + fallback:
        # The regional solver's quality signal: the fraction of regions it
        # counted in closed form (vs per-point enumeration fallback).
        auto["regions.exact_ratio"] = exact / (exact + fallback)
    auto.update(derived or {})

    return {
        "schema": LEDGER_SCHEMA,
        "ts": time.time(),
        "run_id": uuid.uuid4().hex[:12],
        "fingerprint": code_fingerprint()[:16],
        "host": platform.node(),
        "python": platform.python_version(),
        "label": label,
        "program": program,
        "cache": cache.describe() if hasattr(cache, "describe") else cache,
        "config": dict(config or {}),
        "phases": phases,
        "wall_seconds": wall_seconds,
        "peak_rss_bytes": peak_rss_bytes(),
        "counters": dict(counters),
        "derived": auto,
    }


def row_key(row: dict) -> str:
    """The baseline key: rows compare only within equal keys.

    Hashes ``(label, program, cache, config)`` — everything that defines
    *what* was measured, nothing about *when* or *how fast*.
    """
    material = json.dumps(
        [
            row.get("label"),
            row.get("program"),
            row.get("cache"),
            row.get("config", {}),
        ],
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()[:12]


def append_row(path: str, row: dict) -> str:
    """Append one row to the ledger at ``path`` (created as needed)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def read_ledger(path: str) -> list[dict]:
    """Every valid row in the ledger, in file (= chronological) order.

    A missing file reads as an empty history; blank lines, torn trailing
    writes and rows of a different schema are skipped silently — the
    ledger is append-only, so damage never propagates.
    """
    rows: list[dict] = []
    if not os.path.exists(path):
        return rows
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if isinstance(row, dict) and row.get("schema") == LEDGER_SCHEMA:
                rows.append(row)
    return rows


def by_key(rows: list[dict]) -> dict[str, list[dict]]:
    """Group rows by baseline key, preserving order within each group."""
    groups: dict[str, list[dict]] = {}
    for row in rows:
        groups.setdefault(row_key(row), []).append(row)
    return groups
