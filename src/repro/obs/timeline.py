"""Cross-process span timelines as Chrome trace-event JSON.

The span tracer (:mod:`repro.obs.tracer`) *aggregates* — repeated spans
collapse into one tree node — which is the right shape for totals but the
wrong shape for *seeing* a run: a timeline needs every individual span
entry with its start time and its process/thread.  This module adds that
missing view:

* :class:`TimelineRecorder` — a flat, thread-safe event buffer the tracer
  feeds when attached (``tracer.timeline = recorder``); each event is
  ``{name, start, dur, pid, tid}`` with ``start`` in
  :func:`time.perf_counter` seconds;
* :func:`chrome_trace` — renders the events as a Chrome trace-event
  document (``{"traceEvents": [...]}``) of complete (``"ph": "X"``)
  events, loadable in Perfetto / ``chrome://tracing``, with one *lane*
  (pid/tid pair) per process and thread and metadata events naming them;
* :func:`write_chrome_trace` — the file-writing convenience behind the
  CLI's ``--timeline-out``.

Cross-process stitching: worker processes of :mod:`repro.parallel.engine`
run their own recorder and ship ``snapshot()`` back with each chunk; the
parent folds the events in with :meth:`TimelineRecorder.extend`.  Events
keep the worker's real pid, so each worker renders as its own lane.  The
clocks are comparable because ``perf_counter`` reads a system-wide
monotonic clock (``CLOCK_MONOTONIC`` on Linux, ``mach_absolute_time`` on
macOS, ``QueryPerformanceCounter`` on Windows) whose origin is shared by
parent and workers on the same machine.

Durations are the *same* float the span tree accumulates, so for every
span name the timeline durations sum to the tree's ``seconds`` exactly —
the property the CI smoke job checks between ``--timeline-out`` and
``--metrics-out``.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Optional, Sequence

#: Microseconds per second — Chrome trace timestamps are in microseconds.
_US = 1e6


class TimelineRecorder:
    """A flat, thread-safe buffer of individual span events.

    Attach to a tracer (``tracer.timeline = recorder``) to receive one
    :meth:`record` call per span exit.  The buffer is append-only until
    :meth:`clear`; :meth:`snapshot` returns a JSON-serialisable copy (the
    unit worker processes ship back to the parent).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._events: list[dict] = []

    def record(self, name: str, start: float, elapsed: float) -> None:
        """Append one finished span (called by the tracer on span exit)."""
        event = {
            "name": name,
            "start": start,
            "dur": elapsed,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        with self._lock:
            self._events.append(event)

    def extend(self, events: Sequence[dict]) -> None:
        """Fold in events shipped from another process (worker lanes)."""
        with self._lock:
            self._events.extend(events)

    def snapshot(self) -> list[dict]:
        """A copy of the recorded events (JSON-serialisable)."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop every recorded event."""
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def chrome_trace(
    events: Sequence[dict], main_pid: Optional[int] = None
) -> dict:
    """Render span events as a Chrome trace-event document.

    ``events`` is a :meth:`TimelineRecorder.snapshot` (parent and worker
    events mixed).  ``main_pid`` labels that process's lane ``repro
    (parent)``; every other pid becomes ``worker <pid>``.  Thread ids are
    renumbered to small integers per process (Perfetto renders raw Python
    thread idents poorly), timestamps are shifted so the earliest event
    starts at 0 and converted to microseconds.
    """
    if main_pid is None:
        main_pid = os.getpid()
    origin = min((e["start"] for e in events), default=0.0)

    # Stable lane numbering: parent process first, then workers by pid;
    # within a process, threads in order of first appearance.
    pids = sorted({e["pid"] for e in events}, key=lambda p: (p != main_pid, p))
    tid_map: dict[tuple[int, int], int] = {}
    for e in sorted(events, key=lambda e: e["start"]):
        key = (e["pid"], e["tid"])
        if key not in tid_map:
            per_pid = sum(1 for (p, _t) in tid_map if p == e["pid"])
            tid_map[key] = per_pid

    trace_events: list[dict] = []
    for sort_index, pid in enumerate(pids):
        label = "repro (parent)" if pid == main_pid else f"worker {pid}"
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": sort_index},
            }
        )
    for (pid, _tid), lane in sorted(tid_map.items(), key=lambda kv: kv[1]):
        name = "main" if lane == 0 else f"thread {lane}"
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": lane,
                "args": {"name": name},
            }
        )
    for e in events:
        trace_events.append(
            {
                "ph": "X",
                "cat": "span",
                "name": e["name"],
                "ts": (e["start"] - origin) * _US,
                "dur": e["dur"] * _US,
                "pid": e["pid"],
                "tid": tid_map[(e["pid"], e["tid"])],
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, events: Sequence[dict], main_pid: Optional[int] = None
) -> int:
    """Write :func:`chrome_trace` JSON to ``path``; returns the event count."""
    doc = chrome_trace(events, main_pid=main_pid)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return len(events)


def sum_durations(events: Sequence[dict]) -> dict[str, float]:
    """Total event duration per span name (across all pids and threads).

    For any run, ``sum_durations(recorder.snapshot())[name]`` equals the
    total ``seconds`` of every tree node called ``name`` in the merged
    span tree — both sides accumulate the same per-entry floats.
    """
    totals: dict[str, float] = {}
    for e in events:
        totals[e["name"]] = totals.get(e["name"], 0.0) + e["dur"]
    return totals
