"""``repro.obs`` — pipeline-wide observability (tracing, metrics, profiling).

The paper's headline claim is that analytical CME prediction is *fast
enough to sit inside a compiler*; this subsystem answers *where the time
goes* — normalisation vs. reuse-vector solving vs. polyhedral point
counting vs. CME classification — and *how much work* each phase performs
(integer-solver calls, reuse vectors per kind, points classified per
outcome, simulated accesses, per-worker shard costs).

Three layers, all zero-dependency:

* :mod:`repro.obs.tracer` — a hierarchical span tracer
  (``obs.span("reuse/build_table")``) with monotonic-clock timings,
  context-manager and decorator APIs, and thread/process-safe accumulation;
* :mod:`repro.obs.registry` — counters, gauges and histograms under a
  stable dotted namespace (``polyhedra.intsolve.calls``,
  ``cme.points.classified``, ...);
* :mod:`repro.obs.export` — a stderr span-tree renderer, a stable JSON
  schema (``repro.metrics/v1``) and its validator;
  :mod:`repro.obs.profile` adds an opt-in ``cProfile`` hook around any
  named span.

**Off by default, free when off.**  The module-level state starts as the
null tracer/registry: ``obs.span(...)`` returns one shared no-op context
manager and ``obs.counter(...)`` one shared no-op counter, so instrumented
hot paths allocate nothing per event.  :func:`enable` swaps in live
instances; instrumented code resolves them through the module functions at
call time, so enabling mid-session takes effect immediately.

Typical use::

    from repro import obs

    obs.enable()
    with obs.span("analyze"):
        report = analyze(prepared, cache)
    print(obs.render())                 # span tree
    print(obs.to_json(obs.snapshot()))  # machine-readable export

Worker processes of :mod:`repro.parallel.engine` run their own registry
and tracer, snapshot them per chunk, and the parent folds the snapshots
back with :func:`merge_snapshot` — so ``--jobs N`` runs report the same
counters as serial runs.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.obs.export import (
    SCHEMA,
    build_snapshot,
    render_tree,
    to_json,
    top_counters,
    validate_snapshot,
)
from repro.obs.profile import SpanProfiler
from repro.obs.timeline import TimelineRecorder
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanNode,
    Tracer,
    traced,
)

__all__ = [
    "SCHEMA",
    "SpanProfiler",
    "TimelineRecorder",
    "enable_timeline",
    "timeline",
    "timeline_enabled",
    "timeline_events",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Tracer",
    "NullTracer",
    "SpanNode",
    "traced",
    "enable",
    "disable",
    "reset",
    "is_enabled",
    "tracer",
    "registry",
    "span",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "merge_snapshot",
    "render",
    "phase_times",
    "build_snapshot",
    "render_tree",
    "to_json",
    "top_counters",
    "validate_snapshot",
]

_tracer: Union[Tracer, NullTracer] = NULL_TRACER
_registry: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY
_timeline: Union[TimelineRecorder, None] = None


def enable() -> None:
    """Switch observability on (idempotent; existing data is kept)."""
    global _tracer, _registry
    if isinstance(_tracer, NullTracer):
        _tracer = Tracer()
        if _timeline is not None:
            _tracer.timeline = _timeline
    if isinstance(_registry, NullRegistry):
        _registry = MetricsRegistry()


def disable() -> None:
    """Switch observability off, dropping any recorded data."""
    global _tracer, _registry, _timeline
    _tracer = NULL_TRACER
    _registry = NULL_REGISTRY
    _timeline = None


def reset() -> None:
    """Drop recorded data but keep the current on/off state."""
    _tracer.reset()
    _registry.reset()
    if _timeline is not None:
        _timeline.clear()


def is_enabled() -> bool:
    """True when live (non-null) instruments are installed."""
    return not isinstance(_registry, NullRegistry)


# -- accessors (resolved at call time, so enable/disable apply immediately) ----


def tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (the null tracer while disabled)."""
    return _tracer


def registry() -> Union[MetricsRegistry, NullRegistry]:
    """The active metrics registry (the null registry while disabled)."""
    return _registry


def span(name: str):
    """Context manager timing ``name`` under the current span."""
    return _tracer.span(name)


def counter(name: str):
    """The counter called ``name`` (shared no-op while disabled)."""
    return _registry.counter(name)


def gauge(name: str):
    """The gauge called ``name`` (shared no-op while disabled)."""
    return _registry.gauge(name)


def histogram(name: str):
    """The histogram called ``name`` (shared no-op while disabled)."""
    return _registry.histogram(name)


# -- timelines -----------------------------------------------------------------


def enable_timeline() -> TimelineRecorder:
    """Start recording individual span events (implies :func:`enable`).

    Where the tracer aggregates repeated spans into tree nodes, the
    timeline recorder keeps every entry with its start time and pid/tid —
    the raw material of the ``--timeline-out`` Chrome-trace export.
    Idempotent; returns the active recorder.
    """
    global _timeline
    enable()
    if _timeline is None:
        _timeline = TimelineRecorder()
    _tracer.timeline = _timeline
    return _timeline


def timeline() -> Union[TimelineRecorder, None]:
    """The active timeline recorder (``None`` unless enabled)."""
    return _timeline


def timeline_enabled() -> bool:
    """True when span events are being recorded."""
    return _timeline is not None


def timeline_events() -> list:
    """A copy of the recorded span events (empty while disabled)."""
    return _timeline.snapshot() if _timeline is not None else []


# -- aggregate views -----------------------------------------------------------


def snapshot() -> dict:
    """The full schema-stamped document (metrics + span tree)."""
    return build_snapshot(_registry, _tracer)


def merge_snapshot(snap: Mapping) -> None:
    """Fold a worker-process snapshot into the live instruments.

    ``snap`` may be a full document from :func:`snapshot` or the partial
    ``{"metrics": ..., "spans": ...[, "timeline": ...]}`` payload the
    parallel engine ships.  Spans merge **under the currently open span**
    of the calling thread; timeline events (worker lanes) are folded into
    the active recorder, keeping their worker pids.
    """
    metrics = snap.get("metrics")
    if metrics is None and "counters" in snap:
        metrics = snap
    if metrics:
        _registry.merge(metrics)
    spans = snap.get("spans")
    if spans:
        _tracer.merge(spans)
    events = snap.get("timeline")
    if events and _timeline is not None:
        _timeline.extend(events)


def render() -> str:
    """The human-readable span tree (for ``--trace`` stderr output)."""
    return render_tree(_tracer.snapshot())


def phase_times() -> list[tuple[str, int, float]]:
    """``(name, count, seconds)`` per top-level span, in recorded order."""
    return _tracer.phase_times()
