"""The hierarchical span tracer — where analysis time goes.

A *span* is a named, timed region of the pipeline (``prepare/normalise``,
``reuse/build_table``, ``cme/estimate``).  Spans nest: entering a span makes
it the parent of spans opened inside it, which yields a tree mirroring the
Fig. 7 pipeline.  Repeated spans with the same name under the same parent
**aggregate** into one node (count + total seconds), so a per-reference span
entered thousands of times stays one line in the tree instead of thousands.

Timings use :func:`time.perf_counter` — the monotonic high-resolution clock
— consistently with the ``elapsed_seconds``/``solver_seconds`` fields of
:class:`~repro.cme.result.MissReport`.

Concurrency:

* **threads** share one tracer; each thread keeps its own span stack
  (``threading.local``) rooted at the same tree, and node updates are
  guarded by the tracer lock;
* **processes** (the ``parallel.engine`` workers) run their own tracer,
  :meth:`Tracer.snapshot` the finished tree, and the parent
  :meth:`Tracer.merge`\\ s it under its current span — so worker time shows
  up nested inside ``parallel/solve`` in the final tree.

When observability is disabled, :data:`NULL_TRACER` stands in:
``span(...)`` returns a shared reusable no-op context manager, so the
disabled path allocates nothing per span.
"""

from __future__ import annotations

import functools
import threading
from time import perf_counter
from typing import Callable, Optional, Sequence


class SpanNode:
    """One aggregated node of the span tree."""

    __slots__ = ("name", "count", "total_seconds", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.children: dict[str, "SpanNode"] = {}

    def as_dict(self) -> dict:
        """The stable JSON form: ``{name, count, seconds, children}``."""
        return {
            "name": self.name,
            "count": self.count,
            "seconds": self.total_seconds,
            "children": [c.as_dict() for c in self.children.values()],
        }


class _SpanContext:
    """Context manager for one span entry (exception-safe)."""

    __slots__ = ("_tracer", "_name", "_node", "_started")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_SpanContext":
        tracer = self._tracer
        stack = tracer._stack()
        parent = stack[-1]
        node = parent.children.get(self._name)
        if node is None:
            with tracer._lock:
                node = parent.children.get(self._name)
                if node is None:
                    node = SpanNode(self._name)
                    parent.children[self._name] = node
        self._node = node
        stack.append(node)
        if tracer.on_enter is not None:
            tracer.on_enter(self._name)
        self._started = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = perf_counter() - self._started
        tracer = self._tracer
        if tracer.on_exit is not None:
            tracer.on_exit(self._name)
        if tracer.timeline is not None:
            # The recorder stores the *same* elapsed value the tree
            # accumulates, so timeline durations sum to tree seconds
            # exactly (the `--timeline-out` vs `--metrics-out` contract).
            tracer.timeline.record(self._name, self._started, elapsed)
        node = self._node
        with tracer._lock:
            node.count += 1
            node.total_seconds += elapsed
        stack = tracer._stack()
        # Unwind to (and past) our node even if an exception skipped inner
        # bookkeeping — a span never leaks its children onto the stack.
        while len(stack) > 1 and stack[-1] is not node:
            stack.pop()
        if len(stack) > 1:
            stack.pop()
        return False


class Tracer:
    """Hierarchical, aggregating span tracer."""

    def __init__(self):
        self.root = SpanNode("root")
        self._lock = threading.RLock()
        self._local = threading.local()
        self._generation = 0
        #: Optional hooks called with the span name on enter/exit — the
        #: profiling layer (:mod:`repro.obs.profile`) attaches here.
        self.on_enter: Optional[Callable[[str], None]] = None
        self.on_exit: Optional[Callable[[str], None]] = None
        #: Optional per-span event sink — a
        #: :class:`repro.obs.timeline.TimelineRecorder` (or anything with a
        #: ``record(name, start, elapsed)`` method).  Unlike the aggregating
        #: tree, the sink sees every individual span entry, which is what a
        #: Chrome-trace timeline needs.
        self.timeline = None

    def _stack(self) -> list[SpanNode]:
        local = self._local
        if getattr(local, "generation", None) != self._generation:
            local.stack = [self.root]
            local.generation = self._generation
        return local.stack

    # -- recording -----------------------------------------------------------

    def span(self, name: str) -> _SpanContext:
        """A context manager timing one region under the current span."""
        return _SpanContext(self, name)

    def current_name(self) -> str:
        """Name of the innermost open span (``"root"`` at top level)."""
        return self._stack()[-1].name

    # -- aggregation ---------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Serialise the finished tree (top-level spans, recursively)."""
        with self._lock:
            return [c.as_dict() for c in self.root.children.values()]

    def merge(self, spans: Sequence[dict]) -> None:
        """Fold a :meth:`snapshot` in **under the current span**.

        The parallel engine calls this while its ``parallel/solve`` span is
        open, so worker spans nest below it in the final tree.
        """
        with self._lock:
            _merge_children(self._stack()[-1], spans)

    def phase_times(self) -> list[tuple[str, int, float]]:
        """``(name, count, seconds)`` for each top-level span, in order."""
        with self._lock:
            return [
                (c.name, c.count, c.total_seconds)
                for c in self.root.children.values()
            ]

    def reset(self) -> None:
        """Drop the tree and every thread's span stack."""
        with self._lock:
            self.root = SpanNode("root")
            self._generation += 1


def _merge_children(node: SpanNode, spans: Sequence[dict]) -> None:
    for s in spans:
        child = node.children.get(s["name"])
        if child is None:
            child = SpanNode(s["name"])
            node.children[s["name"]] = child
        child.count += s["count"]
        child.total_seconds += s["seconds"]
        _merge_children(child, s.get("children", []))


# -- disabled mode -------------------------------------------------------------


class _NullSpan:
    """Shared, reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled-mode tracer: one shared no-op span, empty snapshots."""

    on_enter = None
    on_exit = None
    timeline = None

    def span(self, name: str) -> _NullSpan:
        return NULL_SPAN

    def current_name(self) -> str:
        return "root"

    def snapshot(self) -> list[dict]:
        return []

    def merge(self, spans: Sequence[dict]) -> None:
        pass

    def phase_times(self) -> list[tuple[str, int, float]]:
        return []

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()


def traced(name: str) -> Callable:
    """Decorator form: run the function body inside ``span(name)``.

    The tracer is resolved at *call* time through :func:`repro.obs.span`,
    so decorating a function keeps zero overhead while observability is
    disabled and starts tracing the moment it is enabled.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro import obs

            with obs.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
