"""Exporters for the observability layer.

Three consumers, three formats:

* :func:`render_tree` — a human-readable span tree for ``--trace`` output
  on stderr;
* :func:`build_snapshot` / :func:`to_json` — the stable machine-readable
  schema behind ``--metrics-out`` and the ``BENCH_*.json`` perf-trajectory
  files the benchmarks emit;
* :func:`validate_snapshot` — a dependency-free structural validator used
  by the CI smoke job and the test suite (no ``jsonschema`` needed).

The JSON schema (version :data:`SCHEMA`)::

    {
      "schema": "repro.metrics/v1",
      "counters":   {"<dotted.name>": <int>, ...},
      "gauges":     {"<dotted.name>": <number>, ...},
      "histograms": {"<dotted.name>": {"count": <int>, "sum": <number>,
                                       "min": <number|null>,
                                       "max": <number|null>,
                                       "buckets": [[<bound|null>, <int>], ...]},
                     ...},
      "spans": [{"name": <str>, "count": <int>, "seconds": <number>,
                 "children": [<span>, ...]}, ...]
    }

The schema is additive-only: new metric names appear as new keys, never as
shape changes, so files written by older versions stay readable.
"""

from __future__ import annotations

import json
from typing import Sequence

SCHEMA = "repro.metrics/v1"


def build_snapshot(registry, tracer) -> dict:
    """Combine a registry and a tracer into one schema-stamped document."""
    doc = {"schema": SCHEMA}
    doc.update(registry.snapshot())
    doc["spans"] = tracer.snapshot()
    return doc


def to_json(snapshot: dict, indent: int = 2) -> str:
    """Serialise a snapshot deterministically (sorted keys)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def top_counters(snapshot: dict, k: int = 3) -> list[tuple[str, int]]:
    """The ``k`` largest counters, by value then name (stable)."""
    counters = snapshot.get("counters", {})
    ordered = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
    return ordered[:k]


# -- rendering -----------------------------------------------------------------


def render_tree(spans: Sequence[dict], total_width: int = 44) -> str:
    """Render a span snapshot as an indented tree with counts and times.

    ``spans`` is the list produced by ``Tracer.snapshot()`` (or the
    ``"spans"`` key of a full snapshot).
    """
    lines = ["span tree (total seconds, count):"]
    if not spans:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)

    def walk(nodes: Sequence[dict], prefix: str) -> None:
        for i, node in enumerate(nodes):
            last = i == len(nodes) - 1
            branch = "└─ " if last else "├─ "
            label = prefix + branch + node["name"]
            pad = max(1, total_width - len(label))
            lines.append(
                f"{label}{' ' * pad}{node['seconds']:9.4f}s  ×{node['count']}"
            )
            walk(node.get("children", []), prefix + ("   " if last else "│  "))

    walk(spans, "")
    return "\n".join(lines)


# -- validation ----------------------------------------------------------------


def _is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _validate_span(span, path: str, errors: list[str]) -> None:
    if not isinstance(span, dict):
        errors.append(f"{path}: span must be an object")
        return
    if not isinstance(span.get("name"), str):
        errors.append(f"{path}.name: must be a string")
    if not isinstance(span.get("count"), int) or isinstance(
        span.get("count"), bool
    ):
        errors.append(f"{path}.name={span.get('name')!r}: count must be an int")
    if not _is_number(span.get("seconds")):
        errors.append(
            f"{path}.name={span.get('name')!r}: seconds must be a number"
        )
    children = span.get("children", [])
    if not isinstance(children, list):
        errors.append(f"{path}.children: must be a list")
        return
    for i, child in enumerate(children):
        _validate_span(child, f"{path}.children[{i}]", errors)


def validate_snapshot(doc) -> list[str]:
    """Structurally validate a metrics document; returns a list of errors.

    An empty list means the document conforms to :data:`SCHEMA`.  This is
    the validator the CI smoke job runs against ``--metrics-out`` output.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document must be a JSON object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema: expected {SCHEMA!r}, got {doc.get('schema')!r}")
    for section in ("counters", "gauges", "histograms"):
        block = doc.get(section)
        if not isinstance(block, dict):
            errors.append(f"{section}: must be an object")
            continue
        for name, value in block.items():
            if not isinstance(name, str) or not name:
                errors.append(f"{section}: metric names must be strings")
            if section == "counters":
                if not isinstance(value, int) or isinstance(value, bool):
                    errors.append(f"counters[{name!r}]: must be an int")
            elif section == "gauges":
                if not _is_number(value):
                    errors.append(f"gauges[{name!r}]: must be a number")
            else:
                if not isinstance(value, dict):
                    errors.append(f"histograms[{name!r}]: must be an object")
                    continue
                for key in ("count", "sum", "min", "max"):
                    if key not in value:
                        errors.append(f"histograms[{name!r}]: missing {key!r}")
                if not isinstance(value.get("count"), int):
                    errors.append(f"histograms[{name!r}].count: must be an int")
                for key in ("min", "max"):
                    v = value.get(key)
                    if v is not None and not _is_number(v):
                        errors.append(
                            f"histograms[{name!r}].{key}: must be a number or null"
                        )
                buckets = value.get("buckets", [])
                if not isinstance(buckets, list):
                    errors.append(f"histograms[{name!r}].buckets: must be a list")
                else:
                    for j, pair in enumerate(buckets):
                        if (
                            not isinstance(pair, (list, tuple))
                            or len(pair) != 2
                            or (pair[0] is not None and not _is_number(pair[0]))
                            or not isinstance(pair[1], int)
                            or isinstance(pair[1], bool)
                        ):
                            errors.append(
                                f"histograms[{name!r}].buckets[{j}]: must be "
                                "[bound|null, count]"
                            )
    spans = doc.get("spans")
    if not isinstance(spans, list):
        errors.append("spans: must be a list")
    else:
        for i, span in enumerate(spans):
            _validate_span(span, f"spans[{i}]", errors)
    return errors
