"""Opt-in ``cProfile`` hooks around the traced pipeline.

Two modes, both driven by the CLI's ``--profile-out``:

* **whole-run** (no ``--profile-span``): :meth:`SpanProfiler.start` /
  :meth:`SpanProfiler.stop` bracket the entire command;
* **span-scoped** (``--profile-span NAME``): the profiler attaches to the
  tracer's enter/exit hooks and collects only while a span with the given
  name is open (re-entrant spans nest correctly — profiling stops when the
  outermost matching span closes).

The collected stats are written with :meth:`SpanProfiler.dump` in the
binary ``pstats`` format, ready for ``python -m pstats`` or ``snakeviz``.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Optional


class SpanProfiler:
    """A ``cProfile.Profile`` scoped to a named span (or the whole run)."""

    def __init__(self, span_name: Optional[str] = None):
        self.span_name = span_name
        self.profiler = cProfile.Profile()
        self._depth = 0
        self._running = False

    # -- whole-run mode ------------------------------------------------------

    def start(self) -> None:
        """Begin collecting (whole-run mode)."""
        if not self._running:
            self._running = True
            self.profiler.enable()

    def stop(self) -> None:
        """Stop collecting (idempotent)."""
        if self._running:
            self.profiler.disable()
            self._running = False

    # -- span-scoped mode ----------------------------------------------------

    def install(self, tracer) -> None:
        """Attach to a tracer's span hooks (span-scoped mode)."""
        if self.span_name is None:
            raise ValueError("install() needs a span name; use start() instead")
        tracer.on_enter = self._on_enter
        tracer.on_exit = self._on_exit

    def uninstall(self, tracer) -> None:
        """Detach from the tracer and stop collecting."""
        if tracer.on_enter is self._on_enter:
            tracer.on_enter = None
        if tracer.on_exit is self._on_exit:
            tracer.on_exit = None
        self.stop()

    def _on_enter(self, name: str) -> None:
        if name == self.span_name:
            self._depth += 1
            if self._depth == 1:
                self.start()

    def _on_exit(self, name: str) -> None:
        if name == self.span_name and self._depth > 0:
            self._depth -= 1
            if self._depth == 0:
                self.stop()

    # -- output --------------------------------------------------------------

    def dump(self, path: str) -> None:
        """Write the collected stats in ``pstats`` binary format."""
        self.stop()
        self.profiler.dump_stats(path)

    def summary(self, limit: int = 15) -> str:
        """A short cumulative-time summary (for logging)."""
        import io

        self.stop()
        buf = io.StringIO()
        stats = pstats.Stats(self.profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(limit)
        return buf.getvalue()
