"""Statistical perf-regression checking against ledger history.

The question ``repro-cache perf check`` answers: *is the current run
slower than this configuration's history can explain?*  Wall-clock noise
on shared machines (CI runners especially) makes a naive "slower than
last time" check useless, so three defences stack:

* **min-of-k baseline** — the baseline is the *minimum* of the last ``k``
  historical wall times, not the mean: the minimum estimates the
  machine's true capability, discarding runs that were merely unlucky;
* **threshold ratio** — a regression requires ``current > threshold ×
  baseline`` (default 1.5×), so ordinary jitter never trips;
* **confidence gate** — with ≥ 2 historical runs, the current time must
  also exceed ``mean + z·s`` of the history at the configured confidence
  level (the :func:`repro.stats.z_value` machinery the sampling solver
  already uses), so a tight threshold on a noisy history still does not
  false-positive; an absolute floor (``min_seconds``) ignores
  micro-benchmarks whose whole runtime is timer noise.

Rows compare only within equal baseline keys
(:func:`repro.obs.ledger.row_key`): same label, program, cache geometry
and solver/backend config.  A key with no history reports
``no-baseline`` and never fails the check.

Two severities serve CI: ratios above ``threshold`` are regressions;
ratios above ``hard_threshold`` (default: same) are *hard* regressions.
``perf check --warn-only`` exits non-zero only on hard ones — the
GitHub-runner mode (warn at 1.5×, hard-fail at 3×).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Optional

from repro.obs.ledger import by_key, read_ledger
from repro.stats import z_value

#: Default regression threshold: current must exceed 1.5× the baseline.
DEFAULT_THRESHOLD = 1.5

#: Default min-of-k window over the most recent history rows.
DEFAULT_BASELINE_K = 5

#: Absolute noise floor: differences under 5 ms never count.
DEFAULT_MIN_SECONDS = 0.005


@dataclass
class CheckResult:
    """Outcome of checking one current row against its history."""

    key: str
    label: str
    status: str  # "ok" | "regression" | "no-baseline" | "no-metric"
    current: Optional[float] = None
    baseline: Optional[float] = None
    ratio: Optional[float] = None
    history: int = 0
    hard: bool = False

    @property
    def regressed(self) -> bool:
        return self.status == "regression"

    def describe(self) -> str:
        """One human-readable report line."""
        if self.status == "no-baseline":
            return f"{self.label}: no baseline history (key {self.key})"
        if self.status == "no-metric":
            return f"{self.label}: row carries no wall time (key {self.key})"
        tag = "HARD REGRESSION" if self.hard else (
            "regression" if self.regressed else "ok"
        )
        return (
            f"{self.label}: {tag} — current {self.current:.4f}s vs "
            f"baseline {self.baseline:.4f}s "
            f"({self.ratio:.2f}x over {self.history} run(s))"
        )


def _wall_seconds(row: dict) -> Optional[float]:
    wall = row.get("wall_seconds")
    if wall is None:
        phases = row.get("phases") or {}
        wall = sum(phases.values()) if phases else None
    return wall


def check_rows(
    history: list[dict],
    current: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
    hard_threshold: Optional[float] = None,
    confidence: float = 0.95,
    baseline_k: int = DEFAULT_BASELINE_K,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> list[CheckResult]:
    """Check each current row against the matching history rows.

    ``history`` and ``current`` are ledger rows; matching is by baseline
    key.  Returns one :class:`CheckResult` per current row, in order.
    """
    if hard_threshold is None:
        hard_threshold = threshold
    if hard_threshold < threshold:
        raise ValueError("hard_threshold must be >= threshold")
    groups = by_key(history)
    current_ids = {row.get("run_id") for row in current}
    results: list[CheckResult] = []
    for row in current:
        from repro.obs.ledger import row_key

        key = row_key(row)
        label = row.get("label", "?")
        wall = _wall_seconds(row)
        if wall is None:
            results.append(CheckResult(key, label, "no-metric"))
            continue
        past = [
            r
            for r in groups.get(key, [])
            if r.get("run_id") not in current_ids
        ]
        walls = [w for w in (_wall_seconds(r) for r in past) if w is not None]
        if not walls:
            results.append(
                CheckResult(key, label, "no-baseline", current=wall)
            )
            continue
        window = walls[-baseline_k:]
        baseline = min(window)
        ratio = wall / baseline if baseline > 0 else float("inf")

        regressed = ratio > threshold and (wall - baseline) > min_seconds
        if regressed and len(walls) >= 2:
            mean = statistics.fmean(walls)
            spread = statistics.stdev(walls)
            regressed = wall > mean + z_value(confidence) * spread
        results.append(
            CheckResult(
                key,
                label,
                "regression" if regressed else "ok",
                current=wall,
                baseline=baseline,
                ratio=ratio,
                history=len(window),
                hard=regressed and ratio >= hard_threshold,
            )
        )
    return results


def check_ledger(
    ledger_path: str,
    current_path: Optional[str] = None,
    **kwargs,
) -> list[CheckResult]:
    """Check a ledger file; the ``repro-cache perf check`` entry point.

    With ``current_path``, every row there is checked against the history
    in ``ledger_path`` (the CI shape: committed baseline vs throwaway
    run).  Without it, the *latest* row of each baseline key in
    ``ledger_path`` is checked against that key's earlier rows.
    """
    history = read_ledger(ledger_path)
    if current_path is not None:
        current = read_ledger(current_path)
    else:
        current = [rows[-1] for rows in by_key(history).values() if len(rows)]
    return check_rows(history, current, **kwargs)


def exit_code(results: list[CheckResult], warn_only: bool = False) -> int:
    """0 when the check passes; 1 on regression.

    ``warn_only`` downgrades ordinary regressions to warnings — only
    *hard* regressions (ratio ≥ ``hard_threshold``) still fail.
    """
    if warn_only:
        return 1 if any(r.hard for r in results) else 0
    return 1 if any(r.regressed for r in results) else 0
