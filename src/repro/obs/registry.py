"""The metrics registry — counters, gauges and histograms.

The registry is the accumulation substrate of the observability layer
(:mod:`repro.obs`): pipeline stages record *what* happened (``intsolve``
calls, reuse vectors found, points classified per outcome, simulated
accesses), the tracer records *where time went*, and the exporters render
both.  Three instrument kinds cover everything the Fig. 7 pipeline needs:

* :class:`Counter` — a monotonically increasing integer (``calls``,
  ``points``, ``misses``);
* :class:`Gauge` — a last-write-wins value (``jobs``, configuration);
* :class:`Histogram` — count/sum/min/max of observed values (RIS volumes,
  UGS sizes, per-chunk worker seconds) plus a sparse geometric bucket
  ladder (:data:`BUCKET_BOUNDS`) feeding :meth:`Histogram.percentile`,
  which interpolates **linearly between bucket bounds** — a naive
  nearest-bucket readout would overstate p99 on sparse histograms by
  snapping to the bucket's upper edge.

Metric names form a stable dot-separated namespace documented in README.md
(``polyhedra.intsolve.calls``, ``cme.points.classified``, ...); exporters
treat the names as opaque keys, so the schema never changes when metrics
are added.

Thread-safety: instrument creation, :meth:`MetricsRegistry.merge` and
:meth:`MetricsRegistry.snapshot` take the registry lock; per-event updates
take the same lock so concurrent threads (and the parallel engine's merge
of worker snapshots) never lose counts.

When observability is disabled, :data:`NULL_REGISTRY` stands in: every
instrument request returns a shared no-op singleton, so the disabled path
allocates **nothing** per event and per-event calls are empty method
bodies.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Mapping, Optional

#: Upper bucket bounds of every histogram: a 1-2-5 geometric ladder from
#: 1e-9 to 5e12, wide enough for seconds (ns..weeks) and bytes/counts
#: (1..TB) alike.  Values above the last bound land in an overflow bucket
#: whose effective upper edge is the observed maximum.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-9, 13) for m in (1.0, 2.0, 5.0)
)

#: Bound value → bucket index, for folding serialised buckets back in.
_BOUND_INDEX = {bound: i for i, bound in enumerate(BUCKET_BOUNDS)}

#: Index of the overflow bucket (values above the last bound).
_OVERFLOW = len(BUCKET_BOUNDS)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        with self._lock:
            self.value += n


class Gauge:
    """A last-write-wins numeric metric."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self.value = value


class Histogram:
    """Count/sum/min/max summary plus sparse buckets of observed values."""

    __slots__ = ("name", "count", "sum", "min", "max", "buckets", "_lock")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: Sparse bucket counts: index into :data:`BUCKET_BOUNDS` (or
        #: :data:`_OVERFLOW`) → observations in ``(bounds[i-1], bounds[i]]``.
        self.buckets: dict[int, int] = {}
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            idx = bisect_left(BUCKET_BOUNDS, value)
            self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile, interpolated linearly within buckets.

        The target rank ``p/100 · count`` is located in the cumulative
        bucket counts, then the value is interpolated linearly between the
        bucket's lower and upper bounds — assuming observations spread
        uniformly inside a bucket, the standard Prometheus-style estimate.
        (A nearest-bucket readout — returning the bucket's upper edge —
        systematically overstates high percentiles on sparse histograms,
        by up to the full bucket width.)  The first and last occupied
        buckets are tightened to the observed ``min``/``max``, so ``p=0``
        and ``p=100`` are exact.  Returns ``None`` on an empty histogram.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if self.count == 0:
                return None
            rank = p / 100.0 * self.count
            if rank <= 0.0:
                return self.min
            occupied = sorted(self.buckets)
            first, last = occupied[0], occupied[-1]
            cumulative = 0
            for idx in occupied:
                in_bucket = self.buckets[idx]
                below = cumulative
                cumulative += in_bucket
                if cumulative < rank:
                    continue
                lo = 0.0 if idx == 0 else BUCKET_BOUNDS[idx - 1]
                hi = self.max if idx == _OVERFLOW else BUCKET_BOUNDS[idx]
                if idx == first:
                    lo = self.min
                if idx == last:
                    hi = self.max
                value = lo + (hi - lo) * (rank - below) / in_bucket
                return min(max(value, self.min), self.max)
            return self.max

    def as_dict(self) -> dict:
        """The stable JSON form: ``{count, sum, min, max[, buckets]}``.

        ``buckets`` — present only when non-empty, keeping the schema
        additive — lists ``[upper_bound, count]`` pairs in bound order;
        the overflow bucket serialises its bound as ``null``.
        """
        doc = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }
        if self.buckets:
            doc["buckets"] = [
                [None if i == _OVERFLOW else BUCKET_BOUNDS[i], n]
                for i, n in sorted(self.buckets.items())
            ]
        return doc


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created on first use and cached by name, so call sites
    may either hoist a handle out of a loop (hot paths) or look the
    instrument up per event (cold paths) — both hit the same object.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name, self._lock))
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name, self._lock))
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(
                    name, Histogram(name, self._lock)
                )
        return h

    # -- aggregation ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-data copy: ``{counters, gauges, histograms}``.

        The returned dict is JSON-serialisable and is the unit the parallel
        engine ships from workers back to the parent process.
        """
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {
                    n: h.as_dict() for n, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms accumulate; gauges take the incoming value
        (last write wins).  Merging is how per-worker metrics from
        ``parallel.engine`` become one program-wide view.
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counter(name).inc(value)
            for name, value in snapshot.get("gauges", {}).items():
                self.gauge(name).set(value)
            for name, h in snapshot.get("histograms", {}).items():
                mine = self.histogram(name)
                if not h.get("count"):
                    continue
                mine.count += h["count"]
                mine.sum += h["sum"]
                if mine.min is None or (h["min"] is not None and h["min"] < mine.min):
                    mine.min = h["min"]
                if mine.max is None or (h["max"] is not None and h["max"] > mine.max):
                    mine.max = h["max"]
                for bound, n in h.get("buckets", []):
                    idx = _OVERFLOW if bound is None else _BOUND_INDEX[bound]
                    mine.buckets[idx] = mine.buckets.get(idx, 0) + n

    def reset(self) -> None:
        """Drop every instrument (a fresh, empty registry)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# -- disabled mode -------------------------------------------------------------


class _NullCounter:
    """Shared no-op counter: ``inc`` does nothing, allocates nothing."""

    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    """Shared no-op gauge."""

    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    """Shared no-op histogram."""

    __slots__ = ()
    count = 0
    sum = 0.0
    min = None
    max = None
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> Optional[float]:
        return None

    def as_dict(self) -> dict:
        return {"count": 0, "sum": 0.0, "min": None, "max": None}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The disabled-mode registry: every request returns a shared no-op.

    This is what makes observability free when off — instrument lookups
    return module-level singletons (no dict entry, no per-event object) and
    every recording method is an empty body.
    """

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: Mapping) -> None:
        pass

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()
