"""A self-contained HTML perf dashboard rendered from the run ledger.

``repro-cache perf report`` turns a ``repro.ledger/v1`` file into one
HTML document with zero dependencies and zero external assets — inline
CSS, hand-rolled inline SVG — so it can be attached to a CI run as an
artifact and opened anywhere:

* one section per baseline key (label + program + cache + config), with
* the **wall-time trajectory**: a line chart of every recorded run, the
  min-of-history baseline marked, the latest point highlighted;
* the **latest run's phase breakdown**: horizontal bars of the top-level
  span wall times;
* a **counter table** of the latest run (largest counters first) plus the
  derived ratios (memo hit ratio, points/second) and peak RSS.
"""

from __future__ import annotations

import html
import time
from typing import Optional, Sequence

from repro.obs.ledger import by_key

_CSS = """
body { font: 14px/1.45 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 960px; color: #1a1a2e; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em;
     border-bottom: 1px solid #d8d8e0; padding-bottom: 0.3em; }
.meta { color: #667; font-size: 0.92em; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { text-align: left; padding: 0.25em 1em 0.25em 0;
         border-bottom: 1px solid #ececf2; font-variant-numeric: tabular-nums; }
th { color: #556; font-weight: 600; }
svg { background: #fafafc; border: 1px solid #e4e4ec; border-radius: 4px; }
.cols { display: flex; flex-wrap: wrap; gap: 2em; align-items: flex-start; }
"""


def _fmt_seconds(s: Optional[float]) -> str:
    if s is None:
        return "—"
    if s < 1e-3:
        return f"{s * 1e6:.0f}µs"
    if s < 1.0:
        return f"{s * 1e3:.1f}ms"
    return f"{s:.3f}s"


def _fmt_bytes(n: Optional[float]) -> str:
    if not n:
        return "—"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024:
            return f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}TiB"


def _esc(s: object) -> str:
    return html.escape(str(s))


def _trajectory_svg(
    walls: Sequence[float], width: int = 430, height: int = 130
) -> str:
    """Line chart of wall seconds per run (oldest → newest)."""
    pad = 8
    if not walls:
        return ""
    top = max(walls) or 1.0
    n = len(walls)
    span_x = width - 2 * pad
    span_y = height - 2 * pad

    def xy(i: int, w: float) -> tuple[float, float]:
        x = pad + (span_x * i / max(1, n - 1))
        y = pad + span_y * (1.0 - w / top)
        return x, y

    points = [xy(i, w) for i, w in enumerate(walls)]
    polyline = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    baseline = min(walls)
    _, base_y = xy(0, baseline)
    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="wall-time trajectory">',
        f'<line x1="{pad}" y1="{base_y:.1f}" x2="{width - pad}" '
        f'y2="{base_y:.1f}" stroke="#9ab" stroke-dasharray="4 3"/>',
    ]
    if n > 1:
        parts.append(
            f'<polyline points="{polyline}" fill="none" stroke="#4057a7" '
            'stroke-width="1.5"/>'
        )
    for x, y in points[:-1]:
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.4" fill="#4057a7"/>')
    lx, ly = points[-1]
    parts.append(f'<circle cx="{lx:.1f}" cy="{ly:.1f}" r="3.4" fill="#c23b4b"/>')
    parts.append(
        f'<title>{n} runs — min {_fmt_seconds(baseline)}, '
        f'latest {_fmt_seconds(walls[-1])}</title></svg>'
    )
    return "".join(parts)


def _phase_bars_svg(
    phases: dict, width: int = 430, bar: int = 17
) -> str:
    """Horizontal bars of the latest run's top-level phase wall times."""
    if not phases:
        return ""
    items = sorted(phases.items(), key=lambda kv: -kv[1])
    top = max(v for _, v in items) or 1.0
    label_w, pad = 170, 4
    height = len(items) * (bar + pad) + pad
    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="phase breakdown">'
    ]
    for i, (name, secs) in enumerate(items):
        y = pad + i * (bar + pad)
        w = max(1.0, (width - label_w - 70) * secs / top)
        parts.append(
            f'<text x="{label_w - 6}" y="{y + bar - 5}" text-anchor="end" '
            f'font-size="11" fill="#334">{_esc(name)}</text>'
            f'<rect x="{label_w}" y="{y}" width="{w:.1f}" height="{bar}" '
            'fill="#5a74c4" rx="2"/>'
            f'<text x="{label_w + w + 5:.1f}" y="{y + bar - 5}" '
            f'font-size="11" fill="#556">{_fmt_seconds(secs)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _counter_table(row: dict, top: int = 12) -> str:
    counters = sorted(
        row.get("counters", {}).items(), key=lambda kv: (-kv[1], kv[0])
    )[:top]
    cells = "".join(
        f"<tr><td>{_esc(name)}</td><td>{value:,}</td></tr>"
        for name, value in counters
    )
    derived = "".join(
        f"<tr><td>{_esc(name)}</td><td>{value:,.4g}</td></tr>"
        for name, value in sorted(row.get("derived", {}).items())
    )
    if not cells and not derived:
        return "<p class='meta'>(no counters recorded)</p>"
    return (
        "<table><tr><th>counter</th><th>value</th></tr>"
        + cells
        + derived
        + "</table>"
    )


def build_report(rows: list[dict], title: str = "repro perf report") -> str:
    """Render the full dashboard HTML for a list of ledger rows."""
    groups = by_key(rows)
    ordered = sorted(
        groups.items(), key=lambda kv: str(kv[1][-1].get("label", ""))
    )
    sections: list[str] = []
    for key, runs in ordered:
        latest = runs[-1]
        walls = [
            w
            for w in (r.get("wall_seconds") for r in runs)
            if w is not None
        ]
        head = " · ".join(
            _esc(part)
            for part in (
                latest.get("label"),
                latest.get("program"),
                latest.get("cache"),
            )
            if part
        )
        config = ", ".join(
            f"{_esc(k)}={_esc(v)}"
            for k, v in sorted(latest.get("config", {}).items())
        )
        latest_wall = latest.get("wall_seconds")
        sections.append(
            f"<h2>{head}</h2>"
            f"<p class='meta'>key {key} · {len(runs)} run(s) · "
            f"latest {_fmt_seconds(latest_wall)}"
            + (
                f" · baseline {_fmt_seconds(min(walls))}"
                if walls
                else ""
            )
            + f" · peak RSS {_fmt_bytes(latest.get('peak_rss_bytes'))}"
            + (f"<br>{config}" if config else "")
            + "</p><div class='cols'><div>"
            + _trajectory_svg(walls)
            + "</div><div>"
            + _phase_bars_svg(latest.get("phases", {}))
            + "</div><div>"
            + _counter_table(latest)
            + "</div></div>"
        )
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    body = (
        "\n".join(sections)
        if sections
        else "<p class='meta'>The ledger is empty.</p>"
    )
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{_esc(title)}</h1>"
        f"<p class='meta'>generated {stamp} · {len(rows)} ledger row(s) · "
        f"{len(groups)} benchmark key(s)</p>"
        f"{body}</body></html>\n"
    )


def write_report(
    path: str, rows: list[dict], title: str = "repro perf report"
) -> str:
    """Write :func:`build_report` output to ``path``."""
    with open(path, "w") as fh:
        fh.write(build_report(rows, title=title))
    return path
