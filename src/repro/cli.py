"""Command-line interface: analyse, simulate and compare workloads.

Examples::

    repro-cache analyze hydro --cache 32:32:2 --size 64
    repro-cache analyze hydro --cache 32:32:2 --trace --metrics-out m.json
    repro-cache compare mmt --cache 8:32:1 --size 32
    repro-cache simulate path/to/kernel.f --cache 32:32:4 --sim-backend numpy
    repro-cache stats applu
    repro-cache trace export swim --size 40 -o swim.trace
    repro-cache trace simulate swim.trace --cache 4:32:2
    repro-cache trace import raw.addr --word-bytes 4 --byteorder big -o ext.trace

Cache specifications are ``SIZE_KB:LINE_BYTES:ASSOC``.

Observability flags (accepted by every subcommand):

* ``--trace`` — print the span tree and a per-phase timing table on stderr;
* ``--metrics-out PATH`` — write the ``repro.metrics/v1`` JSON document to
  ``PATH`` (``-`` writes it to stdout and moves all human output to stderr,
  so stdout stays machine-readable);
* ``--profile-out PATH`` — collect ``cProfile`` stats (binary ``pstats``
  format); ``--profile-span NAME`` narrows collection to one span;
* ``--quiet`` — silence diagnostics (the ``repro`` logger) so only the
  final table is printed.

Memoization flags (``analyze`` and ``compare``):

* ``--cache-dir DIR`` — content-addressed memoization of per-reference
  solutions with a persistent store under ``DIR``; a warm re-run replays
  stored results instead of re-solving (see README "Caching");
* ``--no-cache`` — switch memoization off.

Diagnostic lines go through :mod:`logging` (logger ``repro.cli``); final
tables are printed directly, so ``--quiet`` silences everything except the
result.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Callable, Optional, TextIO

from repro import obs
from repro.analysis import analyze, prepare, run_simulation
from repro.inline import classify_program
from repro.ir import Program, program_stats
from repro.layout import CacheConfig
from repro.report import format_table, with_timing

log = logging.getLogger("repro.cli")


def _parse_cache(spec: str) -> CacheConfig:
    try:
        size_kb, line, assoc = (int(p) for p in spec.split(":"))
    except ValueError:
        raise SystemExit(
            f"bad cache spec {spec!r}: expected SIZE_KB:LINE_BYTES:ASSOC"
        )
    return CacheConfig(size_kb * 1024, line, assoc)


def _load_workload(name: str, size: Optional[int], steps: int) -> Program:
    from repro.kernels import build_hydro, build_mgrid, build_mmt
    from repro.programs import (
        build_applu_like,
        build_swim_like,
        build_tomcatv_like,
    )

    builders = {
        "hydro": lambda: build_hydro(size or 64, size or 64),
        "mgrid": lambda: build_mgrid(size or 20),
        "mmt": lambda: build_mmt(size or 48, (size or 48) // 2, (size or 48) // 4),
        "tomcatv": lambda: build_tomcatv_like(size or 48, steps),
        "swim": lambda: build_swim_like(size or 48, steps),
        "applu": lambda: build_applu_like(size or 24, steps),
    }
    if name in builders:
        return builders[name]()
    if name.endswith(".f"):
        from repro.frontend import parse_program

        with open(name) as fh:
            return parse_program(fh.read())
    raise SystemExit(
        f"unknown workload {name!r}: use one of {sorted(builders)} or a .f file"
    )


def _add_workload_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("workload", help="builtin name (hydro, mmt, swim, ...) or .f file")
    sub.add_argument("--size", type=int, default=None, help="problem size")
    sub.add_argument("--steps", type=int, default=2, help="time steps (programs)")
    sub.add_argument(
        "--cache", default="32:32:1", help="cache spec SIZE_KB:LINE_BYTES:ASSOC"
    )


def _add_backend_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--backend",
        choices=["scalar", "numpy"],
        default="numpy",
        help="classification backend: 'numpy' = vectorized batch solving "
        "(falls back to scalar when NumPy is not installed), 'scalar' = "
        "pure Python; results are bit-identical either way",
    )


def _add_sim_backend_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--sim-backend",
        choices=["scalar", "numpy"],
        default="numpy",
        help="simulator backend: 'numpy' = vectorized stack-distance "
        "kernel (falls back to scalar when NumPy is not installed), "
        "'scalar' = walker + LRU state machine; per-reference tallies "
        "are bit-identical either way",
    )


def _add_jobs_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-reference solve "
        "(1 = serial, 0 = all CPUs); results are identical for any value",
    )


def _add_memo_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist memoized per-reference solutions under DIR; warm "
        "re-runs replay stored results (see README 'Caching')",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="disable memoization entirely (in-run dedup included)",
    )


def _open_memoizer(args):
    """The memoizer implied by ``--cache-dir``/``--no-cache`` (or ``None``)."""
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        return None
    from repro.memo import Memoizer

    return Memoizer.open(cache_dir)


def _close_memoizer(memo) -> None:
    """Flush new solutions and log the memoization tallies."""
    if memo is None:
        return
    written = memo.flush()
    log.info(
        "memo: %d hit(s), %d miss(es), %d group(s), %d from store, "
        "%d newly persisted",
        memo.hits,
        memo.misses,
        memo.groups,
        memo.store_hits,
        written,
    )


def _add_obs_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree and per-phase timings on stderr",
    )
    sub.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the repro.metrics/v1 JSON document to PATH "
        "('-' = stdout; human output then moves to stderr)",
    )
    sub.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="collect cProfile stats and dump them (pstats format) to PATH",
    )
    sub.add_argument(
        "--profile-span",
        metavar="NAME",
        default=None,
        help="restrict --profile-out collection to the named span "
        "(e.g. cme/estimate, reuse/build_table)",
    )
    sub.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="silence diagnostics; only the final table is printed",
    )


def _configure_logging(quiet: bool, stream: TextIO) -> None:
    """Route the ``repro`` logger to ``stream`` (plain messages).

    Re-entrant: repeated ``main()`` calls (tests, library use) replace the
    handler instead of stacking duplicates.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(logging.WARNING if quiet else logging.INFO)
    logger.propagate = False


# -- subcommands ---------------------------------------------------------------


def _cmd_stats(args, program: Program, echo: Callable[[str], None]) -> int:
    st = program_stats(program)
    cs = classify_program(program)
    echo(
        format_table(
            ["#lines", "#subroutines", "#calls", "#references"],
            [(st.lines, st.subroutines, st.call_statements, st.references)],
            title=f"{program.name} — program statistics (Table 5 columns)",
        )
    )
    echo("")
    echo(
        format_table(
            ["P-able", "R-able", "N-able", "Calls", "A-able"],
            [(cs.p_able, cs.r_able, cs.n_able, cs.calls_total, cs.calls_analysable)],
            title="Actual-parameter classification (Table 2 columns)",
        )
    )
    return 0


def _cmd_analyze(args, program: Program, echo: Callable[[str], None]) -> int:
    cache = _parse_cache(args.cache)
    prepared = prepare(program)
    memo = _open_memoizer(args)
    report = analyze(
        prepared,
        cache,
        method=args.method,
        confidence=args.confidence,
        width=args.width,
        seed=args.seed,
        jobs=args.jobs,
        memo=memo,
        backend=args.backend,
    )
    _close_memoizer(memo)
    log.info(
        "%s on %s: miss ratio %.2f%% (%.0f of %d accesses, %s, %.2fs, "
        "%d points analysed, %d job(s), %.0f points/s)",
        program.name,
        cache.describe(),
        report.miss_ratio_percent,
        report.total_misses,
        report.total_accesses,
        report.method,
        report.elapsed_seconds,
        report.analysed_points,
        report.jobs,
        report.points_per_second,
    )
    rows = [
        (r.ref_name, r.population, f"{100 * r.miss_ratio:.2f}")
        for r in report.worst_refs(8)
    ]
    echo("")
    echo(
        format_table(
            ["Reference", "Accesses", "Miss %"],
            rows,
            title=(
                f"Worst references — {program.name} on {cache.describe()}, "
                f"{report.method}, miss ratio "
                f"{report.miss_ratio_percent:.2f}%"
            ),
        )
    )
    return 0


def _cmd_simulate(args, program: Program, echo: Callable[[str], None]) -> int:
    cache = _parse_cache(args.cache)
    prepared = prepare(program)
    report = run_simulation(prepared, cache, backend=args.sim_backend)
    echo(
        f"{program.name} on {cache.describe()}: "
        f"miss ratio {report.miss_ratio_percent:.2f}% "
        f"({report.total_misses} of {report.total_accesses} accesses, "
        f"{report.elapsed_seconds:.2f}s)"
    )
    return 0


def _cmd_compare(args, program: Program, echo: Callable[[str], None]) -> int:
    cache = _parse_cache(args.cache)
    prepared = prepare(program)
    memo = _open_memoizer(args)
    analytic = analyze(
        prepared,
        cache,
        method=args.method,
        jobs=args.jobs,
        memo=memo,
        backend=args.backend,
    )
    _close_memoizer(memo)
    simulated = run_simulation(prepared, cache, backend=args.sim_backend)
    err = abs(analytic.miss_ratio_percent - simulated.miss_ratio_percent)
    echo(
        format_table(
            ["", "Miss %", "#misses", "Time (s)"],
            [
                (
                    analytic.method,
                    analytic.miss_ratio_percent,
                    int(analytic.total_misses),
                    analytic.elapsed_seconds,
                ),
                (
                    "Simulator",
                    simulated.miss_ratio_percent,
                    simulated.total_misses,
                    simulated.elapsed_seconds,
                ),
            ],
            title=f"{program.name} on {cache.describe()} (abs. error {err:.2f}pp)",
        )
    )
    return 0


def _cmd_trace(args, echo: Callable[[str], None]) -> int:
    """The ``trace`` verbs: export, import and simulate binary traces."""
    from repro.errors import MissingDependencyError, TraceFormatError
    from repro.sim import (
        collect_walker_trace,
        import_address_trace,
        simulate_trace,
        write_trace,
    )

    try:
        if args.trace_command == "export":
            program = _load_workload(args.workload, args.size, args.steps)
            prepared = prepare(program)
            count = write_trace(
                args.output, collect_walker_trace(prepared.walker)
            )
            echo(
                f"{program.name}: exported {count} accesses "
                f"to {args.output}"
            )
            return 0
        if args.trace_command == "import":
            pairs = import_address_trace(
                args.input,
                word_bytes=args.word_bytes,
                byteorder=args.byteorder,
                ref_uid=args.ref_uid,
            )
            count = write_trace(args.output, pairs)
            echo(
                f"imported {count} {args.word_bytes}-byte "
                f"{args.byteorder}-endian addresses from {args.input} "
                f"to {args.output}"
            )
            return 0
        cache = _parse_cache(args.cache)
        report = simulate_trace(args.input, cache, backend=args.sim_backend)
        echo(
            f"{args.input} on {cache.describe()}: "
            f"miss ratio {report.miss_ratio_percent:.2f}% "
            f"({report.total_misses} of {report.total_accesses} accesses, "
            f"{report.elapsed_seconds:.2f}s)"
        )
        return 0
    except (TraceFormatError, MissingDependencyError) as exc:
        raise SystemExit(str(exc))


# -- observability plumbing ----------------------------------------------------


def _emit_trace() -> None:
    """Print the span tree and a per-phase timing table on stderr."""
    print(obs.render(), file=sys.stderr)
    phases = obs.phase_times()
    if phases:
        headers, rows = with_timing(
            ["Phase", "Count"],
            [(name, count) for name, count, _ in phases],
            [seconds for _, _, seconds in phases],
        )
        print("", file=sys.stderr)
        print(
            format_table(headers, rows, title="Per-phase wall time"),
            file=sys.stderr,
        )


def _emit_metrics(path: str) -> None:
    """Write the metrics JSON document to ``path`` (``-`` = stdout)."""
    text = obs.to_json(obs.snapshot())
    if path == "-":
        sys.stdout.write(text + "\n")
    else:
        with open(path, "w") as fh:
            fh.write(text + "\n")
        log.info("metrics written to %s", path)


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point for the ``repro-cache`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Analytical whole-program cache behaviour prediction "
        "(Vera & Xue, HPCA 2002 reproduction)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    p_analyze = subs.add_parser("analyze", help="analytical miss prediction")
    _add_workload_args(p_analyze)
    p_analyze.add_argument(
        "--method", choices=["estimate", "find"], default="estimate"
    )
    p_analyze.add_argument("--confidence", type=float, default=0.95)
    p_analyze.add_argument("--width", type=float, default=0.05)
    p_analyze.add_argument("--seed", type=int, default=0)
    _add_backend_arg(p_analyze)
    _add_jobs_arg(p_analyze)
    _add_memo_args(p_analyze)
    _add_obs_args(p_analyze)

    p_sim = subs.add_parser("simulate", help="trace-driven LRU simulation")
    _add_workload_args(p_sim)
    _add_sim_backend_arg(p_sim)
    _add_obs_args(p_sim)

    p_cmp = subs.add_parser("compare", help="analytical vs simulated, side by side")
    _add_workload_args(p_cmp)
    p_cmp.add_argument(
        "--method", choices=["estimate", "find"], default="estimate"
    )
    _add_backend_arg(p_cmp)
    _add_sim_backend_arg(p_cmp)
    _add_jobs_arg(p_cmp)
    _add_memo_args(p_cmp)
    _add_obs_args(p_cmp)

    p_trace = subs.add_parser(
        "trace", help="export, import and simulate binary access traces"
    )
    tsubs = p_trace.add_subparsers(dest="trace_command", required=True)

    t_export = tsubs.add_parser(
        "export", help="walk a workload and write its binary trace"
    )
    t_export.add_argument(
        "workload", help="builtin name (hydro, mmt, swim, ...) or .f file"
    )
    t_export.add_argument("--size", type=int, default=None, help="problem size")
    t_export.add_argument("--steps", type=int, default=2, help="time steps")
    t_export.add_argument(
        "-o", "--output", required=True, help="trace file to write"
    )
    _add_obs_args(t_export)

    t_import = tsubs.add_parser(
        "import",
        help="convert a raw fixed-width address trace to the binary format",
    )
    t_import.add_argument("input", help="raw address trace file")
    t_import.add_argument(
        "-o", "--output", required=True, help="trace file to write"
    )
    t_import.add_argument(
        "--word-bytes", type=int, default=4, help="bytes per address word"
    )
    t_import.add_argument(
        "--byteorder", choices=["big", "little"], default="big"
    )
    t_import.add_argument(
        "--ref-uid",
        type=int,
        default=0,
        help="reference uid to attribute every access to",
    )
    _add_obs_args(t_import)

    t_sim = tsubs.add_parser(
        "simulate", help="replay a binary trace through the LRU simulator"
    )
    t_sim.add_argument("input", help="binary trace file")
    t_sim.add_argument(
        "--cache", default="32:32:1", help="cache spec SIZE_KB:LINE_BYTES:ASSOC"
    )
    _add_sim_backend_arg(t_sim)
    _add_obs_args(t_sim)

    p_stats = subs.add_parser("stats", help="Table 5 / Table 2 style statistics")
    p_stats.add_argument("workload")
    p_stats.add_argument("--size", type=int, default=None)
    p_stats.add_argument("--steps", type=int, default=2)
    _add_obs_args(p_stats)

    args = parser.parse_args(argv)

    metrics_out = args.metrics_out
    machine_stdout = metrics_out == "-"
    human_stream = sys.stderr if machine_stdout else sys.stdout
    _configure_logging(args.quiet, human_stream)

    def echo(line: str = "") -> None:
        print(line, file=human_stream)

    if args.trace or metrics_out or args.profile_out:
        obs.enable()
        obs.reset()

    profiler = None
    if args.profile_out:
        profiler = obs.SpanProfiler(args.profile_span)
        if args.profile_span:
            profiler.install(obs.tracer())
        else:
            profiler.start()
    elif args.profile_span:
        raise SystemExit("--profile-span requires --profile-out")

    commands = {
        "stats": _cmd_stats,
        "analyze": _cmd_analyze,
        "simulate": _cmd_simulate,
        "compare": _cmd_compare,
    }
    try:
        if args.command == "trace":
            rc = _cmd_trace(args, echo)
        else:
            program = _load_workload(
                args.workload, args.size, getattr(args, "steps", 2)
            )
            rc = commands[args.command](args, program, echo)
    finally:
        if profiler is not None:
            if args.profile_span:
                profiler.uninstall(obs.tracer())
            profiler.dump(args.profile_out)
            log.info("profile written to %s", args.profile_out)
        if args.trace:
            _emit_trace()
        if metrics_out:
            _emit_metrics(metrics_out)
    return rc


if __name__ == "__main__":
    sys.exit(main())
