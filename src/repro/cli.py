"""Command-line interface: analyse, simulate and compare workloads.

Examples::

    repro-cache analyze hydro --cache 32:32:2 --size 64
    repro-cache analyze hydro --cache 32:32:2 --trace --metrics-out m.json
    repro-cache compare mmt --cache 8:32:1 --size 32
    repro-cache simulate path/to/kernel.f --cache 32:32:4 --sim-backend numpy
    repro-cache simulate hydro --cache 4:32:2 --policy plru
    repro-cache simulate hydro --cache 1:32:2 --l2-cache 16:32:8 --l2-policy random
    repro-cache stats applu
    repro-cache trace export swim --size 40 -o swim.trace
    repro-cache trace simulate swim.trace --cache 4:32:2 --policy fifo
    repro-cache trace import raw.addr --word-bytes 4 --byteorder big -o ext.trace
    repro-cache analyze hydro --jobs 4 --timeline-out t.json --ledger-out runs.jsonl
    repro-cache perf check runs.jsonl --threshold 1.5
    repro-cache perf report runs.jsonl -o perf_report.html
    repro-cache serve --port 8091 --workers 4 --cache-dir .serve-memo
    repro-cache submit hydro --size 32 --cache 4:32:2 --method find \
        --url http://127.0.0.1:8091
    repro-cache version

Cache specifications are ``SIZE_KB:LINE_BYTES:ASSOC``.

Observability flags (accepted by every subcommand):

* ``--trace`` — print the span tree and a per-phase timing table on stderr;
* ``--metrics-out PATH`` — write the ``repro.metrics/v1`` JSON document to
  ``PATH`` (``-`` writes it to stdout and moves all human output to stderr,
  so stdout stays machine-readable);
* ``--timeline-out PATH`` — write the run's span events as Chrome
  trace-event JSON (loadable in Perfetto / ``chrome://tracing``); with
  ``--jobs N`` each worker process renders as its own lane;
* ``--ledger-out PATH`` — append one ``repro.ledger/v1`` row (phase wall
  times, peak RSS, counters, code fingerprint) to the run ledger at
  ``PATH`` — the history ``perf check`` and ``perf report`` read;
* ``--profile-out PATH`` — collect ``cProfile`` stats (binary ``pstats``
  format); ``--profile-span NAME`` narrows collection to one span;
* ``--mem-profile`` — trace allocations with ``tracemalloc`` and print
  the top allocation sites on stderr;
* ``--quiet`` — silence diagnostics (the ``repro`` logger) so only the
  final table is printed.

The ``perf`` verbs close the loop: ``perf check`` statistically compares
the latest run of each benchmark key against its ledger history (min-of-k
baseline, configurable threshold) and exits non-zero on regression;
``perf report`` renders the ledger as a self-contained HTML dashboard.

Memoization flags (``analyze`` and ``compare``):

* ``--cache-dir DIR`` — content-addressed memoization of per-reference
  solutions with a persistent store under ``DIR``; a warm re-run replays
  stored results instead of re-solving (see README "Caching");
* ``--no-cache`` — switch memoization off.

Diagnostic lines go through :mod:`logging` (logger ``repro.cli``); final
tables are printed directly, so ``--quiet`` silences everything except the
result.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Callable, Optional, TextIO

from repro import obs
from repro.analysis import prepare, run_simulation
from repro.inline import classify_program
from repro.ir import Program, program_stats
from repro.layout import CacheConfig
from repro.report import format_table, with_timing

log = logging.getLogger("repro.cli")


def _parse_cache(spec: str) -> CacheConfig:
    from repro.serve.protocol import ServeError, parse_cache_spec

    try:
        return parse_cache_spec(spec)
    except ServeError as exc:
        raise SystemExit(str(exc))


def _load_workload(name: str, size: Optional[int], steps: int) -> Program:
    from repro.serve.engine import load_kernel
    from repro.serve.protocol import UnknownKernel

    if name.endswith(".f"):
        from repro.frontend import parse_program

        with open(name) as fh:
            return parse_program(fh.read())
    try:
        return load_kernel(name, size, steps)
    except UnknownKernel as exc:
        raise SystemExit(f"{exc} (or pass a .f file)")


def _add_workload_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("workload", help="builtin name (hydro, mmt, swim, ...) or .f file")
    sub.add_argument("--size", type=int, default=None, help="problem size")
    sub.add_argument("--steps", type=int, default=2, help="time steps (programs)")
    sub.add_argument(
        "--cache", default="32:32:1", help="cache spec SIZE_KB:LINE_BYTES:ASSOC"
    )


def _add_backend_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--backend",
        choices=["scalar", "numpy"],
        default="numpy",
        help="classification backend: 'numpy' = vectorized batch solving "
        "(falls back to scalar when NumPy is not installed), 'scalar' = "
        "pure Python; results are bit-identical either way",
    )


def _add_sim_backend_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--sim-backend",
        choices=["scalar", "numpy"],
        default="numpy",
        help="simulator backend: 'numpy' = vectorized stack-distance "
        "kernel (falls back to scalar when NumPy is not installed), "
        "'scalar' = walker + LRU state machine; per-reference tallies "
        "are bit-identical either way",
    )


def _add_policy_args(sub: argparse.ArgumentParser) -> None:
    from repro.sim.policy import POLICIES

    sub.add_argument(
        "--policy",
        choices=list(POLICIES),
        default=None,
        help="replacement policy (default lru, the paper's model); "
        "plru needs a power-of-two associativity; per-reference "
        "tallies are bit-identical across --sim-backend values "
        "for every policy",
    )
    sub.add_argument(
        "--policy-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the random policy's deterministic victim draw "
        "(fixed seed = reproducible across backends, processes and "
        "--jobs; ignored by lru/fifo/plru)",
    )


def _add_jobs_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-reference solve "
        "(1 = serial, 0 = all CPUs); results are identical for any value",
    )


def _add_memo_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist memoized per-reference solutions under DIR; warm "
        "re-runs replay stored results (see README 'Caching')",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="disable memoization entirely (in-run dedup included)",
    )


def _open_memoizer(args):
    """The memoizer implied by ``--cache-dir``/``--no-cache`` (or ``None``)."""
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        return None
    from repro.memo import Memoizer

    return Memoizer.open(cache_dir)


def _close_memoizer(memo) -> None:
    """Flush new solutions and log the memoization tallies."""
    if memo is None:
        return
    written = memo.flush()
    log.info(
        "memo: %d hit(s), %d miss(es), %d group(s), %d from store, "
        "%d newly persisted",
        memo.hits,
        memo.misses,
        memo.groups,
        memo.store_hits,
        written,
    )


def _add_obs_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree and per-phase timings on stderr",
    )
    sub.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the repro.metrics/v1 JSON document to PATH "
        "('-' = stdout; human output then moves to stderr)",
    )
    sub.add_argument(
        "--timeline-out",
        metavar="PATH",
        default=None,
        help="write the run's span events as Chrome trace-event JSON "
        "(open in Perfetto or chrome://tracing; --jobs N workers get "
        "their own lanes)",
    )
    sub.add_argument(
        "--ledger-out",
        metavar="PATH",
        default=None,
        help="append a repro.ledger/v1 row (phase times, peak RSS, "
        "counters) for this run to the JSON-lines ledger at PATH",
    )
    sub.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="collect cProfile stats and dump them (pstats format) to PATH",
    )
    sub.add_argument(
        "--mem-profile",
        action="store_true",
        help="trace allocations with tracemalloc; print the top sites "
        "on stderr",
    )
    sub.add_argument(
        "--profile-span",
        metavar="NAME",
        default=None,
        help="restrict --profile-out collection to the named span "
        "(e.g. cme/estimate, reuse/build_table)",
    )
    sub.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="silence diagnostics; only the final table is printed",
    )


def _configure_logging(quiet: bool, stream: TextIO) -> None:
    """Route the ``repro`` logger to ``stream`` (plain messages).

    Re-entrant: repeated ``main()`` calls (tests, library use) replace the
    handler instead of stacking duplicates.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(logging.WARNING if quiet else logging.INFO)
    logger.propagate = False


# -- subcommands ---------------------------------------------------------------


def _cmd_stats(args, program: Program, echo: Callable[[str], None]) -> int:
    st = program_stats(program)
    cs = classify_program(program)
    echo(
        format_table(
            ["#lines", "#subroutines", "#calls", "#references"],
            [(st.lines, st.subroutines, st.call_statements, st.references)],
            title=f"{program.name} — program statistics (Table 5 columns)",
        )
    )
    echo("")
    echo(
        format_table(
            ["P-able", "R-able", "N-able", "Calls", "A-able"],
            [(cs.p_able, cs.r_able, cs.n_able, cs.calls_total, cs.calls_analysable)],
            title="Actual-parameter classification (Table 2 columns)",
        )
    )
    return 0


def _cmd_analyze(args, program: Program, echo: Callable[[str], None]) -> int:
    from repro.serve.engine import AnalysisEngine
    from repro.serve.protocol import AnalyzeRequest

    cache = _parse_cache(args.cache)
    memo = _open_memoizer(args)
    engine = AnalysisEngine(memo=memo)
    request = AnalyzeRequest(
        cache=cache,
        program=program,
        method=args.method,
        confidence=args.confidence,
        width=args.width,
        seed=args.seed,
        backend=args.backend,
    )
    report, _ = engine.run(request, jobs=args.jobs)
    _close_memoizer(memo)
    log.info(
        "%s on %s: miss ratio %.2f%% (%.0f of %d accesses, %s, %.2fs, "
        "%d points analysed, %d job(s), %.0f points/s)",
        program.name,
        cache.describe(),
        report.miss_ratio_percent,
        report.total_misses,
        report.total_accesses,
        report.method,
        report.elapsed_seconds,
        report.analysed_points,
        report.jobs,
        report.points_per_second,
    )
    rows = [
        (r.ref_name, r.population, f"{100 * r.miss_ratio:.2f}")
        for r in report.worst_refs(8)
    ]
    echo("")
    echo(
        format_table(
            ["Reference", "Accesses", "Miss %"],
            rows,
            title=(
                f"Worst references — {program.name} on {cache.describe()}, "
                f"{report.method}, miss ratio "
                f"{report.miss_ratio_percent:.2f}%"
            ),
        )
    )
    return 0


def _cmd_simulate(args, program: Program, echo: Callable[[str], None]) -> int:
    cache = _parse_cache(args.cache)
    prepared = prepare(program)
    l2_cache = (
        _parse_cache(args.l2_cache) if args.l2_cache is not None else None
    )
    report = run_simulation(
        prepared,
        cache,
        backend=args.sim_backend,
        policy=args.policy,
        seed=args.policy_seed,
        l2_cache=l2_cache,
        l2_policy=args.l2_policy,
    )
    if l2_cache is not None:
        echo(
            f"{program.name} on L1 {cache.describe()} ({report.l1.policy}) "
            f"-> L2 {l2_cache.describe()} ({report.l2.policy}): "
            f"L1 miss ratio {report.l1_miss_ratio_percent:.2f}%, "
            f"L2 local {report.l2_local_miss_ratio_percent:.2f}%, "
            f"global {report.global_miss_ratio_percent:.2f}% "
            f"({report.l2.total_misses} of {report.total_accesses} accesses "
            f"missed both levels, {report.elapsed_seconds:.2f}s)"
        )
        return 0
    echo(
        f"{program.name} on {cache.describe()} ({report.policy}): "
        f"miss ratio {report.miss_ratio_percent:.2f}% "
        f"({report.total_misses} of {report.total_accesses} accesses, "
        f"{report.elapsed_seconds:.2f}s)"
    )
    return 0


def _cmd_compare(args, program: Program, echo: Callable[[str], None]) -> int:
    from repro.serve.engine import AnalysisEngine
    from repro.serve.protocol import AnalyzeRequest

    cache = _parse_cache(args.cache)
    memo = _open_memoizer(args)
    engine = AnalysisEngine(memo=memo)
    request = AnalyzeRequest(
        cache=cache,
        program=program,
        method=args.method,
        backend=args.backend,
    )
    analytic, _ = engine.run(request, jobs=args.jobs)
    prepared = engine.prepared_for(request)
    _close_memoizer(memo)
    simulated = run_simulation(
        prepared,
        cache,
        backend=args.sim_backend,
        policy=args.policy,
        seed=args.policy_seed,
    )
    err = abs(analytic.miss_ratio_percent - simulated.miss_ratio_percent)
    echo(
        format_table(
            ["", "Miss %", "#misses", "Time (s)"],
            [
                (
                    analytic.method,
                    analytic.miss_ratio_percent,
                    int(analytic.total_misses),
                    analytic.elapsed_seconds,
                ),
                (
                    f"Simulator ({simulated.policy})",
                    simulated.miss_ratio_percent,
                    simulated.total_misses,
                    simulated.elapsed_seconds,
                ),
            ],
            title=f"{program.name} on {cache.describe()} (abs. error {err:.2f}pp)",
        )
    )
    return 0


def _cmd_version(args, echo: Callable[[str], None]) -> int:
    """Print package version, code fingerprint and schema versions."""
    from repro.serve.protocol import version_info

    echo(json.dumps(version_info(), indent=2))
    return 0


def _cmd_serve(args, echo: Callable[[str], None]) -> int:
    """Run the analysis daemon until interrupted."""
    import time

    from repro.serve import AnalysisServer

    cache_dir = None if getattr(args, "no_cache", False) else args.cache_dir
    server = AnalysisServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        dispatchers=args.dispatchers,
        queue_limit=args.queue_limit,
        cache_dir=cache_dir,
        default_timeout=args.timeout,
    )
    with server:
        server.start()
        echo(f"repro-cache serving on {server.url} (Ctrl-C to stop)")
        try:
            while True:
                time.sleep(0.5)
        except KeyboardInterrupt:
            log.info("shutting down")
    return 0


def _cmd_submit(args, echo: Callable[[str], None]) -> int:
    """Send one analysis request to a running daemon."""
    from repro.serve import ServeClient, ServeError

    doc: dict = {
        "cache": args.cache,
        "method": args.method,
        "confidence": args.confidence,
        "width": args.width,
        "seed": args.seed,
        "steps": args.steps,
        "timeout": args.timeout,
        "client": args.client,
    }
    if args.workload.endswith(".f"):
        with open(args.workload) as fh:
            doc["source"] = fh.read()
    else:
        doc["kernel"] = args.workload
    if args.size is not None:
        doc["size"] = args.size
    if args.backend != "auto":
        doc["backend"] = args.backend
    client = ServeClient(args.url, timeout=args.timeout + 5.0)
    try:
        resp = client.analyze(doc)
    except ServeError as exc:
        raise SystemExit(f"{exc.code}: {exc}")
    except OSError as exc:
        raise SystemExit(f"cannot reach {args.url}: {exc}")
    report = resp["report"]
    server_info = resp.get("server", {})
    log.info(
        "%s via %s: %s, solve %.3fs, memo %s",
        args.workload,
        args.url,
        resp.get("job", "?"),
        server_info.get("solve_seconds", 0.0),
        server_info.get("memo"),
    )
    totals = report["totals"]
    echo(
        f"{args.workload} on {args.cache} ({report['method']}): "
        f"miss ratio {totals['miss_ratio_percent']:.2f}% "
        f"({totals['misses']:.0f} of {totals['accesses']} accesses)"
    )
    return 0


def _cmd_trace(args, echo: Callable[[str], None]) -> int:
    """The ``trace`` verbs: export, import and simulate binary traces."""
    from repro.errors import MissingDependencyError, TraceFormatError
    from repro.sim import (
        collect_walker_trace,
        import_address_trace,
        simulate_trace,
        write_trace,
    )

    try:
        if args.trace_command == "export":
            program = _load_workload(args.workload, args.size, args.steps)
            prepared = prepare(program)
            count = write_trace(
                args.output, collect_walker_trace(prepared.walker)
            )
            echo(
                f"{program.name}: exported {count} accesses "
                f"to {args.output}"
            )
            return 0
        if args.trace_command == "import":
            pairs = import_address_trace(
                args.input,
                word_bytes=args.word_bytes,
                byteorder=args.byteorder,
                ref_uid=args.ref_uid,
            )
            count = write_trace(args.output, pairs)
            echo(
                f"imported {count} {args.word_bytes}-byte "
                f"{args.byteorder}-endian addresses from {args.input} "
                f"to {args.output}"
            )
            return 0
        cache = _parse_cache(args.cache)
        report = simulate_trace(
            args.input,
            cache,
            backend=args.sim_backend,
            policy=args.policy,
            seed=args.policy_seed,
        )
        echo(
            f"{args.input} on {cache.describe()} ({report.policy}): "
            f"miss ratio {report.miss_ratio_percent:.2f}% "
            f"({report.total_misses} of {report.total_accesses} accesses, "
            f"{report.elapsed_seconds:.2f}s)"
        )
        return 0
    except (TraceFormatError, MissingDependencyError) as exc:
        raise SystemExit(str(exc))


def _cmd_perf(args, echo: Callable[[str], None]) -> int:
    """The ``perf`` verbs: regression check and HTML report of the ledger."""
    from repro.obs import regress
    from repro.obs.ledger import read_ledger

    if args.perf_command == "check":
        results = regress.check_ledger(
            args.ledger,
            current_path=args.current,
            threshold=args.threshold,
            hard_threshold=args.hard_threshold,
            confidence=args.confidence,
            baseline_k=args.baseline_k,
        )
        if not results:
            log.info("perf check: no rows to check in %s", args.ledger)
        for result in results:
            echo(result.describe())
        rc = regress.exit_code(results, warn_only=args.warn_only)
        checked = sum(1 for r in results if r.status in ("ok", "regression"))
        regressed = sum(1 for r in results if r.regressed)
        echo(
            f"perf check: {checked} run(s) checked, {regressed} "
            f"regression(s) -> {'FAIL' if rc else 'ok'}"
        )
        return rc

    rows = read_ledger(args.ledger)
    from repro.obs.htmlreport import write_report

    write_report(args.output, rows, title=args.title)
    log.info(
        "perf report: %d ledger row(s) rendered to %s", len(rows), args.output
    )
    return 0


# -- observability plumbing ----------------------------------------------------


def _emit_trace() -> None:
    """Print the span tree and a per-phase timing table on stderr."""
    print(obs.render(), file=sys.stderr)
    phases = obs.phase_times()
    if phases:
        headers, rows = with_timing(
            ["Phase", "Count"],
            [(name, count) for name, count, _ in phases],
            [seconds for _, _, seconds in phases],
        )
        print("", file=sys.stderr)
        print(
            format_table(headers, rows, title="Per-phase wall time"),
            file=sys.stderr,
        )


def _emit_metrics(path: str) -> None:
    """Write the metrics JSON document to ``path`` (``-`` = stdout)."""
    text = obs.to_json(obs.snapshot())
    if path == "-":
        sys.stdout.write(text + "\n")
    else:
        with open(path, "w") as fh:
            fh.write(text + "\n")
        log.info("metrics written to %s", path)


def _emit_timeline(path: str) -> None:
    """Write the recorded span events as Chrome trace-event JSON."""
    from repro.obs.timeline import write_chrome_trace

    count = write_chrome_trace(path, obs.timeline_events())
    log.info("timeline (%d span event(s)) written to %s", count, path)


def _ledger_config(args) -> dict:
    """The solver/backend knobs that identify a run in the ledger.

    Only knobs the subcommand actually has are recorded, so rows key
    stably per command shape.
    """
    config = {"command": args.command}
    for knob in (
        "method",
        "backend",
        "sim_backend",
        "policy",
        "policy_seed",
        "l2_cache",
        "l2_policy",
        "jobs",
        "size",
        "steps",
        "confidence",
        "width",
        "seed",
    ):
        value = getattr(args, knob, None)
        if value is not None:
            config[knob] = value
    return config


def _append_ledger(args, wall_seconds: float) -> None:
    """Append this run's ``repro.ledger/v1`` row to ``--ledger-out``."""
    from repro.obs import ledger

    if args.command == "trace":
        workload = getattr(args, "workload", None) or getattr(
            args, "input", ""
        )
        label = f"trace-{args.trace_command}:{workload}"
    else:
        workload = getattr(args, "workload", "") or args.command
        label = f"{args.command}:{workload}"
    row = ledger.build_row(
        label,
        program=workload,
        cache=getattr(args, "cache", None),
        config=_ledger_config(args),
        wall_seconds=wall_seconds,
    )
    ledger.append_row(args.ledger_out, row)
    log.info("ledger row %s appended to %s", row["run_id"], args.ledger_out)


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point for the ``repro-cache`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Analytical whole-program cache behaviour prediction "
        "(Vera & Xue, HPCA 2002 reproduction)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    p_analyze = subs.add_parser("analyze", help="analytical miss prediction")
    _add_workload_args(p_analyze)
    p_analyze.add_argument(
        "--method", choices=["estimate", "find", "regions"], default="estimate"
    )
    p_analyze.add_argument("--confidence", type=float, default=0.95)
    p_analyze.add_argument("--width", type=float, default=0.05)
    p_analyze.add_argument("--seed", type=int, default=0)
    _add_backend_arg(p_analyze)
    _add_jobs_arg(p_analyze)
    _add_memo_args(p_analyze)
    _add_obs_args(p_analyze)

    p_sim = subs.add_parser("simulate", help="trace-driven cache simulation")
    _add_workload_args(p_sim)
    _add_sim_backend_arg(p_sim)
    _add_policy_args(p_sim)
    p_sim.add_argument(
        "--l2-cache",
        metavar="SPEC",
        default=None,
        help="simulate a two-level hierarchy: the L1 miss stream replays "
        "through this L2 cache (spec SIZE_KB:LINE_BYTES:ASSOC)",
    )
    p_sim.add_argument(
        "--l2-policy",
        choices=["lru", "fifo", "plru", "random"],
        default=None,
        help="L2 replacement policy (default: same as --policy)",
    )
    _add_obs_args(p_sim)

    p_cmp = subs.add_parser("compare", help="analytical vs simulated, side by side")
    _add_workload_args(p_cmp)
    p_cmp.add_argument(
        "--method", choices=["estimate", "find", "regions"], default="estimate"
    )
    _add_backend_arg(p_cmp)
    _add_sim_backend_arg(p_cmp)
    _add_policy_args(p_cmp)
    _add_jobs_arg(p_cmp)
    _add_memo_args(p_cmp)
    _add_obs_args(p_cmp)

    p_trace = subs.add_parser(
        "trace", help="export, import and simulate binary access traces"
    )
    tsubs = p_trace.add_subparsers(dest="trace_command", required=True)

    t_export = tsubs.add_parser(
        "export", help="walk a workload and write its binary trace"
    )
    t_export.add_argument(
        "workload", help="builtin name (hydro, mmt, swim, ...) or .f file"
    )
    t_export.add_argument("--size", type=int, default=None, help="problem size")
    t_export.add_argument("--steps", type=int, default=2, help="time steps")
    t_export.add_argument(
        "-o", "--output", required=True, help="trace file to write"
    )
    _add_obs_args(t_export)

    t_import = tsubs.add_parser(
        "import",
        help="convert a raw fixed-width address trace to the binary format",
    )
    t_import.add_argument("input", help="raw address trace file")
    t_import.add_argument(
        "-o", "--output", required=True, help="trace file to write"
    )
    t_import.add_argument(
        "--word-bytes", type=int, default=4, help="bytes per address word"
    )
    t_import.add_argument(
        "--byteorder", choices=["big", "little"], default="big"
    )
    t_import.add_argument(
        "--ref-uid",
        type=int,
        default=0,
        help="reference uid to attribute every access to",
    )
    _add_obs_args(t_import)

    t_sim = tsubs.add_parser(
        "simulate", help="replay a binary trace through the cache simulator"
    )
    t_sim.add_argument("input", help="binary trace file")
    t_sim.add_argument(
        "--cache", default="32:32:1", help="cache spec SIZE_KB:LINE_BYTES:ASSOC"
    )
    _add_sim_backend_arg(t_sim)
    _add_policy_args(t_sim)
    _add_obs_args(t_sim)

    p_version = subs.add_parser(
        "version",
        help="print package version, code fingerprint and schema versions",
    )
    _add_obs_args(p_version)

    p_serve = subs.add_parser(
        "serve", help="run the analysis-as-a-service HTTP daemon"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8091, help="0 = ephemeral port"
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="threads in the shared per-reference unit pool",
    )
    p_serve.add_argument(
        "--dispatchers",
        type=int,
        default=2,
        help="requests solved concurrently",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission bound; requests past it get HTTP 429",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="default per-request deadline in seconds",
    )
    _add_memo_args(p_serve)
    _add_obs_args(p_serve)

    p_submit = subs.add_parser(
        "submit", help="send one analysis request to a running daemon"
    )
    _add_workload_args(p_submit)
    p_submit.add_argument(
        "--url", default="http://127.0.0.1:8091", help="daemon base URL"
    )
    p_submit.add_argument(
        "--method", choices=["estimate", "find", "regions"], default="estimate"
    )
    p_submit.add_argument("--confidence", type=float, default=0.95)
    p_submit.add_argument("--width", type=float, default=0.05)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument(
        "--backend", choices=["auto", "scalar", "numpy"], default="auto"
    )
    p_submit.add_argument(
        "--timeout", type=float, default=60.0, help="request deadline (s)"
    )
    p_submit.add_argument(
        "--client", default="cli", help="client id for fair scheduling"
    )
    _add_obs_args(p_submit)

    p_stats = subs.add_parser("stats", help="Table 5 / Table 2 style statistics")
    p_stats.add_argument("workload")
    p_stats.add_argument("--size", type=int, default=None)
    p_stats.add_argument("--steps", type=int, default=2)
    _add_obs_args(p_stats)

    p_perf = subs.add_parser(
        "perf", help="perf observatory: regression check and HTML report"
    )
    psubs = p_perf.add_subparsers(dest="perf_command", required=True)

    pf_check = psubs.add_parser(
        "check",
        help="statistically compare the latest run(s) against ledger "
        "history; exit non-zero on regression",
    )
    pf_check.add_argument("ledger", help="repro.ledger/v1 JSON-lines file")
    pf_check.add_argument(
        "--current",
        metavar="PATH",
        default=None,
        help="check the rows of this ledger against the history in the "
        "main one (CI: committed baseline vs throwaway run)",
    )
    pf_check.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="regression ratio over the min-of-k baseline (default 1.5)",
    )
    pf_check.add_argument(
        "--hard-threshold",
        type=float,
        default=None,
        help="ratio at which a regression is 'hard' and fails even with "
        "--warn-only (default: same as --threshold)",
    )
    pf_check.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level of the statistical noise gate",
    )
    pf_check.add_argument(
        "--baseline-k",
        type=int,
        default=5,
        help="baseline = min of the last K historical runs (default 5)",
    )
    pf_check.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit non-zero only on hard ones "
        "(noisy shared runners)",
    )
    _add_obs_args(pf_check)

    pf_report = psubs.add_parser(
        "report", help="render the ledger as a self-contained HTML dashboard"
    )
    pf_report.add_argument("ledger", help="repro.ledger/v1 JSON-lines file")
    pf_report.add_argument(
        "-o", "--output", default="perf_report.html", help="HTML file to write"
    )
    pf_report.add_argument("--title", default="repro perf report")
    _add_obs_args(pf_report)

    args = parser.parse_args(argv)

    metrics_out = args.metrics_out
    machine_stdout = metrics_out == "-"
    human_stream = sys.stderr if machine_stdout else sys.stdout
    _configure_logging(args.quiet, human_stream)

    def echo(line: str = "") -> None:
        print(line, file=human_stream)

    obs_wanted = (
        args.trace
        or metrics_out
        or args.profile_out
        or args.timeline_out
        or args.ledger_out
        or args.mem_profile
    )
    if obs_wanted:
        obs.enable()
        obs.reset()
        if args.timeline_out:
            obs.enable_timeline()

    profiler = None
    if args.profile_out:
        profiler = obs.SpanProfiler(args.profile_span)
        if args.profile_span:
            profiler.install(obs.tracer())
        else:
            profiler.start()
    elif args.profile_span:
        raise SystemExit("--profile-span requires --profile-out")

    # Installed after the profiler so the hooks chain (both share the
    # tracer's exit-hook slot).
    monitor = None
    if obs_wanted:
        from repro.obs.resource import SpanResourceMonitor

        monitor = SpanResourceMonitor()
        monitor.install(obs.tracer())

    mem_profiler = None
    if args.mem_profile:
        from repro.obs.resource import MemProfiler

        mem_profiler = MemProfiler()
        mem_profiler.start()

    commands = {
        "stats": _cmd_stats,
        "analyze": _cmd_analyze,
        "simulate": _cmd_simulate,
        "compare": _cmd_compare,
    }
    from time import perf_counter

    started = perf_counter()
    try:
        if args.command == "trace":
            rc = _cmd_trace(args, echo)
        elif args.command == "perf":
            rc = _cmd_perf(args, echo)
        elif args.command == "version":
            rc = _cmd_version(args, echo)
        elif args.command == "serve":
            rc = _cmd_serve(args, echo)
        elif args.command == "submit":
            rc = _cmd_submit(args, echo)
        else:
            program = _load_workload(
                args.workload, args.size, getattr(args, "steps", 2)
            )
            rc = commands[args.command](args, program, echo)
    finally:
        wall_seconds = perf_counter() - started
        if mem_profiler is not None:
            sites = mem_profiler.stop()
            print(mem_profiler.format_sites(sites), file=sys.stderr)
        if monitor is not None:
            monitor.uninstall()
            monitor.finalize()
        if profiler is not None:
            if args.profile_span:
                profiler.uninstall(obs.tracer())
            profiler.dump(args.profile_out)
            log.info("profile written to %s", args.profile_out)
        if args.trace:
            _emit_trace()
        if args.timeline_out:
            _emit_timeline(args.timeline_out)
        if args.ledger_out and args.command != "perf":
            _append_ledger(args, wall_seconds)
        if metrics_out:
            _emit_metrics(metrics_out)
    return rc


if __name__ == "__main__":
    sys.exit(main())
