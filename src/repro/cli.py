"""Command-line interface: analyse, simulate and compare workloads.

Examples::

    repro-cache analyze hydro --cache 32:32:2 --size 64
    repro-cache compare mmt --cache 8:32:1 --size 32
    repro-cache simulate path/to/kernel.f --cache 32:32:4
    repro-cache stats applu

Cache specifications are ``SIZE_KB:LINE_BYTES:ASSOC``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.analysis import analyze, prepare, run_simulation
from repro.inline import classify_program
from repro.ir import Program, program_stats
from repro.layout import CacheConfig
from repro.report import format_table


def _parse_cache(spec: str) -> CacheConfig:
    try:
        size_kb, line, assoc = (int(p) for p in spec.split(":"))
    except ValueError:
        raise SystemExit(
            f"bad cache spec {spec!r}: expected SIZE_KB:LINE_BYTES:ASSOC"
        )
    return CacheConfig(size_kb * 1024, line, assoc)


def _load_workload(name: str, size: Optional[int], steps: int) -> Program:
    from repro.kernels import build_hydro, build_mgrid, build_mmt
    from repro.programs import (
        build_applu_like,
        build_swim_like,
        build_tomcatv_like,
    )

    builders = {
        "hydro": lambda: build_hydro(size or 64, size or 64),
        "mgrid": lambda: build_mgrid(size or 20),
        "mmt": lambda: build_mmt(size or 48, (size or 48) // 2, (size or 48) // 4),
        "tomcatv": lambda: build_tomcatv_like(size or 48, steps),
        "swim": lambda: build_swim_like(size or 48, steps),
        "applu": lambda: build_applu_like(size or 24, steps),
    }
    if name in builders:
        return builders[name]()
    if name.endswith(".f"):
        from repro.frontend import parse_program

        with open(name) as fh:
            return parse_program(fh.read())
    raise SystemExit(
        f"unknown workload {name!r}: use one of {sorted(builders)} or a .f file"
    )


def _add_workload_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("workload", help="builtin name (hydro, mmt, swim, ...) or .f file")
    sub.add_argument("--size", type=int, default=None, help="problem size")
    sub.add_argument("--steps", type=int, default=2, help="time steps (programs)")
    sub.add_argument(
        "--cache", default="32:32:1", help="cache spec SIZE_KB:LINE_BYTES:ASSOC"
    )


def _add_jobs_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-reference solve "
        "(1 = serial, 0 = all CPUs); results are identical for any value",
    )


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point for the ``repro-cache`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Analytical whole-program cache behaviour prediction "
        "(Vera & Xue, HPCA 2002 reproduction)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    p_analyze = subs.add_parser("analyze", help="analytical miss prediction")
    _add_workload_args(p_analyze)
    p_analyze.add_argument(
        "--method", choices=["estimate", "find"], default="estimate"
    )
    p_analyze.add_argument("--confidence", type=float, default=0.95)
    p_analyze.add_argument("--width", type=float, default=0.05)
    p_analyze.add_argument("--seed", type=int, default=0)
    _add_jobs_arg(p_analyze)

    p_sim = subs.add_parser("simulate", help="trace-driven LRU simulation")
    _add_workload_args(p_sim)

    p_cmp = subs.add_parser("compare", help="analytical vs simulated, side by side")
    _add_workload_args(p_cmp)
    p_cmp.add_argument(
        "--method", choices=["estimate", "find"], default="estimate"
    )
    _add_jobs_arg(p_cmp)

    p_stats = subs.add_parser("stats", help="Table 5 / Table 2 style statistics")
    p_stats.add_argument("workload")
    p_stats.add_argument("--size", type=int, default=None)
    p_stats.add_argument("--steps", type=int, default=2)

    args = parser.parse_args(argv)
    program = _load_workload(args.workload, args.size, getattr(args, "steps", 2))

    if args.command == "stats":
        st = program_stats(program)
        cs = classify_program(program)
        print(
            format_table(
                ["#lines", "#subroutines", "#calls", "#references"],
                [(st.lines, st.subroutines, st.call_statements, st.references)],
                title=f"{program.name} — program statistics (Table 5 columns)",
            )
        )
        print()
        print(
            format_table(
                ["P-able", "R-able", "N-able", "Calls", "A-able"],
                [(cs.p_able, cs.r_able, cs.n_able, cs.calls_total, cs.calls_analysable)],
                title="Actual-parameter classification (Table 2 columns)",
            )
        )
        return 0

    cache = _parse_cache(args.cache)
    prepared = prepare(program)

    if args.command == "analyze":
        report = analyze(
            prepared,
            cache,
            method=args.method,
            confidence=args.confidence,
            width=args.width,
            seed=args.seed,
            jobs=args.jobs,
        )
        print(
            f"{program.name} on {cache.describe()}: "
            f"miss ratio {report.miss_ratio_percent:.2f}% "
            f"({report.total_misses:.0f} of {report.total_accesses} accesses, "
            f"{report.method}, {report.elapsed_seconds:.2f}s, "
            f"{report.analysed_points} points analysed, "
            f"{report.jobs} job(s), {report.points_per_second:.0f} points/s)"
        )
        rows = [
            (r.ref_name, r.population, f"{100 * r.miss_ratio:.2f}")
            for r in report.worst_refs(8)
        ]
        print()
        print(format_table(["Reference", "Accesses", "Miss %"], rows,
                           title="Worst references"))
        return 0

    if args.command == "simulate":
        report = run_simulation(prepared, cache)
        print(
            f"{program.name} on {cache.describe()}: "
            f"miss ratio {report.miss_ratio_percent:.2f}% "
            f"({report.total_misses} of {report.total_accesses} accesses, "
            f"{report.elapsed_seconds:.2f}s)"
        )
        return 0

    # compare
    analytic = analyze(prepared, cache, method=args.method, jobs=args.jobs)
    simulated = run_simulation(prepared, cache)
    err = abs(analytic.miss_ratio_percent - simulated.miss_ratio_percent)
    print(
        format_table(
            ["", "Miss %", "#misses", "Time (s)"],
            [
                (
                    analytic.method,
                    analytic.miss_ratio_percent,
                    int(analytic.total_misses),
                    analytic.elapsed_seconds,
                ),
                (
                    "Simulator",
                    simulated.miss_ratio_percent,
                    simulated.total_misses,
                    simulated.elapsed_seconds,
                ),
            ],
            title=f"{program.name} on {cache.describe()} (abs. error {err:.2f}pp)",
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
