"""Paper-style reporting helpers."""

from repro.report.tables import assoc_label, format_table, with_timing

__all__ = ["assoc_label", "format_table", "with_timing"]
