"""Paper-style reporting helpers."""

from repro.report.tables import assoc_label, format_table

__all__ = ["assoc_label", "format_table"]
