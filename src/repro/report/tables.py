"""Plain-text table rendering in the paper's style.

Every benchmark prints the paper's published rows next to our measured rows
using these helpers, so the regenerated tables are directly comparable to
the originals (EXPERIMENTS.md records the outcomes).
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def with_timing(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    seconds: Sequence[float],
    label: str = "Time (s)",
) -> tuple[list[str], list[list[object]]]:
    """Append an optional timing column to a table.

    ``seconds`` aligns with ``rows``; values are rendered with millisecond
    precision (observability phase tables need more resolution than the
    default two decimals).  Returns ``(headers, rows)`` ready for
    :func:`format_table`.
    """
    if len(seconds) != len(rows):
        raise ValueError("seconds must align one-to-one with rows")
    new_headers = list(headers) + [label]
    new_rows = [list(row) + [f"{s:.3f}"] for row, s in zip(rows, seconds)]
    return new_headers, new_rows


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def assoc_label(assoc: int) -> str:
    """The paper's associativity labels: ``direct``, ``2-way``, ``4-way``."""
    return "direct" if assoc == 1 else f"{assoc}-way"
