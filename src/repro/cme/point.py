"""The per-point miss classifier — the cold and replacement equations (4.1).

For a consumer reference at one iteration point, reuse vectors are tried in
increasing lexicographic order (Fig. 6).  For each vector:

* the **cold equations** check that the producer point lies inside the
  producer's RIS and touches the *same memory line* — if either fails the
  point stays indeterminate along this vector and the next one is tried;
* otherwise the **replacement equations** decide the point: the cache line
  survives unless ``k`` *distinct* memory lines mapped to the same cache set
  between the producer access and the consumer access (k-way LRU).

A point no vector resolves is a **cold miss**.  Because vectors are sorted,
the first vector with valid reuse is the nearest captured earlier access to
the line; any access to the *same* line inside the window is excluded from
the contention count, so missing vectors can only widen windows and
over-estimate misses — never under-estimate (the paper's conservatism).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NLeaf, NormalizedProgram, NRef
from repro.polyhedra.constraints import EQ
from repro.iteration.position import interleave, subtract
from repro.iteration.walker import Walker, compile_affine
from repro.reuse.generator import ReuseTable
from repro.reuse.vectors import ReuseVector


class Outcome(Enum):
    """Classification of one access."""

    HIT = "hit"
    COLD = "cold-miss"
    REPLACEMENT = "replacement-miss"

    @property
    def is_miss(self) -> bool:
        """True for either kind of miss."""
        return self is not Outcome.HIT


@dataclass(frozen=True)
class Classification:
    """The outcome of one access plus the reuse vector that decided it."""

    outcome: Outcome
    via: Optional[ReuseVector] = None


class _CompiledRIS:
    """Fast membership test for a reference iteration space."""

    __slots__ = ("bounds", "guard")

    def __init__(self, nprog: NormalizedProgram, leaf: NLeaf):
        n = nprog.depth
        self.bounds = tuple(
            (compile_affine(loop.lower, n), compile_affine(loop.upper, n))
            for loop in nprog.loops_on_path(leaf.label)
        )
        self.guard = tuple(
            (c.kind == EQ, compile_affine(c.expr, n)) for c in leaf.guard
        )

    def contains(self, idx: Sequence[int]) -> bool:
        for d, (lb, ub) in enumerate(self.bounds):
            v = idx[d]
            if v < lb.eval(idx) or v > ub.eval(idx):
                return False
        for is_eq, ca in self.guard:
            v = ca.eval(idx)
            if (v != 0) if is_eq else (v < 0):
                return False
        return True


class PointClassifier:
    """Classifies single iteration points of references as hit/cold/replacement."""

    def __init__(
        self,
        nprog: NormalizedProgram,
        layout: MemoryLayout,
        cache: CacheConfig,
        reuse: ReuseTable,
        walker: Optional[Walker] = None,
    ):
        self.nprog = nprog
        self.layout = layout
        self.cache = cache
        self.reuse = reuse
        self.walker = walker if walker is not None else Walker(nprog, layout)
        self._ris: dict[int, _CompiledRIS] = {}
        for leaf in nprog.leaves:
            self._ris[id(leaf)] = _CompiledRIS(nprog, leaf)
        self._line_bytes = cache.line_bytes
        self._num_sets = cache.num_sets
        self._assoc = cache.assoc
        #: Reuse vectors tried since the last drain — the CME "solver
        #: iterations" metric.  A plain int kept per classifier (one add per
        #: point) and drained in bulk per reference, so the per-point hot
        #: loop never touches the metrics registry.
        self.vector_trials = 0

    def drain_vector_trials(self) -> int:
        """Return and reset the accumulated reuse-vector trial count."""
        n = self.vector_trials
        self.vector_trials = 0
        return n

    def classify(self, ref: NRef, point: Sequence[int]) -> Classification:
        """Classify the access of ``ref`` at index vector ``point``.

        ``point`` must lie inside the reference's RIS (solvers guarantee it).
        """
        walker = self.walker
        line_bytes = self._line_bytes
        cref = walker.compiled_ref(ref)
        addr_c = cref.address_at(point)
        line_c = addr_c // line_bytes
        ivec_c = interleave(ref.label, tuple(point))
        trials = 0
        for rv in self.reuse.vectors_for(ref):
            trials += 1
            ivec_p = subtract(ivec_c, rv.vec)
            index_p = ivec_p[1::2]
            producer = rv.producer
            if not self._ris[id(producer.leaf)].contains(index_p):
                continue  # cold equations: i - r not in RIS_Rp
            addr_p = walker.compiled_ref(producer).address_at(index_p)
            if addr_p // line_bytes != line_c:
                continue  # cold equations: different memory lines
            # Reuse exists along rv: the replacement equations decide.
            evicted = walker.distinct_conflicts_reach(
                (ivec_p, producer.lexpos),
                (ivec_c, ref.lexpos),
                line_c % self._num_sets,
                line_c,
                self._assoc,
                line_bytes,
                self._num_sets,
            )
            self.vector_trials += trials
            if evicted:
                return Classification(Outcome.REPLACEMENT, rv)
            return Classification(Outcome.HIT, rv)
        self.vector_trials += trials
        return Classification(Outcome.COLD)
