"""``EstimateMisses`` — statistical sampling of iteration points (Fig. 6).

For each reference the RIS volume is computed exactly; a sample sized for
the user's confidence/interval ``(c, w)`` is drawn *uniformly* (count-
weighted descent, so triangular and guarded spaces are unbiased) and each
sampled point is classified with the same cold/replacement machinery as
``FindMisses``.  Per Fig. 6, an RIS too small for ``(c, w)`` falls back to
the default ``(c', w') = (90%, 0.15)``, and if still too small it is
analysed exhaustively.

Each reference samples from its own generator seeded with
``seed ^ ref.uid``.  This makes references statistically independent *and*
individually reproducible: adding or removing a reference cannot perturb any
other reference's sample (a single shared generator used to do exactly
that), and it is what lets the parallel engine (:mod:`repro.parallel`)
shard references across processes while producing bit-identical reports.

The cost per sampled point is proportional to the reuse window, not to the
trace length — this is the source of the orders-of-magnitude speedup over
simulation the paper reports (Table 6).
"""

from __future__ import annotations

import random
import time
from typing import Iterable, Optional, TYPE_CHECKING

from repro import obs
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.iteration.walker import Walker
from repro.reuse.generator import ReuseOptions, ReuseTable, build_reuse_table
from repro.stats.confidence import DEFAULT_FALLBACK, achievable, sample_size
from repro.cme.backend import make_classifier
from repro.cme.find import record_ref_metrics
from repro.cme.point import PointClassifier, Outcome
from repro.cme.result import MissReport, RefResult

if TYPE_CHECKING:  # repro.memo imports repro.cme.result — keep this lazy
    from repro.memo import Memoizer


def ref_rng(seed: int, ref: NRef) -> random.Random:
    """The per-reference generator: ``random.Random(seed ^ ref.uid)``."""
    return random.Random(seed ^ ref.uid)


def estimate_ref_misses(
    classifier: PointClassifier,
    nprog: NormalizedProgram,
    ref: NRef,
    confidence: float = 0.95,
    width: float = 0.05,
    seed: int = 0,
) -> RefResult:
    """Sample and classify one reference (the shard unit, Fig. 6 inner loop)."""
    with obs.span("cme/classify_ref"):
        ris = nprog.ris(ref.leaf)
        volume = ris.count()
        result = RefResult(ref.name(), ref.uid, population=volume)
        if volume == 0:
            return result
        if achievable(confidence, width, volume):
            points = ris.sample(
                sample_size(confidence, width, volume), ref_rng(seed, ref)
            )
            obs.counter("cme.sampling.draws").inc(len(points))
        elif achievable(*DEFAULT_FALLBACK, volume):
            points = ris.sample(
                sample_size(*DEFAULT_FALLBACK, volume), ref_rng(seed, ref)
            )
            obs.counter("cme.sampling.draws").inc(len(points))
            obs.counter("cme.sampling.fallbacks").inc()
        else:
            points = list(ris.enumerate_points())  # analyse all points
            obs.counter("cme.sampling.exhaustive").inc()
        tally = getattr(classifier, "tally_ref", None)
        if tally is not None:  # batch backend: the whole sample in one call
            tally(ref, result, points)
        else:
            classify = classifier.classify
            for point in points:
                outcome = classify(ref, point).outcome
                result.analysed += 1
                if outcome is Outcome.COLD:
                    result.cold += 1
                elif outcome is Outcome.REPLACEMENT:
                    result.replacement += 1
                else:
                    result.hits += 1
        result.check_invariants()
        record_ref_metrics(result, classifier)
    return result


def estimate_misses(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    confidence: float = 0.95,
    width: float = 0.05,
    reuse: Optional[ReuseTable] = None,
    walker: Optional[Walker] = None,
    refs: Optional[Iterable[NRef]] = None,
    rng: Optional[random.Random] = None,
    reuse_options: Optional[ReuseOptions] = None,
    seed: int = 0,
    jobs: int = 1,
    memo: Optional["Memoizer"] = None,
    backend: Optional[str] = None,
) -> MissReport:
    """Estimate per-reference and whole-program miss ratios by sampling.

    ``confidence``/``width`` are the paper's ``(c, w)``; the defaults match
    the experiments of Tables 4 and 6 (c = 95%, w = 0.05).  ``seed`` is the
    base of the per-reference seeds; the legacy ``rng`` argument is folded
    into a base seed so older call sites stay deterministic.  ``jobs > 1``
    shards references across a process pool with identical results.
    ``memo`` enables content-addressed memoization; estimate keys include
    the per-reference seed ``seed ^ ref.uid``, so replays are bit-identical
    to the sampling runs that produced them (and two references never share
    a key within one run — in-run dedup only applies to ``find``).
    ``backend`` selects the classification backend (``"scalar"``/
    ``"numpy"``; ``None`` = NumPy when available); both backends draw the
    same sample and produce bit-identical reports, so memo keys exclude it.
    """
    started = time.perf_counter()
    if rng is not None:
        seed = rng.getrandbits(64)
    if reuse is None:
        reuse = build_reuse_table(nprog, cache.line_bytes, reuse_options)
    targets = list(refs) if refs is not None else list(nprog.refs)
    if jobs != 1:  # 0/negative/None mean "all CPUs" (resolved by the engine)
        from repro.parallel import solve_parallel

        return solve_parallel(
            "estimate",
            nprog,
            layout,
            cache,
            reuse,
            jobs,
            refs=targets,
            confidence=confidence,
            width=width,
            seed=seed,
            memo=memo,
            backend=backend,
        )
    classifier = make_classifier(backend, nprog, layout, cache, reuse, walker)
    report = MissReport("EstimateMisses", cache)
    with obs.span("cme/estimate"):
        if memo is not None:
            plan = memo.session(
                "estimate", nprog, layout, cache, reuse, confidence, width, seed
            ).plan(targets)
            for ref in plan.solve:
                result = estimate_ref_misses(
                    classifier, nprog, ref, confidence, width, seed
                )
                report.results[ref.uid] = result
                plan.add(ref, result)
            report.results = plan.finish(report.results)
        else:
            for ref in targets:
                report.results[ref.uid] = estimate_ref_misses(
                    classifier, nprog, ref, confidence, width, seed
                )
    report.elapsed_seconds = time.perf_counter() - started
    report.solver_seconds = report.elapsed_seconds
    if obs.is_enabled():
        report.metrics = obs.snapshot()
    return report
