"""``FindMisses`` — exhaustive analysis of every iteration point (Fig. 6).

Every reference's full RIS is classified point by point.  The result is
exact whenever the reuse information is complete; the paper's Table 3 shows
exact agreement with simulation for Hydro and MGRID and a slight
over-estimation for MMT (whose transposed B references are not uniformly
generated).

The per-reference unit of work, :func:`find_ref_misses`, is deliberately
free-standing: references are independent once the reuse table is built, so
the parallel engine (:mod:`repro.parallel`) shards references across worker
processes and calls the very same function.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, TYPE_CHECKING

from repro import obs
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.iteration.walker import Walker
from repro.reuse.generator import ReuseOptions, ReuseTable, build_reuse_table
from repro.cme.backend import make_classifier
from repro.cme.point import PointClassifier, Outcome
from repro.cme.result import MissReport, RefResult

if TYPE_CHECKING:  # repro.memo imports repro.cme.result — keep this lazy
    from repro.memo import Memoizer


def record_ref_metrics(result: RefResult, classifier: PointClassifier) -> None:
    """Bulk per-reference observability counters (shared by both solvers).

    Incrementing once per reference — not per point — keeps the metric
    namespace (``cme.points.*``, ``polyhedra.ris.volume``) entirely out of
    the per-point hot loop; when observability is disabled this whole call
    is a handful of no-op method calls.
    """
    obs.counter("cme.refs.analysed").inc()
    obs.counter("cme.points.classified").inc(result.analysed)
    obs.counter("cme.points.cold").inc(result.cold)
    obs.counter("cme.points.replacement").inc(result.replacement)
    obs.counter("cme.points.hit").inc(result.hits)
    obs.histogram("polyhedra.ris.volume").observe(result.population)
    obs.counter("cme.solver.vector_trials").inc(classifier.drain_vector_trials())
    drain_backend = getattr(classifier, "drain_backend_counts", None)
    if drain_backend is not None:  # batch backend only
        vectorized, fallback = drain_backend()
        obs.counter("cme.backend.vectorized_points").inc(vectorized)
        obs.counter("cme.backend.fallback_points").inc(fallback)


def find_ref_misses(
    classifier: PointClassifier, nprog: NormalizedProgram, ref: NRef
) -> RefResult:
    """Classify every iteration point of one reference (the shard unit)."""
    with obs.span("cme/classify_ref"):
        ris = nprog.ris(ref.leaf)
        result = RefResult(ref.name(), ref.uid, population=ris.count())
        tally = getattr(classifier, "tally_ref", None)
        if tally is not None:  # batch backend: whole RIS in one call
            tally(ref, result)
        else:
            classify = classifier.classify
            for point in ris.enumerate_points():
                outcome = classify(ref, point).outcome
                result.analysed += 1
                if outcome is Outcome.COLD:
                    result.cold += 1
                elif outcome is Outcome.REPLACEMENT:
                    result.replacement += 1
                else:
                    result.hits += 1
        result.check_invariants(exhaustive=True)
        record_ref_metrics(result, classifier)
    return result


def find_misses(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    reuse: Optional[ReuseTable] = None,
    walker: Optional[Walker] = None,
    refs: Optional[Iterable[NRef]] = None,
    reuse_options: Optional[ReuseOptions] = None,
    jobs: int = 1,
    memo: Optional["Memoizer"] = None,
    backend: Optional[str] = None,
) -> MissReport:
    """Classify every iteration point of every reference.

    Parameters mirror :func:`~repro.cme.estimate.estimate_misses`; ``refs``
    restricts the analysis to a subset of references (useful in tests) and
    ``jobs > 1`` shards the references across a process pool — the report is
    guaranteed identical to the serial one.  ``memo`` enables
    content-addressed memoization (:mod:`repro.memo`): references whose
    equation system was already classified — earlier in this call, in this
    process, or in a previous run via a persistent store — replay the
    stored tallies instead of being re-solved.  ``backend`` selects the
    classification backend (``"scalar"``/``"numpy"``; ``None`` = NumPy when
    available); both backends produce bit-identical reports, so memo keys
    exclude it.
    """
    started = time.perf_counter()
    if reuse is None:
        reuse = build_reuse_table(nprog, cache.line_bytes, reuse_options)
    targets = list(refs) if refs is not None else list(nprog.refs)
    if jobs != 1:  # 0/negative/None mean "all CPUs" (resolved by the engine)
        from repro.parallel import solve_parallel

        return solve_parallel(
            "find",
            nprog,
            layout,
            cache,
            reuse,
            jobs,
            refs=targets,
            memo=memo,
            backend=backend,
        )
    classifier = make_classifier(backend, nprog, layout, cache, reuse, walker)
    report = MissReport("FindMisses", cache)
    with obs.span("cme/find"):
        if memo is not None:
            plan = memo.session("find", nprog, layout, cache, reuse).plan(
                targets
            )
            for ref in plan.solve:
                result = find_ref_misses(classifier, nprog, ref)
                report.results[ref.uid] = result
                plan.add(ref, result)
            report.results = plan.finish(report.results)
        else:
            for ref in targets:
                report.results[ref.uid] = find_ref_misses(
                    classifier, nprog, ref
                )
    report.elapsed_seconds = time.perf_counter() - started
    report.solver_seconds = report.elapsed_seconds
    if obs.is_enabled():
        report.metrics = obs.snapshot()
    return report
