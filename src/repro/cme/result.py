"""Result containers for the miss-equation solvers.

Equality contract
-----------------

:class:`MissReport` equality compares **classifications only** — the
``method``, ``cache`` and per-reference tallies.  Everything observational
(``elapsed_seconds``, ``solver_seconds``, ``jobs``, ``metrics``) is
declared ``compare=False``: those fields describe *how* a run happened,
never *what* it computed.  This is what lets the differential tests assert
``serial_report == parallel_report`` bit-identically while each run still
carries its own timings and metrics snapshot.

Timing contract
---------------

All timing fields are measured with :func:`time.perf_counter` — the
monotonic, high-resolution clock — and are therefore only meaningful as
*differences within one process*; they are never wall-clock timestamps.
Throughput properties (:attr:`MissReport.points_per_second`,
:attr:`MissReport.parallel_efficiency`) derive from the same clock, so
they are internally consistent even across pauses or clock adjustments
that would skew ``time.time()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import InvariantError
from repro.layout.cache import CacheConfig
from repro.normalize.nprogram import NRef


@dataclass
class RefResult:
    """Per-reference outcome tallies.

    ``analysed`` is the number of classified points (all of the RIS for
    ``FindMisses``, the sample size for ``EstimateMisses``); ``population``
    is the RIS volume the tallies are scaled to.
    """

    ref_name: str
    ref_uid: int
    population: int
    analysed: int = 0
    cold: int = 0
    replacement: int = 0
    hits: int = 0

    def check_invariants(self, exhaustive: bool = False) -> "RefResult":
        """Assert the structural tally invariants; returns ``self``.

        Every backend must satisfy ``cold + replacement + hits ==
        analysed``, and an exhaustive solve (``FindMisses``) additionally
        ``analysed == population``.  A violation means a classification
        backend mis-counted, so it raises
        :class:`~repro.errors.InvariantError` rather than letting a wrong
        tally propagate into a report.
        """
        if self.cold + self.replacement + self.hits != self.analysed:
            raise InvariantError(
                f"{self.ref_name}: cold({self.cold}) + "
                f"replacement({self.replacement}) + hits({self.hits}) "
                f"!= analysed({self.analysed})"
            )
        if exhaustive and self.analysed != self.population:
            raise InvariantError(
                f"{self.ref_name}: exhaustive solve analysed "
                f"{self.analysed} of {self.population} points"
            )
        return self

    @property
    def misses(self) -> int:
        """Misses among the analysed points."""
        return self.cold + self.replacement

    @property
    def miss_ratio(self) -> float:
        """``(|CM_R| + |RM_R|) / |S(R)|`` (Fig. 6)."""
        return self.misses / self.analysed if self.analysed else 0.0

    @property
    def estimated_misses(self) -> float:
        """Miss count scaled from the sample to the full RIS.

        Exact (an int-valued float) when the whole RIS was analysed.
        """
        if self.analysed == self.population:
            return float(self.misses)
        return self.miss_ratio * self.population


@dataclass
class MissReport:
    """Aggregate analysis outcome for a program.

    Timing, parallelism and observability metadata (``elapsed_seconds``,
    ``jobs``, ``solver_seconds``, ``metrics``) are excluded from equality:
    two reports are equal when their classifications agree, which is
    exactly the determinism guarantee of the parallel engine (serial and
    ``jobs=N`` runs must compare equal, with or without observability
    enabled).  See the module docstring for the full contract.
    """

    method: str
    cache: CacheConfig
    results: dict[int, RefResult] = field(default_factory=dict)
    #: Wall-clock duration of the whole solve (serial or parallel),
    #: measured with ``time.perf_counter`` (monotonic).
    elapsed_seconds: float = field(default=0.0, compare=False)
    #: Worker processes used (1 = the serial in-process path).
    jobs: int = field(default=1, compare=False)
    #: ``perf_counter`` time spent classifying points, summed across
    #: workers.  Equals ``elapsed_seconds`` for serial runs; for parallel
    #: runs the ratio ``solver_seconds / elapsed_seconds`` is the
    #: effective speedup.
    solver_seconds: float = field(default=0.0, compare=False)
    #: Observability snapshot (``repro.obs`` schema document) taken at the
    #: end of the solve when observability was enabled, else ``None``.
    #: Excluded from equality and ``repr`` — it can only ever describe a
    #: run, not change its outcome.
    metrics: Optional[dict] = field(default=None, compare=False, repr=False)

    def result_for(self, ref: NRef) -> RefResult:
        """The per-reference result of ``ref``."""
        return self.results[ref.uid]

    @property
    def total_accesses(self) -> int:
        """Total population (the full trace length)."""
        return sum(r.population for r in self.results.values())

    @property
    def total_misses(self) -> float:
        """Estimated total misses (exact for ``FindMisses``)."""
        return sum(r.estimated_misses for r in self.results.values())

    @property
    def analysed_points(self) -> int:
        """Number of points actually classified."""
        return sum(r.analysed for r in self.results.values())

    @property
    def miss_ratio(self) -> float:
        """The loop-nest miss ratio of Fig. 6 (population weighted)."""
        total = self.total_accesses
        return self.total_misses / total if total else 0.0

    @property
    def points_per_second(self) -> float:
        """Classification throughput over the wall-clock solve time."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.analysed_points / self.elapsed_seconds

    @property
    def parallel_efficiency(self) -> float:
        """``solver_seconds / (jobs * elapsed_seconds)`` — 1.0 is ideal."""
        denom = self.jobs * self.elapsed_seconds
        return self.solver_seconds / denom if denom > 0.0 else 0.0

    @property
    def miss_ratio_percent(self) -> float:
        """Miss ratio as a percentage (the paper's unit)."""
        return 100.0 * self.miss_ratio

    def breakdown(self) -> dict[str, float]:
        """Cold/replacement/hit totals scaled to populations."""
        cold = replacement = hits = 0.0
        for r in self.results.values():
            if r.analysed:
                scale = r.population / r.analysed
                cold += r.cold * scale
                replacement += r.replacement * scale
                hits += r.hits * scale
        return {"cold": cold, "replacement": replacement, "hits": hits}

    def worst_refs(self, limit: int = 10) -> list[RefResult]:
        """References ordered by estimated miss count, worst first."""
        ordered = sorted(
            self.results.values(), key=lambda r: r.estimated_misses, reverse=True
        )
        return ordered[:limit]


def compare_reports(analytical: MissReport, simulated) -> dict[str, float]:
    """Paper-style comparison record: miss ratios and the absolute error.

    ``simulated`` is a :class:`~repro.sim.SimReport`; the returned absolute
    error is in percentage points (the paper's "Abs. Error" columns).
    """
    return {
        "analytical_percent": analytical.miss_ratio_percent,
        "simulated_percent": simulated.miss_ratio_percent,
        "abs_error": abs(
            analytical.miss_ratio_percent - simulated.miss_ratio_percent
        ),
        "analysis_seconds": analytical.elapsed_seconds,
        "simulation_seconds": simulated.elapsed_seconds,
        "speedup": (
            simulated.elapsed_seconds / analytical.elapsed_seconds
            if analytical.elapsed_seconds > 0
            else float("inf")
        ),
    }
