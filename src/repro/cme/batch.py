"""The vectorized NumPy classification backend (batch CME solving).

The scalar :class:`~repro.cme.point.PointClassifier` decides one iteration
point at a time.  This module decides a reference's points in bulk, with the
same cold/replacement machinery expressed as array arithmetic:

* the points under analysis — the full RIS for ``FindMisses``, the seeded
  sample for ``EstimateMisses`` — become one ``(N, n)`` int64 array;
* per reuse vector, candidate producer points are one array subtraction,
  the cold equations (producer inside its RIS, same memory line) are a
  batched affine-bounds/guards mask plus vectorized address → line
  arithmetic, and reuse vectors are still tried in increasing lexicographic
  order over the shrinking set of undecided points — so each point is
  decided by exactly the vector the scalar classifier would pick;
* the replacement equations (``k`` distinct conflicting lines inside the
  reuse window, Section 4.1.2) are answered by the
  :class:`~repro.iteration.batch.TraceIndex` — the whole trace lex-sorted
  once, each window a per-set slice with a vectorized distinct count — on the
  exhaustive path, and by the scalar walker's windowed walk on the sampling
  path, where materialising the trace would reintroduce the very
  trace-length cost ``EstimateMisses`` exists to avoid.

The contract is **bit identity** with the scalar backend: identical
tallies, identical per-point :class:`~repro.cme.point.Classification`\\ s,
identical ``cme.solver.vector_trials`` accounting.  Any reference the
vectorized path cannot handle is classified point-by-point by the embedded
scalar classifier instead (counted in ``cme.backend.fallback_points``), so
falling back changes speed, never results.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import obs
from repro.errors import MissingDependencyError
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NLeaf, NormalizedProgram, NRef
from repro.polyhedra.batch import enumerate_points_array
from repro.polyhedra.constraints import EQ
from repro.iteration.batch import BatchAffine, TraceIndex, TraceInfeasible
from repro.iteration.position import interleave, subtract
from repro.iteration.walker import Walker, compile_affine
from repro.reuse.generator import ReuseTable
from repro.cme.point import Classification, Outcome, PointClassifier
from repro.cme.result import RefResult

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised via import gate test
    raise MissingDependencyError(
        "repro.cme.batch requires NumPy; install it with "
        "`pip install numpy` (or `pip install repro`), or select the "
        "pure-Python solver with backend='scalar' / --backend scalar"
    ) from exc

#: Outcome codes of the batch pipeline (values of the ``outcomes`` arrays).
_HIT, _COLD, _REPLACEMENT = 0, 1, 2

_OUTCOME_OF = {_HIT: Outcome.HIT, _COLD: Outcome.COLD, _REPLACEMENT: Outcome.REPLACEMENT}


class _BatchUnsupported(Exception):
    """Internal: this reference cannot go through the vectorized path."""


class _BatchRIS:
    """Vectorized membership test for a reference iteration space.

    The batched twin of :class:`repro.cme.point._CompiledRIS`: per-dimension
    affine bound pairs as two stacked coefficient matrices plus the leaf's
    guard constraints, agreeing entry-for-entry with the scalar test.
    """

    __slots__ = ("lower", "upper", "guards")

    def __init__(self, nprog: NormalizedProgram, leaf: NLeaf):
        n = nprog.depth
        loops = nprog.loops_on_path(leaf.label)
        self.lower = BatchAffine([compile_affine(l.lower, n) for l in loops], n)
        self.upper = BatchAffine([compile_affine(l.upper, n) for l in loops], n)
        self.guards = tuple(
            (c.kind == EQ, BatchAffine([compile_affine(c.expr, n)], n))
            for c in leaf.guard
        )

    def contains(self, points: "np.ndarray") -> "np.ndarray":
        mask = np.all(
            (points >= self.lower.eval(points))
            & (points <= self.upper.eval(points)),
            axis=1,
        )
        for is_eq, aff in self.guards:
            value = aff.eval_single(points)
            mask &= (value == 0) if is_eq else (value >= 0)
        return mask


class BatchClassifier:
    """Batch (NumPy) classifier with the scalar classifier's exact semantics.

    Drop-in replacement for :class:`~repro.cme.point.PointClassifier` in the
    solvers: exposes the same :meth:`classify` /
    :meth:`drain_vector_trials` surface, plus the bulk entry point
    :meth:`tally_ref` the solvers prefer when present.
    """

    #: Resolved backend name (mirrors ``resolve_backend`` vocabulary).
    backend_name = "numpy"

    def __init__(
        self,
        nprog: NormalizedProgram,
        layout: MemoryLayout,
        cache: CacheConfig,
        reuse: ReuseTable,
        walker: Optional[Walker] = None,
    ):
        #: Embedded scalar classifier: the fallback path *and* the single
        #: owner of the ``vector_trials`` accumulator, so trial accounting
        #: is one counter no matter which path decided a point.
        self.scalar = PointClassifier(nprog, layout, cache, reuse, walker)
        self.nprog = nprog
        self.layout = layout
        self.cache = cache
        self.reuse = reuse
        self.walker = self.scalar.walker
        self._line_bytes = cache.line_bytes
        self._num_sets = cache.num_sets
        self._assoc = cache.assoc
        self._ris = {
            id(leaf): _BatchRIS(nprog, leaf) for leaf in nprog.leaves
        }
        self._addr: dict[int, BatchAffine] = {}  # ref.uid -> address matrix
        self._trace: Optional[TraceIndex] = None
        self._trace_failed = False
        #: Points decided by the vectorized path / by scalar fallback since
        #: the last drain (the ``cme.backend.*`` counters).
        self.vectorized_points = 0
        self.fallback_points = 0

    # -- scalar-compatible surface ---------------------------------------------

    def classify(self, ref: NRef, point: Sequence[int]) -> Classification:
        """Classify a single point (delegates to the scalar machinery)."""
        return self.scalar.classify(ref, point)

    def drain_vector_trials(self) -> int:
        """Return and reset the accumulated reuse-vector trial count."""
        return self.scalar.drain_vector_trials()

    def drain_backend_counts(self) -> tuple[int, int]:
        """Return and reset ``(vectorized_points, fallback_points)``."""
        counts = (self.vectorized_points, self.fallback_points)
        self.vectorized_points = 0
        self.fallback_points = 0
        return counts

    # -- bulk classification ------------------------------------------------------

    def tally_ref(
        self,
        ref: NRef,
        result: RefResult,
        points: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        """Classify a reference in bulk, accumulating into ``result``.

        ``points=None`` means "the full RIS" (``FindMisses``): the points
        are enumerated as one array and the replacement windows answered by
        the shared :class:`TraceIndex`.  An explicit ``points`` sequence
        (``EstimateMisses`` samples, exhaustive fallbacks, tests) keeps the
        scalar walker as the window oracle so the classification cost stays
        proportional to reuse distance, not trace length.
        """
        try:
            pts = self._points_array(ref, points)
            outcomes, _ = self._classify_array(ref, pts, use_trace=points is None)
        except _BatchUnsupported:
            self._tally_scalar(ref, result, points)
            return
        self.vectorized_points += len(pts)
        result.analysed += len(pts)
        counts = np.bincount(outcomes, minlength=3)
        result.hits += int(counts[_HIT])
        result.cold += int(counts[_COLD])
        result.replacement += int(counts[_REPLACEMENT])

    def classify_points(
        self, ref: NRef, points: Sequence[Sequence[int]]
    ) -> list[Classification]:
        """Batch :meth:`classify`: one :class:`Classification` per point.

        Used by the parity tests; windows go through the scalar walker, so
        this never builds the trace.
        """
        pts = self._points_array(ref, points)
        outcomes, via = self._classify_array(ref, pts, use_trace=False)
        self.vectorized_points += len(pts)
        vectors = self.reuse.vectors_for(ref)
        return [
            Classification(Outcome.COLD)
            if j < 0
            else Classification(_OUTCOME_OF[o], vectors[j])
            for o, j in zip(outcomes.tolist(), via.tolist())
        ]

    # -- internals -----------------------------------------------------------------

    def _points_array(
        self, ref: NRef, points: Optional[Sequence[Sequence[int]]]
    ) -> "np.ndarray":
        n = self.nprog.depth
        if n == 0:
            raise _BatchUnsupported("no loop dimensions to vectorize over")
        if points is None:
            return enumerate_points_array(self.nprog.ris(ref.leaf))
        return np.array(points, dtype=np.int64).reshape(len(points), n)

    def _addr_affine(self, ref: NRef) -> BatchAffine:
        aff = self._addr.get(ref.uid)
        if aff is None:
            aff = BatchAffine(
                [self.walker.compiled_ref(ref).addr], self.nprog.depth
            )
            self._addr[ref.uid] = aff
        return aff

    def _trace_index(self) -> Optional[TraceIndex]:
        if self._trace is None and not self._trace_failed:
            try:
                with obs.span("cme/batch/trace_index"):
                    self._trace = TraceIndex(
                        self.nprog,
                        self.walker,
                        self._line_bytes,
                        self._num_sets,
                    )
            except TraceInfeasible:
                self._trace_failed = True
        return self._trace

    def _classify_array(
        self, ref: NRef, pts: "np.ndarray", use_trace: bool
    ) -> tuple["np.ndarray", "np.ndarray"]:
        """The batch cold + replacement equations over one point array.

        Returns ``(outcomes, via)``: per point the outcome code and the
        index of the deciding reuse vector (-1 = cold, no vector decided).
        """
        n_points = len(pts)
        vectors = self.reuse.vectors_for(ref)
        via = np.full(n_points, -1, dtype=np.int64)
        producer_pts = np.zeros_like(pts)
        lines_c = self._addr_affine(ref).eval_single(pts) // self._line_bytes
        undecided = np.arange(n_points, dtype=np.int64)
        trials = 0
        # Cold equations, vector by vector in lexicographic order over the
        # shrinking undecided set — identical decision order to the scalar
        # classifier, but each vector is one subtraction + one mask.
        for j, rv in enumerate(vectors):
            if not len(undecided):
                break
            shift = np.asarray(rv.vec[1::2], dtype=np.int64)
            candidates = pts[undecided] - shift
            inside = self._ris[id(rv.producer.leaf)].contains(candidates)
            if not inside.any():
                continue
            addr_p = self._addr_affine(rv.producer).eval_single(
                candidates[inside]
            )
            same_line = (addr_p // self._line_bytes) == lines_c[undecided][inside]
            rows = np.flatnonzero(inside)[same_line]
            if not len(rows):
                continue
            decided = undecided[rows]
            via[decided] = j
            producer_pts[decided] = candidates[rows]
            trials += (j + 1) * len(decided)
            keep = np.ones(len(undecided), dtype=bool)
            keep[rows] = False
            undecided = undecided[keep]
        trials += len(undecided) * len(vectors)
        self.scalar.vector_trials += trials
        outcomes = np.full(n_points, _COLD, dtype=np.int8)
        decided = np.flatnonzero(via >= 0)
        if len(decided):
            evicted = self._windows(
                ref, pts, via, producer_pts, lines_c, decided, vectors, use_trace
            )
            outcomes[decided] = np.where(evicted, _REPLACEMENT, _HIT)
        return outcomes, via

    def _windows(
        self,
        ref: NRef,
        pts: "np.ndarray",
        via: "np.ndarray",
        producer_pts: "np.ndarray",
        lines_c: "np.ndarray",
        decided: "np.ndarray",
        vectors,
        use_trace: bool,
    ) -> "np.ndarray":
        """Replacement equations for the decided points: evicted or not."""
        trace = self._trace_index() if use_trace else None
        if trace is not None:
            t_consumer = trace.t_of(ref, pts[decided])
            t_producer = np.empty(len(decided), dtype=np.int64)
            decided_via = via[decided]
            for j in np.unique(decided_via):
                chosen = decided_via == j
                t_producer[chosen] = trace.t_of(
                    vectors[j].producer, producer_pts[decided][chosen]
                )
            return trace.conflicts_reach(
                t_producer, t_consumer, lines_c[decided], self._assoc
            )
        walker = self.walker
        evicted = np.empty(len(decided), dtype=bool)
        for i, q in enumerate(decided):
            rv = vectors[via[q]]
            ivec_c = interleave(ref.label, tuple(int(v) for v in pts[q]))
            ivec_p = subtract(ivec_c, rv.vec)
            line_c = int(lines_c[q])
            evicted[i] = walker.distinct_conflicts_reach(
                (ivec_p, rv.producer.lexpos),
                (ivec_c, ref.lexpos),
                line_c % self._num_sets,
                line_c,
                self._assoc,
                self._line_bytes,
                self._num_sets,
            )
        return evicted

    def _tally_scalar(
        self,
        ref: NRef,
        result: RefResult,
        points: Optional[Sequence[Sequence[int]]],
    ) -> None:
        """Point-by-point scalar fallback with identical tallies."""
        if points is None:
            points = self.nprog.ris(ref.leaf).enumerate_points()
        classify = self.scalar.classify
        for point in points:
            outcome = classify(ref, tuple(int(v) for v in point)).outcome
            self.fallback_points += 1
            result.analysed += 1
            if outcome is Outcome.COLD:
                result.cold += 1
            elif outcome is Outcome.REPLACEMENT:
                result.replacement += 1
            else:
                result.hits += 1
