"""Cache Miss Equations: forming and solving (Section 4 of the paper)."""

from repro.cme.backend import (
    BACKENDS,
    make_classifier,
    numpy_available,
    resolve_backend,
)
from repro.cme.point import Classification, Outcome, PointClassifier
from repro.cme.result import MissReport, RefResult, compare_reports
from repro.cme.find import find_misses, find_ref_misses
from repro.cme.estimate import estimate_misses, estimate_ref_misses, ref_rng
from repro.cme.regions import (
    region_misses,
    region_ref_misses,
    regional_coverage,
)

__all__ = [
    "BACKENDS",
    "Classification",
    "Outcome",
    "PointClassifier",
    "MissReport",
    "RefResult",
    "compare_reports",
    "find_misses",
    "find_ref_misses",
    "estimate_misses",
    "estimate_ref_misses",
    "make_classifier",
    "numpy_available",
    "ref_rng",
    "region_misses",
    "region_ref_misses",
    "regional_coverage",
    "resolve_backend",
]
