"""Classification-backend selection for the CME solvers.

Two interchangeable backends classify iteration points:

* ``"scalar"`` — the pure-Python :class:`~repro.cme.point.PointClassifier`
  (one point at a time, zero dependencies);
* ``"numpy"`` — the vectorized :class:`~repro.cme.batch.BatchClassifier`
  (whole ``(N, n)`` point batches through NumPy integer arithmetic).

Both produce **bit-identical** :class:`~repro.cme.result.MissReport`\\ s —
same tallies, same per-reference results, same ``cme.solver.vector_trials``
accounting — which is why the backend choice is *not* part of memoization
keys (:mod:`repro.memo`): a solution cached by one backend is valid for the
other, and warm replays stay correct across machines with and without
NumPy installed.

This module deliberately never imports NumPy (availability is probed with
:func:`importlib.util.find_spec`), so selecting — or falling back to — the
scalar backend works on interpreters without it.
"""

from __future__ import annotations

from importlib import util as _importlib_util
from typing import Optional, TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.layout.cache import CacheConfig
    from repro.layout.memory import MemoryLayout
    from repro.normalize.nprogram import NormalizedProgram
    from repro.iteration.walker import Walker
    from repro.reuse.generator import ReuseTable

#: The selectable classification backends.
BACKENDS = ("scalar", "numpy")

#: What ``backend=None`` / ``"auto"`` resolve to when NumPy is installed.
DEFAULT_BACKEND = "numpy"


def numpy_available() -> bool:
    """True when NumPy can be imported (probed without importing it)."""
    return _importlib_util.find_spec("numpy") is not None


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalise a backend request to ``"scalar"`` or ``"numpy"``.

    ``None`` and ``"auto"`` pick :data:`DEFAULT_BACKEND` when NumPy is
    installed.  An explicit ``"numpy"`` on an interpreter without NumPy
    degrades to ``"scalar"`` rather than failing — the backends are
    bit-identical, so the fallback changes speed, never results.  Unknown
    names raise :class:`~repro.errors.ReproError`.
    """
    if backend is None or backend == "auto":
        backend = DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown classification backend {backend!r}; "
            f"choose one of {', '.join(BACKENDS)}"
        )
    if backend == "numpy" and not numpy_available():
        return "scalar"
    return backend


def make_classifier(
    backend: Optional[str],
    nprog: "NormalizedProgram",
    layout: "MemoryLayout",
    cache: "CacheConfig",
    reuse: "ReuseTable",
    walker: Optional["Walker"] = None,
):
    """Build the classifier for a (possibly unresolved) backend name."""
    if resolve_backend(backend) == "numpy":
        from repro.cme.batch import BatchClassifier

        return BatchClassifier(nprog, layout, cache, reuse, walker)
    from repro.cme.point import PointClassifier

    return PointClassifier(nprog, layout, cache, reuse, walker)
