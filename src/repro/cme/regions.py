"""``RegionMisses`` — regional CME solving: whole polyhedra, not points.

``FindMisses`` pays per iteration point, so Table 3/6 analysis time grows
with the loop bounds — defeating the paper's "analytical, not simulated"
promise at scale.  This solver classifies whole polyhedral *regions* of each
reference's RIS at once, following the symbolic-locality line of work (Zhu
et al., *Fully Symbolic Analysis of Loop Locality*) on top of the paper's
own machinery:

1. **Decomposition.**  Reuse vectors are tried in the same increasing
   lexicographic order as the point classifier, but over *cells* instead of
   points.  Within a uniformly generated set the producer/consumer address
   difference ``δ = addr_p(i−x) − addr_c(i)`` is a compile-time constant, so
   the cold equations of vector ``x`` are exactly: a conjunction of affine
   constraints (the translated producer RIS) and one residue-interval
   constraint ``(addr_c(i) mod L) ∈ [max(0,−δ), min(L−1, L−1−δ)]``.
   Sequential set difference over these conditions splits the RIS into
   disjoint :class:`~repro.polyhedra.regions.RegionSpace` cells: per vector
   a *decided* cell plus complement cells that continue to the next vector;
   whatever survives every vector is **cold** and is counted in closed form.

2. **Replacement by residue class.**  A decided cell is classified without
   enumeration when the *replacement-uniformity certificate* holds: the
   reuse vector spans only innermost iterations (zero label part, zero
   outer index components), every leaf of the consumer's innermost loop is
   guard-free, and every reference in those leaves has a constant address
   offset from the consumer.  Then the interference window's line offsets
   are a fixed set of carries ``(a mod L + Δ) // L``, so the outcome is a
   function of ``a mod L`` alone: the cell splits into at most ``L/gcd``
   residue classes, one representative per class is probed with the scalar
   classifier (verifying it is decided by the expected vector), and the
   probed outcome is multiplied by the class's closed-form count.

   For **direct-mapped** caches a second certificate covers windows whose
   references are *not* uniformly generated with the consumer (``mmt``'s
   ``A``/``B`` rows against ``C``): with an innermost-only vector over a
   childless loop the window's access list is static (a guarded leaf's
   accesses carry the shifted guard as an affine *presence* condition), and
   with ``k = 1`` replacement is simply "some window access conflicts".
   Each access contributes one conflict condition — writing ``r = a_c mod L``
   and ``Δ_j(i) = addr_j(i) − a_c(i)`` (affine!), the access maps to the
   reused set iff ``(r + Δ_j) mod L·S ∈ [0, L)`` and to the reused *line*
   iff ``0 ≤ r + Δ_j ≤ L−1``.  Both are region constraints, so sequential
   set difference over the window carves the cell into exact REPLACEMENT
   and HIT pieces — every piece still probe-verified before being tallied.

3. **Fallback.**  Anything irregular — a non-constant ``δ`` (references
   outside the consumer's uniformly generated set), a failed certificate, a
   probe deciding via an unexpected vector — is *enumerated* through the
   existing classification backend (:mod:`repro.cme.backend`), merged into
   one residual region per reference.  Fallback changes speed, never
   results: the report is exactly equal to ``FindMisses`` by construction,
   which the 210-case differential suite asserts.

Coverage is observable: ``cme.regions.exact_regions`` counts closed-form
units (cold cells and certified residue classes), ``fallback_regions`` the
residual regions (at most one per reference), with ``fallback_cells`` /
``fallback_points`` / ``probe_mismatch`` breaking the residual down.
"""

from __future__ import annotations

import math
import time
from typing import Iterable, Optional, TYPE_CHECKING

from repro import obs
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.polyhedra.affine import Affine
from repro.polyhedra.constraints import Constraint, EQ
from repro.polyhedra.regions import RegionSpace, negate_constraint
from repro.reuse.generator import ReuseOptions, ReuseTable, build_reuse_table
from repro.reuse.vectors import ReuseVector
from repro.cme.backend import make_classifier
from repro.cme.find import record_ref_metrics
from repro.cme.point import Outcome
from repro.cme.result import MissReport, RefResult

if TYPE_CHECKING:  # repro.memo imports repro.cme.result — keep this lazy
    from repro.memo import Memoizer

#: Decomposition cap: a reference producing more cells than this sends the
#: remainder to the fallback path (soundness valve against fragmentation).
MAX_CELLS = 512

#: Residue-class probing is capped at this line size — beyond it the class
#: count stops being "a handful per cell" and enumeration wins anyway.
MAX_RESIDUE_MODULUS = 4096

#: Static interference windows longer than this fall back to enumeration
#: (the per-access carving below is linear in the window length).
MAX_WINDOW = 48

#: Crossing windows unroll at most this many iterations per run; the bound
#: is evaluated over the *cell's* tightened box, so thin boundary cells
#: qualify even inside huge loops.  Kept small on purpose: carving cost
#: grows quadratically with the unroll (each access adds a constraint to
#: every surviving piece), so wide crossings enumerate instead.
MAX_CROSS_ITERS = 8

#: Total unrolled access budget of one crossing window.
MAX_CROSS_ACCESSES = 64

#: Cap on live pieces while carving one decided cell by window conflicts.
MAX_PIECES = 512

_NEVER = "never"
_REGULAR = "regular"
_IRREGULAR = "irregular"


class RegionSolver:
    """Per-analysis-state regional solver (decompose → count → probe).

    Built once per classifier and cached on it, so repeated per-reference
    calls (serial loop, parallel shard, service units) share the compiled
    address rows, cold conditions and certificates.
    """

    def __init__(
        self,
        nprog: NormalizedProgram,
        layout: MemoryLayout,
        cache: CacheConfig,
        reuse: ReuseTable,
        classifier=None,
    ):
        self.nprog = nprog
        self.layout = layout
        self.cache = cache
        self.reuse = reuse
        #: Backend classifier for fallback enumeration (optional for the
        #: coverage probe of :func:`regional_coverage`).
        self.classifier = classifier
        #: Scalar probe oracle: the embedded scalar classifier of the batch
        #: backend, or the classifier itself.
        self.scalar = getattr(classifier, "scalar", classifier)
        self._addr: dict[int, Affine] = {}
        self._conds: dict[int, list] = {}
        self._cert: dict[tuple[int, int], bool] = {}
        self._window: dict[tuple[int, int], Optional[list]] = {}

    @staticmethod
    def for_classifier(classifier) -> "RegionSolver":
        """The solver bound to (and cached on) a classification backend."""
        solver = getattr(classifier, "_region_solver", None)
        if solver is None:
            solver = RegionSolver(
                classifier.nprog,
                classifier.layout,
                classifier.cache,
                classifier.reuse,
                classifier,
            )
            classifier._region_solver = solver
        return solver

    # -- address rows and cold conditions ---------------------------------------

    def addr_affine(self, ref: NRef) -> Affine:
        """The byte-address of ``ref`` as an affine over ``I1..In``."""
        a = self._addr.get(ref.uid)
        if a is None:
            array = ref.array
            a = (
                array.element_offset(ref.subscripts) * array.element_size
                + self.layout.base_of(array)
            )
            self._addr[ref.uid] = a
        return a

    def _cold_condition(self, ref: NRef, rv: ReuseVector):
        """The cold equations of one vector as region constraints.

        Returns ``(kind, constraints, residue)`` with ``kind`` one of
        ``"never"`` (provably no point satisfies them), ``"regular"``
        (affine constraints + optional residue interval on the consumer
        address mod the line size) or ``"irregular"`` (non-constant ``δ`` —
        the producer is outside the consumer's uniformly generated set, so
        the line equality is not a residue condition).
        """
        x = rv.index_part()
        shift = {
            var: Affine.var(var) - x[k]
            for k, var in enumerate(self.nprog.index_vars)
        }
        line_bytes = self.cache.line_bytes
        delta = self.addr_affine(rv.producer).substitute(shift) - self.addr_affine(
            ref
        )
        pris = self.nprog.ris(rv.producer.leaf)
        cons: list[Constraint] = []
        for k, (lo, hi) in enumerate(pris.bounds):
            producer_k = Affine.var(self.nprog.index_vars[k]) - x[k]
            cons.append(Constraint.inequality(producer_k - lo.substitute(shift)))
            cons.append(Constraint.inequality(hi.substitute(shift) - producer_k))
        for c in pris.guard:
            cons.append(c.substitute(shift))
        # Prune against the consumer's bounding box: constraints that are
        # provably true over the whole RIS never split a cell, provably
        # false ones make the vector inapplicable outright.
        box = self.nprog.ris(ref.leaf).var_ranges()
        kept: list[Constraint] = []
        for c in cons:
            if c.trivially_true():
                continue
            if c.trivially_false():
                return (_NEVER, (), None)
            lo_v, hi_v = c.expr.bounds(box)
            if c.kind == EQ:
                if lo_v == 0 and hi_v == 0:
                    continue
                if lo_v > 0 or hi_v < 0:
                    return (_NEVER, (), None)
            else:
                if lo_v >= 0:
                    continue
                if hi_v < 0:
                    return (_NEVER, (), None)
            kept.append(c)
        if not delta.is_constant():
            return (_IRREGULAR, tuple(kept), None)
        d = delta.constant_value()
        if d == 0:
            residue = None
        elif abs(d) >= line_bytes:
            return (_NEVER, (), None)
        else:
            residue = (max(0, -d), min(line_bytes - 1, line_bytes - 1 - d))
        return (_REGULAR, tuple(kept), residue)

    def _conditions(self, ref: NRef) -> list:
        conds = self._conds.get(ref.uid)
        if conds is None:
            conds = [
                self._cold_condition(ref, rv)
                for rv in self.reuse.vectors_for(ref)
            ]
            self._conds[ref.uid] = conds
        return conds

    # -- the replacement-uniformity certificate ----------------------------------

    def _certificate(self, ref: NRef, rv: ReuseVector) -> bool:
        """True when the interference window's outcome is a function of
        ``addr_c(i) mod line_bytes`` alone over any decided cell.

        Conditions: the vector spans only innermost iterations (zero label
        part, zero outer index components, non-negative innermost step);
        every leaf of the consumer's innermost loop is guard-free (fixed
        window content); and every reference in those leaves sits at a
        constant byte offset from the consumer (same linear address row).
        Then each window access's line is ``line_c + (a mod L + Δ) // L``
        with constant ``Δ``, so distinct-conflict counting is per-residue
        constant and one probed representative decides the whole class.
        """
        if self.nprog.depth == 0:
            return False
        if any(l != 0 for l in rv.label_part()):
            return False
        x = rv.index_part()
        if any(c != 0 for c in x[:-1]) or x[-1] < 0:
            return False
        loop = self.nprog.loop_at(ref.label)
        if loop.loops:
            return False
        row_c = self.addr_affine(ref)
        for leaf in loop.leaves:
            if not leaf.guard.is_true():
                return False
            for other in leaf.refs:
                if not (self.addr_affine(other) - row_c).is_constant():
                    return False
        return True

    def _certified(self, ref: NRef, t: int, rv: ReuseVector) -> bool:
        key = (ref.uid, t)
        ok = self._cert.get(key)
        if ok is None:
            ok = self._certificate(ref, rv)
            self._cert[key] = ok
        return ok

    # -- the direct-mapped window certificate -------------------------------------

    def _window_accesses(
        self, ref: NRef, t: int, rv: ReuseVector
    ) -> Optional[list[tuple[NRef, int, tuple[Constraint, ...]]]]:
        """The static interference window of an innermost-only vector.

        Returns ``(reference, innermost offset, presence guard)`` triples in
        exact walker order, or ``None`` when the window is not statically
        known: the vector must span only innermost iterations, the
        consumer's loop must be childless, and the window must fit
        :data:`MAX_WINDOW`.  A guarded leaf's accesses carry the guard with
        the innermost variable shifted by the access offset — the walker
        evaluates leaf guards per iteration, so the access is present
        exactly where the shifted guard holds at the consumer point.
        Replicates the end filters of ``Walker.walk_between`` — at the
        producer's iteration only later lexical positions qualify, and the
        walk stops at the first position not before the consumer's.
        """
        key = (ref.uid, t)
        if key in self._window:
            return self._window[key]
        accesses = self._compute_window(ref, rv)
        self._window[key] = accesses
        return accesses

    def _shift_guard(self, guard, offset: int) -> tuple[Constraint, ...]:
        """A leaf guard as consumer-point constraints, inner var shifted."""
        if offset == 0:
            return tuple(guard)
        inner = self.nprog.index_vars[-1]
        shift = {inner: Affine.var(inner) + offset}
        out = []
        for c in guard:
            expr = c.expr.substitute(shift)
            out.append(
                Constraint.equality(expr)
                if c.kind == EQ
                else Constraint.inequality(expr)
            )
        return tuple(out)

    def _compute_window(
        self, ref: NRef, rv: ReuseVector
    ) -> Optional[list[tuple[NRef, int, tuple[Constraint, ...]]]]:
        if self.nprog.depth == 0:
            return None
        if any(l != 0 for l in rv.label_part()):
            return None
        x = rv.index_part()
        if any(c != 0 for c in x[:-1]) or x[-1] < 0:
            return None
        step = x[-1]
        loop = self.nprog.loop_at(ref.label)
        if loop.loops:
            return None
        producer_lex = rv.producer.lexpos
        consumer_lex = ref.lexpos
        accesses: list[tuple[NRef, int, tuple[Constraint, ...]]] = []
        for offset in range(-step, 1):
            stop = False
            for leaf in loop.leaves:
                guard = self._shift_guard(leaf.guard, offset)
                for other in leaf.refs:
                    if offset == -step and other.lexpos <= producer_lex:
                        continue
                    if offset == 0 and other.lexpos >= consumer_lex:
                        stop = True
                        break
                    accesses.append((other, offset, guard))
                    if len(accesses) > MAX_WINDOW:
                        return None
                if stop:
                    break
            if stop:
                break
        return accesses

    def _offset_pairs(
        self, ref: NRef, accesses: list[tuple[NRef, int, tuple[Constraint, ...]]]
    ) -> list[tuple[Affine, tuple[Constraint, ...]]]:
        """Innermost-window accesses as ``(Δ, guard)`` carving pairs."""
        a_expr = self.addr_affine(ref)
        inner = self.nprog.index_vars[-1]
        pairs = []
        for other, offset, guard in accesses:
            addr = self.addr_affine(other)
            if offset:
                addr = addr.substitute({inner: Affine.var(inner) + offset})
            pairs.append((addr - a_expr, guard))
        return pairs

    # -- the crossing-window certificate (one second-innermost step) ---------------

    def _crossing_shape(self, ref: NRef, rv: ReuseVector) -> bool:
        """True when ``rv`` steps the second-innermost level exactly once.

        Shape: zero label part, index part ``(0, …, 0, 1, s)`` — the window
        then spans the tail of the previous second-innermost iteration plus
        the head of the current one, with no complete intermediate loop
        executions.  Requires the consumer's innermost loop to be the *only*
        child of its parent, so no sibling subtree intervenes.
        """
        n = self.nprog.depth
        if n < 2:
            return False
        if any(l != 0 for l in rv.label_part()):
            return False
        x = rv.index_part()
        if any(c != 0 for c in x[:-2]) or x[-2] != 1:
            return False
        loop = self.nprog.loop_at(ref.label)
        if loop.loops:
            return False
        parent = self.nprog.loop_at(ref.label[:-1])
        return len(parent.loops) == 1 and not parent.leaves

    def _crossing_pairs(
        self, ref: NRef, rv: ReuseVector, cell: RegionSpace
    ) -> Optional[list[tuple[Affine, tuple[Constraint, ...]]]]:
        """Unrolled ``(Δ, guard)`` pairs for a second-innermost crossing.

        The window runs from the producer at ``(…, i₍ₙ₋₁₎−1, iₙ−s)`` to the
        consumer at ``(…, i₍ₙ₋₁₎, iₙ)``: the rest of the previous inner run
        and the head of the current one.  Both run lengths are bounded over
        the *cell* (not the loop bounds — the cell's thinness comes from the
        negated conditions of earlier reuse vectors), so when the cell's
        tightened box keeps them under :data:`MAX_CROSS_ITERS` the window
        unrolls into pinned accesses whose presence guards are the inner
        bounds.  Returns ``None`` when the shape or budget does not hold.
        """
        if not self._crossing_shape(ref, rv):
            return None
        nvars = self.nprog.index_vars
        outer, inner = nvars[-2], nvars[-1]
        s = rv.index_part()[-1]
        loop = self.nprog.loop_at(ref.label)
        prev_map = {outer: Affine.var(outer) - 1}
        ub_prev = loop.upper.substitute(prev_map)
        lb_cur = loop.lower
        p_inner = Affine.var(inner) - s
        box = cell.tight_ranges()
        w1 = (ub_prev - p_inner).bounds(box)[1]
        w2 = (Affine.var(inner) - lb_cur).bounds(box)[1]
        if w1 < 0 or w2 < 0:
            return None  # box contradicts producer/consumer containment
        per_iter = sum(len(leaf.refs) for leaf in loop.leaves)
        if w1 > MAX_CROSS_ITERS or w2 > MAX_CROSS_ITERS:
            return None
        if (w1 + w2 + 2) * per_iter > MAX_CROSS_ACCESSES:
            return None
        a_expr = self.addr_affine(ref)
        producer_lex = rv.producer.lexpos
        consumer_lex = ref.lexpos
        pairs: list[tuple[Affine, tuple[Constraint, ...]]] = []
        # Tail of the previous inner run: u = iₙ − s + ω at outer − 1.
        for omega in range(0, w1 + 1):
            subst = dict(prev_map)
            subst[inner] = p_inner + omega
            presence: tuple[Constraint, ...] = ()
            if omega:  # the producer iteration itself is in-bounds by cold
                presence = (
                    Constraint.inequality(ub_prev - (p_inner + omega)),
                )
            for leaf in loop.leaves:
                guard = presence + tuple(
                    Constraint.equality(c.expr.substitute(subst))
                    if c.kind == EQ
                    else Constraint.inequality(c.expr.substitute(subst))
                    for c in leaf.guard
                )
                for other in leaf.refs:
                    if omega == 0 and other.lexpos <= producer_lex:
                        continue
                    pairs.append(
                        (self.addr_affine(other).substitute(subst) - a_expr, guard)
                    )
        # Head of the current inner run: u = iₙ − ω (ω = 0 is the consumer's
        # own iteration, cut at the consumer's lexical position).
        for omega in range(0, w2 + 1):
            subst = {inner: Affine.var(inner) - omega}
            presence = ()
            if omega:
                presence = (
                    Constraint.inequality((Affine.var(inner) - omega) - lb_cur),
                )
            for leaf in loop.leaves:
                guard = presence + tuple(
                    Constraint.equality(c.expr.substitute(subst))
                    if c.kind == EQ
                    else Constraint.inequality(c.expr.substitute(subst))
                    for c in leaf.guard
                )
                for other in leaf.refs:
                    if omega == 0 and other.lexpos >= consumer_lex:
                        continue
                    pairs.append(
                        (self.addr_affine(other).substitute(subst) - a_expr, guard)
                    )
        return pairs

    def _classify_cell_window(
        self,
        ref: NRef,
        cell: RegionSpace,
        cell_count: int,
        rv: ReuseVector,
        pairs: list[tuple[Affine, tuple[Constraint, ...]]],
        result: RefResult,
    ) -> Optional[int]:
        """Carve a decided cell into exact HIT/REPLACEMENT pieces (k = 1).

        ``pairs`` gives each window access as ``(Δ, presence guard)`` with
        ``Δ = addr_access − addr_consumer`` affine in the consumer point.
        Splits the cell by consumer residue ``r = a_c mod L``, then applies
        each access's conflict condition by sequential set difference (a
        guarded access first splits off the guard-false part, where the
        access never executes and the region simply survives).  Tallies only
        after the pieces tile the cell exactly and every piece's
        representative probe agrees; returns the number of exact pieces, or
        ``None`` to make the caller fall back (nothing tallied).
        """
        line_bytes = self.cache.line_bytes
        num_sets = self.cache.num_sets
        modulus = line_bytes * num_sets
        a_expr = self.addr_affine(ref)
        deltas: list[tuple[Affine, tuple[Constraint, ...]]] = []
        seen: set[tuple] = set()
        for delta, guard in pairs:
            key = (
                tuple(sorted(delta.coeffs.items())),
                delta.constant,
                tuple(
                    (c.kind, tuple(sorted(c.expr.coeffs.items())), c.expr.constant)
                    for c in guard
                ),
            )
            if key in seen:
                continue  # duplicate address row: same conflict region
            seen.add(key)
            deltas.append((delta, guard))
        g = math.gcd(line_bytes, *a_expr.coeffs.values())
        classes: list[tuple[RegionSpace, int, int]] = []
        total = 0
        for r in range(a_expr.constant % g, line_bytes, g):
            cls = cell.with_residue(a_expr, line_bytes, r, r)
            cnt = cls.count()
            if cnt:
                classes.append((cls, r, cnt))
                total += cnt
        if total != cell_count:
            obs.counter("cme.regions.partition_mismatch").inc()
            return None
        replacement: list[RegionSpace] = []
        hits: list[RegionSpace] = []
        for cls, r, _ in classes:
            survivors = [cls]
            for delta, guard in deltas:
                shifted = delta + r
                nxt: list[RegionSpace] = []
                for region in survivors:
                    if len(nxt) + len(replacement) > MAX_PIECES:
                        return None
                    # A guarded access splits off the part of the region
                    # where its guard fails — the access never executes
                    # there, so that part survives untouched.
                    present = region
                    for c in guard:
                        for neg in negate_constraint(c):
                            absent = present.conjoin(neg)
                            if absent.count():
                                nxt.append(absent)
                        present = present.conjoin(c)
                        if present.count() == 0:
                            break
                    if present.count() == 0:
                        continue
                    in_set = (
                        present
                        if modulus == line_bytes
                        else present.with_residue(
                            shifted, modulus, 0, line_bytes - 1
                        )
                    )
                    if in_set.count() == 0:
                        nxt.append(present)  # never maps to the reused set
                        continue
                    if modulus > line_bytes:
                        out_set = present.with_residue(
                            shifted, modulus, line_bytes, modulus - 1
                        )
                        if out_set.count():
                            nxt.append(out_set)
                    same_line = in_set.conjoin(
                        Constraint.inequality(shifted)
                    ).conjoin(Constraint.inequality((line_bytes - 1) - shifted))
                    if same_line.count():
                        nxt.append(same_line)
                    for conflict in (
                        in_set.conjoin(Constraint.inequality(-shifted - 1)),
                        in_set.conjoin(
                            Constraint.inequality(shifted - line_bytes)
                        ),
                    ):
                        if conflict.count():
                            replacement.append(conflict)
                survivors = nxt
            hits.extend(survivors)
        if (
            sum(p.count() for p in replacement) + sum(p.count() for p in hits)
            != cell_count
        ):
            obs.counter("cme.regions.partition_mismatch").inc()
            return None
        for pieces, outcome in (
            (replacement, Outcome.REPLACEMENT),
            (hits, Outcome.HIT),
        ):
            for piece in pieces:
                rep = piece.representative()
                probe = (
                    self.scalar.classify(ref, rep) if rep is not None else None
                )
                if (
                    probe is None
                    or probe.outcome is not outcome
                    or not self._via_matches(probe.via, rv)
                ):
                    if probe is not None:
                        obs.counter("cme.regions.probe_mismatch").inc()
                    return None
        exact = 0
        for piece in replacement:
            cnt = piece.count()
            result.analysed += cnt
            result.replacement += cnt
            exact += 1
        for piece in hits:
            cnt = piece.count()
            result.analysed += cnt
            result.hits += cnt
            exact += 1
        return exact

    # -- decomposition ------------------------------------------------------------

    def decompose(
        self, ref: NRef
    ) -> tuple[list[RegionSpace], list[tuple[RegionSpace, int]], list[RegionSpace]]:
        """Split the RIS into disjoint ``(cold, decided, irregular)`` cells.

        ``decided`` pairs each cell with the index of the reuse vector that
        decides every one of its points — by construction the cell satisfies
        the negation of every earlier regular cold condition, so the scalar
        classifier would pick exactly that vector at any of its points.
        """
        ris = self.nprog.ris(ref.leaf)
        base = RegionSpace(ris.dims, ris.bounds, tuple(ris.guard), ())
        vectors = self.reuse.vectors_for(ref)
        conds = self._conditions(ref)
        line_bytes = self.cache.line_bytes
        a_expr = self.addr_affine(ref)
        cold: list[RegionSpace] = []
        decided: list[tuple[RegionSpace, int]] = []
        irregular: list[RegionSpace] = []
        work: list[tuple[RegionSpace, int]] = [(base, 0)]
        produced = 1
        while work:
            cell, t = work.pop()
            if cell.count() == 0:
                continue
            if t == len(vectors):
                cold.append(cell)
                continue
            kind, cons, residue = conds[t]
            if kind == _NEVER:
                work.append((cell, t + 1))
                continue
            if kind == _IRREGULAR:
                irregular.append(cell)
                continue
            prefix = cell
            pieces: list[RegionSpace] = []
            for c in cons:
                for neg in negate_constraint(c):
                    pieces.append(prefix.conjoin(neg))
                prefix = prefix.conjoin(c)
            if residue is not None:
                lo_r, hi_r = residue
                if lo_r > 0:
                    pieces.append(
                        prefix.with_residue(a_expr, line_bytes, 0, lo_r - 1)
                    )
                if hi_r < line_bytes - 1:
                    pieces.append(
                        prefix.with_residue(
                            a_expr, line_bytes, hi_r + 1, line_bytes - 1
                        )
                    )
                prefix = prefix.with_residue(a_expr, line_bytes, lo_r, hi_r)
            if prefix.count() == 0:
                # The vector decides nothing here: keep the cell whole
                # instead of fragmenting it over a vacuous condition.
                work.append((cell, t + 1))
                continue
            produced += len(pieces) + 1
            if produced > MAX_CELLS:
                obs.counter("cme.regions.cell_cap").inc()
                irregular.append(cell)
                continue
            decided.append((prefix, t))
            for piece in pieces:
                work.append((piece, t + 1))
        return cold, decided, irregular

    # -- per-reference solving ------------------------------------------------------

    @staticmethod
    def _via_matches(via: Optional[ReuseVector], rv: ReuseVector) -> bool:
        if via is rv:
            return True
        return (
            via is not None
            and via.vec == rv.vec
            and via.producer is rv.producer
            and via.consumer is rv.consumer
        )

    def _classify_cell(
        self,
        ref: NRef,
        cell: RegionSpace,
        cell_count: int,
        rv: ReuseVector,
        result: RefResult,
    ) -> tuple[int, list[tuple[int, ...]], int]:
        """Residue-split a certified decided cell and probe each class.

        Returns ``(exact_classes, fallback_points, fallback_cells)``; the
        probed outcome of one representative is extrapolated to the whole
        class only after the probe confirms it was decided by the expected
        vector (mismatches are counted and enumerated instead).
        """
        line_bytes = self.cache.line_bytes
        a_expr = self.addr_affine(ref)
        g = math.gcd(line_bytes, *a_expr.coeffs.values())
        classes: list[tuple[RegionSpace, int]] = []
        total = 0
        for r in range(a_expr.constant % g, line_bytes, g):
            cls = cell.with_residue(a_expr, line_bytes, r, r)
            cnt = cls.count()
            if cnt:
                classes.append((cls, cnt))
                total += cnt
        if total != cell_count:
            obs.counter("cme.regions.partition_mismatch").inc()
            return 0, list(cell.enumerate_points()), 1
        exact = 0
        fallback_pts: list[tuple[int, ...]] = []
        fallback_cells = 0
        for cls, cnt in classes:
            rep = cls.representative()
            probe = self.scalar.classify(ref, rep) if rep is not None else None
            if probe is None or not self._via_matches(probe.via, rv):
                if probe is not None:
                    obs.counter("cme.regions.probe_mismatch").inc()
                fallback_cells += 1
                fallback_pts.extend(cls.enumerate_points())
                continue
            result.analysed += cnt
            if probe.outcome is Outcome.REPLACEMENT:
                result.replacement += cnt
            else:
                result.hits += cnt
            exact += 1
        return exact, fallback_pts, fallback_cells

    def _classify_points(
        self, ref: NRef, points: list[tuple[int, ...]], result: RefResult
    ) -> None:
        """Exact fallback: enumerate through the classification backend."""
        tally = getattr(self.classifier, "tally_ref", None)
        if tally is not None:  # batch backend: one vectorized call
            tally(ref, result, points=points)
            return
        classify = self.classifier.classify
        for point in points:
            outcome = classify(ref, point).outcome
            result.analysed += 1
            if outcome is Outcome.COLD:
                result.cold += 1
            elif outcome is Outcome.REPLACEMENT:
                result.replacement += 1
            else:
                result.hits += 1

    def solve_ref(self, ref: NRef) -> RefResult:
        """Classify one reference regionally (the shard unit)."""
        with obs.span("cme/region_ref"):
            ris = self.nprog.ris(ref.leaf)
            population = ris.count()
            result = RefResult(ref.name(), ref.uid, population=population)
            vectors = self.reuse.vectors_for(ref)
            cold, decided, irregular = self.decompose(ref)
            cold_counts = [(c, c.count()) for c in cold]
            decided_counts = [(c, t, c.count()) for c, t in decided]
            irregular_counts = [(c, c.count()) for c in irregular]
            total = (
                sum(n for _, n in cold_counts)
                + sum(n for _, _, n in decided_counts)
                + sum(n for _, n in irregular_counts)
            )
            if total != population:
                # The cells failed to tile the RIS — never guess: classify
                # the whole space through the enumeration backend instead.
                obs.counter("cme.regions.partition_mismatch").inc()
                whole = RegionSpace(ris.dims, ris.bounds, tuple(ris.guard), ())
                cold_counts, decided_counts = [], []
                irregular_counts = [(whole, population)]
            exact_regions = 0
            fallback_cells = 0
            fallback_pts: list[tuple[int, ...]] = []
            for cell, cnt in cold_counts:
                if cnt == 0:
                    continue
                result.analysed += cnt
                result.cold += cnt
                exact_regions += 1
            for cell, t, cnt in decided_counts:
                if cnt == 0:
                    continue
                rv = vectors[t]
                if (
                    self.cache.line_bytes <= MAX_RESIDUE_MODULUS
                    and self._certified(ref, t, rv)
                ):
                    exact, pts, cells = self._classify_cell(
                        ref, cell, cnt, rv, result
                    )
                    exact_regions += exact
                    fallback_cells += cells
                    fallback_pts.extend(pts)
                    continue
                if (
                    self.cache.assoc == 1
                    and self.cache.line_bytes * self.cache.num_sets
                    <= MAX_RESIDUE_MODULUS
                ):
                    accesses = self._window_accesses(ref, t, rv)
                    pairs = (
                        self._offset_pairs(ref, accesses)
                        if accesses is not None
                        else self._crossing_pairs(ref, rv, cell)
                    )
                    if pairs is not None:
                        exact = self._classify_cell_window(
                            ref, cell, cnt, rv, pairs, result
                        )
                        if exact is not None:
                            exact_regions += exact
                            continue
                fallback_cells += 1
                fallback_pts.extend(cell.enumerate_points())
            for cell, cnt in irregular_counts:
                if cnt == 0:
                    continue
                fallback_cells += 1
                fallback_pts.extend(cell.enumerate_points())
            if fallback_pts:
                self._classify_points(ref, fallback_pts, result)
            result.check_invariants(exhaustive=True)
            obs.counter("cme.regions.exact_regions").inc(exact_regions)
            obs.counter("cme.regions.fallback_regions").inc(
                1 if fallback_pts else 0
            )
            obs.counter("cme.regions.fallback_cells").inc(fallback_cells)
            obs.counter("cme.regions.fallback_points").inc(len(fallback_pts))
            record_ref_metrics(result, self.classifier)
        return result


def region_ref_misses(
    classifier, nprog: NormalizedProgram, ref: NRef
) -> RefResult:
    """Classify one reference regionally (parallel-engine shard unit).

    Mirrors :func:`repro.cme.find.find_ref_misses`: the solver state is
    cached on the classifier, so repeated calls share decompositions.
    """
    return RegionSolver.for_classifier(classifier).solve_ref(ref)


def regional_coverage(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    reuse: ReuseTable,
) -> float:
    """Fraction of (consumer, vector) pairs solvable in closed form.

    A cheap static probe — no decomposition, no counting — used by the
    layout-optimisation searches to pick the cheapest inner solver:
    ``regions`` when the program is fully regular, ``estimate`` otherwise.
    A pair counts as covered when its cold condition is provably never
    satisfiable, or is regular *and* carries a closed-form certificate
    (replacement uniformity, or the direct-mapped static window).  1.0 for
    programs with no reuse vectors at all.
    """
    solver = RegionSolver(nprog, layout, cache, reuse)
    windowable = (
        cache.assoc == 1
        and cache.line_bytes * cache.num_sets <= MAX_RESIDUE_MODULUS
    )
    total = covered = 0
    for ref in nprog.refs:
        for t, rv in enumerate(reuse.vectors_for(ref)):
            total += 1
            kind, _, _ = solver._cold_condition(ref, rv)
            if kind == _NEVER:
                covered += 1
            elif kind == _REGULAR and (
                solver._certified(ref, t, rv)
                or (
                    windowable
                    and (
                        solver._window_accesses(ref, t, rv) is not None
                        or solver._crossing_shape(ref, rv)
                    )
                )
            ):
                covered += 1
    return 1.0 if total == 0 else covered / total


def region_misses(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    reuse: Optional[ReuseTable] = None,
    walker=None,
    refs: Optional[Iterable[NRef]] = None,
    reuse_options: Optional[ReuseOptions] = None,
    jobs: int = 1,
    memo: Optional["Memoizer"] = None,
    backend: Optional[str] = None,
) -> MissReport:
    """Classify every reference by regional decomposition (``--method regions``).

    Parameters mirror :func:`~repro.cme.find.find_misses` and the report is
    exactly equal to its (``FindMisses``) classifications — regions is an
    execution strategy, not an approximation.  ``jobs`` shards references
    across the parallel engine, ``memo`` enables content-addressed
    memoization of per-reference region solutions (keyed under the
    ``regions`` method, like point solutions), and ``backend`` selects the
    enumeration backend used for irregular fallback regions.
    """
    started = time.perf_counter()
    if reuse is None:
        reuse = build_reuse_table(nprog, cache.line_bytes, reuse_options)
    targets = list(refs) if refs is not None else list(nprog.refs)
    if jobs != 1:  # 0/negative/None mean "all CPUs" (resolved by the engine)
        from repro.parallel import solve_parallel

        return solve_parallel(
            "regions",
            nprog,
            layout,
            cache,
            reuse,
            jobs,
            refs=targets,
            memo=memo,
            backend=backend,
        )
    classifier = make_classifier(backend, nprog, layout, cache, reuse, walker)
    report = MissReport("RegionMisses", cache)
    with obs.span("cme/regions"):
        if memo is not None:
            plan = memo.session("regions", nprog, layout, cache, reuse).plan(
                targets
            )
            for ref in plan.solve:
                result = region_ref_misses(classifier, nprog, ref)
                report.results[ref.uid] = result
                plan.add(ref, result)
            report.results = plan.finish(report.results)
        else:
            for ref in targets:
                report.results[ref.uid] = region_ref_misses(
                    classifier, nprog, ref
                )
    report.elapsed_seconds = time.perf_counter() - started
    report.solver_seconds = report.elapsed_seconds
    if obs.is_enabled():
        report.metrics = obs.snapshot()
    return report
