"""Uniformly generated reference sets across multiple nests (Section 3.4).

After normalisation every loop variable at depth ``k`` is ``Ik``, so two
references — even in different nests — are *uniformly generated* exactly when
they access the same array with the same linear part ``M`` of their subscript
functions ``M·I + m``.  This generalisation is what lets the paper exploit
reuse *across* nests.

References created by inlining-time renaming (array views) have distinct
array identities, so they form their own sets — matching the paper, where a
renamed actual only preserves reuse among the references of the same callee.
"""

from __future__ import annotations

from repro.normalize.nprogram import NormalizedProgram, NRef

Matrix = tuple[tuple[int, ...], ...]


def linear_part(ref: NRef, depth: int) -> Matrix:
    """The linear part ``M`` of the subscript function (rows = dimensions)."""
    rows = []
    for sub in ref.subscripts:
        coeffs = sub.coeffs
        rows.append(tuple(coeffs.get(f"I{d}", 0) for d in range(1, depth + 1)))
    return tuple(rows)


def constant_part(ref: NRef) -> tuple[int, ...]:
    """The constant part ``m`` of the subscript function."""
    return tuple(sub.constant for sub in ref.subscripts)


def ugs_key(ref: NRef, depth: int) -> tuple:
    """The uniformly-generated-set key: same array, same linear part."""
    return (id(ref.array), linear_part(ref, depth))


def uniformly_generated_sets(nprog: NormalizedProgram) -> list[list[NRef]]:
    """Partition all references into uniformly generated sets."""
    groups: dict[tuple, list[NRef]] = {}
    for ref in nprog.refs:
        groups.setdefault(ugs_key(ref, nprog.depth), []).append(ref)
    return list(groups.values())
