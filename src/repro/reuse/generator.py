"""The reuse-vector generator (Section 3.5 of the paper).

For every ordered producer/consumer pair inside a uniformly generated set the
generator derives:

* **temporal** vectors — integer solutions of ``M·x = m_p − m_c`` (a
  particular solution plus small null-space lattice combinations, so
  self-temporal directions like ``(0, …, 0, 1)`` appear naturally as the
  null-space case with ``Δm = 0``);
* **spatial** vectors — small ``x`` with ``|Δm_lin − S·x| < Ls`` where ``S``
  is the stride-weighted subscript row.  The search enumerates solutions
  supported on at most two index dimensions, which covers both of the
  paper's spatial kinds: the intra-column family
  ``(0,0,1,−2) … (0,0,1,−(Ls−1))`` *and* the cross-column vectors of Fig. 3
  such as ``(0, 1, 0, 1−N)``.

Over-generation is harmless — the cold equations re-verify memory-line
equality at every iteration point — while *missing* vectors can only
over-estimate misses (the conservatism the paper acknowledges for guarded
group reuse).  Options exist to disable vector families for the ablation
benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields

from repro import obs
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.polyhedra.intsolve import matvec, nullspace_basis, solve_integer
from repro.iteration.position import interleave, lex_positive
from repro.reuse.ugs import constant_part, linear_part, uniformly_generated_sets
from repro.reuse.vectors import SPATIAL, TEMPORAL, ReuseVector


@dataclass(frozen=True)
class ReuseOptions:
    """Knobs for the generator (ablation studies switch families off)."""

    temporal: bool = True
    spatial: bool = True
    cross_column: bool = True  # spatial solutions supported on two dimensions
    null_combo_bound: int = 2  # lattice coefficients searched in [-b, b]
    max_null_dims: int = 3  # cap on enumerated null-space dimensions

    def signature(self) -> tuple:
        """Canonical ``(field, value)`` pairs in field-name order.

        Stable across field *declaration* reordering (unlike the frozen
        dataclass's positional hash), so serialized caches keyed on option
        signatures survive refactors that merely reorder fields.
        """
        return tuple(
            (f.name, getattr(self, f.name))
            for f in sorted(fields(self), key=lambda f: f.name)
        )


class ReuseTable:
    """All reuse vectors of a program, indexed by consumer reference."""

    def __init__(self, by_consumer: dict[int, list[ReuseVector]]):
        self._by_consumer = by_consumer

    def vectors_for(self, ref: NRef) -> list[ReuseVector]:
        """The consumer's reuse vectors, sorted in increasing ``≺``."""
        return self._by_consumer.get(ref.uid, [])

    def all_vectors(self) -> list[ReuseVector]:
        """Every vector in the table."""
        out: list[ReuseVector] = []
        for vectors in self._by_consumer.values():
            out.extend(vectors)
        return out

    def counts(self) -> dict[str, int]:
        """Summary counts: temporal/spatial × self/group."""
        counts = {
            "temporal-self": 0,
            "temporal-group": 0,
            "spatial-self": 0,
            "spatial-group": 0,
        }
        for rv in self.all_vectors():
            tag = "self" if rv.is_self else "group"
            counts[f"{rv.kind}-{tag}"] += 1
        return counts


def _depth_extents(nprog: NormalizedProgram) -> list[int]:
    """A global per-depth bound on reuse distances (iteration range sizes)."""
    lo = [None] * nprog.depth
    hi = [None] * nprog.depth
    for leaf in nprog.leaves:
        ranges = nprog.ris(leaf).var_ranges()
        for d, var in enumerate(nprog.index_vars):
            vlo, vhi = ranges[var]
            lo[d] = vlo if lo[d] is None else min(lo[d], vlo)
            hi[d] = vhi if hi[d] is None else max(hi[d], vhi)
    return [
        (h - l + 1) if l is not None and h is not None else 1
        for l, h in zip(lo, hi)
    ]


def _valid_direction(r: tuple[int, ...], rp: NRef, rc: NRef) -> bool:
    """r ≻ 0, or r = 0 with the producer lexically before the consumer."""
    if lex_positive(r):
        return True
    if any(c != 0 for c in r):
        return False
    return rp.lexpos < rc.lexpos


def _within_extents(x: tuple[int, ...], extents: list[int]) -> bool:
    return all(abs(c) < max(2, e + 1) for c, e in zip(x, extents))


def generate_pair_vectors(
    rp: NRef,
    rc: NRef,
    depth: int,
    line_bytes: int,
    extents: list[int],
    options: ReuseOptions,
) -> list[ReuseVector]:
    """All reuse vectors from producer ``rp`` to consumer ``rc``."""
    m_rows = [list(row) for row in linear_part(rc, depth)]
    delta_m = [p - c for p, c in zip(constant_part(rp), constant_part(rc))]
    label_diff = tuple(lc - lp for lc, lp in zip(rc.label, rp.label))
    out: dict[tuple[int, ...], ReuseVector] = {}

    def consider(x: tuple[int, ...], kind: str) -> None:
        if not _within_extents(x, extents):
            return
        r = interleave(label_diff, x)
        if not _valid_direction(r, rp, rc):
            return
        if r not in out:
            out[r] = ReuseVector(r, rp, rc, kind)

    # -- temporal: M x = m_p - m_c -------------------------------------------
    x0 = solve_integer(m_rows, delta_m)
    if x0 is not None:
        basis = nullspace_basis(m_rows)[: options.max_null_dims]
        b = options.null_combo_bound
        combos: list[tuple[int, ...]] = [()]
        if basis:
            combos = list(itertools.product(range(-b, b + 1), repeat=len(basis)))
        for coeffs in combos:
            x = list(x0)
            for c, vec in zip(coeffs, basis):
                for j in range(depth):
                    x[j] += c * vec[j]
            if options.temporal:
                consider(tuple(x), TEMPORAL)

    # -- spatial: |Δm_lin − S·x| < Ls ------------------------------------------
    if options.spatial:
        esize = rc.array.element_size
        le = line_bytes // esize
        if le > 1:
            strides = rc.array.strides()
            s_row = [
                sum(strides[dim] * m_rows[dim][j] for dim in range(len(m_rows)))
                for j in range(depth)
            ]
            dm_lin = sum(strides[dim] * delta_m[dim] for dim in range(len(delta_m)))
            small = max(2, le - 1)

            def spatial_consider(x: tuple[int, ...]) -> None:
                if matvec(m_rows, list(x)) == delta_m:
                    return  # exact solutions of (1) are temporal, not spatial
                consider(x, SPATIAL)

            for e in range(-(le - 1), le):
                t = dm_lin - e
                # support-1 solutions
                if t == 0:
                    spatial_consider(tuple([0] * depth))
                for d in range(depth):
                    if s_row[d] != 0 and t % s_row[d] == 0:
                        x = [0] * depth
                        x[d] = t // s_row[d]
                        spatial_consider(tuple(x))
                    elif s_row[d] == 0 and t == 0:
                        x = [0] * depth
                        x[d] = 1
                        spatial_consider(tuple(x))
                # support-2 solutions (cross-column and friends)
                if not options.cross_column:
                    continue
                for d1 in range(depth):
                    if s_row[d1] == 0:
                        continue
                    for v1 in range(-small, small + 1):
                        if v1 == 0:
                            continue
                        rem = t - s_row[d1] * v1
                        for d2 in range(depth):
                            if d2 == d1 or s_row[d2] == 0:
                                continue
                            if rem % s_row[d2] == 0:
                                x = [0] * depth
                                x[d1] = v1
                                x[d2] = rem // s_row[d2]
                                spatial_consider(tuple(x))
    return list(out.values())


def build_reuse_table(
    nprog: NormalizedProgram,
    line_bytes: int,
    options: ReuseOptions | None = None,
) -> ReuseTable:
    """Generate and sort all reuse vectors of a normalised program.

    Observability: runs under the ``reuse/build_table`` span and records
    ``reuse.ugs.count``, the ``reuse.ugs.size`` histogram and the
    ``reuse.vectors.*`` per-kind counters.
    """
    options = options if options is not None else ReuseOptions()
    with obs.span("reuse/build_table"):
        extents = _depth_extents(nprog)
        by_consumer: dict[int, list[ReuseVector]] = {
            r.uid: [] for r in nprog.refs
        }
        groups = uniformly_generated_sets(nprog)
        obs.counter("reuse.ugs.count").inc(len(groups))
        size_hist = obs.histogram("reuse.ugs.size")
        for group in groups:
            size_hist.observe(len(group))
            for rc in group:
                vectors = by_consumer[rc.uid]
                for rp in group:
                    vectors.extend(
                        generate_pair_vectors(
                            rp, rc, nprog.depth, line_bytes, extents, options
                        )
                    )
        for vectors in by_consumer.values():
            vectors.sort(key=lambda rv: rv.sort_key())
        table = ReuseTable(by_consumer)
        _record_vector_metrics(table)
    return table


def _record_vector_metrics(table: ReuseTable) -> None:
    """Bulk per-kind vector counters (no-ops while observability is off)."""
    if not obs.is_enabled():
        return
    counts = table.counts()
    for key, n in counts.items():
        obs.counter(f"reuse.vectors.{key.replace('-', '_')}").inc(n)
    obs.counter("reuse.vectors.total").inc(sum(counts.values()))
    # Cross-column spatial vectors are exactly the spatial solutions
    # supported on two or more index dimensions (Fig. 3).
    cross = sum(
        1
        for rv in table.all_vectors()
        if rv.kind == SPATIAL
        and sum(1 for c in rv.index_part() if c != 0) >= 2
    )
    obs.counter("reuse.vectors.cross_column").inc(cross)
