"""Reuse vectors for multiple nests (Section 3.5 of the paper).

A reuse vector from a producer reference ``R_p`` to a consumer ``R_c`` lives
in the 2n-dimensional iteration-vector space: it interleaves the *label
difference* ``ℓc − ℓp`` with an index-space solution ``x``:

    r = (ℓ1c−ℓ1p, x1, ℓ2c−ℓ2p, x2, …, ℓnc−ℓnp, xn),   r ⪰ 0.

Temporal vectors solve ``M·x = m_p − m_c`` exactly; spatial vectors only
need the producer and consumer *addresses* to fall within one memory line,
i.e. ``|Δm_lin − S·x| < Ls`` where ``S`` is the stride-weighted (linearised)
subscript row — a formulation that uniformly covers both of the paper's
spatial kinds: the intra-column family (eq. 2) *and* the cross-column
vectors of Fig. 3 such as ``(0, 1, 0, 1−N)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.normalize.nprogram import NRef

TEMPORAL = "temporal"
SPATIAL = "spatial"


@dataclass(frozen=True)
class ReuseVector:
    """One reuse vector from a producer reference to a consumer reference."""

    vec: tuple[int, ...]  # interleaved, length 2n
    producer: NRef
    consumer: NRef
    kind: str  # TEMPORAL or SPATIAL

    @property
    def is_self(self) -> bool:
        """Self reuse (producer and consumer are the same reference)."""
        return self.producer is self.consumer

    @property
    def is_group(self) -> bool:
        """Group reuse (distinct references)."""
        return not self.is_self

    def index_part(self) -> tuple[int, ...]:
        """The index-space components ``(x1, …, xn)``."""
        return self.vec[1::2]

    def label_part(self) -> tuple[int, ...]:
        """The label-difference components ``(ℓ1c−ℓ1p, …)``."""
        return self.vec[0::2]

    def sort_key(self) -> tuple:
        """Increasing-lex order with nearer producers first on ties.

        ``MissAnalyser`` (Fig. 6) sorts each reference's vectors in
        increasing ``≺``; for equal vectors the lexically *later* producer
        is the more recent access, so it is preferred.
        """
        return (self.vec, -self.producer.lexpos)

    def __repr__(self) -> str:
        tag = "self" if self.is_self else "group"
        return f"ReuseVector({self.vec}, {self.kind}/{tag}, p={self.producer.name()})"
