"""Reuse analysis across multiple nests (Sections 3.4–3.5 of the paper)."""

from repro.reuse.generator import (
    ReuseOptions,
    ReuseTable,
    build_reuse_table,
    generate_pair_vectors,
)
from repro.reuse.ugs import (
    constant_part,
    linear_part,
    ugs_key,
    uniformly_generated_sets,
)
from repro.reuse.vectors import SPATIAL, TEMPORAL, ReuseVector

__all__ = [
    "ReuseOptions",
    "ReuseTable",
    "build_reuse_table",
    "generate_pair_vectors",
    "constant_part",
    "linear_part",
    "ugs_key",
    "uniformly_generated_sets",
    "ReuseVector",
    "SPATIAL",
    "TEMPORAL",
]
