"""Classification of actual parameters (Section 3.6 and Table 2).

An actual parameter AP matched to a formal FP is

* **propagateable** (``P-able``) — every callee reference to FP can be
  replaced by a reference to AP, letting reuse be exploited across the call:
  FP is a scalar, or FP is a one-dimensional array, or AP and FP are arrays
  of the same dimensionality with matching sizes in all but the last
  dimension;
* **renameable** (``R-able``) — the callee references are rewritten to a
  fresh array AP' with FP's shape and AP's base address (``@AP = @AP'``),
  preserving reuse *within* the callee: the sizes of all but the last
  dimension of both are statically known (always true in this IR), and AP
  is an array or array element;
* **non-analysable** (``N-able``) — anything else (general expressions,
  data-dependent actuals).

A call is *analysable* — can be abstractly inlined — iff all its actuals are
propagateable or renameable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.nodes import (
    Actual,
    ActualArray,
    ActualElement,
    ActualExpr,
    ActualScalar,
    Call,
    Formal,
    Program,
    Subroutine,
    calls_of,
)

P_ABLE = "propagateable"
R_ABLE = "renameable"
N_ABLE = "non-analysable"


def classify_actual(actual: Actual, formal: Formal) -> str:
    """Classify one actual parameter against its matching formal."""
    if isinstance(actual, ActualExpr):
        return N_ABLE
    if formal.is_scalar:
        # Scalars (and array elements bound to scalar formals) propagate.
        return P_ABLE
    fp = formal.array
    assert fp is not None
    if isinstance(actual, ActualScalar):
        return N_ABLE  # scalar bound to an array formal is not analysable
    ap = actual.array if isinstance(actual, (ActualArray, ActualElement)) else None
    if ap is None:  # pragma: no cover - defensive
        return N_ABLE
    if fp.ndim == 1:
        return P_ABLE
    if ap.ndim == fp.ndim and ap.dims[:-1] == fp.dims[:-1]:
        return P_ABLE
    return R_ABLE


@dataclass
class CallClassification:
    """Classification of a whole CALL statement."""

    call: Call
    per_actual: list[str] = field(default_factory=list)

    @property
    def analysable(self) -> bool:
        """True iff the call can be abstractly inlined."""
        return all(c != N_ABLE for c in self.per_actual)


@dataclass
class CallStats:
    """A Table 2 row: actual-parameter and call counts for one program."""

    name: str
    p_able: int = 0
    r_able: int = 0
    n_able: int = 0
    calls_total: int = 0
    calls_analysable: int = 0

    @property
    def actuals_total(self) -> int:
        """All classified actual parameters."""
        return self.p_able + self.r_able + self.n_able

    def as_row(self) -> tuple:
        """Row in Table 2 column order."""
        return (
            self.name,
            self.p_able,
            self.r_able,
            self.n_able,
            self.calls_total,
            self.calls_analysable,
        )


def classify_call(call: Call, callee: Subroutine) -> CallClassification:
    """Classify every actual of one call site."""
    result = CallClassification(call)
    if len(call.actuals) != len(callee.formals):
        result.per_actual = [N_ABLE] * max(len(call.actuals), 1)
        return result
    for actual, formal in zip(call.actuals, callee.formals):
        result.per_actual.append(classify_actual(actual, formal))
    return result


def classify_program(program: Program) -> CallStats:
    """Compute the Table 2 statistics for one program.

    Mirrors the paper's methodology: "these statistics are obtained by
    examining only a call and its callee".
    """
    stats = CallStats(program.name)
    for sub in program.subroutines.values():
        for call in calls_of(sub.body):
            stats.calls_total += 1
            try:
                callee = program.subroutine(call.callee)
            except Exception:
                stats.n_able += max(1, len(call.actuals))
                continue
            cc = classify_call(call, callee)
            for label in cc.per_actual:
                if label == P_ABLE:
                    stats.p_able += 1
                elif label == R_ABLE:
                    stats.r_able += 1
                else:
                    stats.n_able += 1
            if cc.analysable:
                stats.calls_analysable += 1
    return stats
