"""Abstract inlining of subroutine calls (Section 3.6 of the paper)."""

from repro.inline.classify import (
    N_ABLE,
    P_ABLE,
    R_ABLE,
    CallClassification,
    CallStats,
    classify_actual,
    classify_call,
    classify_program,
)
from repro.inline.calltree import (
    CallNode,
    build_call_tree,
    frame_words,
    max_stack_words,
)
from repro.inline.abstract_inline import InlineResult, inline_program

__all__ = [
    "N_ABLE",
    "P_ABLE",
    "R_ABLE",
    "CallClassification",
    "CallStats",
    "classify_actual",
    "classify_call",
    "classify_program",
    "CallNode",
    "build_call_tree",
    "frame_words",
    "max_stack_words",
    "InlineResult",
    "inline_program",
]
