"""The static call tree (no recursion allowed, Section 3 of the paper).

Because recursive calls are outside the program model, the call graph
unrolled from the entry point is a finite tree; every call *site instance*
gets a node.  The tree provides recursion detection and the compile-time
base-pointer (BP) offsets of the run-time stack model (Fig. 4): "If SP is 0
initially, its value is known at compile time at every call site due to the
absence of recursive calls."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import RecursionError_, UnknownSubroutineError
from repro.ir.nodes import Call, Program, Subroutine, calls_of


@dataclass
class CallNode:
    """One call-site instance in the unrolled static call tree."""

    subroutine: str
    call: Optional[Call]  # None for the root (the entry subroutine)
    bp: int  # base-pointer word offset at entry to this activation
    children: list["CallNode"] = field(default_factory=list)

    def walk(self) -> Iterator["CallNode"]:
        """This node and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()


def frame_words(call: Optional[Call]) -> int:
    """Stack words an activation occupies: return address + one per actual."""
    if call is None:
        return 1
    return 1 + len(call.actuals)


def build_call_tree(program: Program, entry: str | None = None) -> CallNode:
    """Unroll the static call tree from the entry subroutine.

    Raises :class:`~repro.errors.RecursionError_` on a cyclic call chain and
    :class:`~repro.errors.UnknownSubroutineError` for a missing callee.
    """
    entry = entry if entry is not None else program.entry

    def visit(sub: Subroutine, call: Optional[Call], bp: int, path: tuple[str, ...]) -> CallNode:
        if sub.name in path:
            chain = " -> ".join(path + (sub.name,))
            raise RecursionError_(f"recursive call chain: {chain}")
        node = CallNode(sub.name, call, bp)
        child_bp = bp + frame_words(call)
        for inner in calls_of(sub.body):
            callee = program.subroutine(inner.callee)  # may raise Unknown...
            node.children.append(
                visit(callee, inner, child_bp, path + (sub.name,))
            )
        return node

    return visit(program.subroutine(entry), None, 0, ())


def max_stack_words(root: CallNode) -> int:
    """The deepest BP plus its frame — sizes the ``Stack`` array of Fig. 4."""
    deepest = 0
    for node in root.walk():
        deepest = max(deepest, node.bp + frame_words(node.call))
    return deepest
