"""Abstract inlining of CALL statements (Section 3.6, Figs. 4 and 5).

The inliner produces the information needed to analyse the inlined code
without generating compilable code:

* **propagation** — a formal matching a same-shape (or one-dimensional)
  actual is substituted directly: ``FP(f1, …, fk)`` becomes
  ``AP(f1 + a1 − 1, …, fk + ak − 1)`` where ``AP(a1, …, ak)`` is the actual's
  base element.  For a one-dimensional formal over a multi-dimensional
  actual the reference goes through a linearised view of AP's storage.
* **renaming** — otherwise a fresh :class:`~repro.ir.ArrayView` ``AP'`` with
  the formal's shape is created over AP's storage (``@AP = @AP'``), and the
  caller's element offset is folded into the *first* subscript — which is
  address-exact because the first dimension of a column-major array has
  unit stride (this reproduces ``B1(I1 + 10*(I2−1) + I3 − 1, I4, 2)`` of
  Fig. 5).
* callee loop variables are freshly renamed per call instance, so nests
  inlined several times stay well formed;
* optionally, the run-time-stack accesses of Fig. 4 are materialised as
  reads/writes of a ``STACK`` array at compile-time-known offsets.

The result is a single call-free subroutine ready for normalisation — "one
loop nest for the program", as the paper obtains for its whole programs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NonAnalysableCallError
from repro.polyhedra.affine import Affine
from repro.ir.arrays import Array, ArrayView
from repro.ir.nodes import (
    Actual,
    ActualArray,
    ActualElement,
    ActualExpr,
    ActualScalar,
    Call,
    If,
    Loop,
    Node,
    Program,
    Ref,
    Statement,
    Subroutine,
)
from repro.inline.classify import (
    N_ABLE,
    CallStats,
    classify_actual,
    classify_program,
)
from repro.inline.calltree import build_call_tree, frame_words, max_stack_words


class _Binding:
    """How references to one array formal are rewritten."""

    __slots__ = ("array", "base_subs", "first_offset")

    def __init__(self, array: Array, base_subs, first_offset: Optional[Affine]):
        self.array = array  # target array (actual or view)
        self.base_subs = base_subs  # per-dim base element (direct propagation)
        self.first_offset = first_offset  # folded offset (view bindings)

    def rewrite(self, ref: Ref) -> Ref:
        if self.first_offset is not None:
            subs = (ref.subscripts[0] + self.first_offset,) + ref.subscripts[1:]
            return ref.rebind(self.array, subs)
        subs = tuple(
            f + (a - 1) for f, a in zip(ref.subscripts, self.base_subs)
        )
        return ref.rebind(self.array, subs)


@dataclass
class InlineResult:
    """Outcome of abstractly inlining a whole program."""

    flat: Subroutine  # the single call-free body
    stats: CallStats  # Table 2 row (syntactic classification)
    inlined_instances: int = 0
    dropped_calls: int = 0
    views: list[ArrayView] = field(default_factory=list)
    stack_array: Optional[Array] = None

    @property
    def fully_analysable(self) -> bool:
        """True iff no call had to be dropped."""
        return self.dropped_calls == 0


class _Inliner:
    def __init__(self, program: Program, on_non_analysable: str, model_stack: bool):
        if on_non_analysable not in ("raise", "drop"):
            raise ValueError("on_non_analysable must be 'raise' or 'drop'")
        self.program = program
        self.on_non_analysable = on_non_analysable
        self.model_stack = model_stack
        self.result_views: list[ArrayView] = []
        self._view_counters: dict[str, itertools.count] = {}
        self._rename_counter = itertools.count(1)
        self.inlined_instances = 0
        self.dropped = 0
        self.stack: Optional[Array] = None

    # -- view bookkeeping -----------------------------------------------------

    def _fresh_view(self, root: Array, dims) -> ArrayView:
        counter = self._view_counters.setdefault(root.name, itertools.count(1))
        view = ArrayView(f"{root.name}{next(counter)}", root, dims)
        self.result_views.append(view)
        return view

    # -- actual resolution -------------------------------------------------------

    def _resolve_actual(self, actual: Actual, rename, bindings) -> Actual:
        """Rewrite an actual of a *nested* call into caller terms."""
        if isinstance(actual, (ActualScalar, ActualExpr)):
            return actual
        if isinstance(actual, ActualElement):
            subs = tuple(s.rename(rename) for s in actual.subscripts)
            binding = bindings.get(id(actual.array))
            if binding is None:
                return ActualElement(actual.array, subs)
            rewritten = binding.rewrite(Ref(actual.array, subs))
            return ActualElement(rewritten.array, rewritten.subscripts)
        assert isinstance(actual, ActualArray)
        binding = bindings.get(id(actual.array))
        if binding is None:
            return actual
        ones = tuple(Affine.const(1) for _ in range(actual.array.ndim))
        rewritten = binding.rewrite(Ref(actual.array, ones))
        if all(s == Affine.const(1) for s in rewritten.subscripts):
            return ActualArray(rewritten.array)
        return ActualElement(rewritten.array, rewritten.subscripts)

    # -- binding construction -------------------------------------------------------

    def _bind(self, actual: Actual, formal) -> Optional[_Binding]:
        """Binding for one analysable array formal (None for scalars)."""
        if formal.is_scalar:
            return None  # register-allocated: no memory accesses
        fp = formal.array
        if isinstance(actual, ActualArray):
            ap, ap_subs = actual.array, tuple(
                Affine.const(1) for _ in range(actual.array.ndim)
            )
        else:
            assert isinstance(actual, ActualElement)
            ap, ap_subs = actual.array, actual.subscripts
        kind = classify_actual(actual, formal)
        same_shape = ap.ndim == fp.ndim and ap.dims[:-1] == fp.dims[:-1]
        if kind != N_ABLE and same_shape:
            # direct propagation keeps the caller's array identity (and
            # therefore unifies uniformly generated sets across the call)
            return _Binding(ap, ap_subs, None)
        # linearised or renamed: a view over AP's storage with FP's shape,
        # with the actual's element offset folded into the first subscript.
        offset = ap.element_offset(ap_subs)
        view = self._fresh_view(ap.storage(), fp.dims)
        return _Binding(view, None, offset)

    # -- stack accesses (Fig. 4) ------------------------------------------------------

    def _ensure_stack(self, program: Program) -> Array:
        if self.stack is None:
            words = max(1, max_stack_words(build_call_tree(program)))
            self.stack = Array("STACK", (words,), element_size=4)
        return self.stack

    def _stack_pre(self, bp: int, n_actuals: int) -> Statement:
        stack = self.stack
        refs = [Ref(stack, (Affine.const(bp + 1),), True)]  # return address
        refs += [
            Ref(stack, (Affine.const(bp + 1 + i),), True)
            for i in range(1, n_actuals + 1)
        ]
        return Statement(refs, "STK+")

    def _stack_args(self, bp: int, n_actuals: int) -> Statement:
        stack = self.stack
        refs = [
            Ref(stack, (Affine.const(bp + 1 + i),), False)
            for i in range(1, n_actuals + 1)
        ]
        return Statement(refs, "STKA")

    def _stack_post(self, bp: int) -> Statement:
        return Statement([Ref(self.stack, (Affine.const(bp + 1),), False)], "STK-")

    # -- body transformation ---------------------------------------------------------

    def inline_body(
        self,
        body: list[Node],
        rename: dict[str, str],
        bindings: dict[int, _Binding],
        bp: int,
    ) -> list[Node]:
        out: list[Node] = []
        for node in body:
            if isinstance(node, Statement):
                stmt = node.rename(rename)
                refs = []
                for ref in stmt.refs:
                    binding = bindings.get(id(ref.array))
                    refs.append(binding.rewrite(ref) if binding else ref)
                out.append(Statement(refs, stmt.label))
            elif isinstance(node, Loop):
                new_var = rename.get(node.var, node.var)
                out.append(
                    Loop(
                        new_var,
                        node.lower.rename(rename),
                        node.upper.rename(rename),
                        self.inline_body(node.body, rename, bindings, bp),
                        node.step,
                    )
                )
            elif isinstance(node, If):
                out.append(
                    If(
                        node.guard.rename(rename),
                        self.inline_body(node.body, rename, bindings, bp),
                    )
                )
            elif isinstance(node, Call):
                out.extend(self.inline_call(node, rename, bindings, bp))
            else:  # pragma: no cover - defensive
                raise NonAnalysableCallError(f"unsupported node {node!r}")
        return out

    def inline_call(
        self,
        call: Call,
        rename: dict[str, str],
        bindings: dict[int, _Binding],
        bp: int,
    ) -> list[Node]:
        callee = self.program.subroutine(call.callee)
        actuals = [self._resolve_actual(a, rename, bindings) for a in call.actuals]
        if len(actuals) != len(callee.formals):
            return self._non_analysable(call, "actual/formal arity mismatch")
        labels = [classify_actual(a, f) for a, f in zip(actuals, callee.formals)]
        if any(l == N_ABLE for l in labels):
            return self._non_analysable(call, "non-analysable actual parameter")
        callee_bindings: dict[int, _Binding] = {}
        for actual, formal in zip(actuals, callee.formals):
            if formal.is_scalar:
                continue
            binding = self._bind(actual, formal)
            if binding is not None:
                callee_bindings[id(formal.array)] = binding
        # Fresh names for the callee's loop variables in this instance.
        suffix = next(self._rename_counter)
        callee_rename = {
            var: f"{var}_c{suffix}" for var in _loop_vars(callee.body)
        }
        self.inlined_instances += 1
        child_bp = bp + frame_words(call)
        spliced = self.inline_body(
            callee.body, callee_rename, callee_bindings, child_bp
        )
        if self.model_stack:
            self._ensure_stack(self.program)
            n = len(call.actuals)
            pre = [self._stack_pre(bp, n)]
            if n:
                pre.append(self._stack_args(bp, n))
            return pre + spliced + [self._stack_post(bp)]
        return spliced

    def _non_analysable(self, call: Call, why: str) -> list[Node]:
        if self.on_non_analysable == "raise":
            raise NonAnalysableCallError(f"CALL {call.callee}: {why}")
        self.dropped += 1
        return []


def _loop_vars(body: list[Node]) -> set[str]:
    names: set[str] = set()
    for node in body:
        if isinstance(node, Loop):
            names.add(node.var)
            names |= _loop_vars(node.body)
        elif isinstance(node, If):
            names |= _loop_vars(node.body)
    return names


def inline_program(
    program: Program,
    entry: Optional[str] = None,
    on_non_analysable: str = "raise",
    model_stack: bool = False,
) -> InlineResult:
    """Abstractly inline every call reachable from the entry subroutine.

    Returns an :class:`InlineResult` whose ``flat`` subroutine is call-free
    and ready for :func:`~repro.normalize.normalize`.  ``model_stack=True``
    adds the Fig. 4 run-time-stack accesses (a ``STACK`` array reference
    stream at compile-time-known offsets).
    """
    entry = entry if entry is not None else program.entry
    build_call_tree(program, entry)  # validates: no recursion, callees known
    inliner = _Inliner(program, on_non_analysable, model_stack)
    main = program.subroutine(entry)
    flat = Subroutine(f"{main.name}_inlined")
    flat.body = inliner.inline_body(main.body, {}, {}, 0)
    return InlineResult(
        flat=flat,
        stats=classify_program(program),
        inlined_instances=inliner.inlined_instances,
        dropped_calls=inliner.dropped,
        views=inliner.result_views,
        stack_array=inliner.stack,
    )
