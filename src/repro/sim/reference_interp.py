"""A reference interpreter for the *raw* (pre-normalisation) IR.

Executes a call-free subroutine body directly — loops with arbitrary
strides, IF nodes, statements — and yields the byte address of every memory
access in FORTRAN execution order.  It shares the memory layout with the
normalised pipeline but none of its machinery, which makes it an
independent oracle for the central semantic property of Section 3.1:

    loop-nest normalisation preserves the program's access trace.

Tests compare this interpreter's trace on the original body against the
compiled walker's trace on the normalised program; agreement means the
five rewrite steps (stride normalisation, guard flattening, sinking,
padding, renaming) changed the *representation* but not the *behaviour*.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

from repro.errors import NonAnalysableError
from repro.ir.nodes import Call, If, Loop, Node, Statement, Subroutine
from repro.layout.memory import MemoryLayout


def _loop_values(lower: int, upper: int, step: int) -> range:
    """FORTRAN DO semantics: iterate while (upper − var)·sign(step) ≥ 0."""
    if step > 0:
        return range(lower, upper + 1, step)
    return range(lower, upper - 1, step)


def interpret_accesses(
    source: Union[Subroutine, Sequence[Node]],
    layout: MemoryLayout,
) -> Iterator[tuple[str, int]]:
    """Yield ``(array_name, byte_address)`` for every access, in order."""
    body = source.body if isinstance(source, Subroutine) else source
    env: dict[str, int] = {}

    def run(nodes: Sequence[Node]) -> Iterator[tuple[str, int]]:
        for node in nodes:
            if isinstance(node, Statement):
                for ref in node.refs:
                    array = ref.array
                    offset = array.element_offset(ref.subscripts).evaluate(env)
                    yield (
                        array.storage().name,
                        layout.base_of(array) + array.element_size * offset,
                    )
            elif isinstance(node, Loop):
                lower = node.lower.evaluate(env)
                upper = node.upper.evaluate(env)
                saved = env.get(node.var)
                for value in _loop_values(lower, upper, node.step):
                    env[node.var] = value
                    yield from run(node.body)
                if saved is None:
                    env.pop(node.var, None)
                else:
                    env[node.var] = saved
            elif isinstance(node, If):
                if node.guard.satisfied(env):
                    yield from run(node.body)
            elif isinstance(node, Call):
                raise NonAnalysableError(
                    "the reference interpreter needs a call-free body; "
                    "run abstract inlining first"
                )
            else:  # pragma: no cover - defensive
                raise NonAnalysableError(f"unsupported node {node!r}")

    yield from run(body)


def reference_trace(
    source: Union[Subroutine, Sequence[Node]], layout: MemoryLayout
) -> list[int]:
    """The full byte-address trace of a raw body."""
    return [addr for _, addr in interpret_accesses(source, layout)]
