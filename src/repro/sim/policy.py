"""Pluggable cache replacement policies (the cache-model zoo).

The paper fixes a ``k``-way LRU cache; this module generalises the
simulator to a *policy framework* so the classic sweep questions — hit
rate versus associativity, size and replacement policy — can be asked of
every kernel in the zoo.  Four policies are provided:

``lru``
    Least-recently-used: the paper's model, and the only *stack
    algorithm* of the four — its miss decision has the closed stack-
    distance form the vectorized kernel of :mod:`repro.sim.batch`
    exploits, and it satisfies the **inclusion property** (misses are
    monotonically non-increasing in associativity at fixed set count).
``fifo``
    First-in-first-out: eviction order is *insertion* order; hits do not
    refresh a line.  Not a stack algorithm — it exhibits Belady's
    anomaly (more ways can mean more misses), which the differential
    suite pins with the classic counterexample.
``plru``
    Tree pseudo-LRU: the hardware-practical LRU approximation.  Each set
    keeps ``k - 1`` direction bits arranged as a complete binary tree
    over the ``k`` ways; an access flips the bits on its root-to-leaf
    path *away* from the accessed way, and the victim is found by
    *following* the bits from the root.  Requires a power-of-two
    associativity (the tree must be complete).
``random``
    Seeded random replacement: the victim way is drawn from a
    counter-based splitmix64 mix of ``(seed, set index, eviction
    count)`` — a pure function, so runs are deterministic for a fixed
    seed across backends, processes and job counts (no RNG stream to
    consume out of order).  The probabilistic analytical twin lives in
    :func:`repro.baselines.probabilistic.probabilistic_misses` with
    ``policy="random"``.

Every policy is exercised through two interchangeable engines — the
scalar per-access state machines below and the run-compressed vectorized
set kernel of :func:`repro.sim.batch.policy_miss_kernel` — which the
per-policy differential matrix asserts are **bit-identical** over the
210-case random-program families.

All four set machines share one behavioural invariant the vectorized
run compression relies on: *immediately re-accessing the line just
accessed is a hit and leaves the set state unchanged* (LRU/PLRU updates
are idempotent on the MRU line; FIFO and random do nothing on hits).
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.errors import ReproError
from repro.layout.cache import CacheConfig

#: The selectable replacement policies.
POLICIES = ("lru", "fifo", "plru", "random")

#: What ``policy=None`` / ``"auto"`` resolve to (the paper's model).
DEFAULT_POLICY = "lru"

_MASK64 = (1 << 64) - 1


def resolve_policy(policy: Optional[str] = None) -> str:
    """Normalise a policy request to one of :data:`POLICIES`.

    ``None`` and ``"auto"`` mean :data:`DEFAULT_POLICY`; unknown names
    raise :class:`~repro.errors.ReproError`.
    """
    if policy is None or policy == "auto":
        return DEFAULT_POLICY
    if policy not in POLICIES:
        raise ReproError(
            f"unknown replacement policy {policy!r}; "
            f"choose one of {', '.join(POLICIES)}"
        )
    return policy


def check_policy_geometry(policy: str, cache: CacheConfig) -> None:
    """Reject policy/geometry pairs the policy cannot express.

    Tree-PLRU needs a *complete* binary tree over the ways, so its
    associativity must be a power of two.
    """
    if policy == "plru" and cache.assoc & (cache.assoc - 1):
        raise ReproError(
            f"tree-PLRU needs a power-of-two associativity, "
            f"got {cache.assoc}"
        )


def count_policy_run(policy: str) -> None:
    """Bump the per-policy simulation counter (``sim.policy.<name>``)."""
    obs.counter("sim.policy." + policy).inc()


def mix_victim(seed: int, set_index: int, evictions: int, assoc: int) -> int:
    """The random policy's victim way — a pure counter-based function.

    A splitmix64-style finaliser over ``(seed, set index, per-set
    eviction count)``.  Because the choice never consumes a shared RNG
    stream, it is independent of access interleaving across sets: the
    scalar walker (which visits sets in trace order) and the vectorized
    kernel (which replays one set at a time) draw identical victims, and
    fixed seeds reproduce across processes and ``--jobs`` values.
    """
    x = (
        seed * 0x9E3779B97F4A7C15
        + set_index * 0xBF58476D1CE4E5B9
        + evictions * 0x94D049BB133111EB
        + 0xD1B54A32D192ED03
    ) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x % assoc


# -- per-set state machines -----------------------------------------------------------
#
# Each machine exposes ``access(line) -> bool`` (True on hit) and an
# ``evictions`` tally of resident lines displaced.  Machines are created
# per cache set; the random machine also needs its global set index so
# the victim mix matches between engines.


class LRUSet:
    """LRU stack as an insertion-ordered dict (first key = LRU)."""

    __slots__ = ("assoc", "lines", "evictions")

    def __init__(self, assoc: int, set_index: int = 0, seed: int = 0):
        self.assoc = assoc
        self.lines: dict[int, None] = {}
        self.evictions = 0

    def access(self, line: int) -> bool:
        lines = self.lines
        if line in lines:
            del lines[line]
            lines[line] = None
            return True
        if len(lines) >= self.assoc:
            del lines[next(iter(lines))]
            self.evictions += 1
        lines[line] = None
        return False


class FIFOSet:
    """FIFO queue as an insertion-ordered dict; hits do not refresh."""

    __slots__ = ("assoc", "lines", "evictions")

    def __init__(self, assoc: int, set_index: int = 0, seed: int = 0):
        self.assoc = assoc
        self.lines: dict[int, None] = {}
        self.evictions = 0

    def access(self, line: int) -> bool:
        lines = self.lines
        if line in lines:
            return True
        if len(lines) >= self.assoc:
            del lines[next(iter(lines))]
            self.evictions += 1
        lines[line] = None
        return False


class PLRUSet:
    """Tree pseudo-LRU over ``k`` ways (``k`` a power of two).

    The ``k - 1`` internal nodes of a complete binary tree are packed
    into one integer, heap-ordered (node ``i`` has children ``2i + 1``
    and ``2i + 2``; the leaves below are the ways in order).  Bit ``i``
    names the subtree holding the *next victim*: ``0`` = left, ``1`` =
    right.  Accessing way ``w`` sets every bit on its path to point at
    the sibling subtree; the victim walk simply follows the bits.

    For ``k = 2`` this *is* LRU; for ``k ≥ 4`` it only approximates it
    (the pinned divergence test shows a sequence where PLRU evicts a
    non-LRU line).  ``state()``/``restore()`` round-trip the complete
    per-set state — the encoding is a documented part of the format.
    """

    __slots__ = ("assoc", "ways", "index", "bits", "evictions", "_levels")

    def __init__(self, assoc: int, set_index: int = 0, seed: int = 0):
        if assoc & (assoc - 1):
            raise ReproError(
                f"tree-PLRU needs a power-of-two associativity, got {assoc}"
            )
        self.assoc = assoc
        self.ways: list[Optional[int]] = [None] * assoc
        self.index: dict[int, int] = {}  # line -> way
        self.bits = 0
        self.evictions = 0
        self._levels = assoc.bit_length() - 1  # log2(assoc)

    def _touch(self, way: int) -> None:
        """Point every bit on ``way``'s path away from it."""
        node = 0
        span = self.assoc
        lo = 0
        for _ in range(self._levels):
            span //= 2
            if way < lo + span:  # way is in the left subtree
                self.bits |= 1 << node  # next victim on the right
                node = 2 * node + 1
            else:
                self.bits &= ~(1 << node)  # next victim on the left
                node = 2 * node + 2
                lo += span

    def _victim(self) -> int:
        """Follow the bits from the root to the victim way."""
        node = 0
        span = self.assoc
        lo = 0
        for _ in range(self._levels):
            span //= 2
            if (self.bits >> node) & 1:  # victim on the right
                node = 2 * node + 2
                lo += span
            else:
                node = 2 * node + 1
        return lo

    def access(self, line: int) -> bool:
        way = self.index.get(line)
        if way is not None:
            self._touch(way)
            return True
        # Cold fill into the lowest empty way before any replacement.
        if None in self.ways:
            way = self.ways.index(None)
        else:
            way = self._victim()
            del self.index[self.ways[way]]
            self.evictions += 1
        self.ways[way] = line
        self.index[line] = way
        self._touch(way)
        return False

    def state(self) -> tuple:
        """The complete set state: ``(resident ways tuple, tree bits)``."""
        return tuple(self.ways), self.bits

    def restore(self, state: tuple) -> None:
        """Rebuild the machine from a :meth:`state` snapshot."""
        ways, bits = state
        if len(ways) != self.assoc:
            raise ReproError(
                f"PLRU state holds {len(ways)} ways, set has {self.assoc}"
            )
        self.ways = list(ways)
        self.bits = bits
        self.index = {
            line: way for way, line in enumerate(ways) if line is not None
        }


class RandomSet:
    """Seeded random replacement with a counter-based victim draw."""

    __slots__ = ("assoc", "ways", "index", "evictions", "set_index", "seed")

    def __init__(self, assoc: int, set_index: int = 0, seed: int = 0):
        self.assoc = assoc
        self.ways: list[Optional[int]] = [None] * assoc
        self.index: dict[int, int] = {}
        self.evictions = 0
        self.set_index = set_index
        self.seed = seed

    def access(self, line: int) -> bool:
        if line in self.index:
            return True
        if None in self.ways:
            way = self.ways.index(None)
        else:
            way = mix_victim(
                self.seed, self.set_index, self.evictions, self.assoc
            )
            del self.index[self.ways[way]]
            self.evictions += 1
        self.ways[way] = line
        self.index[line] = way
        return False


SET_MACHINES = {
    "lru": LRUSet,
    "fifo": FIFOSet,
    "plru": PLRUSet,
    "random": RandomSet,
}


class PolicyCache:
    """A set-associative cache under any registered replacement policy.

    The policy-generic twin of
    :class:`~repro.sim.cache.SetAssocLRUCache` (which stays the LRU fast
    path): one per-set state machine per cache set, ``access_line`` /
    ``access_address`` compatible.  A fully-associative configuration
    (``num_sets == 1``) holds exactly one machine.
    """

    __slots__ = ("config", "policy", "seed", "_sets", "_num_sets", "_line_bytes")

    def __init__(self, config: CacheConfig, policy: str = "lru", seed: int = 0):
        self.config = config
        self.policy = resolve_policy(policy)
        check_policy_geometry(self.policy, config)
        self.seed = seed
        self._num_sets = config.num_sets
        self._line_bytes = config.line_bytes
        machine = SET_MACHINES[self.policy]
        assoc = config.assoc
        self._sets = [
            machine(assoc, set_index=s, seed=seed)
            for s in range(self._num_sets)
        ]

    @property
    def evictions(self) -> int:
        """Lines displaced by replacement so far (``sim.evictions``)."""
        return sum(s.evictions for s in self._sets)

    def access_line(self, line: int) -> bool:
        """Touch a memory line; returns True on a hit."""
        return self._sets[line % self._num_sets].access(line)

    def access_address(self, address: int) -> bool:
        """Touch the line containing a byte address; returns True on a hit."""
        return self.access_line(address // self._line_bytes)

    def resident_lines(self) -> set[int]:
        """The set of memory lines currently cached (for tests)."""
        lines: set[int] = set()
        for s in self._sets:
            lines.update(s.index if hasattr(s, "index") else s.lines)
        return lines


def make_cache(config: CacheConfig, policy: Optional[str] = None, seed: int = 0):
    """Build the scalar cache state machine for a policy.

    LRU returns the dict-based :class:`~repro.sim.cache.SetAssocLRUCache`
    (the tuned original — :class:`PolicyCache` with ``"lru"`` is
    bit-identical but a little slower); every other policy returns a
    :class:`PolicyCache`.
    """
    policy = resolve_policy(policy)
    if policy == "lru":
        from repro.sim.cache import SetAssocLRUCache

        return SetAssocLRUCache(config)
    return PolicyCache(config, policy, seed)
