"""Vectorized trace simulation: NumPy LRU via stack distances.

The scalar simulator walks the program access by access and mutates a
per-set LRU dict — exact, but ~600 ns per access in CPython, which made
simulation the slowest phase of every differential sweep once the
classification backend was vectorized.  This module replaces the *walk*
with array construction and the *LRU state machine* with a closed-form
property of LRU caches:

    An access to line ``L`` in set ``s`` **hits** a ``k``-way set iff
    fewer than ``k`` distinct lines of ``s`` were accessed since the
    previous access to ``L`` (its *stack distance* is below ``k``);
    a cold access (no previous access) always misses.

That property needs no temporal state, so misses can be decided for all
accesses at once:

1. **Trace build** — materialise the whole access stream as
   ``(ref_uid, address)`` arrays in execution order.  Guard-free nests
   with constant bounds (every Table 6 program) get a *rectangular fast
   path*: each access's global time index is an affine function of the
   iteration vector, so addresses and times are built by broadcasting —
   no per-point matrices.  Guarded or non-rectangular programs fall back
   to a per-leaf polyhedral enumeration plus one lexicographic sort over
   ``(iteration vector, lexical position)`` keys — the same order
   :func:`~repro.sim.trace.naive_trace` sorts by.
2. **Per-set grouping** — mask/modulo set decomposition, then one stable
   argsort over set indices concatenates each set's stream into a
   contiguous segment (stable ⇒ time order is preserved inside a
   segment).
3. **Run compression** — adjacent same-line accesses always hit (for any
   ``k ≥ 1``), so each segment is compressed to its *runs* of equal
   lines; only run heads can miss, and in run space adjacent values
   always differ.
4. **Stack-distance kernel** — specialised per associativity: ``k = 1``
   misses exactly at run heads; ``k = 2`` hits iff the head revisits the
   line of two runs ago within the segment (the set then holds exactly
   the two most-recent distinct lines); ``k ≥ 3`` finds each run's
   previous same-line run with one stable sort, short-circuits windows
   narrower than ``k``, and counts distinct lines in the remaining
   windows by *first-occurrence counting* — a run is the first of its
   line inside a window iff its previous same-line run lies before the
   window — over escalating window prefixes.
5. **Tally** — per-reference access/miss counts are two ``bincount``\\ s
   over the uid stream; evictions are recovered without simulation as
   ``misses - Σ_s min(k, distinct_lines(s))`` (every miss inserts a
   line; each set retains its last ``min(k, distinct)`` of them).

The result is **bit-identical** to :class:`~repro.sim.cache.SetAssocLRUCache`
per-reference tallies (the 210-case differential suite asserts it), at
10-30× the speed on the Table 6 programs.

Two extensions share stages 1-3:

* **Fully-associative fast path** — with ``num_sets == 1`` the whole
  stream *is* one set segment, so the set decomposition and the stable
  argsort (the kernel's costliest stage) are skipped outright and the
  stream is run-compressed in place (counted under
  ``sim.policy.fa_fastpath``; the Gysi et al. observation from
  PAPERS.md).
* **Non-LRU policies** — only LRU is a stack algorithm, so FIFO, PLRU
  and random have no closed miss form (Belady's anomaly).
  :func:`policy_miss_kernel` keeps the vectorized trace build, set
  decomposition and run compression — valid for *every* policy here
  because immediately re-accessing the just-touched line always hits
  without changing set state — and replays only the run heads (usually a
  small fraction of the trace) through the exact scalar set machines of
  :mod:`repro.sim.policy`, one set at a time.  Bit-identity with the
  scalar walker is then by construction, and the differential matrix
  asserts it per policy anyway.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import AnalysisError, InvariantError
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.iteration.walker import Walker
from repro.polyhedra.batch import enumerate_points_array
from repro.sim.policy import SET_MACHINES, count_policy_run
from repro.sim.simulator import HierarchyReport, SimReport

#: Hard budget on materialised trace length: past this the arrays stop
#: fitting comfortably in memory and the scalar walk is used instead.
MAX_TRACE_ACCESSES = 50_000_000


class TraceTooLargeError(AnalysisError):
    """The access trace exceeds :data:`MAX_TRACE_ACCESSES`.

    :func:`repro.sim.simulate` catches this and degrades to the scalar
    walker, which streams accesses without materialising them.
    """


# -- trace construction ---------------------------------------------------------------


def _rect_plan(nprog: NormalizedProgram):
    """Affine time-index plans for guard-free constant-bound programs.

    When every leaf is guard-free and every loop bound is a constant, the
    global time index of an access is affine in its iteration vector:
    ``t = base + Σ_d (i_d - lo_d)·stride_d + lexpos`` where a loop's
    stride is the number of accesses in one of its iterations.  Returns
    ``(plans, total)`` mapping ``id(leaf)`` to
    ``(strides, bounds, base)``, or ``(None, None)`` when any construct
    breaks the affine form (the general path takes over).
    """
    plans: dict = {}

    def const_bounds(loop):
        lo, hi = loop.lower, loop.upper
        if lo.variables() or hi.variables():
            return None
        return int(lo.constant), int(hi.constant)

    def size_of(loop):
        """``(accesses in the whole loop, accesses in one iteration)``."""
        b = const_bounds(loop)
        if b is None:
            return None
        lo, hi = b
        iters = max(hi - lo + 1, 0)
        if loop.leaves:
            for leaf in loop.leaves:
                if len(leaf.guard) > 0:
                    return None
            per_iter = sum(len(l.refs) for l in loop.leaves)
            return iters * per_iter, per_iter
        per_iter = 0
        for child in loop.loops:
            s = size_of(child)
            if s is None:
                return None
            per_iter += s[0]
        return iters * per_iter, per_iter

    strides: list = []
    bounds: list = []

    def assign(loop, base):
        lo, hi = const_bounds(loop)
        _, per_iter = size_of(loop)
        strides.append(per_iter)
        bounds.append((lo, hi))
        base -= lo * per_iter
        if loop.leaves:
            lex = 0
            for leaf in loop.leaves:
                plans[id(leaf)] = (list(strides), list(bounds), base + lex)
                lex += len(leaf.refs)
        else:
            off = 0
            for child in loop.loops:
                assign(child, base + off)
                off += size_of(child)[0]
        strides.pop()
        bounds.pop()

    total = 0
    sizes = []
    for root in nprog.roots:
        s = size_of(root)
        if s is None:
            return None, None
        sizes.append(s[0])
        total += s[0]
    base = 0
    for root, size in zip(nprog.roots, sizes):
        assign(root, base)
        base += size
    return plans, total


def _rect_trace(nprog: NormalizedProgram, walker: Walker, plans, total):
    """Broadcast-build the trace of a rectangular program (no sorting)."""
    addrs_t = np.empty(total, dtype=np.int64)
    uids_t = np.empty(total, dtype=np.uint32)
    for leaf in nprog.leaves:
        strides, bds, base = plans[id(leaf)]
        depth = len(strides)
        nref = len(leaf.refs)
        coeffs = np.zeros((depth, nref), dtype=np.int64)
        consts = np.zeros(nref, dtype=np.int64)
        uids = np.zeros(nref, dtype=np.uint32)
        for j, ref in enumerate(leaf.refs):
            ca = walker.compiled_ref(ref).addr
            for d, coeff in ca.terms:
                coeffs[d, j] = coeff
            consts[j] = ca.const
            uids[j] = ref.uid
        shape = tuple(hi - lo + 1 for lo, hi in bds)
        if 0 in shape:
            continue
        # Address grid: a broadcast sum of one outer product per loop
        # dimension (values × per-ref coefficients), references on the
        # trailing axis; the time grid broadcasts the same way with the
        # per-dimension strides.
        addr = consts.copy()
        tgrid = np.int64(base)
        for d, (lo, hi) in enumerate(bds):
            values = np.arange(lo, hi + 1, dtype=np.int64)
            term = np.multiply.outer(values, coeffs[d])
            sh = (1,) * d + (shape[d],) + (1,) * (depth - 1 - d)
            addr = addr + term.reshape(sh + (nref,))
            tgrid = tgrid + (values * strides[d]).reshape(sh)
        t = (tgrid[..., None] + np.arange(nref)).ravel()
        addrs_t[t] = addr.ravel()
        uids_t[t] = np.broadcast_to(uids, addr.shape).ravel()
    return uids_t, addrs_t


def _general_trace(nprog: NormalizedProgram, walker: Walker):
    """Per-leaf polyhedral enumeration plus one global lexicographic sort.

    Handles guards and affine-dependent bounds; the sort keys are exactly
    :func:`~repro.iteration.position.interleave`'s
    ``(ℓ1, i1, …, ℓn, in, lexpos)`` columns, so the resulting order equals
    the walker's (and :func:`~repro.sim.trace.naive_trace`'s).
    """
    n = nprog.depth
    col_blocks = []
    uid_blocks = []
    addr_blocks = []
    for leaf in nprog.leaves:
        nref = len(leaf.refs)
        if nref == 0:
            continue
        pts = enumerate_points_array(nprog.ris(leaf))
        npts = len(pts)
        if npts == 0:
            continue
        addr = np.empty((npts, nref), dtype=np.int64)
        for j, ref in enumerate(leaf.refs):
            ca = walker.compiled_ref(ref).addr
            col = np.full(npts, ca.const, dtype=np.int64)
            for d, coeff in ca.terms:
                col += coeff * pts[:, d]
            addr[:, j] = col
        cols = np.empty((npts * nref, 2 * n + 1), dtype=np.int64)
        for d in range(n):
            cols[:, 2 * d] = leaf.label[d]
            cols[:, 2 * d + 1] = np.repeat(pts[:, d], nref)
        lexpos = np.fromiter(
            (ref.lexpos for ref in leaf.refs), dtype=np.int64, count=nref
        )
        cols[:, 2 * n] = np.tile(lexpos, npts)
        col_blocks.append(cols)
        uid_blocks.append(
            np.tile(
                np.fromiter((r.uid for r in leaf.refs), np.uint32, count=nref),
                npts,
            )
        )
        addr_blocks.append(addr.ravel())
    if not col_blocks:
        return (
            np.empty(0, dtype=np.uint32),
            np.empty(0, dtype=np.int64),
        )
    cols = np.concatenate(col_blocks)
    uids = np.concatenate(uid_blocks)
    addrs = np.concatenate(addr_blocks)
    # np.lexsort treats its *last* key as primary: feed columns reversed.
    order = np.lexsort(tuple(cols[:, c] for c in range(2 * n, -1, -1)))
    return uids[order], addrs[order]


def trace_arrays(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    walker: Optional[Walker] = None,
) -> Tuple["np.ndarray", "np.ndarray"]:
    """The full access trace as ``(uids, addresses)`` arrays.

    Execution-ordered and identical, pair for pair, to
    :func:`~repro.sim.trace.collect_walker_trace`.  Raises
    :class:`TraceTooLargeError` past :data:`MAX_TRACE_ACCESSES`.
    """
    walker = walker if walker is not None else Walker(nprog, layout)
    plans, total = _rect_plan(nprog)
    if plans is None:
        total = sum(
            nprog.ris(leaf).count() * len(leaf.refs) for leaf in nprog.leaves
        )
    if total > MAX_TRACE_ACCESSES:
        raise TraceTooLargeError(
            f"trace of {total} accesses exceeds the "
            f"{MAX_TRACE_ACCESSES}-access materialisation budget"
        )
    if plans is not None:
        return _rect_trace(nprog, walker, plans, total)
    return _general_trace(nprog, walker)


# -- the stack-distance kernel --------------------------------------------------------


def lines_of(addrs: "np.ndarray", line_bytes: int) -> "np.ndarray":
    """Byte addresses → memory line numbers (shift when a power of two)."""
    if line_bytes & (line_bytes - 1) == 0:
        return addrs >> (line_bytes.bit_length() - 1)
    return addrs // line_bytes


def _narrow_lines(lines_t: "np.ndarray") -> "np.ndarray":
    """Narrow lines to 4 bytes when they fit: every gather and compare in
    the kernel then moves half the memory.  (Negative lines cannot occur
    for layout addresses; external traces that overflow keep int64.)"""
    if (
        len(lines_t)
        and lines_t.dtype.itemsize > 4
        and int(lines_t.max()) < 1 << 31
        and int(lines_t.min()) >= 0
    ):
        return lines_t.astype(np.int32)
    return lines_t


def _set_decompose(lines_t: "np.ndarray", num_sets: int):
    """Group a line stream into contiguous per-set segments.

    Returns ``(by_set, ls, counts)``: the stable argsort permutation (or
    ``None``), the set-major line stream, and per-set access counts.  A
    fully-associative cache (``num_sets == 1``) takes the fast path: the
    stream already *is* the one set's segment in time order, so the
    modulo decomposition and the stable argsort — the costliest stage of
    the kernel — are skipped entirely (``sim.policy.fa_fastpath``).
    """
    total = len(lines_t)
    if num_sets == 1:
        obs.counter("sim.policy.fa_fastpath").inc()
        return None, lines_t, np.array([total])
    if num_sets & (num_sets - 1) == 0:
        sets_t = lines_t & (num_sets - 1)
    else:
        sets_t = lines_t % num_sets
    if num_sets <= 1 << 16:
        sets_t = sets_t.astype(np.uint16)
    by_set = np.argsort(sets_t, kind="stable")
    return by_set, lines_t[by_set], np.bincount(sets_t, minlength=num_sets)


def _probe_windows(prev_run, lo, width, cand, assoc, miss_run):
    """Settle candidate runs by counting distinct lines in their windows.

    ``cand`` indexes runs whose reuse window (the runs strictly between a
    run and its previous same-line run) holds at least ``assoc`` runs, so
    the distinct-line count decides hit or miss.  A window run is the
    *first occurrence* of its line inside the window iff its own previous
    same-line run lies before the window, so the distinct count of any
    window prefix is a sum of ``prev_run < lo`` tests — monotone in the
    prefix, hence the escalating prefix widths: almost every window
    accumulates ``assoc`` distinct lines within a few dozen runs.
    """
    nrun = len(prev_run)
    rem = cand
    for cap in (8, 32, 256):
        if not len(rem):
            return
        wid = min(int(width[rem].max()), cap)
        offs = np.arange(wid, dtype=prev_run.dtype)
        low = lo[rem]
        idx = low[:, None] + offs[None, :]
        valid = offs[None, :] < width[rem][:, None]
        np.minimum(idx, nrun - 1, out=idx)
        first = (prev_run[idx] < low[:, None]) & valid
        distinct = first.sum(axis=1)
        is_miss = distinct >= assoc
        miss_run[rem] = is_miss
        rem = rem[~(is_miss | (width[rem] <= wid))]
    # Exceptionally wide, low-diversity windows: exact per-query count.
    for q in rem:
        lo_q = lo[q]
        miss_run[q] = int(np.count_nonzero(prev_run[lo_q:q] < lo_q)) >= assoc


def lru_miss_kernel(
    lines_t: "np.ndarray",
    num_sets: int,
    assoc: int,
    want_evictions: bool = False,
) -> Tuple["np.ndarray", Optional[int]]:
    """Miss flags for a line stream through a ``num_sets``×``assoc`` cache.

    Returns ``(miss_t, evictions)`` with ``miss_t[i]`` True iff access
    ``i`` misses; ``evictions`` is ``None`` unless ``want_evictions``.
    Bit-identical to replaying the stream through
    :class:`~repro.sim.cache.SetAssocLRUCache`.
    """
    total = len(lines_t)
    lines_t = _narrow_lines(lines_t)
    by_set, ls, counts = _set_decompose(lines_t, num_sets)
    seg_start = np.zeros(total, dtype=bool)
    starts = np.cumsum(counts) - counts
    seg_start[starts[counts > 0]] = True
    is_head = seg_start.copy()
    if total:
        is_head[1:] |= ls[1:] != ls[:-1]
        is_head[0] = True

    evictions: Optional[int] = None
    if assoc == 1:
        # Direct mapped: every run head misses (the set holds one line).
        miss_s = is_head
        if want_evictions:
            retained = int((counts > 0).sum())
            evictions = int(miss_s.sum()) - retained
    else:
        miss_s = np.zeros(total, dtype=bool)
        head_pos = np.flatnonzero(is_head)
        run_line = ls[head_pos]
        run_is_seg_start = seg_start[head_pos]
        nrun = len(head_pos)
        if assoc == 2:
            # In run space adjacent lines always differ, so a 2-way set
            # holds exactly the last two distinct lines: a run head hits
            # iff it matches the line of two runs ago, both predecessor
            # runs lying in the same segment.
            hit = np.zeros(nrun, dtype=bool)
            hit[2:] = (
                (run_line[2:] == run_line[:-2])
                & ~run_is_seg_start[2:]
                & ~run_is_seg_start[1:-1]
            )
            miss_run = ~hit
            prev_run = None
        else:
            # Previous same-line run via one stable sort: equal lines end
            # up adjacent, still in time order.  Radix passes scale with
            # key width, so sort the narrowest dtype the lines fit.
            sort_key = run_line
            if nrun and int(run_line.min()) >= 0:
                top = int(run_line.max())
                if run_line.dtype.itemsize > 2 and top < 1 << 16:
                    sort_key = run_line.astype(np.uint16)
                elif run_line.dtype.itemsize > 4 and top < 1 << 32:
                    sort_key = run_line.astype(np.uint32)
            order = np.argsort(sort_key, kind="stable")
            sorted_lines = run_line[order]
            same = sorted_lines[1:] == sorted_lines[:-1]
            prev_run = np.full(nrun, -1, dtype=np.int32)
            prev_run[order[1:][same]] = order[:-1][same]
            # Lines are set-disjoint, so a same-line predecessor is always
            # in the same segment; -1 marks cold runs.
            ridx = np.arange(nrun, dtype=np.int32)
            width = ridx - prev_run - 1
            have = prev_run >= 0
            miss_run = np.ones(nrun, dtype=bool)
            miss_run[have & (width <= assoc - 1)] = False
            cand = np.flatnonzero(have & (width >= assoc))
            if len(cand):
                _probe_windows(
                    prev_run, prev_run + 1, width, cand, assoc, miss_run
                )
        miss_s[head_pos] = miss_run
        if want_evictions:
            run_set = np.repeat(np.arange(num_sets), counts)[head_pos]
            if assoc == 2:
                runs_per_set = np.bincount(run_set, minlength=num_sets)
                retained = int((counts > 0).sum()) + int(
                    (runs_per_set >= 2).sum()
                )
            else:
                distinct_per_set = np.bincount(
                    run_set[prev_run == -1], minlength=num_sets
                )
                retained = int(np.minimum(distinct_per_set, assoc).sum())
            evictions = int(miss_run.sum()) - retained
    if by_set is None:
        return miss_s, evictions
    miss_t = np.empty(total, dtype=bool)
    miss_t[by_set] = miss_s
    return miss_t, evictions


def policy_miss_kernel(
    lines_t: "np.ndarray",
    num_sets: int,
    assoc: int,
    policy: str,
    seed: int = 0,
    want_evictions: bool = False,
) -> Tuple["np.ndarray", Optional[int]]:
    """Miss flags under a non-stack replacement policy (FIFO/PLRU/random).

    Shares the vectorized trace stages with :func:`lru_miss_kernel` —
    set decomposition (with the same fully-associative fast path) and
    run compression — then replays **only the run heads** through the
    scalar set machines of :mod:`repro.sim.policy`, one set segment at a
    time.  Run compression is semantics-preserving for every registered
    policy: an immediate re-access of the just-touched line hits and
    leaves the set state unchanged, so non-head accesses can neither
    miss nor perturb later decisions.  Bit-identical to
    :class:`~repro.sim.policy.PolicyCache` by construction.
    """
    total = len(lines_t)
    lines_t = _narrow_lines(lines_t)
    by_set, ls, counts = _set_decompose(lines_t, num_sets)
    is_head = np.zeros(total, dtype=bool)
    if total:
        is_head[0] = True
        is_head[1:] = ls[1:] != ls[:-1]
        if by_set is not None:
            starts = np.cumsum(counts) - counts
            is_head[starts[counts > 0]] = True
    head_pos = np.flatnonzero(is_head)
    run_line = ls[head_pos].tolist()
    nrun = len(run_line)
    miss_run = np.empty(nrun, dtype=bool)
    machine_cls = SET_MACHINES[policy]
    evictions = 0
    if by_set is None:
        machine = machine_cls(assoc, set_index=0, seed=seed)
        access = machine.access
        miss_run[:] = [not access(line) for line in run_line]
        evictions = machine.evictions
    else:
        run_counts = np.bincount(
            np.repeat(np.arange(num_sets), counts)[head_pos],
            minlength=num_sets,
        )
        pos = 0
        for s in np.flatnonzero(run_counts):
            n = int(run_counts[s])
            machine = machine_cls(assoc, set_index=int(s), seed=seed)
            access = machine.access
            miss_run[pos : pos + n] = [
                not access(line) for line in run_line[pos : pos + n]
            ]
            evictions += machine.evictions
            pos += n
    miss_s = np.zeros(total, dtype=bool)
    miss_s[head_pos] = miss_run
    if by_set is None:
        return miss_s, (evictions if want_evictions else None)
    miss_t = np.empty(total, dtype=bool)
    miss_t[by_set] = miss_s
    return miss_t, (evictions if want_evictions else None)


def miss_kernel(
    lines_t: "np.ndarray",
    num_sets: int,
    assoc: int,
    policy: str = "lru",
    seed: int = 0,
    want_evictions: bool = False,
) -> Tuple["np.ndarray", Optional[int]]:
    """Dispatch a line stream to the policy's miss kernel.

    LRU takes the closed-form stack-distance kernel; every other policy
    takes the run-head replay kernel.
    """
    if policy == "lru":
        return lru_miss_kernel(
            lines_t, num_sets, assoc, want_evictions=want_evictions
        )
    return policy_miss_kernel(
        lines_t, num_sets, assoc, policy, seed, want_evictions=want_evictions
    )


# -- report assembly ------------------------------------------------------------------


def _tally(uids_t, miss_t, nref):
    accesses = np.bincount(uids_t, minlength=nref)
    misses = np.bincount(uids_t[miss_t], minlength=nref)
    return accesses, misses


def _count_batch_report(report: SimReport, evictions: Optional[int]) -> None:
    count_policy_run(report.policy)
    obs.counter("sim.backend.batch.runs").inc()
    obs.counter("sim.backend.batch.accesses").inc(report.total_accesses)
    obs.counter("sim.accesses").inc(report.total_accesses)
    obs.counter("sim.misses").inc(report.total_misses)
    obs.counter("sim.hits").inc(report.total_accesses - report.total_misses)
    if evictions is not None:
        obs.counter("sim.evictions").inc(evictions)


def simulate_batch(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    walker: Optional[Walker] = None,
    policy: str = "lru",
    seed: int = 0,
) -> SimReport:
    """Vectorized twin of :func:`repro.sim.simulate` (NumPy backend)."""
    started = time.perf_counter()
    with obs.span("sim/decode"):
        uids_t, addrs_t = trace_arrays(nprog, layout, walker)
    with obs.span("sim/batch"):
        want_ev = obs.is_enabled()
        miss_t, evictions = miss_kernel(
            lines_of(addrs_t, cache.line_bytes),
            cache.num_sets,
            cache.assoc,
            policy,
            seed,
            want_evictions=want_ev,
        )
        nref = len(nprog.refs)
        acc, mis = _tally(uids_t, miss_t, nref)
    elapsed = time.perf_counter() - started
    report = SimReport(
        cache,
        {r.uid: int(acc[r.uid]) for r in nprog.refs},
        {r.uid: int(mis[r.uid]) for r in nprog.refs},
        elapsed,
        policy,
    )
    _count_batch_report(report, evictions)
    return report


def simulate_sweep(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    caches: Sequence[CacheConfig],
    walker: Optional[Walker] = None,
    policy: str = "lru",
    seed: int = 0,
) -> list:
    """Simulate one program against many cache configurations.

    This is the validation-sweep shape of Table 6 (direct/2-way/4-way
    columns): the access trace is independent of the cache, so it is
    built **once** — and the line stream once per distinct line size —
    while only the per-set stack-distance kernel re-runs per
    configuration.  The scalar simulator must re-walk the whole program
    for every cache; this asymmetry is where the sweep speedup comes
    from.
    """
    sweep_started = time.perf_counter()
    with obs.span("sim/decode"):
        uids_t, addrs_t = trace_arrays(nprog, layout, walker)
    decode_cost = time.perf_counter() - sweep_started
    nref = len(nprog.refs)
    want_ev = obs.is_enabled()
    lines_by_size: dict = {}
    reports = []
    for cache in caches:
        started = time.perf_counter()
        lines = lines_by_size.get(cache.line_bytes)
        if lines is None:
            lines = _narrow_lines(lines_of(addrs_t, cache.line_bytes))
            lines_by_size[cache.line_bytes] = lines
        with obs.span("sim/batch"):
            miss_t, evictions = miss_kernel(
                lines,
                cache.num_sets,
                cache.assoc,
                policy,
                seed,
                want_evictions=want_ev,
            )
            acc, mis = _tally(uids_t, miss_t, nref)
        report = SimReport(
            cache,
            {r.uid: int(acc[r.uid]) for r in nprog.refs},
            {r.uid: int(mis[r.uid]) for r in nprog.refs},
            time.perf_counter() - started,
            policy,
        )
        _count_batch_report(report, evictions)
        reports.append(report)
    if reports:
        # Attribute the one-off trace build to the first report's clock,
        # like simulate_batch does for a single configuration.
        reports[0].elapsed_seconds += decode_cost
    return reports


def simulate_trace_arrays(
    uids: "np.ndarray",
    addrs: "np.ndarray",
    cache: CacheConfig,
    refs: Optional[Sequence[NRef]] = None,
    policy: str = "lru",
    seed: int = 0,
) -> SimReport:
    """Simulate a decoded ``(uids, addresses)`` trace (NumPy backend).

    With ``refs``, the report is keyed by those references and any trace
    uid outside them raises :class:`~repro.errors.InvariantError` — a
    silently dropped tally would skew every aggregate ratio.  Without
    ``refs``, the report is keyed by the uids present in the trace.
    Reports the same ``sim.*`` counters as walker-driven simulation, so
    trace replays are observable too.
    """
    started = time.perf_counter()
    uids = np.asarray(uids)
    addrs = np.asarray(addrs)
    if addrs.dtype != np.int64:
        addrs = addrs.astype(np.int64)
    if refs is not None:
        _check_uids_array(uids, refs)
    with obs.span("sim/batch"):
        miss_t, evictions = miss_kernel(
            lines_of(addrs, cache.line_bytes),
            cache.num_sets,
            cache.assoc,
            policy,
            seed,
            want_evictions=obs.is_enabled(),
        )
        if refs is not None:
            nref = max((r.uid for r in refs), default=-1) + 1
            acc, mis = _tally(uids, miss_t, nref)
            accesses = {r.uid: int(acc[r.uid]) for r in refs}
            misses = {r.uid: int(mis[r.uid]) for r in refs}
        else:
            acc = np.bincount(uids)
            mis = np.bincount(uids[miss_t], minlength=len(acc))
            present = np.flatnonzero(acc)
            accesses = {int(u): int(acc[u]) for u in present}
            misses = {int(u): int(mis[u]) for u in present}
    report = SimReport(
        cache, accesses, misses, time.perf_counter() - started, policy
    )
    _count_batch_report(report, evictions)
    return report


def simulate_hierarchy_batch(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    l1_cache: CacheConfig,
    l2_cache: CacheConfig,
    walker: Optional[Walker] = None,
    policy: str = "lru",
    l2_policy: str = "lru",
    seed: int = 0,
    miss_trace_path=None,
) -> HierarchyReport:
    """Vectorized twin of :func:`repro.sim.simulate_hierarchy`.

    The trace is built once; the L1 kernel's miss mask then *filters*
    the uid/address arrays into the L1 miss stream, which replays
    through :func:`simulate_trace_arrays` as the L2 — the array form of
    the ``RPCT`` pair stream :func:`~repro.sim.tracefile.write_trace`
    persists when ``miss_trace_path`` is given.
    """
    started = time.perf_counter()
    with obs.span("sim/decode"):
        uids_t, addrs_t = trace_arrays(nprog, layout, walker)
    with obs.span("sim/batch"):
        miss_t, evictions = miss_kernel(
            lines_of(addrs_t, l1_cache.line_bytes),
            l1_cache.num_sets,
            l1_cache.assoc,
            policy,
            seed,
            want_evictions=obs.is_enabled(),
        )
        nref = len(nprog.refs)
        acc, mis = _tally(uids_t, miss_t, nref)
    l1 = SimReport(
        l1_cache,
        {r.uid: int(acc[r.uid]) for r in nprog.refs},
        {r.uid: int(mis[r.uid]) for r in nprog.refs},
        time.perf_counter() - started,
        policy,
    )
    _count_batch_report(l1, evictions)
    uids_m = uids_t[miss_t]
    addrs_m = addrs_t[miss_t]
    if miss_trace_path is not None:
        from repro.sim import tracefile

        tracefile.write_trace(
            miss_trace_path, zip(uids_m.tolist(), addrs_m.tolist())
        )
    l2 = simulate_trace_arrays(
        uids_m, addrs_m, l2_cache, refs=nprog.refs, policy=l2_policy, seed=seed
    )
    return HierarchyReport(l1, l2)


def _check_uids_array(uids, refs: Sequence[NRef]) -> None:
    if not len(uids):
        return
    highest = int(uids.max())
    uid_list = [r.uid for r in refs]
    if highest < len(uid_list) and set(uid_list) == set(range(len(uid_list))):
        return  # contiguous uids (the normal case): the max check suffices
    known = np.zeros(highest + 1, dtype=bool)
    for r in refs:
        if r.uid <= highest:
            known[r.uid] = True
    bad = np.flatnonzero(~known[uids])
    if len(bad):
        raise InvariantError(
            f"trace names ref uid {int(uids[bad[0]])} at access {int(bad[0])} "
            f"but the program has no such reference"
        )
