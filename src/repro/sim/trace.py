"""Naive trace generation — an independent oracle for the walker.

:func:`naive_trace` enumerates accesses by a completely different route than
:class:`~repro.iteration.Walker`: it lists every reference's RIS with the
polyhedral enumerator, tags each access with its full
``(iteration vector, lexical position)`` and *sorts* by position.  Agreement
between the two enumerations is a strong correctness check for the access
order both the simulator and the miss equations rely on; tests exploit it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.iteration.position import Position, interleave


@dataclass(frozen=True)
class TraceEntry:
    """One memory access with full ordering information."""

    position: Position
    ref_uid: int
    address: int


def naive_trace(nprog: NormalizedProgram, layout: MemoryLayout) -> list[TraceEntry]:
    """The full access trace built by per-leaf enumeration plus sorting."""
    entries: list[TraceEntry] = []
    for leaf in nprog.leaves:
        ris = nprog.ris(leaf)
        points = list(ris.enumerate_points())
        for ref in leaf.refs:
            base = layout.base_of(ref.array)
            offset_expr = (
                ref.array.element_offset(ref.subscripts) * ref.array.element_size
                + base
            )
            for point in points:
                env = dict(zip(nprog.index_vars, point))
                address = offset_expr.evaluate(env)
                ivec = interleave(leaf.label, point)
                entries.append(TraceEntry((ivec, ref.lexpos), ref.uid, address))
    entries.sort(key=lambda e: e.position)
    return entries


def collect_walker_trace(walker) -> list[tuple[int, int]]:
    """The walker's access stream as ``(ref_uid, address)`` pairs."""
    out: list[tuple[int, int]] = []

    def visit(cr, addr) -> bool:
        out.append((cr.nref.uid, addr))
        return False

    walker.walk(visit)
    return out
