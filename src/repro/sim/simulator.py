"""Whole-program cache simulation driven by the access-order walker.

Two interchangeable backends produce **bit-identical** per-reference
tallies (the trace-level differential suite asserts it case for case):

* ``"scalar"`` — walk the program access by access through the
  :class:`~repro.sim.cache.SetAssocLRUCache` state machine (pure Python,
  zero dependencies, streams without materialising the trace);
* ``"numpy"`` — materialise the trace as arrays and decide every miss at
  once with the stack-distance kernel of :mod:`repro.sim.batch`.

Backend names, defaulting and degradation follow
:func:`repro.cme.backend.resolve_backend` — the same resolve/degrade
contract as the classification backends, so ``backend=None`` means NumPy
when installed and the scalar walker otherwise.  Traces too large to
materialise degrade to the scalar walk as well (counted under
``sim.backend.fallbacks``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro import obs
from repro.cme.backend import resolve_backend
from repro.errors import InvariantError
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.iteration.walker import Walker
from repro.sim.cache import SetAssocLRUCache


@dataclass
class SimReport:
    """Per-reference and aggregate results of one simulation run."""

    cache: CacheConfig
    accesses: dict[int, int] = field(default_factory=dict)  # by NRef uid
    misses: dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def total_accesses(self) -> int:
        """Total number of memory accesses simulated."""
        return sum(self.accesses.values())

    @property
    def total_misses(self) -> int:
        """Total number of cache misses."""
        return sum(self.misses.values())

    @property
    def miss_ratio(self) -> float:
        """Overall miss ratio in [0, 1]."""
        total = self.total_accesses
        return self.total_misses / total if total else 0.0

    @property
    def miss_ratio_percent(self) -> float:
        """Overall miss ratio as a percentage (the paper's unit)."""
        return 100.0 * self.miss_ratio

    def ref_miss_ratio(self, ref: NRef) -> float:
        """Miss ratio of a single reference."""
        a = self.accesses.get(ref.uid, 0)
        return self.misses.get(ref.uid, 0) / a if a else 0.0


def simulate(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    walker: Walker | None = None,
    backend: Optional[str] = None,
) -> SimReport:
    """Simulate the full access trace of a normalised program.

    ``backend`` selects ``"numpy"`` (vectorized stack-distance kernel) or
    ``"scalar"`` (walker + LRU state machine); ``None``/``"auto"`` pick
    NumPy when installed.  Both backends report identical per-reference
    accesses and misses.
    """
    if resolve_backend(backend) == "numpy":
        from repro.sim import batch

        try:
            return batch.simulate_batch(nprog, layout, cache, walker=walker)
        except batch.TraceTooLargeError:
            obs.counter("sim.backend.fallbacks").inc()
    return _simulate_scalar(nprog, layout, cache, walker)


def simulate_sweep(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    caches: Sequence[CacheConfig],
    walker: Walker | None = None,
    backend: Optional[str] = None,
) -> list[SimReport]:
    """Simulate one program against a sweep of cache configurations.

    The access trace does not depend on the cache, so the NumPy backend
    builds it once and re-runs only the per-configuration stack-distance
    kernel — the shape of the paper's Table 6 validation columns.  The
    scalar backend walks the program once per cache.  Reports are
    returned in ``caches`` order and are bit-identical to per-cache
    :func:`simulate` calls.
    """
    caches = list(caches)
    if caches and resolve_backend(backend) == "numpy":
        from repro.sim import batch

        try:
            return batch.simulate_sweep(nprog, layout, caches, walker=walker)
        except batch.TraceTooLargeError:
            obs.counter("sim.backend.fallbacks").inc()
    if walker is None and caches:
        walker = Walker(nprog, layout)
    return [_simulate_scalar(nprog, layout, c, walker) for c in caches]


def _simulate_scalar(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    walker: Walker | None = None,
) -> SimReport:
    """The walker-driven scalar simulation (LRU dicts, one access at a time)."""
    walker = walker if walker is not None else Walker(nprog, layout)
    state = SetAssocLRUCache(cache)
    accesses = {r.uid: 0 for r in nprog.refs}
    misses = {r.uid: 0 for r in nprog.refs}
    line_bytes = cache.line_bytes
    access_line = state.access_line

    def visit(cr, addr) -> bool:
        uid = cr.nref.uid
        accesses[uid] += 1
        if not access_line(addr // line_bytes):
            misses[uid] += 1
        return False

    started = time.perf_counter()
    with obs.span("sim/walk"):
        walker.walk(visit)
    elapsed = time.perf_counter() - started
    report = SimReport(cache, accesses, misses, elapsed)
    # Bulk counters after the walk — nothing observable in the hot loop.
    obs.counter("sim.accesses").inc(report.total_accesses)
    obs.counter("sim.misses").inc(report.total_misses)
    obs.counter("sim.hits").inc(report.total_accesses - report.total_misses)
    obs.counter("sim.evictions").inc(state.evictions)
    return report


def simulate_trace(
    source,
    cache: CacheConfig,
    refs: Optional[Sequence[NRef]] = None,
    backend: Optional[str] = None,
) -> SimReport:
    """Simulate an explicit ``(ref_uid, address)`` trace.

    ``source`` is a path to a binary trace file
    (:mod:`repro.sim.tracefile`) or an in-memory iterable of pairs.  With
    ``refs`` (the program's references), tallies are keyed by those
    references and a trace uid the program does not define raises
    :class:`~repro.errors.InvariantError` instead of silently dropping
    the tally.  ``backend`` selects the simulator exactly as in
    :func:`simulate`.
    """
    from repro.sim import tracefile

    is_path = isinstance(source, (str, bytes)) or hasattr(source, "__fspath__")
    if resolve_backend(backend) == "numpy":
        import numpy as np

        from repro.sim import batch

        with obs.span("sim/decode"):
            if is_path:
                uids, addrs = tracefile.read_trace_arrays(source)
            else:
                pairs = list(source)
                uids = np.fromiter(
                    (u for u, _ in pairs), np.uint32, count=len(pairs)
                )
                addrs = np.fromiter(
                    (a for _, a in pairs), np.int64, count=len(pairs)
                )
        return batch.simulate_trace_arrays(uids, addrs, cache, refs=refs)
    with obs.span("sim/decode"):
        pairs = tracefile.read_trace(source) if is_path else list(source)
    return _replay_scalar(pairs, cache, refs)


def _replay_scalar(
    pairs: Sequence[Tuple[int, int]],
    cache: CacheConfig,
    refs: Optional[Sequence[NRef]],
) -> SimReport:
    started = time.perf_counter()
    if refs is not None:
        accesses = {r.uid: 0 for r in refs}
        misses = {r.uid: 0 for r in refs}
        known = frozenset(accesses)
    else:
        accesses = {}
        misses = {}
        known = None
    state = SetAssocLRUCache(cache)
    access_line = state.access_line
    line_bytes = cache.line_bytes
    with obs.span("sim/replay"):
        for position, (uid, addr) in enumerate(pairs):
            if known is not None and uid not in known:
                raise InvariantError(
                    f"trace names ref uid {uid} at access {position} "
                    f"but the program has no such reference"
                )
            accesses[uid] = accesses.get(uid, 0) + 1
            if not access_line(addr // line_bytes):
                misses[uid] = misses.get(uid, 0) + 1
    for uid in accesses:
        misses.setdefault(uid, 0)
    return SimReport(cache, accesses, misses, time.perf_counter() - started)
