"""Whole-program cache simulation driven by the access-order walker."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.iteration.walker import Walker
from repro.sim.cache import SetAssocLRUCache


@dataclass
class SimReport:
    """Per-reference and aggregate results of one simulation run."""

    cache: CacheConfig
    accesses: dict[int, int] = field(default_factory=dict)  # by NRef uid
    misses: dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def total_accesses(self) -> int:
        """Total number of memory accesses simulated."""
        return sum(self.accesses.values())

    @property
    def total_misses(self) -> int:
        """Total number of cache misses."""
        return sum(self.misses.values())

    @property
    def miss_ratio(self) -> float:
        """Overall miss ratio in [0, 1]."""
        total = self.total_accesses
        return self.total_misses / total if total else 0.0

    @property
    def miss_ratio_percent(self) -> float:
        """Overall miss ratio as a percentage (the paper's unit)."""
        return 100.0 * self.miss_ratio

    def ref_miss_ratio(self, ref: NRef) -> float:
        """Miss ratio of a single reference."""
        a = self.accesses.get(ref.uid, 0)
        return self.misses.get(ref.uid, 0) / a if a else 0.0


def simulate(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    walker: Walker | None = None,
) -> SimReport:
    """Simulate the full access trace of a normalised program.

    Runs the walker over every access in execution order, feeding the LRU
    cache model and tallying per-reference hits and misses.
    """
    walker = walker if walker is not None else Walker(nprog, layout)
    state = SetAssocLRUCache(cache)
    accesses = {r.uid: 0 for r in nprog.refs}
    misses = {r.uid: 0 for r in nprog.refs}
    line_bytes = cache.line_bytes
    access_line = state.access_line

    def visit(cr, addr) -> bool:
        uid = cr.nref.uid
        accesses[uid] += 1
        if not access_line(addr // line_bytes):
            misses[uid] += 1
        return False

    started = time.perf_counter()
    with obs.span("sim/walk"):
        walker.walk(visit)
    elapsed = time.perf_counter() - started
    report = SimReport(cache, accesses, misses, elapsed)
    # Bulk counters after the walk — nothing observable in the hot loop.
    obs.counter("sim.accesses").inc(report.total_accesses)
    obs.counter("sim.misses").inc(report.total_misses)
    obs.counter("sim.hits").inc(report.total_accesses - report.total_misses)
    obs.counter("sim.evictions").inc(state.evictions)
    return report
