"""Whole-program cache simulation driven by the access-order walker.

Two interchangeable backends produce **bit-identical** per-reference
tallies (the trace-level differential suite asserts it case for case,
for every replacement policy):

* ``"scalar"`` — walk the program access by access through a per-set
  state machine (:mod:`repro.sim.policy`; pure Python, zero
  dependencies, streams without materialising the trace);
* ``"numpy"`` — materialise the trace as arrays and decide misses with
  the per-policy set kernels of :mod:`repro.sim.batch` (closed-form
  stack distances for LRU, run-compressed set replay for the rest).

Backend names, defaulting and degradation follow
:func:`repro.cme.backend.resolve_backend` — the same resolve/degrade
contract as the classification backends, so ``backend=None`` means NumPy
when installed and the scalar walker otherwise.  Traces too large to
materialise degrade to the scalar walk as well (counted under
``sim.backend.fallbacks``).

The replacement policy (``policy=`` on every entry point; see
:mod:`repro.sim.policy`) defaults to the paper's LRU; ``seed`` feeds the
deterministic random-replacement victim draw and is ignored by the
deterministic policies.  :func:`simulate_hierarchy` stacks two levels by
feeding the L1 miss stream — the same ``(ref_uid, address)`` pairs the
``RPCT`` trace format carries — into an L2 :func:`simulate_trace` call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from repro import obs
from repro.cme.backend import resolve_backend
from repro.errors import InvariantError
from repro.layout.cache import CacheConfig
from repro.layout.memory import MemoryLayout
from repro.normalize.nprogram import NormalizedProgram, NRef
from repro.iteration.walker import Walker
from repro.sim.policy import (
    check_policy_geometry,
    count_policy_run,
    make_cache,
    resolve_policy,
)


@dataclass
class SimReport:
    """Per-reference and aggregate results of one simulation run."""

    cache: CacheConfig
    accesses: dict[int, int] = field(default_factory=dict)  # by NRef uid
    misses: dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    policy: str = "lru"

    @property
    def total_accesses(self) -> int:
        """Total number of memory accesses simulated."""
        return sum(self.accesses.values())

    @property
    def total_misses(self) -> int:
        """Total number of cache misses."""
        return sum(self.misses.values())

    @property
    def miss_ratio(self) -> float:
        """Overall miss ratio in [0, 1]."""
        total = self.total_accesses
        return self.total_misses / total if total else 0.0

    @property
    def miss_ratio_percent(self) -> float:
        """Overall miss ratio as a percentage (the paper's unit)."""
        return 100.0 * self.miss_ratio

    @property
    def hit_ratio_percent(self) -> float:
        """Overall hit ratio as a percentage (the geometry-sweep unit)."""
        return 100.0 - self.miss_ratio_percent

    def ref_miss_ratio(self, ref: NRef) -> float:
        """Miss ratio of a single reference."""
        a = self.accesses.get(ref.uid, 0)
        return self.misses.get(ref.uid, 0) / a if a else 0.0


@dataclass
class HierarchyReport:
    """A two-level (L1 → L2) simulation: the L2 sees only L1 misses."""

    l1: SimReport
    l2: SimReport

    @property
    def total_accesses(self) -> int:
        """Processor-issued accesses (what the L1 sees)."""
        return self.l1.total_accesses

    @property
    def l1_miss_ratio_percent(self) -> float:
        """L1 miss ratio over processor accesses."""
        return self.l1.miss_ratio_percent

    @property
    def l2_local_miss_ratio_percent(self) -> float:
        """L2 miss ratio over the accesses the L2 actually saw."""
        return self.l2.miss_ratio_percent

    @property
    def global_miss_ratio_percent(self) -> float:
        """Accesses missing *both* levels, over processor accesses."""
        total = self.l1.total_accesses
        if not total:
            return 0.0
        return 100.0 * self.l2.total_misses / total

    @property
    def elapsed_seconds(self) -> float:
        """Combined wall time of both levels."""
        return self.l1.elapsed_seconds + self.l2.elapsed_seconds


def simulate(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    walker: Walker | None = None,
    backend: Optional[str] = None,
    policy: Optional[str] = None,
    seed: int = 0,
) -> SimReport:
    """Simulate the full access trace of a normalised program.

    ``backend`` selects ``"numpy"`` (vectorized set kernels) or
    ``"scalar"`` (walker + per-set state machines); ``None``/``"auto"``
    pick NumPy when installed.  ``policy`` selects the replacement
    policy (:mod:`repro.sim.policy`; default LRU) and ``seed`` feeds the
    random policy's deterministic victim draw.  Both backends report
    identical per-reference accesses and misses for every policy.
    """
    policy = resolve_policy(policy)
    check_policy_geometry(policy, cache)
    if resolve_backend(backend) == "numpy":
        from repro.sim import batch

        try:
            return batch.simulate_batch(
                nprog, layout, cache, walker=walker, policy=policy, seed=seed
            )
        except batch.TraceTooLargeError:
            obs.counter("sim.backend.fallbacks").inc()
    return _simulate_scalar(nprog, layout, cache, walker, policy, seed)


def normalize_assocs(assocs: Sequence[int]) -> list[int]:
    """Canonicalise an associativity sweep: validated, deduped, sorted.

    ``simulate_sweep`` used to accept duplicate and unsorted
    associativity lists silently, simulating duplicates twice and
    returning curves out of order; sweeps are now canonicalised here and
    non-positive (or non-integer) values raise
    :class:`~repro.errors.InvariantError` instead of building a
    nonsensical :class:`CacheConfig` further down.
    """
    cleaned = []
    for a in assocs:
        if isinstance(a, bool) or not isinstance(a, int) or a <= 0:
            raise InvariantError(
                f"associativity sweep values must be positive integers, "
                f"got {a!r}"
            )
        cleaned.append(a)
    return sorted(set(cleaned))


def assoc_sweep_caches(
    base: CacheConfig, assocs: Sequence[int]
) -> list[CacheConfig]:
    """Cache configurations for a hit-rate-vs-associativity sweep.

    Capacity and line size come from ``base``; ``assocs`` is
    canonicalised by :func:`normalize_assocs`.  An associativity the
    capacity cannot express (``size % (line × k) != 0``) raises
    :class:`~repro.errors.InvariantError`.
    """
    caches = []
    for a in normalize_assocs(assocs):
        if base.size_bytes % (base.line_bytes * a):
            raise InvariantError(
                f"cache size {base.size_bytes} cannot hold {a} ways of "
                f"{base.line_bytes}B lines"
            )
        caches.append(CacheConfig(base.size_bytes, base.line_bytes, a))
    return caches


def simulate_sweep(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    caches: Union[Sequence[CacheConfig], CacheConfig, None] = None,
    walker: Walker | None = None,
    backend: Optional[str] = None,
    policy: Optional[str] = None,
    seed: int = 0,
    assocs: Optional[Sequence[int]] = None,
) -> list[SimReport]:
    """Simulate one program against a sweep of cache configurations.

    The access trace does not depend on the cache, so the NumPy backend
    builds it once and re-runs only the per-configuration set kernel —
    the shape of the paper's Table 6 validation columns.  The scalar
    backend walks the program once per cache.

    Two request shapes:

    * ``caches`` — an explicit configuration list.  Reports come back in
      ``caches`` order with exact duplicates simulated (and reported)
      once, first occurrence kept.
    * ``caches`` a single *base* :class:`CacheConfig` plus ``assocs`` —
      an associativity sweep at the base's capacity and line size,
      canonicalised by :func:`normalize_assocs` (deduplicated, sorted
      ascending; non-positive values raise
      :class:`~repro.errors.InvariantError`).

    Either way every report is bit-identical to a per-cache
    :func:`simulate` call with the same ``policy``/``seed``.
    """
    policy = resolve_policy(policy)
    if assocs is not None:
        if not isinstance(caches, CacheConfig):
            raise InvariantError(
                "an associativity sweep needs a single base CacheConfig "
                "(capacity + line size) in the caches argument"
            )
        caches = assoc_sweep_caches(caches, assocs)
    elif isinstance(caches, CacheConfig):
        caches = [caches]
    else:
        deduped: list[CacheConfig] = []
        seen = set()
        for cache in caches or ():
            if cache not in seen:
                seen.add(cache)
                deduped.append(cache)
        caches = deduped
    for cache in caches:
        check_policy_geometry(policy, cache)
    if caches and resolve_backend(backend) == "numpy":
        from repro.sim import batch

        try:
            return batch.simulate_sweep(
                nprog, layout, caches, walker=walker, policy=policy, seed=seed
            )
        except batch.TraceTooLargeError:
            obs.counter("sim.backend.fallbacks").inc()
    if walker is None and caches:
        walker = Walker(nprog, layout)
    return [
        _simulate_scalar(nprog, layout, c, walker, policy, seed)
        for c in caches
    ]


def _simulate_scalar(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    cache: CacheConfig,
    walker: Walker | None = None,
    policy: str = "lru",
    seed: int = 0,
) -> SimReport:
    """The walker-driven scalar simulation (one access at a time)."""
    walker = walker if walker is not None else Walker(nprog, layout)
    state = make_cache(cache, policy, seed)
    accesses = {r.uid: 0 for r in nprog.refs}
    misses = {r.uid: 0 for r in nprog.refs}
    line_bytes = cache.line_bytes
    access_line = state.access_line

    def visit(cr, addr) -> bool:
        uid = cr.nref.uid
        accesses[uid] += 1
        if not access_line(addr // line_bytes):
            misses[uid] += 1
        return False

    started = time.perf_counter()
    with obs.span("sim/walk"):
        walker.walk(visit)
    elapsed = time.perf_counter() - started
    report = SimReport(cache, accesses, misses, elapsed, policy)
    # Bulk counters after the walk — nothing observable in the hot loop.
    count_policy_run(policy)
    obs.counter("sim.accesses").inc(report.total_accesses)
    obs.counter("sim.misses").inc(report.total_misses)
    obs.counter("sim.hits").inc(report.total_accesses - report.total_misses)
    obs.counter("sim.evictions").inc(state.evictions)
    return report


def simulate_trace(
    source,
    cache: CacheConfig,
    refs: Optional[Sequence[NRef]] = None,
    backend: Optional[str] = None,
    policy: Optional[str] = None,
    seed: int = 0,
) -> SimReport:
    """Simulate an explicit ``(ref_uid, address)`` trace.

    ``source`` is a path to a binary trace file
    (:mod:`repro.sim.tracefile`) or an in-memory iterable of pairs.  With
    ``refs`` (the program's references), tallies are keyed by those
    references and a trace uid the program does not define raises
    :class:`~repro.errors.InvariantError` instead of silently dropping
    the tally.  ``backend`` and ``policy`` select the simulator exactly
    as in :func:`simulate`.
    """
    from repro.sim import tracefile

    policy = resolve_policy(policy)
    check_policy_geometry(policy, cache)
    is_path = isinstance(source, (str, bytes)) or hasattr(source, "__fspath__")
    if resolve_backend(backend) == "numpy":
        import numpy as np

        from repro.sim import batch

        with obs.span("sim/decode"):
            if is_path:
                uids, addrs = tracefile.read_trace_arrays(source)
            else:
                pairs = list(source)
                uids = np.fromiter(
                    (u for u, _ in pairs), np.uint32, count=len(pairs)
                )
                addrs = np.fromiter(
                    (a for _, a in pairs), np.int64, count=len(pairs)
                )
        return batch.simulate_trace_arrays(
            uids, addrs, cache, refs=refs, policy=policy, seed=seed
        )
    with obs.span("sim/decode"):
        pairs = tracefile.read_trace(source) if is_path else list(source)
    return _replay_scalar(pairs, cache, refs, policy, seed)


def simulate_hierarchy(
    nprog: NormalizedProgram,
    layout: MemoryLayout,
    l1_cache: CacheConfig,
    l2_cache: CacheConfig,
    walker: Walker | None = None,
    backend: Optional[str] = None,
    policy: Optional[str] = None,
    l2_policy: Optional[str] = None,
    seed: int = 0,
    miss_trace_path=None,
) -> HierarchyReport:
    """Simulate a two-level cache hierarchy (L1 feeding L2).

    The L1 runs the full program trace; every L1 *miss* is forwarded —
    as the same ``(ref_uid, address)`` stream the ``RPCT`` trace format
    carries — into an L2 :func:`simulate_trace` call, so the L2 model is
    exactly the single-level simulator replaying the L1 miss stream.
    ``l2_policy`` defaults to ``policy``; ``miss_trace_path`` optionally
    persists the L1 miss stream as a binary ``RPCT`` trace for offline
    replay.  Both backends are bit-identical level by level.
    """
    policy = resolve_policy(policy)
    l2_policy = policy if l2_policy is None else resolve_policy(l2_policy)
    check_policy_geometry(policy, l1_cache)
    check_policy_geometry(l2_policy, l2_cache)
    if resolve_backend(backend) == "numpy":
        from repro.sim import batch

        try:
            return batch.simulate_hierarchy_batch(
                nprog,
                layout,
                l1_cache,
                l2_cache,
                walker=walker,
                policy=policy,
                l2_policy=l2_policy,
                seed=seed,
                miss_trace_path=miss_trace_path,
            )
        except batch.TraceTooLargeError:
            obs.counter("sim.backend.fallbacks").inc()
    walker = walker if walker is not None else Walker(nprog, layout)
    state = make_cache(l1_cache, policy, seed)
    accesses = {r.uid: 0 for r in nprog.refs}
    misses = {r.uid: 0 for r in nprog.refs}
    miss_stream: list[Tuple[int, int]] = []
    line_bytes = l1_cache.line_bytes
    access_line = state.access_line

    def visit(cr, addr) -> bool:
        uid = cr.nref.uid
        accesses[uid] += 1
        if not access_line(addr // line_bytes):
            misses[uid] += 1
            miss_stream.append((uid, addr))
        return False

    started = time.perf_counter()
    with obs.span("sim/walk"):
        walker.walk(visit)
    l1 = SimReport(
        l1_cache, accesses, misses, time.perf_counter() - started, policy
    )
    count_policy_run(policy)
    obs.counter("sim.accesses").inc(l1.total_accesses)
    obs.counter("sim.misses").inc(l1.total_misses)
    obs.counter("sim.hits").inc(l1.total_accesses - l1.total_misses)
    obs.counter("sim.evictions").inc(state.evictions)
    if miss_trace_path is not None:
        from repro.sim import tracefile

        tracefile.write_trace(miss_trace_path, miss_stream)
    l2 = simulate_trace(
        miss_stream,
        l2_cache,
        refs=nprog.refs,
        backend="scalar",
        policy=l2_policy,
        seed=seed,
    )
    return HierarchyReport(l1, l2)


def _replay_scalar(
    pairs: Sequence[Tuple[int, int]],
    cache: CacheConfig,
    refs: Optional[Sequence[NRef]],
    policy: str = "lru",
    seed: int = 0,
) -> SimReport:
    started = time.perf_counter()
    if refs is not None:
        accesses = {r.uid: 0 for r in refs}
        misses = {r.uid: 0 for r in refs}
        known = frozenset(accesses)
    else:
        accesses = {}
        misses = {}
        known = None
    state = make_cache(cache, policy, seed)
    access_line = state.access_line
    line_bytes = cache.line_bytes
    with obs.span("sim/replay"):
        for position, (uid, addr) in enumerate(pairs):
            if known is not None and uid not in known:
                raise InvariantError(
                    f"trace names ref uid {uid} at access {position} "
                    f"but the program has no such reference"
                )
            accesses[uid] = accesses.get(uid, 0) + 1
            if not access_line(addr // line_bytes):
                misses[uid] = misses.get(uid, 0) + 1
    for uid in accesses:
        misses.setdefault(uid, 0)
    report = SimReport(
        cache, accesses, misses, time.perf_counter() - started, policy
    )
    # Trace replays report the same sim.* counters as walker-driven
    # simulation — the backend/policy choice must be observable here too.
    count_policy_run(policy)
    obs.counter("sim.accesses").inc(report.total_accesses)
    obs.counter("sim.misses").inc(report.total_misses)
    obs.counter("sim.hits").inc(report.total_accesses - report.total_misses)
    obs.counter("sim.evictions").inc(state.evictions)
    return report
