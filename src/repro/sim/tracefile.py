"""Binary trace files: the simulator's on-disk interchange format.

The validation loop of Fig. 7 compares analytical predictions against a
trace-driven simulator.  This module gives the trace a compact, versioned
on-disk form so it can be produced once (by the walker, or by an external
tool the frontend cannot parse) and replayed many times by either
simulator backend:

* **Header** — ``16`` bytes, little-endian: 4-byte magic ``b"RPCT"``, a
  ``u16`` format version, a ``u16`` record kind and a ``u64`` record
  count.
* **Records** — fixed-width ``12``-byte little-endian pairs
  ``(ref_uid: u32, address: u64)``, one per memory access, in execution
  order.

Fixed-width records make the file random-accessible and let
:func:`read_trace_arrays` map the whole payload into NumPy arrays with a
single structured-dtype ``frombuffer`` — no per-record Python work.  Every
malformed input (bad magic, unknown version/kind, truncated payload, count
that disagrees with the file size) raises the typed
:class:`~repro.errors.TraceFormatError`, never a bare ``struct.error``.

:func:`import_address_trace` adapts the classic *raw address trace* shape
(a bare sequence of fixed-width big- or little-endian words, one address
per word — SNIPPETS.md snippet 1's ``conv``/``sim`` pair) into the same
``(ref_uid, address)`` stream, so external traces flow through the exact
simulator path the walker's own traces take.
"""

from __future__ import annotations

import os
import struct
from importlib import util as _importlib_util
from typing import Iterable, List, Tuple, Union

from repro.errors import MissingDependencyError, TraceFormatError

#: File magic: "RePro Cache Trace".
MAGIC = b"RPCT"

#: Current (and only) format version.
VERSION = 1

#: Record kind 1: ``(ref_uid: u32, address: u64)`` pairs.
KIND_REF_ADDRESS = 1

#: Header: magic, version, record kind, record count.
HEADER = struct.Struct("<4sHHQ")

#: One access record: reference uid then byte address.
RECORD = struct.Struct("<IQ")

_UID_MAX = 2**32 - 1
_ADDR_MAX = 2**64 - 1

Pathish = Union[str, "os.PathLike[str]"]


def write_trace(path: Pathish, accesses: Iterable[Tuple[int, int]]) -> int:
    """Write ``(ref_uid, address)`` pairs to ``path``; returns the count.

    The pairs are consumed in order (execution order, if the caller wants
    the file to replay faithfully).  Fields outside the fixed-width
    encoding (negative, or past ``u32``/``u64``) raise
    :class:`~repro.errors.TraceFormatError` before anything is written.
    """
    body = bytearray()
    count = 0
    pack = RECORD.pack
    for uid, address in accesses:
        if not 0 <= uid <= _UID_MAX:
            raise TraceFormatError(f"ref uid {uid} does not fit in u32")
        if not 0 <= address <= _ADDR_MAX:
            raise TraceFormatError(f"address {address} does not fit in u64")
        body += pack(uid, address)
        count += 1
    with open(path, "wb") as fh:
        fh.write(HEADER.pack(MAGIC, VERSION, KIND_REF_ADDRESS, count))
        fh.write(body)
    return count


def _read_payload(path: Pathish) -> Tuple[int, bytes]:
    """Validate the header of ``path``; returns ``(count, record_bytes)``."""
    with open(path, "rb") as fh:
        raw = fh.read()
    if len(raw) < HEADER.size:
        raise TraceFormatError(
            f"{path}: file too short for a trace header "
            f"({len(raw)} < {HEADER.size} bytes)"
        )
    magic, version, kind, count = HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise TraceFormatError(f"{path}: bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise TraceFormatError(
            f"{path}: unsupported trace version {version} (expected {VERSION})"
        )
    if kind != KIND_REF_ADDRESS:
        raise TraceFormatError(f"{path}: unknown record kind {kind}")
    body = raw[HEADER.size:]
    expected = count * RECORD.size
    if len(body) != expected:
        what = "truncated" if len(body) < expected else "trailing bytes in"
        raise TraceFormatError(
            f"{path}: {what} trace ({len(body)} payload bytes for "
            f"{count} records of {RECORD.size} bytes)"
        )
    return count, body


def read_trace(path: Pathish) -> List[Tuple[int, int]]:
    """Read a trace file as a list of ``(ref_uid, address)`` pairs.

    Pure Python — works without NumPy (the scalar replay path).
    """
    _, body = _read_payload(path)
    return list(RECORD.iter_unpack(body))


def read_trace_arrays(path: Pathish):
    """Read a trace file as ``(uids, addresses)`` NumPy arrays.

    ``uids`` is ``uint32`` and ``addresses`` is ``uint64``; both are
    writable copies, decoded from the payload in one structured
    ``frombuffer`` — this is the vectorized simulator's ingestion path.
    """
    if _importlib_util.find_spec("numpy") is None:
        raise MissingDependencyError(
            "reading traces as arrays needs NumPy (pip install numpy); "
            "use read_trace() for the pure-Python decoder"
        )
    import numpy as np

    _, body = _read_payload(path)
    records = np.frombuffer(
        body, dtype=np.dtype([("uid", "<u4"), ("addr", "<u8")])
    )
    return records["uid"].astype(np.uint32), records["addr"].astype(np.uint64)


def import_address_trace(
    path: Pathish,
    word_bytes: int = 4,
    byteorder: str = "big",
    ref_uid: int = 0,
) -> List[Tuple[int, int]]:
    """Adapt a raw address trace into ``(ref_uid, address)`` pairs.

    The input is a bare sequence of fixed-width addresses (``word_bytes``
    each, ``byteorder`` ``"big"`` or ``"little"``) with no header — the
    shape external tracers typically dump.  Every access is attributed to
    the single ``ref_uid`` since raw traces carry no reference identity.
    """
    if word_bytes <= 0:
        raise TraceFormatError(f"word_bytes must be positive, got {word_bytes}")
    if byteorder not in ("big", "little"):
        raise TraceFormatError(f"byteorder must be 'big' or 'little', got {byteorder!r}")
    if not 0 <= ref_uid <= _UID_MAX:
        raise TraceFormatError(f"ref uid {ref_uid} does not fit in u32")
    with open(path, "rb") as fh:
        raw = fh.read()
    if len(raw) % word_bytes:
        raise TraceFormatError(
            f"{path}: {len(raw)} bytes is not a whole number of "
            f"{word_bytes}-byte address words"
        )
    from_bytes = int.from_bytes
    return [
        (ref_uid, from_bytes(raw[i : i + word_bytes], byteorder))
        for i in range(0, len(raw), word_bytes)
    ]
