"""A trace-driven k-way set-associative LRU cache simulator.

This is the paper's validation baseline (Fig. 7 feeds the same reference
information to "our algorithms" and to a cache simulator).  With
fetch-on-write, loads and stores are handled identically, so the simulator
only needs the byte address stream the walker produces.
"""

from __future__ import annotations

from repro.layout.cache import CacheConfig


class SetAssocLRUCache:
    """Cache state: per-set LRU stacks of memory lines.

    Python dicts preserve insertion order, so each set is a dict whose first
    key is the least recently used line — giving O(1) amortised hit, insert
    and evict operations.
    """

    __slots__ = (
        "config",
        "_sets",
        "_num_sets",
        "_assoc",
        "_line_bytes",
        "evictions",
    )

    def __init__(self, config: CacheConfig):
        self.config = config
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self._line_bytes = config.line_bytes
        self._sets: list[dict[int, None]] = [dict() for _ in range(self._num_sets)]
        #: Lines displaced by capacity/conflict so far (``sim.evictions``).
        self.evictions = 0

    def access_line(self, line: int) -> bool:
        """Touch a memory line; returns True on a hit."""
        s = self._sets[line % self._num_sets]
        if line in s:
            del s[line]  # move to MRU position
            s[line] = None
            return True
        if len(s) >= self._assoc:
            del s[next(iter(s))]  # evict LRU
            self.evictions += 1
        s[line] = None
        return False

    def access_address(self, address: int) -> bool:
        """Touch the line containing a byte address; returns True on a hit."""
        return self.access_line(address // self._line_bytes)

    def resident_lines(self) -> set[int]:
        """The set of memory lines currently cached (for tests)."""
        lines: set[int] = set()
        for s in self._sets:
            lines.update(s)
        return lines

    def flush(self) -> None:
        """Empty the cache."""
        for s in self._sets:
            s.clear()
