"""Trace-driven cache simulation (the paper's validation baseline)."""

from repro.sim.cache import SetAssocLRUCache
from repro.sim.policy import (
    DEFAULT_POLICY,
    POLICIES,
    PolicyCache,
    make_cache,
    mix_victim,
    resolve_policy,
)
from repro.sim.reference_interp import interpret_accesses, reference_trace
from repro.sim.simulator import (
    HierarchyReport,
    SimReport,
    assoc_sweep_caches,
    normalize_assocs,
    simulate,
    simulate_hierarchy,
    simulate_sweep,
    simulate_trace,
)
from repro.sim.trace import TraceEntry, collect_walker_trace, naive_trace
from repro.sim.tracefile import (
    import_address_trace,
    read_trace,
    read_trace_arrays,
    write_trace,
)

__all__ = [
    "SetAssocLRUCache",
    "DEFAULT_POLICY",
    "POLICIES",
    "PolicyCache",
    "make_cache",
    "mix_victim",
    "resolve_policy",
    "interpret_accesses",
    "reference_trace",
    "HierarchyReport",
    "SimReport",
    "assoc_sweep_caches",
    "normalize_assocs",
    "simulate",
    "simulate_hierarchy",
    "simulate_sweep",
    "simulate_trace",
    "TraceEntry",
    "collect_walker_trace",
    "naive_trace",
    "import_address_trace",
    "read_trace",
    "read_trace_arrays",
    "write_trace",
]
