"""Trace-driven cache simulation (the paper's validation baseline)."""

from repro.sim.cache import SetAssocLRUCache
from repro.sim.reference_interp import interpret_accesses, reference_trace
from repro.sim.simulator import SimReport, simulate
from repro.sim.trace import TraceEntry, collect_walker_trace, naive_trace

__all__ = [
    "SetAssocLRUCache",
    "interpret_accesses",
    "reference_trace",
    "SimReport",
    "simulate",
    "TraceEntry",
    "collect_walker_trace",
    "naive_trace",
]
