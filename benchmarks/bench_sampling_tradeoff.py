"""The (c, w) trade-off of Fig. 6: accuracy versus analysis time.

EstimateMisses takes the confidence ``c`` and interval ``w`` from the user;
the sample size — and hence the analysis cost — follows the Bernoulli
formula of DeGroot.  Sweeping ``w`` on the Hydro kernel shows the knob
working: looser intervals analyse fewer points and run faster.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, timed_once

from repro import CacheConfig, analyze, prepare, run_simulation
from repro.report import format_table
from repro.kernels import build_hydro

WIDTHS = [0.15, 0.10, 0.05, 0.03]


def compute_rows():
    prepared = prepare(build_hydro(48, 48))
    cache = CacheConfig.kb(8, 32, 1)
    sim = run_simulation(prepared, cache)
    rows = []
    for w in WIDTHS:
        errors = []
        seconds = 0.0
        sampled = 0
        for seed in range(3):
            est = analyze(
                prepared, cache, method="estimate", width=w, seed=seed
            )
            errors.append(
                abs(est.miss_ratio_percent - sim.miss_ratio_percent)
            )
            seconds += est.elapsed_seconds
            sampled = est.analysed_points
        rows.append(
            (w, sampled, sum(errors) / len(errors), max(errors), seconds / 3)
        )
    return rows


def test_sampling_tradeoff(benchmark):
    rows, seconds = timed_once(benchmark, compute_rows)
    text = format_table(
        ["w", "Sampled points", "Mean Abs.Err", "Max Abs.Err", "Time (s)"],
        rows,
        title="Sampling (c, w) trade-off — Hydro 48x48, 8KB/32B, c=95%",
    )
    emit("sampling_tradeoff", text)
    emit_json(
        "sampling_tradeoff",
        {
            "wall_seconds": seconds,
            "rows": [
                dict(
                    zip(
                        ("width", "sampled", "mean_err", "max_err", "seconds"),
                        r,
                    )
                )
                for r in rows
            ],
        },
        config={"widths": WIDTHS},
    )
    # Tighter intervals analyse more points…
    sampled = [r[1] for r in rows]
    assert sampled == sorted(sampled)
    # …and the error stays within the requested interval at every width.
    for w, _, _, max_err, _ in rows:
        assert max_err <= 100 * w + 1.0
