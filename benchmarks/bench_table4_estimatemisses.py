"""Table 4: EstimateMisses accuracy and speed on the three kernels.

Paper (32KB/32B, c = 95%, w = 0.05): absolute errors below 0.4 percentage
points with sub-second execution times on a 933MHz Pentium III.  We check
the same shape at scaled sizes: small absolute error against simulation and
analysis cost independent of the trace length (the sampled point count is
fixed by (c, w), not by the problem size).
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, timed_once

from repro import CacheConfig, analyze, prepare, run_simulation
from repro.report import assoc_label, format_table
from repro.kernels import build_hydro, build_mgrid, build_mmt

PAPER_TABLE4 = [
    ("Hydro", "direct", 0.05, 0.27),
    ("Hydro", "2-way", 0.05, 0.32),
    ("Hydro", "4-way", 0.05, 0.36),
    ("MGRID", "direct", 0.36, 0.19),
    ("MGRID", "2-way", 0.32, 0.22),
    ("MGRID", "4-way", 0.32, 0.22),
    ("MMT", "direct", 0.23, 0.10),
    ("MMT", "2-way", 0.37, 0.10),
    ("MMT", "4-way", 0.37, 0.11),
]

SCALED = [
    ("Hydro", lambda: build_hydro(40, 40)),
    ("MGRID", lambda: build_mgrid(14)),
    ("MMT", lambda: build_mmt(32, 32, 16)),
]

CACHE_KB = 8


def compute_rows():
    rows = []
    for name, builder in SCALED:
        prepared = prepare(builder())
        for assoc in (1, 2, 4):
            cache = CacheConfig.kb(CACHE_KB, 32, assoc)
            est = analyze(prepared, cache, method="estimate", seed=0)
            sim = run_simulation(prepared, cache)
            rows.append(
                (
                    name,
                    assoc_label(assoc),
                    sim.miss_ratio_percent,
                    est.miss_ratio_percent,
                    abs(est.miss_ratio_percent - sim.miss_ratio_percent),
                    est.elapsed_seconds,
                    est.analysed_points,
                    est.total_accesses,
                )
            )
    return rows


def test_table4_estimatemisses(benchmark):
    rows, seconds = timed_once(benchmark, compute_rows)
    paper = format_table(
        ["Program", "Cache", "Abs.Err", "Time (s)"],
        PAPER_TABLE4,
        title="Table 4 — paper (32KB/32B, c=95%, w=0.05)",
    )
    measured = format_table(
        [
            "Program",
            "Cache",
            "Sim %",
            "Est %",
            "Abs.Err",
            "Time (s)",
            "Sampled",
            "Trace",
        ],
        rows,
        title=f"Table 4 — measured ({CACHE_KB}KB/32B, scaled sizes, c=95%, w=0.05)",
    )
    emit("table4", paper + "\n\n" + measured)
    emit_json(
        "table4",
        {
            "wall_seconds": seconds,
            "rows": [
                {
                    "program": r[0],
                    "cache": r[1],
                    "abs_err": r[4],
                    "analyze_seconds": r[5],
                    "sampled_points": r[6],
                }
                for r in rows
            ],
        },
        config={"cache_kb": CACHE_KB},
    )
    # Shape: small absolute error, and far fewer points analysed than the
    # trace contains (the sampling speedup mechanism).
    for row in rows:
        assert row[4] < 3.0, f"absolute error too large for {row[0]} {row[1]}"
        assert row[6] < row[7]
