"""Regional solver scaling: exact miss counts at cost flat in loop bounds.

The tentpole claim of the regional CME solver (ISSUE 10): on programs
fully covered by its closed-form certificates, ``RegionMisses`` produces
*exactly* the ``FindMisses`` classifications while its solve time stays
flat as the loop bounds — and hence the ``FindMisses`` enumeration cost —
grow by orders of magnitude.  The paper solves its equations "by
polyhedral theory" for precisely this reason; the enumeration solvers
re-introduced the trace-length dependence that this solver removes.

Two checks, one table each:

* **Flatness sweep** — stride-1 stencil kernels (fully certifiable by
  construction) swept over 100× loop bounds: regions time must stay
  within ``FLATNESS`` of its smallest-size time (min-of-3) while the
  FindMisses time grows at least ``MIN_FIND_GROWTH``×, with the reports
  exactly equal at every size.
* **Coverage on the Table 3 kernels** — Hydro/MMT/MGRID at the paper's
  1KB/32B direct-mapped geometry: the aggregate fraction of regions
  counted exactly (``cme.regions.exact_regions`` vs
  ``cme.regions.fallback_regions``) must reach ``MIN_EXACT_RATIO``, again
  with regions == find everywhere.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, timed_once

import time

from repro import CacheConfig, obs, prepare
from repro.cme import find_misses, region_misses, regional_coverage
from repro.ir import Program, ProgramBuilder
from repro.report import format_table

#: Loop bounds of the flatness sweep (100× smallest to largest).
SIZES = [500, 5000, 50000]

#: The paper's Table 3 geometry: 1KB, 32-byte lines, direct mapped.
CACHE = CacheConfig.kb(1, 32, 1)

#: Regions time at the largest size may exceed the smallest-size time by
#: at most this factor (min-of-3 timings).
FLATNESS = 1.5

#: FindMisses time must grow at least this much over the same sweep.
MIN_FIND_GROWTH = 20.0

#: Aggregate exact-region fraction required on the Table 3 kernels.
MIN_EXACT_RATIO = 0.90

#: Timing repetitions (the minimum is reported — robust to scheduler noise).
REPEATS = 3


def build_stencil3(n: int) -> Program:
    """1-D 3-point stencil chain — stride-1, fully certifiable."""
    pb = ProgramBuilder("STENCIL3")
    a = pb.array("A", (n + 2,))
    b = pb.array("B", (n + 2,))
    c = pb.array("C", (n + 2,))
    with pb.subroutine("MAIN"):
        with pb.do("I", 2, n) as i:
            pb.assign(a[i], b[i - 1], b[i], b[i + 1], label="S1")
            pb.assign(c[i], c[i], a[i - 1], a[i], label="S2")
    return pb.build()


def build_stencil5(n: int) -> Program:
    """1-D 5-point smoothing pass over two arrays."""
    pb = ProgramBuilder("STENCIL5")
    u = pb.array("U", (n + 4,))
    v = pb.array("V", (n + 4,))
    with pb.subroutine("MAIN"):
        with pb.do("I", 3, n) as i:
            pb.assign(
                v[i], u[i - 2], u[i - 1], u[i], u[i + 1], u[i + 2], label="P1"
            )
    return pb.build()


STENCILS = [("stencil3", build_stencil3), ("stencil5", build_stencil5)]


def _min_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def compute_flatness_rows():
    rows = []
    summary = []
    for name, builder in STENCILS:
        times_regions = []
        times_find = []
        for n in SIZES:
            prep = prepare(builder(n))
            reuse = prep.reuse_table(CACHE.line_bytes)
            coverage = regional_coverage(
                prep.nprog, prep.layout, CACHE, reuse
            )
            t_find, find = _min_of(
                lambda: find_misses(
                    prep.nprog, prep.layout, CACHE, reuse, walker=prep.walker
                )
            )
            t_regions, regions = _min_of(
                lambda: region_misses(prep.nprog, prep.layout, CACHE, reuse)
            )
            equal = regions.results == find.results
            times_regions.append(t_regions)
            times_find.append(t_find)
            rows.append(
                (
                    name,
                    n,
                    find.total_accesses,
                    f"{coverage:.3f}",
                    f"{t_find * 1e3:.1f}",
                    f"{t_regions * 1e3:.1f}",
                    "yes" if equal else "NO",
                )
            )
            summary.append(
                {
                    "kernel": name,
                    "n": n,
                    "accesses": find.total_accesses,
                    "coverage": coverage,
                    "find_seconds": t_find,
                    "regions_seconds": t_regions,
                    "equal": equal,
                }
            )
        summary.append(
            {
                "kernel": name,
                "regions_flatness": max(times_regions) / min(times_regions),
                "find_growth": times_find[-1] / times_find[0],
            }
        )
    return rows, summary


def compute_table3_ratio():
    from repro.kernels import build_hydro, build_mgrid, build_mmt

    kernels = [
        ("hydro", build_hydro(40, 40)),
        ("mmt", build_mmt(24, 24, 12)),
        ("mgrid", build_mgrid(30)),
    ]
    rows = []
    agg_exact = agg_fallback = 0
    obs.enable()
    try:
        for name, program in kernels:
            prep = prepare(program)
            reuse = prep.reuse_table(CACHE.line_bytes)
            find = find_misses(
                prep.nprog, prep.layout, CACHE, reuse, walker=prep.walker
            )
            obs.reset()
            regions = region_misses(prep.nprog, prep.layout, CACHE, reuse)
            exact = obs.counter("cme.regions.exact_regions").value
            fallback = obs.counter("cme.regions.fallback_regions").value
            agg_exact += exact
            agg_fallback += fallback
            rows.append(
                (
                    name,
                    exact,
                    fallback,
                    f"{exact / (exact + fallback):.3f}",
                    "yes" if regions.results == find.results else "NO",
                )
            )
    finally:
        obs.disable()
    ratio = agg_exact / (agg_exact + agg_fallback)
    return rows, ratio


def test_symbolic_flatness(benchmark):
    (rows, summary), seconds = timed_once(benchmark, compute_flatness_rows)
    text = format_table(
        ["Kernel", "N", "Accesses", "Coverage", "Find (ms)", "Regions (ms)",
         "Equal"],
        rows,
        title=(
            "Regional solver scaling — stride-1 stencils, 1KB/32B direct "
            f"(regions flat within {FLATNESS}x over "
            f"{SIZES[-1] // SIZES[0]}x bounds)"
        ),
    )
    emit("symbolic_flatness", text)
    per_kernel = [s for s in summary if "regions_flatness" in s]
    measurements = [s for s in summary if "n" in s]
    doc = {
        "schema": "repro.bench.symbolic/v1",
        "cache": "1KB/32B direct",
        "sizes": SIZES,
        "measurements": measurements,
        "scaling": per_kernel,
        "wall_seconds": seconds,
    }
    emit_json("BENCH_symbolic", doc, config={"sizes": SIZES})
    assert all(m["equal"] for m in measurements)
    assert all(m["coverage"] == 1.0 for m in measurements)
    for s in per_kernel:
        assert s["regions_flatness"] <= FLATNESS, (
            f"{s['kernel']}: regions time varied {s['regions_flatness']:.2f}x "
            f"over the sweep (limit {FLATNESS}x)"
        )
        assert s["find_growth"] >= MIN_FIND_GROWTH, (
            f"{s['kernel']}: FindMisses grew only {s['find_growth']:.1f}x — "
            "the sweep no longer stresses enumeration"
        )


def test_symbolic_table3_coverage(benchmark):
    (rows, ratio), _ = timed_once(benchmark, compute_table3_ratio)
    text = format_table(
        ["Kernel", "Exact regions", "Fallback regions", "Ratio", "Equal"],
        rows,
        title=(
            "Closed-form coverage — Table 3 kernels, 1KB/32B direct "
            f"(aggregate exact fraction {ratio:.3f})"
        ),
    )
    emit("symbolic_coverage", text)
    assert all(row[4] == "yes" for row in rows)
    assert ratio >= MIN_EXACT_RATIO, (
        f"aggregate exact-region ratio {ratio:.3f} below {MIN_EXACT_RATIO}"
    )
