"""Table 2: classification of actual parameters and calls.

The paper classifies 10 566 actuals / 2 604 calls across SPECfp95 + Perfect
(87.09% P-able, 2.21% R-able, 10.89% N-able; 86.44% of calls analysable).
Our corpus is the bundled program suite plus synthetic call-pattern
programs covering every classification row; the claim checked is the
qualitative one — the large majority of calls are analysable.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, timed_once

from repro.inline import classify_program
from repro.ir import ProgramBuilder
from repro.programs import build_applu_like, build_swim_like, build_tomcatv_like
from repro.report import format_table

PAPER_TOTALS = {
    "p_able": 9202,
    "r_able": 234,
    "n_able": 1130,
    "calls": 2604,
    "a_able": 2251,
    "pct_analysable": 86.44,
}


def mixed_call_program():
    """A synthetic program exercising P-able, R-able and N-able rows."""
    pb = ProgramBuilder("MIXED")
    a = pb.array("A", (10, 10))
    b = pb.array("B", (20, 20))
    x = pb.scalar("X")
    with pb.subroutine("MAIN"):
        with pb.do("I", 1, 4) as i:
            pb.call("F", x, a, b, b[i, 1])
            pb.call("G", a[i, 1], a, b)
            pb.call("H", "IDX(I)")
    with pb.subroutine("F") as f:
        f.scalar_formal("Y")
        f.array_formal("C", (10, 10))
        f.array_formal("D", (400,))
        f.array_formal("S", (10, 10, None))
    with pb.subroutine("G") as g:
        g.array_formal("E", (10, 10))
        g.array_formal("FF", (10,))
        g.array_formal("T", (100, 4))
    with pb.subroutine("H") as h:
        h.array_formal("C", (10,))
    return pb.build()


def corpus():
    return [
        build_tomcatv_like(16, 1),
        build_swim_like(16, 1),
        build_applu_like(10, 1),
        mixed_call_program(),
    ]


def test_table2_call_classification(benchmark):
    programs = corpus()
    stats, seconds = timed_once(
        benchmark, lambda: [classify_program(p) for p in programs]
    )
    rows = [s.as_row() for s in stats]
    totals = (
        "TOTAL",
        sum(s.p_able for s in stats),
        sum(s.r_able for s in stats),
        sum(s.n_able for s in stats),
        sum(s.calls_total for s in stats),
        sum(s.calls_analysable for s in stats),
    )
    rows.append(totals)
    text = format_table(
        ["Program", "P-able", "R-able", "N-able", "Calls", "A-able"],
        rows,
        title="Table 2 — actual parameters and calls (our corpus)",
    )
    paper = (
        "Table 2 — paper totals over SPECfp95 + Perfect: "
        f"P-able={PAPER_TOTALS['p_able']} (87.09%), "
        f"R-able={PAPER_TOTALS['r_able']} (2.21%), "
        f"N-able={PAPER_TOTALS['n_able']} (10.89%); "
        f"calls analysable {PAPER_TOTALS['a_able']}/{PAPER_TOTALS['calls']} "
        f"({PAPER_TOTALS['pct_analysable']}%)"
    )
    emit("table2", paper + "\n\n" + text)
    emit_json(
        "table2",
        {
            "wall_seconds": seconds,
            "totals": {
                "p_able": totals[1],
                "r_able": totals[2],
                "n_able": totals[3],
                "calls": totals[4],
                "a_able": totals[5],
            },
        },
        config={"programs": len(programs)},
    )
    # The qualitative claim: a large majority of calls are analysable.
    assert totals[5] / totals[4] > 0.8
    # Every classification row is exercised by the corpus.
    assert totals[1] > 0 and totals[2] > 0 and totals[3] > 0
