"""Table 5: whole-program statistics (#lines, #subroutines, #calls, #refs).

The paper's rows describe the SPECfp95 originals; ours describe the
structurally faithful miniatures (DESIGN.md §3).  The checked shape:
Tomcatv-class is a single call-free routine, Swim-class has a handful of
subroutines with parameterless calls, Applu-class has the most subroutines
and call statements.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, timed_once

from repro import program_stats
from repro.programs import build_applu_like, build_swim_like, build_tomcatv_like
from repro.report import format_table

PAPER_TABLE5 = [
    ("Tomcatv", 190, 1, 0, 79),
    ("Swim", 429, 6, 6, 52),
    ("Applu", 3868, 16, 27, 2565),
]


def compute_rows():
    programs = [
        build_tomcatv_like(64, 2),
        build_swim_like(64, 2),
        build_applu_like(32, 2),
    ]
    return [program_stats(p).as_row() for p in programs]


def test_table5_program_stats(benchmark):
    rows, seconds = timed_once(benchmark, compute_rows)
    paper = format_table(
        ["Program", "#lines", "#subroutines", "#calls", "#references"],
        PAPER_TABLE5,
        title="Table 5 — paper (SPECfp95 originals)",
    )
    measured = format_table(
        ["Program", "#lines", "#subroutines", "#calls", "#references"],
        rows,
        title="Table 5 — measured (structural miniatures)",
    )
    emit("table5", paper + "\n\n" + measured)
    emit_json(
        "table5",
        {
            "wall_seconds": seconds,
            "rows": [dict(zip(("program", "lines", "subroutines", "calls", "references"), r)) for r in rows],
        },
    )
    by_name = {r[0]: r for r in rows}
    tomcatv = by_name["TOMCATV-LIKE"]
    swim = by_name["SWIM-LIKE"]
    applu = by_name["APPLU-LIKE"]
    # Shape of the paper's table:
    assert tomcatv[2] == 1 and tomcatv[3] == 0  # single routine, no calls
    assert swim[2] > 1 and swim[3] > 0  # several routines with calls
    assert applu[2] > swim[2]  # Applu-class has the most subroutines
    assert applu[3] > swim[3]  # ... and the most call statements
