"""Hit-rate-vs-associativity curves per replacement policy (the zoo sweep).

The Vera & Xue analytical model is derived for LRU caches, but the
simulator's policy zoo (LRU / FIFO / tree-PLRU / seeded-random) lets us
measure how much of a kernel's hit rate is *policy* rather than
*geometry*: for each kernel we sweep associativity at a fixed capacity
and line size — the last point (assoc == lines) is the fully-associative
cache, exercising the FA fast path — and record one hit-rate curve per
policy.

Note the sweep holds *capacity* fixed, so the LRU inclusion property
does **not** apply (it needs a fixed set count — see
``tests/sim/test_policy_differential.py``); hit rate may legitimately
dip as sets are traded for ways.  Two structural claims that *do* hold
are asserted before anything is emitted:

* **Direct-mapped agreement** — at assoc 1 there is no replacement
  choice, so every policy's first point is identical.
* **2-way PLRU ≡ LRU** — a one-node PLRU tree is exact LRU, so the
  two curves agree at assoc 2.

Results land in ``benchmarks/results/BENCH_geometry.{txt,json}`` and are
mirrored to repo-root ``BENCH_geometry.json`` — the per-policy curve
file future PRs diff against.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, timed_once

from repro import CacheConfig, prepare
from repro.kernels import build_hydro, build_mgrid, build_mmt
from repro.report import assoc_label, format_table
from repro.sim import POLICIES, simulate_sweep

KERNELS = [
    ("HYDRO", lambda: build_hydro(24, 24)),
    ("MMT", lambda: build_mmt(24, 12, 6)),
    ("MGRID", lambda: build_mgrid(48)),
]

CACHE_KB = 1
LINE_BYTES = 32
#: 32 == lines at 1KB/32B: the last point is the fully-associative cache.
ASSOCS = (1, 2, 4, 8, 32)
SEED = 7


def sweep_kernel(prepared):
    base = CacheConfig.kb(CACHE_KB, LINE_BYTES, 1)
    curves, accesses = {}, 0
    for policy in POLICIES:
        reports = simulate_sweep(
            prepared.nprog,
            prepared.layout,
            base,
            walker=prepared.walker,
            policy=policy,
            seed=SEED,
            assocs=list(ASSOCS),
        )
        curves[policy] = [r.hit_ratio_percent for r in reports]
        accesses = reports[0].total_accesses
    return curves, accesses


def check_structure(name, curves):
    """Benchmark hygiene: never publish curves that violate policy theory."""
    first = {policy: curve[0] for policy, curve in curves.items()}
    assert len(set(first.values())) == 1, (
        f"{name}: policies disagree at direct-mapped: {first}"
    )
    two_way = ASSOCS.index(2)
    assert curves["plru"][two_way] == curves["lru"][two_way], (
        f"{name}: 2-way PLRU diverged from LRU"
    )


def compute_curves():
    results = []
    for name, builder in KERNELS:
        prepared = prepare(builder())
        curves, accesses = sweep_kernel(prepared)
        check_structure(name, curves)
        results.append(
            {
                "kernel": name,
                "accesses": accesses,
                "hit_rate_percent": {
                    policy: [round(h, 4) for h in curve]
                    for policy, curve in curves.items()
                },
            }
        )
    return results


def test_geometry_sweep(benchmark):
    results, seconds = timed_once(benchmark, compute_curves)
    rows = []
    for entry in results:
        for policy in POLICIES:
            rows.append(
                (entry["kernel"], policy)
                + tuple(
                    f"{h:.2f}" for h in entry["hit_rate_percent"][policy]
                )
            )
    table = format_table(
        ["Kernel", "Policy"] + [assoc_label(a) for a in ASSOCS],
        rows,
        title=(
            f"Hit rate % by associativity ({CACHE_KB}KB/{LINE_BYTES}B, "
            f"{assoc_label(ASSOCS[-1])} = fully associative)"
        ),
    )
    emit("BENCH_geometry", table)
    emit_json(
        "BENCH_geometry",
        {
            "wall_seconds": seconds,
            "description": (
                "Per-policy hit-rate-vs-associativity curves at fixed "
                "capacity; the final point is the fully-associative "
                "cache (FA fast path on the vectorized backend)"
            ),
            "cache_kb": CACHE_KB,
            "line_bytes": LINE_BYTES,
            "associativities": list(ASSOCS),
            "policies": list(POLICIES),
            "seed": SEED,
            "kernels": results,
        },
        config={
            "cache_kb": CACHE_KB,
            "line_bytes": LINE_BYTES,
            "associativities": list(ASSOCS),
            "seed": SEED,
        },
    )
    for entry in results:
        for policy in POLICIES:
            assert len(entry["hit_rate_percent"][policy]) == len(ASSOCS)
