"""Table 1 + Figs. 1/2: normalisation and iteration vectors of the example.

Regenerates the paper's running example: the subroutine of Fig. 1 is
normalised (Fig. 2) and the iteration-vector labels of Table 1 are printed.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, timed_once

from repro.ir import ProgramBuilder
from repro.normalize import normalize
from repro.report import format_table

N = 10

PAPER_TABLE1 = {
    ("S1", "S2"): "(1, I1, 1, I2)",
    ("S3", "S4"): "(1, I1, 2, I2)",
    ("S5",): "(2, I1, 1, I2)",
}


def figure1_program():
    pb = ProgramBuilder("FOO")
    a = pb.array("A", (N,))
    b = pb.array("B", (N, N))
    with pb.subroutine("MAIN"):
        with pb.do("I1", 2, N) as i1:
            pb.assign(a[i1 - 1], label="S1")
            with pb.do("I2", i1, N) as i2:
                pb.assign(b[i2 - 1, i1], a[i2 - 1], label="S2")
            with pb.do("I2", 1, N) as i2:
                pb.read(b[i2, i1], label="S3")
            pb.read(a[i1], label="S4")
        with pb.do("I1", 1, N - 1) as i1:
            pb.assign(a[i1 + 1], label="S5")
    return pb.build()


def test_table1_iteration_vectors(benchmark):
    program = figure1_program()
    nprog, seconds = timed_once(benchmark, lambda: normalize(program.main))
    rows = []
    for leaf in nprog.leaves:
        l1, l2 = leaf.label
        rows.append((leaf.stmt_label, f"({l1}, I1, {l2}, I2)"))
    text = format_table(
        ["Statement", "Iteration Vector"],
        rows,
        title="Table 1 — iteration vectors for the Fig. 2 program (measured)",
    )
    paper = format_table(
        ["Statement(s)", "Iteration Vector"],
        [(", ".join(k), v) for k, v in PAPER_TABLE1.items()],
        title="Table 1 — paper",
    )
    emit("table1", paper + "\n\n" + text)
    emit_json(
        "table1",
        {"wall_seconds": seconds, "vectors": dict(rows)},
        config={"n": N},
    )
    # Shape check against the paper's labels
    by_stmt = dict(rows)
    assert by_stmt["S1"] == by_stmt["S2"] == "(1, I1, 1, I2)"
    assert by_stmt["S3"] == by_stmt["S4"] == "(1, I1, 2, I2)"
    assert by_stmt["S5"] == "(2, I1, 1, I2)"
