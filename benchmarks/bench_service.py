"""Service throughput/latency: the daemon under concurrent clients.

Drives a real :class:`~repro.serve.server.AnalysisServer` over loopback
HTTP with N ∈ {1, 4, 16} concurrent clients issuing a fixed mixed workload
of 16 distinct (kernel, size, cache) FindMisses requests, twice per
concurrency level:

* **cold** — a fresh server, every equation system solved from scratch;
* **warm** — the same requests again against the same server, so every
  reference replays from the shared cross-request memo table.

Emits ``BENCH_service.json`` with p50/p99 latency and request throughput
per level; the headline is ``warm_speedup_p50`` — how much the shared
memoizer buys a steady-state daemon (the PR floor asserts ≥ 5×).
"""

import statistics
import sys
import threading
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json  # noqa: E402

from repro.report import format_table  # noqa: E402
from repro.serve import AnalysisServer, ServeClient  # noqa: E402

#: 16 distinct request documents cycling kernels, sizes and geometries.
REQUESTS = [
    {
        "kernel": ["hydro", "mgrid", "mmt"][i % 3],
        "size": [22, 10, 18][i % 3] + 2 * (i // 3),
        "cache": ["2:32:1", "4:32:2", "4:32:4"][i % 3],
        "method": "find",
        "timeout": 300.0,
    }
    for i in range(16)
]

LEVELS = (1, 4, 16)


def run_pass(url: str, n_clients: int) -> list:
    """All 16 requests split across ``n_clients`` concurrent clients;
    returns per-request latencies in seconds."""
    latencies: list = [None] * len(REQUESTS)
    errors: list = []

    def worker(cid: int):
        client = ServeClient(url, timeout=300.0)
        for i in range(cid, len(REQUESTS), n_clients):
            doc = dict(REQUESTS[i], client=f"bench-{cid}")
            started = time.perf_counter()
            try:
                client.analyze(doc)
            except Exception as exc:  # surfaced after the join
                errors.append((i, exc))
                return
            latencies[i] = time.perf_counter() - started

    threads = [
        threading.Thread(target=worker, args=(cid,))
        for cid in range(n_clients)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    if errors:
        raise RuntimeError(f"bench requests failed: {errors}")
    return latencies, wall


def quantile(values, q):
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    cut = statistics.quantiles(ordered, n=100, method="inclusive")
    return cut[min(98, max(0, int(q * 100) - 1))]


def pass_stats(latencies, wall):
    return {
        "requests": len(latencies),
        "p50_seconds": quantile(latencies, 0.50),
        "p99_seconds": quantile(latencies, 0.99),
        "req_per_s": len(latencies) / wall if wall > 0 else 0.0,
        "wall_seconds": wall,
    }


def run_level(n_clients: int) -> dict:
    """Cold + warm pass at one concurrency level on a fresh server."""
    with AnalysisServer(port=0, workers=4, dispatchers=4).start() as server:
        cold = pass_stats(*run_pass(server.url, n_clients))
        warm = pass_stats(*run_pass(server.url, n_clients))
        memo = dict(
            hits=server.memo.hits,
            misses=server.memo.misses,
            groups=server.memo.groups,
        )
    return {
        "clients": n_clients,
        "cold": cold,
        "warm": warm,
        "warm_speedup_p50": cold["p50_seconds"] / warm["p50_seconds"],
        "memo": memo,
    }


def compute_levels():
    return [run_level(n) for n in LEVELS]


def test_service_throughput(benchmark):
    started = time.perf_counter()
    levels = benchmark.pedantic(compute_levels, rounds=1, iterations=1)
    seconds = time.perf_counter() - started
    rows = [
        (
            level["clients"],
            f"{level['cold']['p50_seconds'] * 1e3:.1f}",
            f"{level['warm']['p50_seconds'] * 1e3:.1f}",
            f"{level['cold']['p99_seconds'] * 1e3:.1f}",
            f"{level['warm']['p99_seconds'] * 1e3:.1f}",
            f"{level['cold']['req_per_s']:.1f}",
            f"{level['warm']['req_per_s']:.1f}",
            f"{level['warm_speedup_p50']:.1f}x",
        )
        for level in levels
    ]
    text = format_table(
        [
            "Clients",
            "cold p50 (ms)",
            "warm p50 (ms)",
            "cold p99 (ms)",
            "warm p99 (ms)",
            "cold req/s",
            "warm req/s",
            "p50 speedup",
        ],
        rows,
        title="Analysis service — 16 mixed FindMisses requests per pass",
    )
    emit("service", text)
    emit_json(
        "BENCH_service",
        {"wall_seconds": seconds, "levels": levels},
        wall_seconds=seconds,
        config={"levels": list(LEVELS), "requests": len(REQUESTS)},
    )
    # The shared memoizer is the whole point of the daemon: a warm pass
    # must beat the cold one by a wide margin at every concurrency level.
    for level in levels:
        assert level["warm_speedup_p50"] >= 5.0, level
        assert level["memo"]["hits"] > 0
