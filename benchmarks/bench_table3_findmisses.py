"""Table 3: FindMisses vs cache simulation on the three kernels.

Paper (32KB/32B, KN=JN=100, M=100, N=BJ=100 & BK=50):

    Hydro  — identical miss counts for direct/2-way/4-way (err 0.00)
    MGRID  — identical miss counts for direct/2-way/4-way (err 0.00)
    MMT    — slight over-estimation (err 0.05 / 0.03 / 0.02)

We run scaled sizes (FindMisses costs O(points × window) in pure Python)
and check the same shape: exact agreement on Hydro/MGRID, conservative
over-estimation on MMT.  Cache scaled with the problem (4KB/32B) so the
kernels still miss.
"""

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, once, timed_once

from repro import CacheConfig, Memoizer, analyze, prepare, run_simulation
from repro.kernels import build_hydro, build_mgrid, build_mmt
from repro.report import assoc_label, format_table

PAPER_TABLE3 = [
    # program, assoc, sim misses, find misses, sim %, find %, abs err
    ("Hydro", 1, 52603, 52603, 14.12, 14.12, 0.00),
    ("Hydro", 2, 52603, 52603, 14.12, 14.12, 0.00),
    ("Hydro", 4, 42703, 42703, 11.47, 11.47, 0.00),
    ("MGRID", 1, 1518879, 1518879, 9.49, 9.49, 0.00),
    ("MGRID", 2, 1424038, 1424038, 8.90, 8.90, 0.00),
    ("MGRID", 4, 1424038, 1424038, 8.90, 8.90, 0.00),
    ("MMT", 1, 145671, 147075, 4.82, 4.87, 0.05),
    ("MMT", 2, 171647, 172592, 5.68, 5.71, 0.03),
    ("MMT", 4, 246980, 247744, 8.18, 8.20, 0.02),
]

SCALED = [
    ("Hydro", lambda: build_hydro(32, 32), True),
    ("MGRID", lambda: build_mgrid(12), True),
    ("MMT", lambda: build_mmt(24, 24, 12), False),  # B/WB not uniformly generated
]

CACHE_KB = 4


def compute_rows():
    rows = []
    exactness = []
    for name, builder, expect_exact in SCALED:
        prepared = prepare(builder())
        for assoc in (1, 2, 4):
            cache = CacheConfig.kb(CACHE_KB, 32, assoc)
            analytic = analyze(prepared, cache, method="find")
            simulated = run_simulation(prepared, cache)
            err = abs(
                analytic.miss_ratio_percent - simulated.miss_ratio_percent
            )
            rows.append(
                (
                    name,
                    assoc_label(assoc),
                    simulated.total_misses,
                    int(analytic.total_misses),
                    simulated.miss_ratio_percent,
                    analytic.miss_ratio_percent,
                    err,
                    analytic.elapsed_seconds,
                )
            )
            exactness.append(
                (name, expect_exact, simulated.total_misses, analytic.total_misses)
            )
    return rows, exactness


def test_table3_findmisses_vs_simulator(benchmark):
    (rows, exactness), seconds = timed_once(benchmark, compute_rows)
    paper = format_table(
        ["Program", "Cache", "Sim #miss", "Find #miss", "Sim %", "Find %", "Abs.Err"],
        [r[:7] for r in PAPER_TABLE3],
        title="Table 3 — paper (32KB/32B, paper-scale sizes)",
    )
    measured = format_table(
        [
            "Program",
            "Cache",
            "Sim #miss",
            "Find #miss",
            "Sim %",
            "Find %",
            "Abs.Err",
            "Find t(s)",
        ],
        rows,
        title=f"Table 3 — measured ({CACHE_KB}KB/32B, scaled sizes)",
    )
    emit("table3", paper + "\n\n" + measured)
    emit_json(
        "table3",
        {
            "wall_seconds": seconds,
            "rows": [
                {
                    "program": r[0],
                    "cache": r[1],
                    "abs_err": r[6],
                    "find_seconds": r[7],
                }
                for r in rows
            ],
        },
        config={"cache_kb": CACHE_KB},
    )
    for name, expect_exact, sim_misses, find_misses in exactness:
        if expect_exact:
            assert find_misses == sim_misses, f"{name} should match exactly"
        else:
            assert find_misses >= sim_misses, f"{name} must be conservative"


def memo_sweep(builder, cache_dir, jobs=1):
    """One full Table 3 sweep (all associativities) against a memo store.

    ``prepare`` runs fresh each sweep, so the measured warm speedup is the
    honest end-to-end one: the front half of the pipeline is re-paid, only
    the solved equation systems are replayed from disk.
    """
    started = time.perf_counter()
    prepared = prepare(builder())
    reports = []
    with Memoizer.open(cache_dir) as memo:
        for assoc in (1, 2, 4):
            cache = CacheConfig.kb(CACHE_KB, 32, assoc)
            reports.append(
                analyze(prepared, cache, method="find", memo=memo, jobs=jobs)
            )
    return reports, memo, time.perf_counter() - started


def compute_memo_rows(tmp_dir):
    rows = []
    for name, builder, _ in SCALED:
        cache_dir = f"{tmp_dir}/{name}"
        cold_reports, cold, cold_t = memo_sweep(builder, cache_dir)
        warm_reports, warm, warm_t = memo_sweep(builder, cache_dir)
        par_reports, par, par_t = memo_sweep(builder, cache_dir, jobs=4)

        assert warm_reports == cold_reports, f"{name}: warm run diverged"
        assert par_reports == cold_reports, f"{name}: jobs=4 warm run diverged"
        assert warm.misses == 0, f"{name}: warm run re-solved systems"
        assert warm.hits == cold.hits + cold.misses
        assert (warm.hits, warm.misses, warm.groups) == (
            par.hits,
            par.misses,
            par.groups,
        ), f"{name}: memo counters differ between serial and jobs=4"

        speedup = cold_t / warm_t if warm_t > 0 else float("inf")
        assert speedup >= 5.0, (
            f"{name}: warm sweep only {speedup:.1f}x faster than cold"
        )
        rows.append(
            (name, cold.misses, cold.hits, cold_t, warm_t, par_t, speedup)
        )
    return rows


def test_table3_memoization_cold_vs_warm(benchmark, tmp_path):
    rows = once(benchmark, lambda: compute_memo_rows(str(tmp_path)))
    emit(
        "table3_memo",
        format_table(
            [
                "Program",
                "Solved",
                "Deduped",
                "Cold t(s)",
                "Warm t(s)",
                "Warm t(s) j=4",
                "Speedup",
            ],
            rows,
            title=(
                f"Table 3 kernels — cold vs warm FindMisses with --cache-dir "
                f"({CACHE_KB}KB/32B, all associativities)"
            ),
        ),
    )
