"""The headline claim: analysis cost is flat in trace length; simulation is
linear (Applu: 128 s vs ~5 h, "three orders of magnitude").

``EstimateMisses`` classifies a *fixed* number of sampled points per
reference — set by (c, w), independent of the iteration counts — while the
simulator must replay every access.  Sweeping the Tomcatv-class program's
time-step count multiplies the trace length without changing the code
shape; the measured analysis/simulation time ratio must grow with it.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, once, timed_once

from repro import CacheConfig, analyze, obs, prepare, run_simulation
from repro.obs.export import top_counters, validate_snapshot
from repro.programs import build_tomcatv_like
from repro.report import format_table

STEPS = [1, 2, 4, 8]
N = 32
JOBS = [1, 2, 4]


def compute_jobs_rows():
    """Sweep the parallel engine's job count on a fixed program."""
    prepared = prepare(build_tomcatv_like(N, 4))
    cache = CacheConfig.kb(4, 32, 1)
    rows = []
    baseline = None
    for jobs in JOBS:
        report = analyze(prepared, cache, method="estimate", seed=0, jobs=jobs)
        if baseline is None:
            baseline = report
        rows.append(
            (
                jobs,
                report.elapsed_seconds,
                report.points_per_second,
                baseline.elapsed_seconds / max(report.elapsed_seconds, 1e-9),
                "yes" if report == baseline else "NO",
            )
        )
    return rows


def compute_rows():
    rows = []
    for steps in STEPS:
        prepared = prepare(build_tomcatv_like(N, steps))
        cache = CacheConfig.kb(4, 32, 1)
        est = analyze(prepared, cache, method="estimate", seed=0)
        sim = run_simulation(prepared, cache)
        rows.append(
            (
                steps,
                sim.total_accesses,
                est.analysed_points,
                est.elapsed_seconds,
                sim.elapsed_seconds,
                sim.elapsed_seconds / max(est.elapsed_seconds, 1e-9),
                abs(est.miss_ratio_percent - sim.miss_ratio_percent),
            )
        )
    return rows


def test_jobs_scaling(benchmark):
    rows = once(benchmark, compute_jobs_rows)
    text = format_table(
        ["Jobs", "Analysis t(s)", "Points/s", "Speedup", "Identical"],
        rows,
        title=(
            "Parallel engine scaling — Tomcatv-class, EstimateMisses, "
            "4KB/32B direct (reports must be identical across jobs)"
        ),
    )
    emit("jobs_scaling", text)
    # Determinism is non-negotiable: every job count yields the same report.
    assert all(row[4] == "yes" for row in rows)


def compute_pipeline_metrics():
    """One fully observed end-to-end run: prepare → reuse → solve → sim."""
    obs.enable()
    obs.reset()
    try:
        prepared = prepare(build_tomcatv_like(N, 4))
        cache = CacheConfig.kb(4, 32, 1)
        analyze(prepared, cache, method="estimate", seed=0)
        run_simulation(prepared, cache)
        snapshot = obs.snapshot()
        phases = [
            {"name": name, "count": count, "seconds": seconds}
            for name, count, seconds in obs.phase_times()
        ]
    finally:
        obs.disable()
    return {
        "schema": "repro.bench.pipeline/v1",
        "workload": f"tomcatv-like N={N} steps=4",
        "cache": "4KB/32B direct",
        "phases": phases,
        "top_counters": dict(top_counters(snapshot, k=3)),
        "metrics": snapshot,
    }


def test_pipeline_metrics(benchmark):
    """Emit BENCH_pipeline.json: per-phase wall times + top-3 counters.

    This is the perf-trajectory anchor — future PRs compare their phase
    breakdown against this file to show where an optimisation moved time.
    """
    doc, seconds = timed_once(benchmark, compute_pipeline_metrics)
    doc["wall_seconds"] = seconds
    emit_json("BENCH_pipeline", doc)
    phase_names = {p["name"] for p in doc["phases"]}
    assert {"prepare/normalise", "prepare/layout", "reuse/build_table",
            "cme/estimate", "sim/walk"} <= phase_names
    assert all(p["seconds"] >= 0.0 for p in doc["phases"])
    assert len(doc["top_counters"]) == 3
    assert validate_snapshot(doc["metrics"]) == []


def test_speedup_scaling(benchmark):
    rows = once(benchmark, compute_rows)
    text = format_table(
        [
            "Steps",
            "Trace len",
            "Sampled",
            "Analysis t(s)",
            "Sim t(s)",
            "Sim/Analysis",
            "Abs.Err",
        ],
        rows,
        title=(
            "Speedup scaling — Tomcatv-class, 4KB/32B direct "
            "(paper: Applu 128 s analysis vs ~5 h simulation)"
        ),
    )
    emit("speedup_scaling", text)
    # Trace length grows linearly with steps...
    assert rows[-1][1] > 6 * rows[0][1]
    # ...but the number of analysed points stays flat (sampling).
    assert rows[-1][2] <= rows[0][2] * 1.5
    # Therefore the simulator/analysis time ratio improves with scale.
    assert rows[-1][5] > rows[0][5]
