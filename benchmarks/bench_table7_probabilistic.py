"""Table 7: EstimateMisses vs Fraguela et al.'s probabilistic method on MMT.

Paper: sixteen (N, BJ, BK, Cs, Ls, k) configurations; EstimateMisses'
relative error Δ_E beats the probabilistic Δ_P in *all* cases, with Δ_P
blowing up (to ~44%) at the largest line size.

We run the sixteen configurations scaled by 1/8 in the problem dimension
(and cache size, keeping line sizes in elements) against our own
PME-flavoured baseline, and check the same two claims: Δ_E < Δ_P
everywhere (allowing a tie or two from sampling noise) and the worst Δ_P
occurring at large Ls.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, timed_once

from repro import CacheConfig, analyze, prepare, run_simulation
from repro.baselines import probabilistic_misses
from repro.report import format_table

# Paper rows: (N, BJ, BK, Cs(KB), Ls(elements), k, dP, dE)
PAPER_TABLE7 = [
    (200, 100, 100, 16, 8, 2, 6.23, 0.10),
    (200, 100, 100, 256, 16, 2, 2.73, 0.50),
    (200, 200, 100, 32, 8, 1, 6.88, 0.06),
    (200, 200, 100, 128, 8, 2, 2.86, 0.05),
    (200, 200, 100, 128, 32, 2, 44.25, 16.00),
    (200, 50, 200, 16, 4, 1, 4.62, 0.05),
    (200, 100, 200, 32, 8, 2, 12.51, 0.10),
    (200, 100, 200, 64, 16, 1, 3.31, 0.40),
    (400, 100, 100, 16, 8, 2, 4.48, 0.03),
    (400, 100, 100, 256, 16, 2, 4.26, 0.50),
    (400, 200, 100, 32, 8, 1, 2.65, 0.40),
    (400, 200, 100, 128, 8, 2, 5.82, 0.05),
    (400, 200, 100, 128, 32, 2, 44.68, 16.00),
    (400, 50, 200, 16, 4, 1, 2.02, 0.05),
    (400, 100, 200, 32, 8, 2, 5.55, 0.06),
    (400, 100, 200, 64, 16, 1, 7.12, 0.30),
]

SCALE = 8  # problem and cache dimensions divided by this factor


def scaled_configs():
    for n, bj, bk, cs_kb, ls, k, _, _ in PAPER_TABLE7:
        yield (
            n // SCALE,
            max(1, bj // SCALE),
            max(1, bk // SCALE),
            max(256, cs_kb * 1024 // SCALE // 4),
            ls,
            k,
        )


def relative_error(estimated: float, real: float) -> float:
    if real == 0:
        return 0.0 if estimated == 0 else 100.0
    return 100.0 * abs(estimated - real) / real


def compute_rows():
    rows = []
    prepared_cache = {}
    for n, bj, bk, cs_bytes, ls, k in scaled_configs():
        key = (n, bj, bk)
        if key not in prepared_cache:
            from repro.kernels import build_mmt

            prepared_cache[key] = prepare(build_mmt(n, bj, bk))
        prepared = prepared_cache[key]
        line_bytes = ls * 8
        if cs_bytes % (line_bytes * k):
            cs_bytes = line_bytes * k * max(1, cs_bytes // (line_bytes * k))
        cache = CacheConfig(cs_bytes, line_bytes, k)
        sim = run_simulation(prepared, cache).miss_ratio
        est = analyze(prepared, cache, method="estimate", seed=0).miss_ratio
        prob = probabilistic_misses(
            prepared.nprog,
            prepared.layout,
            cache,
            reuse=prepared.reuse_table(cache.line_bytes),
        ).miss_ratio
        rows.append(
            (
                n,
                bj,
                bk,
                round(cs_bytes / 1024, 2),
                ls,
                k,
                relative_error(prob, sim),
                relative_error(est, sim),
            )
        )
    return rows


def test_table7_probabilistic_comparison(benchmark):
    rows, seconds = timed_once(benchmark, compute_rows)
    paper = format_table(
        ["N", "BJ", "BK", "Cs(KB)", "Ls", "k", "dP", "dE"],
        PAPER_TABLE7,
        title="Table 7 — paper (relative errors %, Fraguela et al. vs E.M.)",
    )
    measured = format_table(
        ["N", "BJ", "BK", "Cs(KB)", "Ls", "k", "dP", "dE"],
        rows,
        title=f"Table 7 — measured (scaled x1/{SCALE}, our PME-style baseline)",
    )
    emit("table7", paper + "\n\n" + measured)
    emit_json(
        "table7",
        {
            "wall_seconds": seconds,
            "wins": sum(1 for r in rows if r[7] <= r[6]),
            "configs": len(rows),
            "worst_dp": max(r[6] for r in rows),
            "worst_de": max(r[7] for r in rows),
        },
        config={"scale": SCALE},
    )
    wins = sum(1 for r in rows if r[7] <= r[6])
    assert wins >= len(rows) - 2, "EstimateMisses must win (almost) everywhere"
    # The probabilistic model's worst cases sit at the larger line sizes.
    worst = max(rows, key=lambda r: r[6])
    assert worst[4] >= 8
