"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, printing the
paper's published rows next to our measured rows and writing the rendered
table to ``benchmarks/results/<name>.txt`` (so the output survives pytest's
stdout capture).  Problem sizes default to *scaled-down* values so the whole
suite runs in minutes; the paper's sizes are noted in each module.
"""

from __future__ import annotations

import json
import os
from typing import Callable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(name: str, text: str) -> str:
    """Print a rendered table and persist it under ``benchmarks/results``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    return path


def emit_json(name: str, document: dict) -> str:
    """Persist a machine-readable document (the ``BENCH_*.json`` trajectory
    files future PRs diff against) under ``benchmarks/results``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\n[{name}] written to {path}")
    return path
