"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, printing the
paper's published rows next to our measured rows and writing the rendered
table to ``benchmarks/results/<name>.txt`` (so the output survives pytest's
stdout capture).  Problem sizes default to *scaled-down* values so the whole
suite runs in minutes; the paper's sizes are noted in each module.

Machine-readable summaries (:func:`emit_json`) are additionally mirrored to
top-level ``BENCH_<name>.json`` files at the repository root — the perf
trajectory successive PRs diff against — and every :func:`emit_json` call
appends a ``repro.ledger/v1`` row (label ``bench:<name>``) to
``benchmarks/results/ledger.jsonl``, so local benchmark runs accumulate the
history that ``repro-cache perf check``/``perf report`` consume.  Set
``REPRO_BENCH_LEDGER`` to redirect the ledger (CI points it at a throwaway
file) or to ``0``/empty to disable it.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, Optional

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

#: Default JSON-lines run ledger shared by all benchmarks.
LEDGER_PATH = os.path.join(RESULTS_DIR, "ledger.jsonl")


def _ledger_path() -> Optional[str]:
    override = os.environ.get("REPRO_BENCH_LEDGER")
    if override is None:
        return LEDGER_PATH
    if override in ("", "0"):
        return None
    return override


def once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def timed_once(benchmark, fn: Callable):
    """Like :func:`once`, also returning the measured wall seconds.

    The ``(result, seconds)`` pair feeds :func:`emit_json`'s ledger row, so
    benchmarks record their own end-to-end timing without reaching into
    pytest-benchmark internals.
    """
    from time import perf_counter

    box: dict = {}

    def wrapped():
        started = perf_counter()
        result = fn()
        box["seconds"] = perf_counter() - started
        return result

    result = benchmark.pedantic(wrapped, rounds=1, iterations=1)
    return result, box["seconds"]


def emit(name: str, text: str) -> str:
    """Print a rendered table and persist it under ``benchmarks/results``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    return path


def emit_json(
    name: str,
    document: dict,
    wall_seconds: Optional[float] = None,
    config: Optional[dict] = None,
) -> str:
    """Persist a machine-readable document (the ``BENCH_*.json`` trajectory
    files future PRs diff against) under ``benchmarks/results``, mirrored
    to ``BENCH_<name>.json`` at the repository root.

    Every call also appends a ``repro.ledger/v1`` row (label
    ``bench:<name>``) to the shared benchmark ledger; ``wall_seconds`` is
    the benchmark's own end-to-end timing (falls back to a
    ``"wall_seconds"``/``"elapsed_seconds"`` key of ``document``) and
    ``config`` records the knobs that identify the run (problem sizes,
    cache geometry, ...) so ledger history restarts when they change.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    with open(path, "w") as fh:
        fh.write(text)
    # Strip any existing BENCH_ prefix so emit_json("BENCH_pipeline", ...)
    # mirrors to BENCH_pipeline.json, not BENCH_BENCH_pipeline.json.
    stem = name[len("BENCH_"):] if name.startswith("BENCH_") else name
    mirror = os.path.join(REPO_ROOT, f"BENCH_{stem}.json")
    with open(mirror, "w") as fh:
        fh.write(text)
    print(f"\n[{name}] written to {path} (mirrored to {mirror})")
    _append_ledger_row(stem, document, wall_seconds, config)
    return path


def _append_ledger_row(
    stem: str,
    document: dict,
    wall_seconds: Optional[float],
    config: Optional[dict],
) -> None:
    ledger_path = _ledger_path()
    if ledger_path is None:
        return
    from repro.obs import ledger

    if wall_seconds is None:
        wall_seconds = document.get("wall_seconds") or document.get(
            "elapsed_seconds"
        )
    row = ledger.build_row(
        f"bench:{stem}",
        config=config or {},
        wall_seconds=wall_seconds,
        phases={},
        counters={},
    )
    ledger.append_row(ledger_path, row)
    print(f"[{stem}] ledger row {row['run_id']} appended to {ledger_path}")
