"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, printing the
paper's published rows next to our measured rows and writing the rendered
table to ``benchmarks/results/<name>.txt`` (so the output survives pytest's
stdout capture).  Problem sizes default to *scaled-down* values so the whole
suite runs in minutes; the paper's sizes are noted in each module.

Machine-readable summaries (:func:`emit_json`) are additionally mirrored to
top-level ``BENCH_<name>.json`` files at the repository root — the perf
trajectory successive PRs diff against.
"""

from __future__ import annotations

import json
import os
from typing import Callable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(name: str, text: str) -> str:
    """Print a rendered table and persist it under ``benchmarks/results``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    return path


def emit_json(name: str, document: dict) -> str:
    """Persist a machine-readable document (the ``BENCH_*.json`` trajectory
    files future PRs diff against) under ``benchmarks/results``, mirrored
    to ``BENCH_<name>.json`` at the repository root."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    with open(path, "w") as fh:
        fh.write(text)
    # Strip any existing BENCH_ prefix so emit_json("BENCH_pipeline", ...)
    # mirrors to BENCH_pipeline.json, not BENCH_BENCH_pipeline.json.
    stem = name[len("BENCH_"):] if name.startswith("BENCH_") else name
    mirror = os.path.join(REPO_ROOT, f"BENCH_{stem}.json")
    with open(mirror, "w") as fh:
        fh.write(text)
    print(f"\n[{name}] written to {path} (mirrored to {mirror})")
    return path
