"""Backend speedup: vectorized NumPy batch classification vs pure Python.

The paper's pitch is analytical speed; PR 5 adds a NumPy backend that
evaluates the cold/replacement equations over whole point batches and
answers replacement windows from a lex-sorted trace index.  This benchmark
times exhaustive ``FindMisses`` on the Table 3 kernels under both backends,
asserts the reports are **bit-identical**, and requires the vectorized
backend to be at least ``MIN_SPEEDUP``× faster on every kernel.

The machine-readable summary lands in ``BENCH_backend.json`` at the repo
root (via the ``emit_json`` mirror) — the perf trajectory later PRs diff
against.
"""

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, once, timed_once

from repro import CacheConfig, analyze, prepare
from repro.report import format_table

from repro.kernels import build_hydro, build_mgrid, build_mmt

#: Table 3 kernels at scaled sizes (same spirit as bench_table3_findmisses;
#: MGRID slightly larger so the scalar baseline dominates fixed overheads).
KERNELS = [
    ("Hydro", lambda: build_hydro(32, 32)),
    ("MGRID", lambda: build_mgrid(16)),
    ("MMT", lambda: build_mmt(24, 24, 12)),
]

CACHE = CacheConfig.kb(4, 32, 2)

#: Acceptance floor for the FindMisses speedup on every Table 3 kernel.
MIN_SPEEDUP = 10.0


def _timed_find(prepared, backend: str):
    started = time.perf_counter()
    report = analyze(prepared, CACHE, method="find", backend=backend)
    return report, time.perf_counter() - started


def compute_rows():
    # Warm NumPy's import machinery so the first timed run is not charged.
    analyze(prepare(build_mgrid(6)), CACHE, method="find", backend="numpy")
    rows = []
    for name, builder in KERNELS:
        prepared = prepare(builder())
        scalar_report, scalar_t = _timed_find(prepared, "scalar")
        numpy_report, numpy_t = _timed_find(prepared, "numpy")
        assert numpy_report == scalar_report, (
            f"{name}: numpy backend diverged from scalar"
        )
        speedup = scalar_t / numpy_t if numpy_t > 0 else float("inf")
        rows.append(
            {
                "kernel": name,
                "points": scalar_report.analysed_points,
                "miss_ratio_percent": scalar_report.miss_ratio_percent,
                "scalar_seconds": round(scalar_t, 4),
                "numpy_seconds": round(numpy_t, 4),
                "speedup": round(speedup, 2),
                "identical": True,
            }
        )
    return rows


def test_backend_speedup(benchmark):
    rows, seconds = timed_once(benchmark, compute_rows)
    emit(
        "backend_speedup",
        format_table(
            ["Kernel", "Points", "Miss %", "Scalar t(s)", "NumPy t(s)", "Speedup"],
            [
                (
                    r["kernel"],
                    r["points"],
                    f"{r['miss_ratio_percent']:.2f}",
                    f"{r['scalar_seconds']:.2f}",
                    f"{r['numpy_seconds']:.3f}",
                    f"{r['speedup']:.1f}x",
                )
                for r in rows
            ],
            title=(
                f"FindMisses backend speedup — Table 3 kernels on "
                f"{CACHE.describe()} (bit-identical reports)"
            ),
        ),
    )
    emit_json(
        "backend",
        {
            "wall_seconds": seconds,
            "bench": "backend_speedup",
            "cache": CACHE.describe(),
            "method": "find",
            "min_speedup_required": MIN_SPEEDUP,
            "kernels": rows,
        },
    )
    for r in rows:
        assert r["speedup"] >= MIN_SPEEDUP, (
            f"{r['kernel']}: numpy backend only {r['speedup']:.1f}x faster "
            f"(required >= {MIN_SPEEDUP:.0f}x)"
        )
