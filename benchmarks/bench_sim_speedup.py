"""Vectorized simulator speedup on the Table 6 validation sweeps.

The paper validates FindMisses/EstimateMisses against trace-driven
simulation over a sweep of associativities per program (Table 6's
direct/2-way/4-way columns).  After PR 5 the scalar simulator dominated
that validation loop; the stack-distance kernel attacks exactly
this cost: the trace is *independent of associativity*, so one sweep
builds it once and re-runs only the per-associativity kernel, while the
scalar walker must re-walk the whole program per cache.

Measured here, per Table 6 program: the full 3-associativity validation
sweep through ``simulate(backend="scalar")`` versus
``simulate_sweep`` on the batch backend (one trace build + line
decomposition shared across the sweep, one kernel per cache).
The floor is a ≥10× sweep speedup on every program.  Counts are asserted
bit-identical before any timing (benchmark hygiene: a fast wrong kernel
must fail loudly, not set a record).

Results land in ``benchmarks/results/BENCH_sim.{txt,json}`` and are
mirrored to repo-root ``BENCH_sim.json`` — the perf trajectory file.
"""

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, once, timed_once

import pytest

from repro import CacheConfig, prepare
from repro.programs import build_applu_like, build_swim_like, build_tomcatv_like
from repro.report import assoc_label, format_table
from repro.sim.simulator import _simulate_scalar

np = pytest.importorskip("numpy", reason="the batch simulator needs NumPy")

from repro.sim import batch  # noqa: E402  (needs numpy)

SCALED = [
    ("TOMCATV", lambda: build_tomcatv_like(40, 2)),
    ("SWIM", lambda: build_swim_like(40, 2)),
    ("APPLU", lambda: build_applu_like(20, 2)),
]

CACHE_KB = 4
ASSOCS = (1, 2, 4)
MIN_SPEEDUP = 10.0
REPS = 3


def scalar_sweep(prepared, caches):
    return [
        _simulate_scalar(prepared.nprog, prepared.layout, c, prepared.walker)
        for c in caches
    ]


def batch_sweep(prepared, caches):
    return batch.simulate_sweep(
        prepared.nprog, prepared.layout, caches, walker=prepared.walker
    )


def best_of(fn, reps=REPS):
    best, result = float("inf"), None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def check_identical(prepared, scalar_reports, batch_reports, name):
    """Benchmark hygiene: never time a kernel that diverges."""
    for s, b in zip(scalar_reports, batch_reports):
        assert b.accesses == s.accesses, f"{name}: access tallies diverged"
        assert b.misses == s.misses, f"{name}: miss tallies diverged"


def compute_rows():
    rows, info_rows = [], []
    for name, builder in SCALED:
        prepared = prepare(builder())
        caches = [CacheConfig.kb(CACHE_KB, 32, a) for a in ASSOCS]
        # Warm both paths once, asserting bit-identity before timing.
        scalar_reports = scalar_sweep(prepared, caches)
        batch_reports = batch_sweep(prepared, caches)
        check_identical(prepared, scalar_reports, batch_reports, name)
        scalar_t, scalar_reports = best_of(lambda: scalar_sweep(prepared, caches))
        batch_t, batch_reports = best_of(lambda: batch_sweep(prepared, caches))
        accesses = scalar_reports[0].total_accesses
        rows.append(
            {
                "program": name,
                "accesses": accesses,
                "caches": len(caches),
                "scalar_seconds": round(scalar_t, 4),
                "batch_seconds": round(batch_t, 4),
                "speedup": round(scalar_t / batch_t, 1),
                "identical": True,
            }
        )
        for cache, s, b in zip(caches, scalar_reports, batch_reports):
            info_rows.append(
                (
                    name,
                    assoc_label(cache.assoc),
                    f"{s.miss_ratio_percent:.2f}",
                    s.elapsed_seconds,
                    b.elapsed_seconds,
                    round(s.elapsed_seconds / b.elapsed_seconds, 1),
                )
            )
    return rows, info_rows


def test_sim_speedup(benchmark):
    (rows, info_rows), seconds = timed_once(benchmark, compute_rows)
    table = format_table(
        ["Program", "Accesses", "Scalar t(s)", "Batch t(s)", "Speedup"],
        [
            (
                r["program"],
                3 * r["accesses"],
                r["scalar_seconds"],
                r["batch_seconds"],
                f"{r['speedup']}x",
            )
            for r in rows
        ],
        title=(
            f"Table 6 validation sweep ({CACHE_KB}KB/32B, assoc 1/2/4): "
            f"scalar simulator vs stack-distance kernel"
        ),
    )
    per_assoc = format_table(
        ["Program", "Cache", "Miss %", "Scalar t(s)", "Batch t(s)", "Speedup"],
        info_rows,
        title="Per-associativity runs (informational; sweep is the claim)",
    )
    emit("BENCH_sim", table + "\n\n" + per_assoc)
    emit_json(
        "BENCH_sim",
        {
            "wall_seconds": seconds,
            "description": (
                "Whole-sweep FindMisses-validation speedup: 3-assoc Table 6 "
                "sweep via the scalar walker vs one trace build + 3 "
                "stack-distance kernels, best of "
                f"{REPS}, bit-identical tallies asserted before timing"
            ),
            "cache_kb": CACHE_KB,
            "line_bytes": 32,
            "associativities": list(ASSOCS),
            "min_speedup_required": MIN_SPEEDUP,
            "programs": rows,
        },
    )
    for r in rows:
        assert r["speedup"] >= MIN_SPEEDUP, (
            f"{r['program']}: sweep only {r['speedup']}x faster "
            f"(floor {MIN_SPEEDUP}x)"
        )
