"""Table 6: EstimateMisses vs simulation on the three whole programs.

Paper (32KB/32B, c=95%, w=0.05, reference inputs): absolute errors of
0.25–0.84 percentage points, with EstimateMisses running in seconds while
the simulator needs hours — a three-orders-of-magnitude speedup for Applu.

At miniature scale the simulator is still fast, so the headline *speedup*
claim is reproduced separately by ``bench_speedup_scaling.py`` (analysis
cost is flat in trace length; simulation is linear).  Here we reproduce the
accuracy rows: the analytical ratios track simulation closely on all three
programs and all three associativities.
"""

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, once, timed_once

from repro import CacheConfig, Memoizer, analyze, prepare, run_simulation
from repro.programs import build_applu_like, build_swim_like, build_tomcatv_like
from repro.report import assoc_label, format_table

PAPER_TABLE6 = [
    ("Tomcatv", "direct", 11.42, 11.02, 0.40, 0.30, 3676.2),
    ("Tomcatv", "2-way", 11.40, 11.00, 0.40, 0.37, 3750.3),
    ("Tomcatv", "4-way", 11.41, 11.00, 0.41, 0.58, 3860.2),
    ("Swim", "direct", 7.26, 7.01, 0.25, 2.47, 8136.0),
    ("Swim", "2-way", 6.98, 6.73, 0.25, 2.63, 8281.1),
    ("Swim", "4-way", 7.24, 6.97, 0.27, 3.23, 8425.8),
    ("Applu", "direct", 6.95, 7.73, 0.78, 127.31, 17089.0),
    ("Applu", "2-way", 6.60, 7.42, 0.82, 127.60, 17155.0),
    ("Applu", "4-way", 6.56, 7.40, 0.84, 127.50, 17278.0),
]

SCALED = [
    ("TOMCATV", lambda: build_tomcatv_like(40, 2)),
    ("SWIM", lambda: build_swim_like(40, 2)),
    ("APPLU", lambda: build_applu_like(20, 2)),
]

CACHE_KB = 4


def compute_rows():
    rows = []
    for name, builder in SCALED:
        prepared = prepare(builder())
        for assoc in (1, 2, 4):
            cache = CacheConfig.kb(CACHE_KB, 32, assoc)
            est = analyze(prepared, cache, method="estimate", seed=0)
            sim = run_simulation(prepared, cache)
            rows.append(
                (
                    name,
                    assoc_label(assoc),
                    sim.miss_ratio_percent,
                    est.miss_ratio_percent,
                    abs(est.miss_ratio_percent - sim.miss_ratio_percent),
                    est.elapsed_seconds,
                    sim.elapsed_seconds,
                )
            )
    return rows


def test_table6_whole_programs(benchmark):
    rows, seconds = timed_once(benchmark, compute_rows)
    paper = format_table(
        ["Program", "Cache", "Sim %", "E.M %", "Abs.Err", "Exe.T(s)", "Sim.T(s)"],
        PAPER_TABLE6,
        title="Table 6 — paper (32KB/32B, SPEC reference inputs)",
    )
    measured = format_table(
        ["Program", "Cache", "Sim %", "E.M %", "Abs.Err", "Exe.T(s)", "Sim.T(s)"],
        rows,
        title=f"Table 6 — measured ({CACHE_KB}KB/32B, miniature programs)",
    )
    emit("table6", paper + "\n\n" + measured)
    emit_json(
        "table6",
        {
            "wall_seconds": seconds,
            "rows": [
                {
                    "program": r[0],
                    "cache": r[1],
                    "abs_err": r[4],
                    "analyze_seconds": r[5],
                    "sim_seconds": r[6],
                }
                for r in rows
            ],
        },
        config={"cache_kb": CACHE_KB},
    )
    for row in rows:
        assert row[4] < 3.0, f"absolute error too large for {row[0]} {row[1]}"


def memo_sweep(builder, cache_dir):
    """One EstimateMisses sweep over the associativities against a store.

    The estimate keys embed the per-reference seed, so warm replays are
    bit-identical to the cold sampling run (``prepare`` is re-paid fresh).
    """
    started = time.perf_counter()
    prepared = prepare(builder())
    reports = []
    with Memoizer.open(cache_dir) as memo:
        for assoc in (1, 2, 4):
            cache = CacheConfig.kb(CACHE_KB, 32, assoc)
            reports.append(
                analyze(prepared, cache, method="estimate", seed=0, memo=memo)
            )
    return reports, memo, time.perf_counter() - started


def compute_memo_rows(tmp_dir):
    rows = []
    for name, builder in SCALED:
        cache_dir = f"{tmp_dir}/{name}"
        cold_reports, cold, cold_t = memo_sweep(builder, cache_dir)
        warm_reports, warm, warm_t = memo_sweep(builder, cache_dir)
        assert warm_reports == cold_reports, f"{name}: warm run diverged"
        assert warm.misses == 0, f"{name}: warm run re-sampled references"
        assert warm.hits == cold.hits + cold.misses
        speedup = cold_t / warm_t if warm_t > 0 else float("inf")
        rows.append((name, cold.misses, cold_t, warm_t, speedup))
    return rows


def test_table6_memoization_cold_vs_warm(benchmark, tmp_path):
    rows = once(benchmark, lambda: compute_memo_rows(str(tmp_path)))
    emit(
        "table6_memo",
        format_table(
            ["Program", "Solved", "Cold t(s)", "Warm t(s)", "Speedup"],
            rows,
            title=(
                f"Table 6 programs — cold vs warm EstimateMisses with "
                f"--cache-dir ({CACHE_KB}KB/32B, all associativities)"
            ),
        ),
    )
    for name, _, _, _, speedup in rows:
        assert speedup >= 5.0, (
            f"{name}: warm sweep only {speedup:.1f}x faster than cold"
        )
