"""Ablation: which reuse-vector families buy the accuracy (DESIGN.md §6).

Switches the generator's families off one at a time on the Hydro kernel and
measures the FindMisses over-estimation against simulation.  Missing
vectors can never under-estimate (cold equations verify line equality), so
every ablated configuration must sit at or above the simulator's count.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, timed_once

from repro import CacheConfig, ReuseOptions, analyze, prepare, run_simulation
from repro.kernels import build_hydro
from repro.report import format_table

CONFIGS = [
    ("full", ReuseOptions()),
    ("no cross-column", ReuseOptions(cross_column=False)),
    ("temporal only", ReuseOptions(spatial=False)),
    ("spatial only", ReuseOptions(temporal=False)),
]


def compute_rows():
    prepared = prepare(build_hydro(24, 24))
    cache = CacheConfig.kb(4, 32, 1)
    sim = run_simulation(prepared, cache)
    rows = [("simulator", sim.total_misses, sim.miss_ratio_percent, 0.0)]
    for name, options in CONFIGS:
        report = analyze(prepared, cache, method="find", reuse_options=options)
        rows.append(
            (
                name,
                int(report.total_misses),
                report.miss_ratio_percent,
                report.miss_ratio_percent - sim.miss_ratio_percent,
            )
        )
    return rows


def test_ablation_reuse_families(benchmark):
    rows, seconds = timed_once(benchmark, compute_rows)
    text = format_table(
        ["Configuration", "#misses", "Miss %", "Over-est (pp)"],
        rows,
        title="Reuse-vector ablation — Hydro 24x24, 4KB/32B direct",
    )
    emit("ablation_reuse", text)
    emit_json(
        "ablation_reuse",
        {
            "wall_seconds": seconds,
            "rows": [
                dict(zip(("config", "misses", "miss_pct", "over_est_pp"), r))
                for r in rows
            ],
        },
    )
    sim_misses = rows[0][1]
    by_name = {r[0]: r for r in rows}
    assert by_name["full"][1] == sim_misses  # complete vectors -> exact
    for name, _ in CONFIGS[1:]:
        assert by_name[name][1] >= sim_misses  # ablations only over-estimate
    # Spatial reuse carries most of Hydro's locality: dropping it hurts most.
    assert by_name["temporal only"][1] > by_name["no cross-column"][1]
