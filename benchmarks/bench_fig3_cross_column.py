"""Fig. 3: spatial reuse across adjacent array columns (Ls = 4 elements).

The figure shows a memory line holding the last elements of one column of a
column-major array and the first elements of the next; the generator must
emit the cross-column vector ``(0, 1, 0, 1−N)``.  The benchmark measures
the impact: with cross-column vectors enabled, FindMisses matches the
simulator on a column-walk kernel whose columns are *not* line-aligned;
with the family disabled, the analysis over-estimates the misses at every
column boundary.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, timed_once

from repro import CacheConfig, ReuseOptions, analyze, prepare, run_simulation
from repro.ir import ProgramBuilder
from repro.report import format_table

N = 30  # not a multiple of the line size in elements (4) -> columns straddle


def column_walk():
    pb = ProgramBuilder("COLWALK")
    b = pb.array("B", (N, N))
    with pb.subroutine("MAIN"):
        with pb.do("I1", 1, N) as i1:
            with pb.do("I2", 1, N) as i2:
                pb.assign(b[i2, i1])
    return pb.build()


def compute():
    prepared = prepare(column_walk(), align=32)
    cache = CacheConfig.kb(32, 32, 1)
    sim = run_simulation(prepared, cache)
    full = analyze(prepared, cache, method="find")
    ablated = analyze(
        prepared,
        cache,
        method="find",
        reuse_options=ReuseOptions(cross_column=False),
    )
    return sim, full, ablated


def test_fig3_cross_column_reuse(benchmark):
    (sim, full, ablated), seconds = timed_once(benchmark, compute)
    rows = [
        ("simulator", sim.total_misses, sim.miss_ratio_percent),
        ("FindMisses (with cross-column)", int(full.total_misses), full.miss_ratio_percent),
        ("FindMisses (family disabled)", int(ablated.total_misses), ablated.miss_ratio_percent),
    ]
    text = format_table(
        ["Configuration", "#misses", "Miss %"],
        rows,
        title=(
            "Fig. 3 — cross-column spatial reuse, column-major B(30,30), "
            "Ls=4 elements"
        ),
    )
    emit("fig3", text)
    emit_json(
        "fig3",
        {
            "wall_seconds": seconds,
            "sim_misses": sim.total_misses,
            "full_misses": int(full.total_misses),
            "ablated_misses": int(ablated.total_misses),
        },
        config={"n": N},
    )
    assert full.total_misses == sim.total_misses
    # Without the Fig. 3 vectors the boundary lines are misclassified as cold.
    assert ablated.total_misses > full.total_misses
