"""Wire-schema tests: validation, error taxonomy, report serialisation."""

import json

import pytest

from repro.analysis import analyze, prepare
from repro.serve.engine import load_kernel
from repro.serve.protocol import (
    AnalyzeRequest,
    BadRequest,
    ERROR_CLASSES,
    JobNotFound,
    MalformedBody,
    NotAnalysable,
    ParseFailure,
    QueueFull,
    RequestTimeout,
    SERVE_SCHEMA,
    ServeError,
    UnknownKernel,
    error_doc,
    error_from_doc,
    parse_cache_spec,
    report_doc,
    validate_request,
    version_info,
)


def test_parse_cache_spec_string():
    cache = parse_cache_spec("4:32:2")
    assert (cache.size_bytes, cache.line_bytes, cache.assoc) == (4096, 32, 2)


def test_parse_cache_spec_mapping():
    cache = parse_cache_spec({"size_kb": 8, "line_bytes": 16, "assoc": 4})
    assert (cache.size_bytes, cache.line_bytes, cache.assoc) == (8192, 16, 4)
    cache = parse_cache_spec({"size_bytes": 2048, "line_bytes": 32})
    assert (cache.size_bytes, cache.assoc) == (2048, 1)


@pytest.mark.parametrize("bad", ["nope", "4:32", "a:b:c", 7, None, ["4", "32"]])
def test_parse_cache_spec_rejects(bad):
    with pytest.raises(BadRequest):
        parse_cache_spec(bad)


def test_validate_request_defaults():
    req = validate_request({"kernel": "hydro", "cache": "4:32:2"})
    assert req.kernel == "hydro"
    assert req.method == "estimate"
    assert req.confidence == 0.95 and req.width == 0.05 and req.seed == 0
    assert req.client == "anonymous"
    assert req.timeout == 60.0


def test_validate_request_roundtrips_doc():
    req = AnalyzeRequest(
        cache=parse_cache_spec("2:16:1"),
        kernel="mmt",
        size=24,
        method="find",
        seed=7,
        client="c1",
    )
    again = validate_request(req.doc())
    assert again == req


@pytest.mark.parametrize(
    "doc",
    [
        "not an object",
        {},  # neither kernel nor source
        {"kernel": "hydro"},  # no cache
        {"kernel": "hydro", "source": "X", "cache": "4:32:2"},  # both
        {"kernel": 7, "cache": "4:32:2"},
        {"kernel": "hydro", "cache": "4:32:2", "method": "guess"},
        {"kernel": "hydro", "cache": "4:32:2", "size": -3},
        {"kernel": "hydro", "cache": "4:32:2", "steps": 0},
        {"kernel": "hydro", "cache": "4:32:2", "confidence": 1.5},
        {"kernel": "hydro", "cache": "4:32:2", "width": 0.0},
        {"kernel": "hydro", "cache": "4:32:2", "seed": "x"},
        {"kernel": "hydro", "cache": "4:32:2", "backend": "cuda"},
        {"kernel": "hydro", "cache": "4:32:2", "timeout": -1},
        {"kernel": "hydro", "cache": "4:32:2", "timeout": True},
    ],
)
def test_validate_request_rejects(doc):
    with pytest.raises(BadRequest):
        validate_request(doc)


def test_error_taxonomy_codes_and_statuses():
    expectations = {
        ServeError: ("internal", 500),
        MalformedBody: ("bad_json", 400),
        BadRequest: ("bad_request", 400),
        UnknownKernel: ("unknown_kernel", 404),
        JobNotFound: ("job_not_found", 404),
        ParseFailure: ("parse_error", 422),
        NotAnalysable: ("not_analysable", 422),
        QueueFull: ("queue_full", 429),
        RequestTimeout: ("timeout", 504),
    }
    for cls, (code, status) in expectations.items():
        assert cls.code == code
        assert cls.http_status == status
        assert ERROR_CLASSES[code] is cls


def test_error_doc_roundtrip():
    exc = QueueFull("queue is full")
    doc = error_doc(exc)
    assert doc["schema"] == SERVE_SCHEMA
    assert doc["status"] == "error"
    again = error_from_doc(doc, exc.http_status)
    assert isinstance(again, QueueFull)
    assert str(again) == "queue is full"


def test_error_from_malformed_doc():
    exc = error_from_doc({"weird": True}, 503)
    assert isinstance(exc, ServeError)
    assert exc.http_status == 503


def test_report_doc_is_deterministic_and_json_safe():
    prepared = prepare(load_kernel("hydro", 16))
    cache = parse_cache_spec("4:32:2")
    a = report_doc(analyze(prepared, cache, method="find"))
    b = report_doc(analyze(prepared, cache, method="find", jobs=1))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["refs"] == sorted(a["refs"], key=lambda r: r["uid"])
    assert a["totals"]["accesses"] > 0


def test_version_info_shape():
    info = version_info()
    assert info["package"] == "repro"
    assert len(info["fingerprint"]) == 16
    assert int(info["fingerprint"], 16) >= 0
    assert info["schemas"]["serve"] == SERVE_SCHEMA
    assert set(info["schemas"]) == {"serve", "metrics", "ledger", "memo"}
