"""FairQueue semantics: bounds, fairness, FIFO-per-client, deadlines."""

import threading
import time

import pytest

from repro.serve.protocol import (
    AnalyzeRequest,
    QueueFull,
    RequestTimeout,
    ServeError,
    parse_cache_spec,
)
from repro.serve.queue import FairQueue, Job


def make_job(client="c", timeout=60.0):
    request = AnalyzeRequest(
        cache=parse_cache_spec("4:32:2"),
        kernel="hydro",
        client=client,
        timeout=timeout,
    )
    return Job(request)


def test_fifo_within_one_client():
    q = FairQueue(capacity=8)
    jobs = [make_job("solo") for _ in range(4)]
    for job in jobs:
        q.put(job)
    assert [q.get(timeout=0).id for _ in jobs] == [j.id for j in jobs]


def test_round_robin_across_clients():
    q = FairQueue(capacity=16)
    # Client a floods first; b and c arrive later with one job each.
    a = [make_job("a") for _ in range(4)]
    b, c = make_job("b"), make_job("c")
    for job in a:
        q.put(job)
    q.put(b)
    q.put(c)
    order = [q.get(timeout=0).request.client for _ in range(6)]
    # b's and c's single jobs are served within the first rotation, not
    # behind a's whole backlog.
    assert order.index("b") <= 2
    assert order.index("c") <= 2
    assert order.count("a") == 4


def test_capacity_bound_raises_queue_full():
    q = FairQueue(capacity=2)
    q.put(make_job())
    q.put(make_job())
    with pytest.raises(QueueFull):
        q.put(make_job())
    assert q.depth == 2


def test_zero_capacity_admits_nothing():
    q = FairQueue(capacity=0)
    with pytest.raises(QueueFull):
        q.put(make_job())


def test_get_timeout_returns_none():
    q = FairQueue(capacity=2)
    assert q.get(timeout=0.01) is None


def test_get_blocks_until_put():
    q = FairQueue(capacity=2)
    got = []

    def consume():
        got.append(q.get(timeout=5.0))

    t = threading.Thread(target=consume)
    t.start()
    job = make_job()
    q.put(job)
    t.join(timeout=5.0)
    assert got and got[0].id == job.id


def test_drain_expired_fails_timed_out_jobs():
    q = FairQueue(capacity=8)
    stale = make_job("a", timeout=0.001)
    live = make_job("a", timeout=60.0)
    q.put(stale)
    q.put(live)
    time.sleep(0.01)
    expired = q.drain_expired()
    assert [j.id for j in expired] == [stale.id]
    assert stale.status == "error"
    assert isinstance(stale.error, RequestTimeout)
    assert stale.done.is_set()
    assert q.get(timeout=0).id == live.id


def test_closed_queue_rejects_put_and_wakes_get():
    q = FairQueue(capacity=2)
    q.close()
    with pytest.raises(ServeError):
        q.put(make_job())
    assert q.get(timeout=5.0) is None


def test_job_lifecycle_doc():
    job = make_job("alice")
    doc = job.to_doc()
    assert doc["status"] == "queued" and doc["client"] == "alice"
    job.start()
    assert job.status == "running"
    job.finish({"ok": True})
    assert job.done.is_set()
    doc = job.to_doc()
    assert doc["status"] == "done" and doc["result"] == {"ok": True}
    assert "error" not in doc


def test_job_failure_doc_carries_typed_error():
    job = make_job()
    job.fail(RequestTimeout("too slow"))
    doc = job.to_doc()
    assert doc["status"] == "error"
    assert doc["error"]["code"] == "timeout"
