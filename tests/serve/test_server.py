"""End-to-end daemon tests over real HTTP (loopback, ephemeral ports)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis import analyze, prepare
from repro.serve import AnalysisServer, ServeClient
from repro.serve.engine import load_kernel
from repro.serve.protocol import (
    BadRequest,
    JobNotFound,
    ParseFailure,
    QueueFull,
    RequestTimeout,
    SERVE_SCHEMA,
    UnknownKernel,
    parse_cache_spec,
    report_doc,
)


@pytest.fixture()
def server():
    with AnalysisServer(port=0, workers=2, dispatchers=2).start() as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServeClient(server.url, timeout=30.0)


def post_raw(url, path, body: bytes):
    """POST arbitrary bytes; returns (status, parsed JSON body)."""
    req = urllib.request.Request(
        url + path,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_analyze_bit_identical_to_offline(client):
    resp = client.analyze(
        {"kernel": "hydro", "size": 16, "cache": "4:32:2", "method": "find"}
    )
    assert resp["status"] == "ok" and resp["schema"] == SERVE_SCHEMA
    offline = analyze(
        prepare(load_kernel("hydro", 16)),
        parse_cache_spec("4:32:2"),
        method="find",
    )
    assert resp["report"] == report_doc(offline)


def test_repeat_request_hits_shared_memo(client):
    doc = {"kernel": "mmt", "size": 12, "cache": "2:32:1", "method": "find"}
    cold = client.analyze(doc)
    warm = client.analyze(doc)
    assert warm["report"] == cold["report"]
    assert cold["server"]["memo"]["misses"] > 0
    assert warm["server"]["memo"]["misses"] == 0
    assert warm["server"]["memo"]["hits"] > 0


def test_batch_and_job_polling(client):
    resp = client.batch(
        [
            {"kernel": "hydro", "size": 12, "cache": "4:32:2"},
            {"kernel": "mgrid", "size": 8, "cache": "4:32:2", "method": "find"},
            {"kernel": "nope", "cache": "4:32:2"},
        ]
    )
    jobs = resp["jobs"]
    assert len(jobs) == 3
    for entry in jobs[:2]:
        final = client.wait(entry["id"], timeout=30.0)
        assert final["status"] == "done"
        assert final["result"]["report"]["totals"]["accesses"] > 0
    # The bad kernel is admitted (validation passes) but fails at solve
    # time with the typed error, visible through polling.
    failed = client.wait(jobs[2]["id"], timeout=30.0)
    assert failed["status"] == "error"
    assert failed["error"]["code"] == "unknown_kernel"


def test_healthz_reports_version_and_schemas(client):
    doc = client.healthz()
    assert doc["status"] == "ok"
    assert len(doc["fingerprint"]) == 16
    assert doc["schemas"]["serve"] == SERVE_SCHEMA
    assert doc["uptime_seconds"] >= 0.0


def test_metrics_counts_requests_and_memo(client):
    client.analyze({"kernel": "hydro", "size": 12, "cache": "4:32:2"})
    client.analyze({"kernel": "hydro", "size": 12, "cache": "4:32:2"})
    metrics = client.metrics()
    assert metrics["requests"]["requests"] >= 2
    assert metrics["requests"]["completed"] >= 2
    assert metrics["latency_seconds"]["count"] >= 2
    assert metrics["latency_seconds"]["p99"] >= metrics["latency_seconds"]["p50"]
    assert metrics["memo"]["hits"] > 0  # the repeat replayed


def test_malformed_json_is_400_bad_json(server):
    status, doc = post_raw(server.url, "/v1/analyze", b"{not json")
    assert status == 400
    assert doc["error"]["code"] == "bad_json"


def test_malformed_batch_body(server):
    status, doc = post_raw(server.url, "/v1/batch", b'{"requests": 7}')
    assert status == 400
    assert doc["error"]["code"] == "bad_json"


def test_unknown_kernel_is_404(client):
    with pytest.raises(UnknownKernel):
        client.analyze({"kernel": "quantum", "cache": "4:32:2"})


def test_bad_field_is_400(client):
    with pytest.raises(BadRequest):
        client.analyze({"kernel": "hydro", "cache": "4:32:2", "method": "guess"})


def test_parse_error_is_422(client):
    with pytest.raises(ParseFailure):
        client.analyze({"source": "not fortran (", "cache": "4:32:2"})


def test_unknown_job_is_404(client):
    with pytest.raises(JobNotFound):
        client.job("no-such-job")


def test_unknown_endpoint_is_typed(server):
    status, doc = post_raw(server.url, "/v1/nope", b"{}")
    assert status == 404
    assert doc["error"]["code"] == "job_not_found"


def test_queue_full_is_429():
    with AnalysisServer(port=0, queue_limit=0).start() as srv:
        client = ServeClient(srv.url, timeout=10.0)
        with pytest.raises(QueueFull):
            client.analyze({"kernel": "hydro", "size": 8, "cache": "4:32:2"})


def test_deadline_expiry_is_504(client):
    with pytest.raises(RequestTimeout):
        client.analyze(
            {
                "kernel": "hydro",
                "size": 32,
                "cache": "4:32:2",
                "method": "find",
                "timeout": 0.001,
            }
        )


def test_concurrent_mixed_clients_all_bit_identical(server):
    """8 concurrent requests from 4 clients, interleaved through one pool."""
    cases = [
        ("hydro", 14, "find", "4:32:2"),
        ("mgrid", 8, "find", "4:32:2"),
        ("mmt", 12, "estimate", "2:32:1"),
        ("hydro", 14, "regions", "4:32:4"),
    ] * 2
    results: dict[int, dict] = {}
    errors: list[Exception] = []

    def worker(i, kernel, size, method, cache):
        try:
            c = ServeClient(server.url, timeout=60.0)
            results[i] = c.analyze(
                {
                    "kernel": kernel,
                    "size": size,
                    "method": method,
                    "cache": cache,
                    "client": f"client-{i % 4}",
                }
            )
        except Exception as exc:  # surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i, *case))
        for i, case in enumerate(cases)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    assert not errors
    assert len(results) == len(cases)
    for i, (kernel, size, method, cache) in enumerate(cases):
        offline = analyze(
            prepare(load_kernel(kernel, size)),
            parse_cache_spec(cache),
            method=method,
        )
        assert results[i]["report"] == report_doc(offline), cases[i]
    # The duplicated half of the workload must have hit the shared memo.
    assert server.memo.hits > 0
