"""Engine tests: pooled vs offline bit-identity, shared-memo dedup, errors."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis import analyze, prepare
from repro.memo import Memoizer
from repro.serve.engine import AnalysisEngine, load_kernel, program_from_source
from repro.serve.protocol import (
    AnalyzeRequest,
    ParseFailure,
    RequestTimeout,
    UnknownKernel,
    parse_cache_spec,
    report_doc,
)

CASES = [
    ("hydro", 16, "find"),
    ("hydro", 16, "estimate"),
    ("mgrid", 8, "find"),
    ("mgrid", 8, "estimate"),
    ("mmt", 12, "find"),
    ("mmt", 12, "estimate"),
]


def request_for(kernel, size, method, cache="4:32:2", **kw):
    return AnalyzeRequest(
        cache=parse_cache_spec(cache),
        kernel=kernel,
        size=size,
        method=method,
        **kw,
    )


def test_load_kernel_unknown():
    with pytest.raises(UnknownKernel):
        load_kernel("quantum")


def test_program_from_source_bad_text():
    with pytest.raises(ParseFailure):
        program_from_source("definitely not fortran (")


@pytest.mark.parametrize("kernel,size,method", CASES)
def test_pooled_report_bit_identical_to_offline(kernel, size, method):
    """The daemon's pooled path equals the library path, field for field."""
    offline = analyze(
        prepare(load_kernel(kernel, size)),
        parse_cache_spec("4:32:2"),
        method=method,
    )
    engine = AnalysisEngine(memo=Memoizer())
    with ThreadPoolExecutor(max_workers=4) as pool:
        pooled, info = engine.run(
            request_for(kernel, size, method), pool=pool
        )
    assert pooled == offline
    assert report_doc(pooled) == report_doc(offline)
    assert info["memo"]["misses"] > 0


@pytest.mark.parametrize("method", ["find", "estimate"])
def test_cross_request_memo_hits(method):
    """A repeated request replays entirely from the shared memo table."""
    engine = AnalysisEngine(memo=Memoizer())
    with ThreadPoolExecutor(max_workers=2) as pool:
        first, info1 = engine.run(request_for("hydro", 16, method), pool=pool)
        second, info2 = engine.run(request_for("hydro", 16, method), pool=pool)
    assert first == second
    assert info1["memo"]["hits"] >= 0 and info1["memo"]["misses"] > 0
    assert info2["memo"]["misses"] == 0
    assert info2["memo"]["hits"] == len(second.results)


def test_memoized_pooled_report_identical_to_unmemoized():
    request = request_for("mmt", 12, "find")
    bare = AnalysisEngine()
    memod = AnalysisEngine(memo=Memoizer())
    with ThreadPoolExecutor(max_workers=2) as pool:
        a, _ = bare.run(request, pool=pool)
        b, _ = memod.run(request, pool=pool)
        c, _ = memod.run(request, pool=pool)  # warm replay
    assert report_doc(a) == report_doc(b) == report_doc(c)


def test_offline_path_matches_direct_analyze():
    request = request_for("hydro", 16, "estimate", seed=3)
    engine = AnalysisEngine()
    via_engine, info = engine.run(request)
    direct = analyze(
        prepare(load_kernel("hydro", 16)),
        parse_cache_spec("4:32:2"),
        method="estimate",
        seed=3,
    )
    assert via_engine == direct
    assert info["solve_seconds"] >= 0.0


def test_source_requests_share_the_prepared_cache():
    source = """\
      PROGRAM TINY
      REAL A(64)
      DO 10 I = 1, 64
      A(I) = 0.0
10    CONTINUE
      END
"""
    engine = AnalysisEngine(memo=Memoizer())
    req = AnalyzeRequest(
        cache=parse_cache_spec("1:16:1"), source=source, method="find"
    )
    with ThreadPoolExecutor(max_workers=2) as pool:
        a, _ = engine.run(req, pool=pool)
        b, info = engine.run(req, pool=pool)
    assert a == b
    assert info["memo"]["misses"] == 0
    assert len(engine._prepared) == 1


def test_expired_deadline_raises_timeout():
    engine = AnalysisEngine()
    with ThreadPoolExecutor(max_workers=2) as pool:
        with pytest.raises(RequestTimeout):
            engine.run(request_for("hydro", 16, "find"), pool=pool, deadline=0.0)


def test_prepared_lru_eviction():
    engine = AnalysisEngine(max_prepared=2)
    for size in (8, 10, 12):
        engine.prepared_for(request_for("hydro", size, "find"))
    assert len(engine._prepared) == 2
    assert "kernel:hydro:8:2" not in engine._prepared
