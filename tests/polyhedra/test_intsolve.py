"""Unit and property tests for the integer linear solver."""

from hypothesis import given, strategies as st

from repro.polyhedra.intsolve import (
    hermite_normal_form,
    is_zero_vector,
    matvec,
    nullspace_basis,
    solve_integer,
)


class TestHermiteNormalForm:
    def test_identity(self):
        h, u, pivots = hermite_normal_form([[1, 0], [0, 1]])
        assert len(pivots) == 2
        assert matvec(h, [1, 0]) == matvec(h, [1, 0])  # sanity on shape

    def test_h_equals_a_times_u(self):
        a = [[2, 4, 4], [-6, 6, 12], [10, 4, 16]]
        h, u, _ = hermite_normal_form(a)
        n = 3
        for i in range(3):
            for j in range(n):
                assert h[i][j] == sum(a[i][k] * u[k][j] for k in range(n))

    def test_u_is_unimodular(self):
        a = [[2, 4], [3, 5]]
        _, u, _ = hermite_normal_form(a)
        det = u[0][0] * u[1][1] - u[0][1] * u[1][0]
        assert det in (1, -1)

    def test_pivot_rows_strictly_increase(self):
        a = [[0, 0, 1], [1, 2, 3], [2, 4, 7]]
        _, _, pivots = hermite_normal_form(a)
        rows = [r for r, _ in pivots]
        assert rows == sorted(rows)
        assert len(set(rows)) == len(rows)

    def test_zero_matrix(self):
        h, u, pivots = hermite_normal_form([[0, 0], [0, 0]])
        assert pivots == []
        assert all(v == 0 for row in h for v in row)


class TestSolveInteger:
    def test_unique_solution(self):
        # The paper's running example: M = [[0,1],[1,0]], b = (-1, 0).
        x = solve_integer([[0, 1], [1, 0]], [-1, 0])
        assert x == [0, -1]

    def test_full_rank_2x2(self):
        x = solve_integer([[2, 1], [1, 1]], [5, 3])
        assert x == [2, 1]

    def test_no_integer_solution(self):
        assert solve_integer([[2]], [3]) is None

    def test_inconsistent(self):
        assert solve_integer([[1, 1], [1, 1]], [0, 1]) is None

    def test_underdetermined(self):
        x = solve_integer([[1, 1]], [4])
        assert x is not None
        assert x[0] + x[1] == 4

    def test_empty_columns(self):
        assert solve_integer([[], []], [0, 0]) == []
        assert solve_integer([[], []], [1, 0]) is None

    def test_gcd_condition(self):
        # 4x + 6y = 2 solvable (gcd 2 divides 2); = 1 not solvable.
        assert solve_integer([[4, 6]], [2]) is not None
        assert solve_integer([[4, 6]], [1]) is None


class TestNullspace:
    def test_full_rank_has_empty_nullspace(self):
        assert nullspace_basis([[1, 0], [0, 1]]) == []

    def test_single_row(self):
        basis = nullspace_basis([[1, 0]])
        assert len(basis) == 1
        assert matvec([[1, 0]], basis[0]) == [0]

    def test_rank_deficient(self):
        a = [[1, 2, 3], [2, 4, 6]]
        basis = nullspace_basis(a)
        assert len(basis) == 2
        for v in basis:
            assert is_zero_vector(matvec(a, v))

    def test_no_rows_gives_standard_basis(self):
        basis = nullspace_basis([])
        assert basis == []  # a 0x? matrix has unknown column count


small_matrices = st.integers(1, 3).flatmap(
    lambda n: st.integers(1, 3).flatmap(
        lambda m: st.lists(
            st.lists(st.integers(-8, 8), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
)


class TestProperties:
    @given(small_matrices, st.data())
    def test_solution_of_constructed_rhs(self, a, data):
        """A·x0 = b always has a solution that the solver must find."""
        n = len(a[0])
        x0 = data.draw(st.lists(st.integers(-5, 5), min_size=n, max_size=n))
        b = matvec(a, x0)
        x = solve_integer(a, b)
        assert x is not None
        assert matvec(a, x) == b

    @given(small_matrices)
    def test_nullspace_vectors_are_in_kernel(self, a):
        for v in nullspace_basis(a):
            assert is_zero_vector(matvec(a, v))

    @given(small_matrices)
    def test_hnf_factorisation(self, a):
        h, u, _ = hermite_normal_form(a)
        m, n = len(a), len(a[0])
        for i in range(m):
            for j in range(n):
                assert h[i][j] == sum(a[i][k] * u[k][j] for k in range(n))
