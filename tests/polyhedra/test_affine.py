"""Unit and property tests for affine expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NonAffineError
from repro.polyhedra import Affine, Var


class TestConstruction:
    def test_constant(self):
        e = Affine.const(5)
        assert e.is_constant()
        assert e.constant_value() == 5

    def test_var(self):
        e = Affine.var("I1")
        assert e.coeff("I1") == 1
        assert e.constant == 0
        assert not e.is_constant()

    def test_var_sugar(self):
        assert Var("I1") == Affine.var("I1")

    def test_zero_coefficients_dropped(self):
        e = Affine({"I1": 0, "I2": 3})
        assert e.variables() == {"I2"}

    def test_non_integer_coefficient_rejected(self):
        with pytest.raises(NonAffineError):
            Affine({"I1": 1.5})

    def test_non_integer_constant_rejected(self):
        with pytest.raises(NonAffineError):
            Affine({}, 2.5)

    def test_coerce_int(self):
        assert Affine.coerce(7) == Affine.const(7)

    def test_coerce_passthrough(self):
        e = Var("x")
        assert Affine.coerce(e) is e

    def test_coerce_rejects_floats(self):
        with pytest.raises(NonAffineError):
            Affine.coerce(1.5)


class TestArithmetic:
    def test_add(self):
        e = Var("I1") + Var("I2") + 3
        assert e.coeff("I1") == 1
        assert e.coeff("I2") == 1
        assert e.constant == 3

    def test_radd(self):
        e = 3 + Var("I1")
        assert e == Var("I1") + 3

    def test_sub_cancels(self):
        e = Var("I1") - Var("I1")
        assert e.is_constant()
        assert e.constant == 0

    def test_rsub(self):
        e = 10 - Var("I1")
        assert e.coeff("I1") == -1
        assert e.constant == 10

    def test_mul_by_constant(self):
        e = (Var("I1") + 2) * 3
        assert e.coeff("I1") == 3
        assert e.constant == 6

    def test_rmul(self):
        assert 3 * Var("I1") == Var("I1") * 3

    def test_mul_two_variables_rejected(self):
        with pytest.raises(NonAffineError):
            Var("I1") * Var("I2")

    def test_neg(self):
        e = -(Var("I1") - 4)
        assert e.coeff("I1") == -1
        assert e.constant == 4

    def test_exact_division(self):
        e = (4 * Var("I1") + 8) // 4
        assert e == Var("I1") + 2

    def test_inexact_division_rejected(self):
        with pytest.raises(NonAffineError):
            (4 * Var("I1") + 3) // 4

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Var("I1") // 0


class TestEvaluation:
    def test_evaluate(self):
        e = 2 * Var("I1") - Var("I2") + 1
        assert e.evaluate({"I1": 3, "I2": 4}) == 3

    def test_partial_evaluate(self):
        e = 2 * Var("I1") - Var("I2") + 1
        p = e.partial_evaluate({"I1": 3})
        assert p == 7 - Var("I2")

    def test_substitute(self):
        e = 2 * Var("x") + Var("y")
        s = e.substitute({"x": Var("I1") + 1})
        assert s == 2 * Var("I1") + Var("y") + 2

    def test_rename(self):
        e = Var("x") + 2 * Var("y")
        assert e.rename({"x": "I1", "y": "I2"}) == Var("I1") + 2 * Var("I2")

    def test_rename_merges(self):
        e = Var("x") + Var("y")
        assert e.rename({"x": "z", "y": "z"}) == 2 * Var("z")

    def test_bounds_positive_coeff(self):
        e = 2 * Var("x") + 1
        assert e.bounds({"x": (0, 10)}) == (1, 21)

    def test_bounds_negative_coeff(self):
        e = -3 * Var("x")
        assert e.bounds({"x": (1, 4)}) == (-12, -3)


class TestStrAndHash:
    def test_str_constant_only(self):
        assert str(Affine.const(0)) == "0"

    def test_str_mixed(self):
        s = str(2 * Var("I1") - Var("I2") + 3)
        assert "2*I1" in s and "-I2" in s and "3" in s

    def test_hash_equal_expressions(self):
        a = Var("I1") + 2
        b = 2 + Var("I1")
        assert hash(a) == hash(b)
        assert a == b

    def test_eq_with_int(self):
        assert Affine.const(4) == 4
        assert Affine.var("x") != 4


coeff_dicts = st.dictionaries(
    st.sampled_from(["a", "b", "c"]), st.integers(-20, 20), max_size=3
)
affines = st.builds(Affine, coeff_dicts, st.integers(-100, 100))
envs = st.fixed_dictionaries(
    {"a": st.integers(-50, 50), "b": st.integers(-50, 50), "c": st.integers(-50, 50)}
)


class TestProperties:
    @given(affines, affines, envs)
    def test_addition_is_pointwise(self, e1, e2, env):
        assert (e1 + e2).evaluate(env) == e1.evaluate(env) + e2.evaluate(env)

    @given(affines, affines, envs)
    def test_subtraction_is_pointwise(self, e1, e2, env):
        assert (e1 - e2).evaluate(env) == e1.evaluate(env) - e2.evaluate(env)

    @given(affines, st.integers(-10, 10), envs)
    def test_scaling_is_pointwise(self, e, k, env):
        assert (e * k).evaluate(env) == k * e.evaluate(env)

    @given(affines, affines)
    def test_addition_commutes(self, e1, e2):
        assert e1 + e2 == e2 + e1

    @given(affines)
    def test_double_negation(self, e):
        assert -(-e) == e

    @given(affines, envs)
    def test_substitute_matches_evaluate(self, e, env):
        substituted = e.substitute({k: Affine.const(v) for k, v in env.items()})
        assert substituted.is_constant()
        assert substituted.constant_value() == e.evaluate(env)

    @given(affines, envs)
    def test_bounds_contain_value(self, e, env):
        ranges = {k: (v - 3, v + 3) for k, v in env.items()}
        lo, hi = e.bounds(ranges)
        assert lo <= e.evaluate(env) <= hi
