"""Parity of the vectorized polyhedra helpers with the scalar Space API.

:func:`~repro.polyhedra.batch.enumerate_points_array` must reproduce
:meth:`BoundedSpace.enumerate_points` exactly — same points, same
lexicographic order (the trace index depends on the order, not just the
set) — and :func:`~repro.polyhedra.batch.contains_batch` must agree with
:meth:`BoundedSpace.contains` entrywise, guards included.
"""

from __future__ import annotations

import itertools

import pytest

from repro.ir import ProgramBuilder
from repro.normalize import normalize

np = pytest.importorskip("numpy")

from repro.polyhedra.batch import contains_batch, enumerate_points_array  # noqa: E402


def _spaces():
    """RIS spaces covering rectangular, triangular, guarded and 1-point."""
    pb = ProgramBuilder("BATCH")
    a = pb.array("A", (20, 20))
    with pb.subroutine("MAIN"):
        with pb.do("J", 1, 6) as j:  # rectangular
            with pb.do("I", 1, 5) as i:
                pb.assign(a[i, j])
        with pb.do("J", 1, 7) as j:  # triangular (I >= J)
            with pb.do("I", j, 7) as i:
                pb.assign(a[i, j])
        with pb.do("J", 1, 6) as j:  # guarded (EQ and GEQ mix)
            with pb.do("I", 1, 6) as i:
                with pb.if_(i.le(j)):
                    pb.assign(a[i, j])
        with pb.do("J", 4, 4) as j:  # degenerate single point
            with pb.do("I", 2, 2) as i:
                pb.assign(a[i, j])
    nprog = normalize(pb.build().main)
    return [(leaf, nprog.ris(leaf)) for leaf in nprog.leaves]


@pytest.mark.parametrize(
    "index", range(4), ids=["rect", "tri", "guarded", "point"]
)
def test_enumerate_points_array_matches_scalar_order(index):
    _, space = _spaces()[index]
    batch = enumerate_points_array(space)
    scalar = list(space.enumerate_points())
    assert batch.shape == (len(scalar), space.ndim)
    assert [tuple(row) for row in batch.tolist()] == scalar


@pytest.mark.parametrize(
    "index", range(4), ids=["rect", "tri", "guarded", "point"]
)
def test_contains_batch_matches_scalar(index):
    _, space = _spaces()[index]
    ranges = [space.var_ranges()[v] for v in space.dims]
    grid = list(
        itertools.product(*[range(lo - 2, hi + 3) for lo, hi in ranges])
    )
    mask = contains_batch(space, np.array(grid, dtype=np.int64))
    for point, got in zip(grid, mask.tolist()):
        assert got == space.contains(point), point
