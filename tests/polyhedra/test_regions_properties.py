"""Property tests for the regional counting machinery (ISSUE 10).

Randomized (seeded) systems are checked against brute force:

* the closed-form residue helpers of :mod:`repro.polyhedra.intsolve`
  (``residue_period`` / ``count_range_residue`` / ``first_range_residue``)
  against explicit enumeration of the range,
* :meth:`RegionSpace.count` — periodic counting with residue constraints —
  against :meth:`RegionSpace.enumerate_points` and a raw triple loop,
* :meth:`RegionSpace.tight_ranges` — the interval-arithmetic box the
  crossing-window certificate bounds its unroll with — must contain every
  point of the space (conservativeness is what the solver relies on).
"""

from __future__ import annotations

import math
import random

from repro.polyhedra import (
    Affine,
    Constraint,
    RegionSpace,
    ResidueConstraint,
    count_range_residue,
    first_range_residue,
    negate_constraint,
    residue_period,
)


def test_residue_period_matches_orbit_length():
    rng = random.Random(101)
    for _ in range(200):
        modulus = rng.choice([1, 2, 3, 4, 8, 12, 16, 32, 1024])
        coeff = rng.randrange(-3 * modulus, 3 * modulus + 1)
        period = residue_period(coeff, modulus)
        # The orbit of v -> (coeff*v) mod modulus over consecutive v.
        seen = {(coeff * v) % modulus for v in range(4 * modulus)}
        assert period == modulus // math.gcd(coeff, modulus)
        assert len(seen) == period


def test_count_range_residue_vs_bruteforce():
    rng = random.Random(202)
    for _ in range(500):
        period = rng.randrange(1, 20)
        residue = rng.randrange(-2 * period, 2 * period)
        lo = rng.randrange(-50, 50)
        hi = lo + rng.randrange(-5, 60)
        want = sum(1 for v in range(lo, hi + 1) if (v - residue) % period == 0)
        assert count_range_residue(lo, hi, period, residue) == want


def test_first_range_residue_vs_bruteforce():
    rng = random.Random(303)
    for _ in range(500):
        period = rng.randrange(1, 20)
        residue = rng.randrange(-2 * period, 2 * period)
        lo = rng.randrange(-50, 50)
        hi = lo + rng.randrange(-5, 60)
        want = next(
            (v for v in range(lo, hi + 1) if (v - residue) % period == 0),
            None,
        )
        assert first_range_residue(lo, hi, period, residue) == want


def _random_region(rng: random.Random) -> RegionSpace:
    """A random 1–3-dim region with affine and residue constraints."""
    ndim = rng.randrange(1, 4)
    dims = tuple(f"v{k}" for k in range(ndim))
    bounds = []
    for k, var in enumerate(dims):
        lo = rng.randrange(-4, 5)
        span = rng.randrange(0, 9)
        lo_e = Affine.const(lo)
        hi_e = Affine.const(lo + span)
        if k > 0 and rng.random() < 0.4:
            # Triangular: couple this bound to an outer variable.
            hi_e = hi_e + Affine.var(dims[rng.randrange(k)])
        bounds.append((lo_e, hi_e))
    constraints = []
    for _ in range(rng.randrange(0, 3)):
        expr = Affine(
            {v: rng.randrange(-2, 3) for v in dims}, rng.randrange(-6, 7)
        )
        constraints.append(
            Constraint.equality(expr)
            if rng.random() < 0.25
            else Constraint.inequality(expr)
        )
    residues = []
    for _ in range(rng.randrange(0, 3)):
        modulus = rng.choice([2, 3, 4, 8, 16])
        lo_r = rng.randrange(modulus)
        hi_r = rng.randrange(lo_r, modulus)
        expr = Affine(
            {v: rng.randrange(0, modulus) for v in dims}, rng.randrange(modulus)
        )
        residues.append(ResidueConstraint.make(expr, modulus, lo_r, hi_r))
    return RegionSpace(dims, bounds, tuple(constraints), tuple(residues))


def _bruteforce_count(space: RegionSpace) -> int:
    box = space.tight_ranges()
    # Enumerate the raw bounding box (ignoring all structure) and test
    # membership — fully independent of the counting code paths.
    def rec(k, point):
        if k == len(space.dims):
            return 1 if space.contains(point) else 0
        lo, hi = box[space.dims[k]]
        return sum(rec(k + 1, point + [v]) for v in range(lo, hi + 1))

    return rec(0, [])


def test_region_count_vs_enumeration_and_bruteforce():
    rng = random.Random(404)
    for _ in range(150):
        space = _random_region(rng)
        points = list(space.enumerate_points())
        assert space.count() == len(points)
        assert space.count() == _bruteforce_count(space)
        assert all(space.contains(p) for p in points)


def test_tight_ranges_contains_every_point():
    rng = random.Random(505)
    checked = 0
    for _ in range(150):
        space = _random_region(rng)
        box = space.tight_ranges()
        for point in space.enumerate_points():
            checked += 1
            for var, value in zip(space.dims, point):
                lo, hi = box[var]
                assert lo <= value <= hi, (
                    f"{var}={value} outside tightened range [{lo}, {hi}] "
                    f"of {space!r}"
                )
    assert checked > 100  # the generator produced non-trivial spaces


def test_negate_constraint_partitions_the_space():
    rng = random.Random(606)
    for _ in range(150):
        space = _random_region(rng)
        expr = Affine(
            {v: rng.randrange(-2, 3) for v in space.dims}, rng.randrange(-4, 5)
        )
        con = (
            Constraint.equality(expr)
            if rng.random() < 0.3
            else Constraint.inequality(expr)
        )
        keep = space.conjoin(con)
        drops = [space.conjoin(neg) for neg in negate_constraint(con)]
        total = keep.count() + sum(d.count() for d in drops)
        assert total == space.count(), (
            f"negation of {con!r} does not partition {space!r}: "
            f"{keep.count()} + {[d.count() for d in drops]} != {space.count()}"
        )
