"""Unit and property tests for bounded integer spaces."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.polyhedra import Affine, BoundedSpace, ConstraintSet, Var


def box(nx, ny):
    return BoundedSpace(
        ("x", "y"),
        [(Affine.const(1), Affine.const(nx)), (Affine.const(1), Affine.const(ny))],
    )


def triangle(n):
    """{(x, y) : 1 <= x <= n, x <= y <= n} — the shape of L(1,1) in Fig. 2."""
    return BoundedSpace(
        ("x", "y"),
        [(Affine.const(1), Affine.const(n)), (Var("x"), Affine.const(n))],
    )


def diagonal(n):
    """A guarded space: the diagonal of an n x n box (like S1 in Fig. 2)."""
    return BoundedSpace(
        ("x", "y"),
        [(Affine.const(1), Affine.const(n)), (Affine.const(1), Affine.const(n))],
        ConstraintSet([Var("y").eq(Var("x"))]),
    )


class TestCount:
    def test_box(self):
        assert box(4, 5).count() == 20

    def test_triangle(self):
        assert triangle(10).count() == 55

    def test_diagonal(self):
        assert diagonal(7).count() == 7

    def test_empty_range(self):
        s = BoundedSpace(("x",), [(Affine.const(5), Affine.const(1))])
        assert s.count() == 0

    def test_trivially_empty_guard(self):
        s = BoundedSpace(
            ("x",),
            [(Affine.const(1), Affine.const(3))],
            ConstraintSet([Affine.const(-1).ge(0)]),
        )
        assert s.is_trivially_empty()
        assert s.count() == 0

    def test_count_matches_enumeration(self):
        for space in (box(3, 4), triangle(6), diagonal(5)):
            assert space.count() == len(list(space.enumerate_points()))

    def test_single_point(self):
        s = BoundedSpace(("x",), [(Affine.const(2), Affine.const(2))])
        assert s.count() == 1
        assert list(s.enumerate_points()) == [(2,)]


class TestContains:
    def test_box_membership(self):
        s = box(3, 3)
        assert s.contains((1, 1))
        assert s.contains((3, 3))
        assert not s.contains((0, 1))
        assert not s.contains((4, 1))

    def test_triangle_membership(self):
        s = triangle(5)
        assert s.contains((2, 2))
        assert s.contains((2, 5))
        assert not s.contains((3, 2))

    def test_guard_membership(self):
        s = diagonal(5)
        assert s.contains((3, 3))
        assert not s.contains((3, 4))

    def test_wrong_arity(self):
        assert not box(3, 3).contains((1,))


class TestEnumeration:
    def test_lexicographic_order(self):
        points = list(triangle(4).enumerate_points())
        assert points == sorted(points)

    def test_enumeration_respects_guard(self):
        points = list(diagonal(4).enumerate_points())
        assert points == [(1, 1), (2, 2), (3, 3), (4, 4)]

    def test_inner_bound_depends_on_outer(self):
        points = set(triangle(3).enumerate_points())
        assert points == {(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3)}


class TestValidation:
    def test_bound_cannot_reference_inner_variable(self):
        with pytest.raises(ValueError):
            BoundedSpace(
                ("x", "y"),
                [(Var("y"), Affine.const(3)), (Affine.const(1), Affine.const(3))],
            )

    def test_guard_cannot_reference_unknown_variable(self):
        with pytest.raises(ValueError):
            BoundedSpace(
                ("x",),
                [(Affine.const(1), Affine.const(3))],
                ConstraintSet([Var("z").ge(0)]),
            )

    def test_bound_arity_mismatch(self):
        with pytest.raises(ValueError):
            BoundedSpace(("x", "y"), [(Affine.const(1), Affine.const(3))])


class TestSampling:
    def test_samples_are_members(self):
        s = triangle(8)
        rng = random.Random(7)
        for p in s.sample(200, rng):
            assert s.contains(p)

    def test_sampling_empty_space_raises(self):
        s = BoundedSpace(("x",), [(Affine.const(5), Affine.const(1))])
        with pytest.raises(ValueError):
            s.sample(1, random.Random(0))

    def test_sampling_guarded_space(self):
        s = diagonal(6)
        rng = random.Random(3)
        for p in s.sample(50, rng):
            assert p[0] == p[1]

    def test_uniformity_on_triangle(self):
        """Row x has (n + 1 - x) points; frequencies must follow that weight."""
        n = 6
        s = triangle(n)
        rng = random.Random(11)
        draws = s.sample(6000, rng)
        total = s.count()
        for x in range(1, n + 1):
            expected = (n + 1 - x) / total
            observed = sum(1 for p in draws if p[0] == x) / len(draws)
            assert abs(observed - expected) < 0.05

    def test_var_ranges_box(self):
        r = triangle(5).var_ranges()
        assert r["x"] == (1, 5)
        assert r["y"] == (1, 5)


dims3 = st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))


class TestProperties:
    @given(dims3)
    def test_box_count_is_product(self, dims):
        a, b, c = dims
        s = BoundedSpace(
            ("x", "y", "z"),
            [
                (Affine.const(1), Affine.const(a)),
                (Affine.const(1), Affine.const(b)),
                (Affine.const(1), Affine.const(c)),
            ],
        )
        assert s.count() == a * b * c

    @given(st.integers(1, 12))
    def test_triangle_count_closed_form(self, n):
        assert triangle(n).count() == n * (n + 1) // 2

    @settings(max_examples=25)
    @given(st.integers(2, 8), st.integers(0, 100))
    def test_enumerated_points_all_contained(self, n, seed):
        s = triangle(n)
        pts = list(s.enumerate_points())
        assert all(s.contains(p) for p in pts)
        rng = random.Random(seed)
        outside = (0, 0)
        assert not s.contains(outside)
        assert rng is not None
