"""Unit tests for affine constraints and constraint sets."""

import pytest

from repro.polyhedra import Affine, Constraint, ConstraintSet, Var


class TestConstraint:
    def test_equality_satisfied(self):
        c = Var("x").eq(Var("y"))
        assert c.satisfied({"x": 3, "y": 3})
        assert not c.satisfied({"x": 3, "y": 4})

    def test_le(self):
        c = Var("x").le(10)
        assert c.satisfied({"x": 10})
        assert not c.satisfied({"x": 11})

    def test_ge(self):
        c = Var("x").ge(2)
        assert c.satisfied({"x": 2})
        assert not c.satisfied({"x": 1})

    def test_lt_is_strict_integer(self):
        c = Var("x").lt(5)
        assert c.satisfied({"x": 4})
        assert not c.satisfied({"x": 5})

    def test_gt_is_strict_integer(self):
        c = Var("x").gt(5)
        assert c.satisfied({"x": 6})
        assert not c.satisfied({"x": 5})

    def test_trivially_true(self):
        assert Affine.const(0).eq(0).trivially_true()
        assert Affine.const(3).ge(1).trivially_true()

    def test_trivially_false(self):
        assert Affine.const(1).eq(0).trivially_false()
        assert Affine.const(0).ge(1).trivially_false()

    def test_not_trivial_with_variables(self):
        c = Var("x").ge(0)
        assert not c.trivially_true()
        assert not c.trivially_false()

    def test_substitute(self):
        c = Var("x").eq(0)
        c2 = c.substitute({"x": Var("I1") - 1})
        assert c2.satisfied({"I1": 1})
        assert not c2.satisfied({"I1": 2})

    def test_rename(self):
        c = Var("x").le(Var("y"))
        c2 = c.rename({"x": "I1", "y": "I2"})
        assert c2.satisfied({"I1": 1, "I2": 2})

    def test_partial_evaluate(self):
        c = Var("x").le(Var("y"))
        c2 = c.partial_evaluate({"y": 5})
        assert c2.satisfied({"x": 5})
        assert not c2.satisfied({"x": 6})

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Constraint(Affine.const(0), "<")

    def test_hash_and_eq(self):
        assert Var("x").ge(1) == Var("x").ge(1)
        assert hash(Var("x").ge(1)) == hash(Var("x").ge(1))
        assert Var("x").ge(1) != Var("x").ge(2)


class TestConstraintSet:
    def test_empty_is_true(self):
        s = ConstraintSet.true()
        assert s.is_true()
        assert s.satisfied({})

    def test_conjunction(self):
        s = ConstraintSet([Var("x").ge(1), Var("x").le(3)])
        assert s.satisfied({"x": 2})
        assert not s.satisfied({"x": 0})
        assert not s.satisfied({"x": 4})

    def test_conjoin_constraint(self):
        s = ConstraintSet([Var("x").ge(1)]).conjoin(Var("x").le(3))
        assert len(s) == 2

    def test_conjoin_set(self):
        a = ConstraintSet([Var("x").ge(1)])
        b = ConstraintSet([Var("y").ge(1)])
        assert len(a.conjoin(b)) == 2

    def test_trivially_true_dropped(self):
        s = ConstraintSet([Affine.const(0).ge(0), Var("x").ge(1)])
        assert len(s) == 1

    def test_duplicates_dropped(self):
        s = ConstraintSet([Var("x").ge(1), Var("x").ge(1)])
        assert len(s) == 1

    def test_trivially_false(self):
        s = ConstraintSet([Affine.const(-1).ge(0)])
        assert s.trivially_false()

    def test_variables(self):
        s = ConstraintSet([Var("x").ge(1), Var("y").eq(Var("z"))])
        assert s.variables() == {"x", "y", "z"}

    def test_substitute(self):
        s = ConstraintSet([Var("x").eq(5)])
        s2 = s.substitute({"x": Var("I1") + 1})
        assert s2.satisfied({"I1": 4})

    def test_equality_order_independent(self):
        a = ConstraintSet([Var("x").ge(1), Var("y").ge(2)])
        b = ConstraintSet([Var("y").ge(2), Var("x").ge(1)])
        assert a == b
        assert hash(a) == hash(b)
