"""Unit tests of the per-point classifier: outcomes, kinds and via-vectors."""

import pytest

from repro.ir import ProgramBuilder
from repro.layout import CacheConfig, MemoryLayout, layout_for_refs
from repro.normalize import normalize
from repro.reuse import build_reuse_table
from repro.cme import Outcome, PointClassifier


def classifier_for(pb, cache, align=32):
    prog = pb.build()
    nprog = normalize(prog.main)
    layout = layout_for_refs(
        nprog.refs, declared_order=prog.global_arrays, align=align
    )
    reuse = build_reuse_table(nprog, cache.line_bytes)
    return nprog, PointClassifier(nprog, layout, cache, reuse)


class TestOutcomes:
    def test_first_touch_is_cold(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 16) as i:
                pb.assign(a[i])
        cache = CacheConfig.kb(32, 32, 1)
        nprog, classifier = classifier_for(pb, cache)
        ref = nprog.refs[0]
        result = classifier.classify(ref, (1,))
        assert result.outcome is Outcome.COLD
        assert result.outcome.is_miss
        assert result.via is None

    def test_same_line_successor_is_hit_via_spatial_vector(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 16) as i:
                pb.assign(a[i])
        cache = CacheConfig.kb(32, 32, 1)
        nprog, classifier = classifier_for(pb, cache)
        ref = nprog.refs[0]
        result = classifier.classify(ref, (2,))
        assert result.outcome is Outcome.HIT
        assert not result.outcome.is_miss
        assert result.via is not None
        assert result.via.kind == "spatial"

    def test_line_boundary_is_cold_again(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 16) as i:
                pb.assign(a[i])
        cache = CacheConfig.kb(32, 32, 1)
        nprog, classifier = classifier_for(pb, cache)
        ref = nprog.refs[0]
        # I = 5 starts the second 32B line (elements 5..8).
        assert classifier.classify(ref, (5,)).outcome is Outcome.COLD

    def test_conflict_eviction_is_replacement_miss(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (128,))  # one 1KB cache apart
        b = pb.array("B", (128,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 128) as i:
                pb.assign(b[i], a[i])
        prog = pb.build()
        nprog = normalize(prog.main)
        layout = MemoryLayout(prog.global_arrays, align=1024)
        cache = CacheConfig.kb(1, 32, 1)
        reuse = build_reuse_table(nprog, cache.line_bytes)
        classifier = PointClassifier(nprog, layout, cache, reuse)
        a_ref = nprog.refs[0]
        # A(2) would reuse A(1)'s line, but B(1)'s write in between maps to
        # the same set in a direct-mapped cache and evicts it.
        result = classifier.classify(a_ref, (2,))
        assert result.outcome is Outcome.REPLACEMENT
        assert result.via is not None

    def test_associativity_turns_replacement_into_hit(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (128,))
        b = pb.array("B", (128,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 128) as i:
                pb.assign(b[i], a[i])
        prog = pb.build()
        nprog = normalize(prog.main)
        layout = MemoryLayout(prog.global_arrays, align=1024)
        cache = CacheConfig.kb(1, 32, 2)
        reuse = build_reuse_table(nprog, cache.line_bytes)
        classifier = PointClassifier(nprog, layout, cache, reuse)
        a_ref = nprog.refs[0]
        assert classifier.classify(a_ref, (2,)).outcome is Outcome.HIT

    def test_temporal_reuse_across_nests(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (8,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 8) as i:
                pb.assign(a[i])
            with pb.do("I", 1, 8) as i:
                pb.read(a[i])
        cache = CacheConfig.kb(32, 32, 1)
        nprog, classifier = classifier_for(pb, cache)
        consumer = nprog.refs[1]
        # At I = 3 the *nearest* producer is the previous read in the same
        # nest (a spatial self vector); the classifier must prefer it.
        near = classifier.classify(consumer, (3,))
        assert near.outcome is Outcome.HIT
        assert near.via.is_self
        # At I = 1 the only producers are the nest-1 writes: group reuse
        # across nests, the paper's headline generalisation.  (The chosen
        # vector is the nest-1 write *nearest in time* to the consumed
        # line — the spatial (1, −3) to A(4) — not the temporal (1, 0).)
        across = classifier.classify(consumer, (1,))
        assert across.outcome is Outcome.HIT
        assert across.via.is_group
        assert across.via.label_part() == (1,)
        assert across.via.producer.is_write

    def test_guarded_producer_limits_group_reuse(self):
        """Cold equations must reject producer points outside the guard:
        A(I) is only written for I ≤ 8, so the second nest's reads reuse
        lines up to the guard boundary and go cold beyond it."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 16) as i:
                with pb.if_(i.le(8)):
                    pb.assign(a[i])
            with pb.do("I", 1, 16) as i:
                pb.read(a[i])
        cache = CacheConfig.kb(32, 32, 1)
        nprog, classifier = classifier_for(pb, cache)
        consumer = nprog.refs[1]
        # I = 1: the guarded write at I = 1 satisfies its guard -> group hit.
        head = classifier.classify(consumer, (1,))
        assert head.outcome is Outcome.HIT
        assert head.via.is_group
        # I = 9 starts the third line (elements 9..12): every candidate
        # producer point violates the guard, and no earlier consumer access
        # touched the line -> cold miss.
        assert classifier.classify(consumer, (9,)).outcome is Outcome.COLD
        # I = 10 reuses the line the consumer itself fetched at I = 9.
        follow = classifier.classify(consumer, (10,))
        assert follow.outcome is Outcome.HIT
        assert follow.via.is_self

    def test_guarded_reference_classified_inside_its_own_ris(self):
        """A guarded reference's own points follow the usual line pattern."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 16) as i:
                with pb.if_(i.le(8)):
                    pb.assign(a[i])
        cache = CacheConfig.kb(32, 32, 1)
        nprog, classifier = classifier_for(pb, cache)
        ref = nprog.refs[0]
        # Elements 1..4 share the first 32B line, 5..8 the second.
        assert classifier.classify(ref, (1,)).outcome is Outcome.COLD
        assert classifier.classify(ref, (2,)).outcome is Outcome.HIT
        assert classifier.classify(ref, (5,)).outcome is Outcome.COLD
        assert classifier.classify(ref, (6,)).outcome is Outcome.HIT

    def test_guarded_consumer_temporal_reuse_across_time_steps(self):
        """A guarded consumer still sees its own previous time step: the
        producer point (T−1, I) satisfies the same guard."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 2):
                with pb.do("I", 1, 16) as i:
                    with pb.if_(i.le(8)):
                        pb.read(a[i])
        cache = CacheConfig.kb(32, 32, 1)
        nprog, classifier = classifier_for(pb, cache)
        ref = nprog.refs[0]
        assert classifier.classify(ref, (1, 1)).outcome is Outcome.COLD
        second_sweep = classifier.classify(ref, (2, 1))
        assert second_sweep.outcome is Outcome.HIT

    def test_intra_statement_read_then_write_hits(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (8,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 8) as i:
                pb.assign(a[i], a[i])  # A(I) = f(A(I))
        cache = CacheConfig.kb(32, 32, 1)
        nprog, classifier = classifier_for(pb, cache)
        write_ref = nprog.refs[1]
        result = classifier.classify(write_ref, (1,))
        # The write reuses the read's line at distance r = 0.
        assert result.outcome is Outcome.HIT
        assert all(c == 0 for c in result.via.vec)
