"""Differential sweep for the regional solver (ISSUE 10).

``RegionMisses`` is an execution strategy, not an approximation: over the
full 210-case seeded pool of the differential harness — every program
family (regular and irregular) crossed with every cache geometry — its
per-reference classifications must equal ``FindMisses`` **exactly**.  The
solver guarantees this by construction (uncertified regions fall back to
the same per-point classifier), so any diff here is a soundness bug in the
regional decomposition or its closed-form counting.

The sweep also pins down the operational contracts around the solver:

* the fallback path really runs (and is observable) on irregular guarded
  programs,
* parallel (``jobs``) and memoized solves reproduce the serial report,
* the static coverage probe brackets what the solver then actually does.
"""

from __future__ import annotations

from repro import obs
from repro.cme import find_misses, region_misses, regional_coverage
from repro.reuse import build_reuse_table
from tests.harness.differential import FAMILIES, generate_cases

#: 30 cases per family — the same 210-case pool as the backend and memo
#: differential sweeps.
CASE_COUNT = 30 * len(FAMILIES)

_cases = None


def all_cases():
    global _cases
    if _cases is None:
        _cases = generate_cases(CASE_COUNT)
    return _cases


def test_regions_equals_find_on_every_case():
    failures = []
    for case in all_cases():
        nprog, layout = case.prepared()
        find = find_misses(nprog, layout, case.cache)
        regions = region_misses(nprog, layout, case.cache)
        if regions.results != find.results:
            diffs = [
                f"{find.results[uid].ref_name}: "
                f"find={find.results[uid]} regions={regions.results[uid]}"
                for uid in find.results
                if find.results[uid] != regions.results[uid]
            ]
            failures.append(f"{case.name}: {'; '.join(diffs[:3])}")
    assert not failures, "\n".join(failures[:20])


def test_report_method_name():
    case = all_cases()[0]
    nprog, layout = case.prepared()
    assert region_misses(nprog, layout, case.cache).method == "RegionMisses"


def test_fallback_path_runs_on_irregular_guarded_family():
    # Guarded families produce non-convex interference: some decided cells
    # carry no closed-form certificate, so the solver must enumerate them
    # through the per-point classifier — and account for it.
    fallback_cases = 0
    obs.enable()
    for case in all_cases():
        if not case.name.startswith(("guarded", "guardednests")):
            continue
        nprog, layout = case.prepared()
        obs.reset()
        report = region_misses(nprog, layout, case.cache)
        fb = obs.counter("cme.regions.fallback_points").value
        if fb > 0:
            fallback_cases += 1
            assert obs.counter("cme.regions.fallback_regions").value > 0
            assert obs.counter("cme.regions.fallback_cells").value > 0
        assert report.results == find_misses(nprog, layout, case.cache).results
    obs.disable()
    assert fallback_cases > 0, (
        "no guarded case exercised the enumeration fallback — the "
        "irregular-region path is untested"
    )


def test_exact_regions_counted_on_regular_families():
    # Regular scan cases must solve at least some regions in closed form.
    obs.enable()
    exact_total = 0
    for case in all_cases()[:14]:  # two rounds of the family cycle
        nprog, layout = case.prepared()
        obs.reset()
        region_misses(nprog, layout, case.cache)
        exact_total += obs.counter("cme.regions.exact_regions").value
    obs.disable()
    assert exact_total > 0


def test_parallel_and_memo_reproduce_serial():
    from repro.memo import Memoizer

    for case in all_cases()[: len(FAMILIES)]:
        nprog, layout = case.prepared()
        serial = region_misses(nprog, layout, case.cache)
        parallel = region_misses(nprog, layout, case.cache, jobs=2)
        assert parallel.results == serial.results
        assert parallel.method == serial.method == "RegionMisses"
        memo = Memoizer()
        first = region_misses(nprog, layout, case.cache, memo=memo)
        replay = region_misses(nprog, layout, case.cache, memo=memo)
        assert first.results == serial.results
        assert replay.results == serial.results
        assert memo.hits > 0  # the second run replayed stored solutions


def test_coverage_probe_is_a_fraction():
    for case in all_cases()[: len(FAMILIES)]:
        nprog, layout = case.prepared()
        reuse = build_reuse_table(nprog, case.cache.line_bytes)
        cov = regional_coverage(nprog, layout, case.cache, reuse)
        assert 0.0 <= cov <= 1.0
