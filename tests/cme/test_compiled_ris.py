"""Guard edge cases for the compiled RIS membership tests (ISSUE 5).

:class:`~repro.cme.point._CompiledRIS` is the scalar fast path the cold
equations probe for every candidate producer point, and
:class:`~repro.cme.batch._BatchRIS` its vectorized twin.  Both must agree
with the polyhedral :meth:`Space.contains` oracle — in particular around
the guard-kind split (an ``EQ`` guard admits only ``expr == 0``, a ``GEQ``
guard everything with ``expr >= 0``), empty guard tuples, and degenerate
one-point loop bounds.
"""

from __future__ import annotations

import itertools

import pytest

from repro.ir import ProgramBuilder
from repro.normalize import normalize
from repro.cme.point import _CompiledRIS


def _leafspace(build):
    """Normalize a one-leaf program; return (nprog, leaf, its RIS space)."""
    pb = ProgramBuilder("RIS")
    build(pb)
    nprog = normalize(pb.build().main)
    assert len(nprog.leaves) == 1
    leaf = nprog.leaves[0]
    return nprog, leaf, nprog.ris(leaf)


def _grid(space, margin=2):
    """Every integer point of the bounding box widened by ``margin``."""
    ranges = [space.var_ranges()[v] for v in space.dims]
    return list(
        itertools.product(
            *[range(lo - margin, hi + margin + 1) for lo, hi in ranges]
        )
    )


def _eq_guarded(pb):
    a = pb.array("A", (10, 10))
    with pb.subroutine("MAIN"):
        with pb.do("J", 1, 8) as j:
            with pb.do("I", 1, 8) as i:
                with pb.if_(i.eq(j)):
                    pb.assign(a[i, j])


def _geq_guarded(pb):
    a = pb.array("A", (10, 10))
    with pb.subroutine("MAIN"):
        with pb.do("J", 1, 8) as j:
            with pb.do("I", 1, 8) as i:
                with pb.if_(i.ge(j)):
                    pb.assign(a[i, j])


def _unguarded(pb):
    a = pb.array("A", (10,))
    with pb.subroutine("MAIN"):
        with pb.do("I", 1, 8) as i:
            pb.assign(a[i])


def _degenerate(pb):
    # Both loops span exactly one iteration: a one-point RIS.
    a = pb.array("A", (10, 10))
    with pb.subroutine("MAIN"):
        with pb.do("J", 5, 5) as j:
            with pb.do("I", 3, 3) as i:
                pb.assign(a[i, j])


BUILDERS = [_eq_guarded, _geq_guarded, _unguarded, _degenerate]


@pytest.mark.parametrize("build", BUILDERS, ids=lambda b: b.__name__[1:])
def test_scalar_contains_matches_space_oracle(build):
    nprog, leaf, space = _leafspace(build)
    ris = _CompiledRIS(nprog, leaf)
    for point in _grid(space):
        assert ris.contains(point) == space.contains(point), point


def test_eq_guard_admits_only_the_diagonal():
    nprog, leaf, _ = _leafspace(_eq_guarded)
    ris = _CompiledRIS(nprog, leaf)
    assert len(ris.guard) == 1 and ris.guard[0][0] is True  # one EQ guard
    assert ris.contains((4, 4))
    assert not ris.contains((4, 5)) and not ris.contains((5, 4))


def test_geq_guard_admits_the_half_space():
    nprog, leaf, _ = _leafspace(_geq_guarded)
    ris = _CompiledRIS(nprog, leaf)
    assert len(ris.guard) == 1 and ris.guard[0][0] is False  # one GEQ guard
    # Points are (J, I) — normalized outer-to-inner order; I >= J admitted.
    assert ris.contains((4, 5)) and ris.contains((4, 4))
    assert not ris.contains((5, 4))


def test_empty_guard_reduces_to_bounds():
    nprog, leaf, _ = _leafspace(_unguarded)
    ris = _CompiledRIS(nprog, leaf)
    assert ris.guard == ()
    assert ris.contains((1,)) and ris.contains((8,))
    assert not ris.contains((0,)) and not ris.contains((9,))


def test_degenerate_bounds_admit_exactly_one_point():
    nprog, leaf, space = _leafspace(_degenerate)
    ris = _CompiledRIS(nprog, leaf)
    assert space.count() == 1
    inside = [p for p in _grid(space) if ris.contains(p)]
    assert inside == [(3, 5)] or inside == [(5, 3)]  # (I, J) vs (J, I) order
    assert len(inside) == 1


@pytest.mark.parametrize("build", BUILDERS, ids=lambda b: b.__name__[1:])
def test_batch_ris_agrees_with_scalar_entrywise(build):
    np = pytest.importorskip("numpy")
    from repro.cme.batch import _BatchRIS

    nprog, leaf, space = _leafspace(build)
    scalar = _CompiledRIS(nprog, leaf)
    batch = _BatchRIS(nprog, leaf)
    grid = _grid(space)
    mask = batch.contains(np.array(grid, dtype=np.int64))
    for point, got in zip(grid, mask.tolist()):
        assert got == scalar.contains(point), point
