"""Unit tests for the :meth:`RefResult.check_invariants` structural checks.

Both classification backends feed the same result containers, so a
mis-counting backend must be caught at the container level: the outcome
tallies have to sum to the analysed count, and an exhaustive solve has to
analyse the whole population.
"""

import pytest

from repro.cme import RefResult
from repro.errors import AnalysisError, InvariantError, ReproError


def _result(**kw):
    base = dict(
        ref_name="A(I1)", ref_uid=1, population=10,
        analysed=10, cold=2, replacement=3, hits=5,
    )
    base.update(kw)
    return RefResult(**base)


def test_consistent_tallies_pass_and_chain():
    r = _result()
    assert r.check_invariants() is r
    assert r.check_invariants(exhaustive=True) is r


def test_tally_sum_mismatch_raises():
    with pytest.raises(InvariantError, match="!= analysed"):
        _result(hits=4).check_invariants()


def test_partial_analysis_passes_unless_exhaustive():
    r = _result(analysed=6, cold=1, replacement=2, hits=3)
    assert r.check_invariants() is r
    with pytest.raises(InvariantError, match="analysed 6 of 10"):
        r.check_invariants(exhaustive=True)


def test_invariant_error_is_an_analysis_error():
    # Callers catching the repo's error hierarchy must see backend
    # mis-counts too.
    assert issubclass(InvariantError, AnalysisError)
    assert issubclass(InvariantError, ReproError)
