"""Integration: FindMisses against the cache simulator (the Table 3 claim).

For programs whose references are all uniformly generated, the analytical
model must agree with simulation *exactly*; in general it may only
over-estimate (the paper's conservatism for non-uniform reuse).
"""

import pytest

from repro.ir import ProgramBuilder
from repro.layout import CacheConfig, MemoryLayout, layout_for_refs
from repro.normalize import normalize
from repro.cme import find_misses
from repro.sim import simulate

from tests.fixtures import figure1_program


def prepared(pb, align=32):
    prog = pb.build()
    nprog = normalize(prog.main)
    layout = layout_for_refs(
        nprog.refs, declared_order=prog.global_arrays, align=align
    )
    return nprog, layout


def assert_exact(nprog, layout, cache):
    analytic = find_misses(nprog, layout, cache)
    simulated = simulate(nprog, layout, cache)
    assert analytic.total_accesses == simulated.total_accesses
    assert analytic.total_misses == simulated.total_misses
    # exact agreement per reference as well
    for ref in nprog.refs:
        a = analytic.result_for(ref)
        assert a.misses == simulated.misses[ref.uid], ref.name()
    return analytic, simulated


def assert_conservative(nprog, layout, cache, tolerance=0.0):
    analytic = find_misses(nprog, layout, cache)
    simulated = simulate(nprog, layout, cache)
    assert analytic.total_accesses == simulated.total_accesses
    assert analytic.total_misses >= simulated.total_misses - 1e-9
    if tolerance:
        assert (
            analytic.miss_ratio - simulated.miss_ratio
        ) <= tolerance
    return analytic, simulated


class TestExactAgreement:
    def test_sequential_scan(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (64,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 64) as i:
                pb.assign(a[i])
        nprog, layout = prepared(pb)
        analytic, _ = assert_exact(nprog, layout, CacheConfig.kb(32, 32, 1))
        assert analytic.total_misses == 16  # one per 32B line

    def test_repeated_scan_temporal_reuse_across_time_loop(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (64,))
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 3):
                with pb.do("I", 1, 64) as i:
                    pb.assign(a[i])
        nprog, layout = prepared(pb)
        analytic, _ = assert_exact(nprog, layout, CacheConfig.kb(32, 32, 1))
        assert analytic.total_misses == 16  # later sweeps all hit

    def test_conflict_ping_pong_direct_mapped(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (128,))  # exactly one 1KB cache apart
        b = pb.array("B", (128,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 128) as i:
                pb.assign(b[i], a[i])
        prog = pb.build()
        nprog = normalize(prog.main)
        layout = MemoryLayout(prog.global_arrays, align=1024)
        analytic, _ = assert_exact(nprog, layout, CacheConfig.kb(1, 32, 1))
        assert analytic.total_misses == 256  # every access ping-pongs

    def test_conflicts_resolved_by_2way(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (128,))
        b = pb.array("B", (128,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 128) as i:
                pb.assign(b[i], a[i])
        prog = pb.build()
        nprog = normalize(prog.main)
        layout = MemoryLayout(prog.global_arrays, align=1024)
        analytic, _ = assert_exact(nprog, layout, CacheConfig.kb(1, 32, 2))
        assert analytic.total_misses == 64

    def test_capacity_misses(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (512,))  # 4KB footprint, 1KB cache
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 2):
                with pb.do("I", 1, 512) as i:
                    pb.assign(a[i])
        nprog, layout = prepared(pb)
        assert_exact(nprog, layout, CacheConfig.kb(1, 32, 1))

    def test_stencil_rows_2d(self):
        """A 2-D Jacobi-like stencil: spatial + group-temporal reuse."""
        n = 20
        pb = ProgramBuilder("P")
        a = pb.array("A", (n + 2, n + 2))
        b = pb.array("B", (n + 2, n + 2))
        with pb.subroutine("MAIN"):
            with pb.do("J", 2, n + 1) as j:
                with pb.do("I", 2, n + 1) as i:
                    pb.assign(
                        b[i, j], a[i - 1, j], a[i + 1, j], a[i, j - 1], a[i, j + 1]
                    )
        nprog, layout = prepared(pb)
        for assoc in (1, 2, 4):
            assert_exact(nprog, layout, CacheConfig.kb(32, 32, assoc))

    def test_inter_nest_reuse(self):
        """Whole-program reuse across two separate nests (the paper's pitch)."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (64,))
        b = pb.array("B", (64,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 64) as i:
                pb.assign(a[i])
            with pb.do("I", 1, 64) as i:
                pb.assign(b[i], a[i])
        nprog, layout = prepared(pb)
        analytic, _ = assert_exact(nprog, layout, CacheConfig.kb(32, 32, 1))
        # A: 16 cold in nest 1, all hits in nest 2; B: 16 cold.
        assert analytic.total_misses == 32

    def test_column_major_matters(self):
        """Row-wise traversal of a column-major array: no spatial locality."""
        n = 16
        pb = ProgramBuilder("P")
        a = pb.array("A", (n, n))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, n) as i:  # row index fixed per inner sweep
                with pb.do("J", 1, n) as j:
                    pb.assign(a[i, j])  # stride n*8 bytes between accesses
        nprog, layout = prepared(pb)
        analytic, simulated = assert_exact(nprog, layout, CacheConfig.kb(32, 32, 1))
        # Every line still visited; with a 32KB cache nothing is evicted:
        # misses = number of distinct lines of A.
        assert analytic.total_misses == n * n // 4


class TestConservative:
    def test_figure1_program(self):
        """Fig. 1 has non-uniformly-generated A refs: small over-estimation only."""
        prog, _, _ = figure1_program(16)
        nprog = normalize(prog.main)
        layout = layout_for_refs(
            nprog.refs, declared_order=prog.global_arrays, align=32
        )
        for assoc in (1, 2):
            analytic, simulated = assert_conservative(
                nprog, layout, CacheConfig.kb(32, 32, assoc), tolerance=0.10
            )

    def test_triangular_nest(self):
        pb = ProgramBuilder("P")
        n = 16
        a = pb.array("A", (n, n))
        with pb.subroutine("MAIN"):
            with pb.do("J", 1, n) as j:
                with pb.do("I", j, n) as i:
                    pb.assign(a[i, j])
        nprog, layout = prepared(pb)
        assert_exact(nprog, layout, CacheConfig.kb(32, 32, 1))

    def test_guarded_reference(self):
        pb = ProgramBuilder("P")
        n = 16
        a = pb.array("A", (n,))
        with pb.subroutine("MAIN"):
            with pb.do("T", 1, 2):
                with pb.do("I", 1, n) as i:
                    with pb.if_(i.le(8)):
                        pb.assign(a[i])
        nprog, layout = prepared(pb)
        assert_conservative(nprog, layout, CacheConfig.kb(32, 32, 1))


class TestSmallCachesStress:
    @pytest.mark.parametrize("assoc", [1, 2, 4])
    @pytest.mark.parametrize("size_kb", [1, 2])
    def test_stencil_small_caches(self, size_kb, assoc):
        """Small caches force replacement misses; model must stay conservative
        and in practice exact for this uniformly generated stencil."""
        n = 12
        pb = ProgramBuilder("P")
        a = pb.array("A", (n + 2, n + 2))
        b = pb.array("B", (n + 2, n + 2))
        with pb.subroutine("MAIN"):
            with pb.do("J", 2, n + 1) as j:
                with pb.do("I", 2, n + 1) as i:
                    pb.assign(b[i, j], a[i - 1, j], a[i + 1, j], a[i, j])
        nprog, layout = prepared(pb)
        assert_exact(nprog, layout, CacheConfig.kb(size_kb, 32, assoc))
