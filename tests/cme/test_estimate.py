"""EstimateMisses: accuracy against simulation and Fig. 6 behaviours."""

import random

import pytest

from repro.ir import ProgramBuilder
from repro.layout import CacheConfig, layout_for_refs
from repro.normalize import normalize
from repro.cme import compare_reports, estimate_misses, find_misses
from repro.sim import simulate
from repro.stats import sample_size


def build_stencil(n=40):
    pb = ProgramBuilder("STENCIL")
    a = pb.array("A", (n + 2, n + 2))
    b = pb.array("B", (n + 2, n + 2))
    with pb.subroutine("MAIN"):
        with pb.do("J", 2, n + 1) as j:
            with pb.do("I", 2, n + 1) as i:
                pb.assign(
                    b[i, j], a[i - 1, j], a[i + 1, j], a[i, j - 1], a[i, j + 1]
                )
    prog = pb.build()
    nprog = normalize(prog.main)
    layout = layout_for_refs(nprog.refs, declared_order=prog.global_arrays, align=32)
    return nprog, layout


class TestAccuracy:
    @pytest.mark.parametrize("assoc", [1, 2])
    def test_estimate_close_to_simulation(self, assoc):
        nprog, layout = build_stencil(40)
        cache = CacheConfig.kb(8, 32, assoc)
        est = estimate_misses(nprog, layout, cache, rng=random.Random(1))
        sim = simulate(nprog, layout, cache)
        # The paper reports absolute errors below 0.4 percentage points for
        # kernels at (c, w) = (95%, 0.05); allow a small safety margin.
        assert abs(est.miss_ratio_percent - sim.miss_ratio_percent) < 2.0

    def test_estimate_close_to_findmisses(self):
        nprog, layout = build_stencil(30)
        cache = CacheConfig.kb(8, 32, 1)
        est = estimate_misses(nprog, layout, cache, rng=random.Random(2))
        exact = find_misses(nprog, layout, cache)
        assert abs(est.miss_ratio - exact.miss_ratio) < 0.03

    def test_tighter_width_is_more_accurate_on_average(self):
        """Both widths must be achievable for the RIS (else Fig. 6 falls back
        to the coarse default and the comparison inverts)."""
        nprog, layout = build_stencil(40)  # RIS volume 1600 per reference
        cache = CacheConfig.kb(8, 32, 1)
        exact = find_misses(nprog, layout, cache).miss_ratio
        errors = {0.12: [], 0.04: []}
        for seed in range(4):
            for w in errors:
                est = estimate_misses(
                    nprog, layout, cache, width=w, rng=random.Random(seed)
                )
                errors[w].append(abs(est.miss_ratio - exact))
        assert sum(errors[0.04]) / 4 <= sum(errors[0.12]) / 4 + 0.02

    def test_unachievable_width_falls_back_to_coarse_sampling(self):
        """Fig. 6: an RIS too small for (c, w) is sampled at (90%, 0.15)."""
        nprog, layout = build_stencil(30)  # volume 900 < n0(0.95, 0.03)
        cache = CacheConfig.kb(8, 32, 1)
        est = estimate_misses(
            nprog, layout, cache, width=0.03, rng=random.Random(0)
        )
        expected = sample_size(0.90, 0.15, population=900)
        for result in est.results.values():
            assert result.analysed == expected


class TestFig6Behaviours:
    def test_sample_size_matches_formula(self):
        nprog, layout = build_stencil(40)  # RIS volume 1600 per ref
        cache = CacheConfig.kb(8, 32, 1)
        est = estimate_misses(nprog, layout, cache, rng=random.Random(0))
        expected = sample_size(0.95, 0.05, population=1600)
        for result in est.results.values():
            assert result.analysed == expected

    def test_small_ris_falls_back_to_exhaustive(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (8,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 8) as i:
                pb.assign(a[i])
        nprog = normalize(pb.build().main)
        layout = layout_for_refs(nprog.refs, align=32)
        est = estimate_misses(nprog, layout, CacheConfig.kb(32, 32, 1))
        result = next(iter(est.results.values()))
        assert result.analysed == result.population == 8
        assert est.total_misses == 2.0  # exact: falls back to FindMisses

    def test_medium_ris_uses_fallback_accuracy(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (200,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 200) as i:
                pb.assign(a[i])
        nprog = normalize(pb.build().main)
        layout = layout_for_refs(nprog.refs, align=32)
        est = estimate_misses(nprog, layout, CacheConfig.kb(32, 32, 1))
        result = next(iter(est.results.values()))
        expected = sample_size(0.90, 0.15, population=200)
        assert result.analysed == expected

    def test_deterministic_with_seed(self):
        nprog, layout = build_stencil(20)
        cache = CacheConfig.kb(8, 32, 1)
        r1 = estimate_misses(nprog, layout, cache, rng=random.Random(7))
        r2 = estimate_misses(nprog, layout, cache, rng=random.Random(7))
        assert r1.total_misses == r2.total_misses

    def test_seed_and_legacy_rng_are_both_deterministic(self):
        nprog, layout = build_stencil(20)
        cache = CacheConfig.kb(8, 32, 1)
        assert estimate_misses(nprog, layout, cache, seed=9) == estimate_misses(
            nprog, layout, cache, seed=9
        )

    def test_per_reference_seeds_are_independent(self):
        """Regression for the shared-RNG bug: one ``random.Random(0)`` was
        threaded through every reference, so dropping a reference shifted
        the sample of every reference after it.  With derived per-reference
        seeds (``seed ^ ref.uid``), analysing a subset of references must
        reproduce exactly the same per-reference tallies as the full run."""
        nprog, layout = build_stencil(40)
        cache = CacheConfig.kb(8, 32, 1)
        full = estimate_misses(nprog, layout, cache, seed=0)
        # Remove the first reference; the rest must be untouched.
        subset = estimate_misses(
            nprog, layout, cache, seed=0, refs=nprog.refs[1:]
        )
        for ref in nprog.refs[1:]:
            assert subset.result_for(ref) == full.result_for(ref), ref.name()
        # And each reference analysed in isolation reproduces its tally.
        lone = estimate_misses(nprog, layout, cache, seed=0, refs=[nprog.refs[2]])
        assert lone.result_for(nprog.refs[2]) == full.result_for(nprog.refs[2])

    def test_empty_ris_reference(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (8,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 8) as i:
                with pb.if_(i.ge(100)):
                    pb.assign(a[i])
        nprog = normalize(pb.build().main)
        layout = layout_for_refs(nprog.refs, align=32)
        est = estimate_misses(nprog, layout, CacheConfig.kb(32, 32, 1))
        assert est.total_accesses == 0
        assert est.miss_ratio == 0.0


class TestReporting:
    def test_compare_reports_fields(self):
        nprog, layout = build_stencil(20)
        cache = CacheConfig.kb(8, 32, 1)
        est = estimate_misses(nprog, layout, cache, rng=random.Random(0))
        sim = simulate(nprog, layout, cache)
        record = compare_reports(est, sim)
        assert set(record) == {
            "analytical_percent",
            "simulated_percent",
            "abs_error",
            "analysis_seconds",
            "simulation_seconds",
            "speedup",
        }
        assert record["abs_error"] >= 0.0

    def test_breakdown_sums_to_population(self):
        nprog, layout = build_stencil(20)
        cache = CacheConfig.kb(8, 32, 1)
        exact = find_misses(nprog, layout, cache)
        b = exact.breakdown()
        assert b["cold"] + b["replacement"] + b["hits"] == exact.total_accesses

    def test_worst_refs_ordering(self):
        nprog, layout = build_stencil(20)
        exact = find_misses(nprog, layout, CacheConfig.kb(8, 32, 1))
        worst = exact.worst_refs(3)
        values = [r.estimated_misses for r in worst]
        assert values == sorted(values, reverse=True)

    def test_analysed_points_far_fewer_than_trace(self):
        """The speedup mechanism: sample size independent of trace length."""
        nprog, layout = build_stencil(40)
        cache = CacheConfig.kb(8, 32, 1)
        est = estimate_misses(nprog, layout, cache, rng=random.Random(0))
        assert est.analysed_points < est.total_accesses / 2
