"""Backend selection and the batch backend's fallback contract (ISSUE 5).

Three degradation layers keep results identical no matter what is
installed or vectorizable:

* **selection** — ``resolve_backend`` degrades ``"numpy"`` to
  ``"scalar"`` when NumPy is missing (never errors), rejects unknown
  names, and ``make_classifier`` honours the resolution;
* **import gate** — importing the batch modules without NumPy raises
  :class:`~repro.errors.MissingDependencyError` with an install hint;
* **per-reference fallback** — a reference the vectorized path cannot
  handle is classified by the embedded scalar classifier with identical
  tallies, surfaced through the ``cme.backend.fallback_points`` counter.
"""

from __future__ import annotations

import importlib
import sys

import pytest

from repro import obs
from repro.cme import (
    BACKENDS,
    find_misses,
    make_classifier,
    numpy_available,
    resolve_backend,
)
from repro.cme.point import PointClassifier
from repro.cme.result import RefResult
from repro.errors import MissingDependencyError, ReproError
from repro.ir import ProgramBuilder
from repro.layout import CacheConfig, layout_for_refs
from repro.normalize import normalize
from repro.reuse import build_reuse_table

np = pytest.importorskip("numpy")

from repro.cme import backend as backend_mod  # noqa: E402
from repro.cme.batch import BatchClassifier, _BatchUnsupported  # noqa: E402


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    yield
    obs.disable()


def _prepared():
    pb = ProgramBuilder("FB")
    a = pb.array("A", (40,))
    with pb.subroutine("MAIN"):
        with pb.do("T", 1, 2):
            with pb.do("I", 1, 32) as i:
                pb.assign(a[i], a[i + 1])
    nprog = normalize(pb.build().main)
    layout = layout_for_refs(nprog.refs)
    cache = CacheConfig.kb(1, 32, 2)
    return nprog, layout, cache


# -- selection ------------------------------------------------------------------------


def test_resolve_backend_defaults_and_rejects_unknown():
    assert resolve_backend(None) in BACKENDS
    assert resolve_backend("auto") == resolve_backend(None)
    assert resolve_backend("scalar") == "scalar"
    with pytest.raises(ReproError, match="unknown classification backend"):
        resolve_backend("cuda")


def test_numpy_request_degrades_to_scalar_without_numpy(monkeypatch):
    monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
    assert backend_mod.resolve_backend("numpy") == "scalar"
    assert backend_mod.resolve_backend(None) == "scalar"
    assert backend_mod.resolve_backend("scalar") == "scalar"


def test_make_classifier_builds_the_resolved_backend(monkeypatch):
    nprog, layout, cache = _prepared()
    reuse = build_reuse_table(nprog, cache.line_bytes)
    assert numpy_available()
    batch = make_classifier("numpy", nprog, layout, cache, reuse)
    assert isinstance(batch, BatchClassifier)
    scalar = make_classifier("scalar", nprog, layout, cache, reuse)
    assert isinstance(scalar, PointClassifier)
    monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
    degraded = make_classifier("numpy", nprog, layout, cache, reuse)
    assert isinstance(degraded, PointClassifier)


# -- import gate ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "module", ["repro.cme.batch", "repro.iteration.batch", "repro.polyhedra.batch"]
)
def test_batch_modules_gate_on_numpy(monkeypatch, module):
    for name in (
        "repro.cme.batch",
        "repro.iteration.batch",
        "repro.polyhedra.batch",
    ):
        monkeypatch.delitem(sys.modules, name, raising=False)
    monkeypatch.setitem(sys.modules, "numpy", None)  # forces ImportError
    with pytest.raises(MissingDependencyError, match="pip install numpy"):
        importlib.import_module(module)


# -- per-reference fallback -----------------------------------------------------------


def test_unsupported_reference_falls_back_with_identical_tallies(monkeypatch):
    nprog, layout, cache = _prepared()
    reuse = build_reuse_table(nprog, cache.line_bytes)
    batch = make_classifier("numpy", nprog, layout, cache, reuse)

    def unsupported(ref, points):
        raise _BatchUnsupported("forced by the test")

    monkeypatch.setattr(batch, "_points_array", unsupported)
    scalar = make_classifier("scalar", nprog, layout, cache, reuse)
    for ref in nprog.refs:
        population = nprog.ris(ref.leaf).count()
        got = RefResult(ref.name(), ref.uid, population=population)
        batch.tally_ref(ref, got)
        want = RefResult(ref.name(), ref.uid, population=population)
        for point in nprog.ris(ref.leaf).enumerate_points():
            outcome = scalar.classify(ref, point).outcome
            want.analysed += 1
            if outcome.is_miss:
                if outcome.name == "COLD":
                    want.cold += 1
                else:
                    want.replacement += 1
            else:
                want.hits += 1
        assert got == want
    vectorized, fallback = batch.drain_backend_counts()
    assert vectorized == 0
    assert fallback == sum(nprog.ris(r.leaf).count() for r in nprog.refs)
    assert batch.drain_vector_trials() == scalar.drain_vector_trials()


def test_backend_counters_surface_in_observability():
    nprog, layout, cache = _prepared()
    obs.enable()
    report = find_misses(nprog, layout, cache, backend="numpy")
    counters = obs.snapshot()["counters"]
    assert counters["cme.backend.vectorized_points"] == report.analysed_points
    assert counters.get("cme.backend.fallback_points", 0) == 0
    obs.disable()
    obs.enable()
    report = find_misses(nprog, layout, cache, backend="scalar")
    counters = obs.snapshot()["counters"]
    # The scalar classifier has no backend counters to drain.
    assert "cme.backend.vectorized_points" not in counters
    assert report.analysed_points > 0
