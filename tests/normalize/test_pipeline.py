"""Normalisation tests: the paper's Fig. 1 -> Fig. 2 transformation.

These tests check every property the paper lists at the end of Section 3.1
and the concrete artefacts of Fig. 2, Table 1 and Section 3.3 (the RIS list).
"""

import pytest

from repro.errors import NonAnalysableError
from repro.ir import ProgramBuilder
from repro.normalize import normalize
from repro.polyhedra import Var

from tests.fixtures import figure1_program

N = 10


@pytest.fixture(scope="module")
def nprog():
    prog, _, _ = figure1_program(N)
    return normalize(prog.main)


class TestFigure2Structure:
    def test_depth_is_two(self, nprog):
        assert nprog.depth == 2

    def test_two_outer_loops(self, nprog):
        assert len(nprog.roots) == 2

    def test_labels_match_table1(self, nprog):
        """Table 1: S1,S2 -> (1, I1, 1, I2); S3,S4 -> (1, I1, 2, I2); S5 -> (2, I1, 1, I2)."""
        by_label = {}
        for leaf in nprog.leaves:
            by_label.setdefault(leaf.label, []).append(leaf.stmt_label)
        assert by_label[(1, 1)] == ["S1", "S2"]
        assert by_label[(1, 2)] == ["S3", "S4"]
        assert by_label[(2, 1)] == ["S5"]

    def test_s1_guard_is_first_iteration(self, nprog):
        s1 = next(l for l in nprog.leaves if l.stmt_label == "S1")
        # IF (I2 .EQ. I1) from sinking into DO I2 = I1, N
        assert s1.guard.satisfied({"I1": 3, "I2": 3})
        assert not s1.guard.satisfied({"I1": 3, "I2": 4})

    def test_s4_guard_is_last_iteration(self, nprog):
        s4 = next(l for l in nprog.leaves if l.stmt_label == "S4")
        # IF (I2 .EQ. N) from sinking backwards into DO I2 = 1, N
        assert s4.guard.satisfied({"I1": 3, "I2": N})
        assert not s4.guard.satisfied({"I1": 3, "I2": 1})

    def test_s5_padded_with_unit_loop(self, nprog):
        s5 = next(l for l in nprog.leaves if l.stmt_label == "S5")
        ris = nprog.ris(s5)
        points = list(ris.enumerate_points())
        assert all(p[1] == 1 for p in points)
        assert len(points) == N - 1

    def test_index_vars_renamed_by_depth(self, nprog):
        for leaf in nprog.leaves:
            for ref in leaf.refs:
                assert ref.variables() <= {"I1", "I2"}
            assert leaf.guard.variables() <= {"I1", "I2"}


class TestSection33RIS:
    """The five reference iteration spaces listed in Section 3.3."""

    def _ris(self, nprog, label):
        leaf = next(l for l in nprog.leaves if l.stmt_label == label)
        return nprog.ris(leaf)

    def test_ris_s1(self, nprog):
        ris = self._ris(nprog, "S1")
        assert ris.count() == N - 1
        assert ris.contains((2, 2))
        assert not ris.contains((2, 3))

    def test_ris_s2(self, nprog):
        ris = self._ris(nprog, "S2")
        # {(I1, I2) : 2 <= I1 <= N, I1 <= I2 <= N}
        assert ris.count() == sum(N - i1 + 1 for i1 in range(2, N + 1))
        assert ris.contains((2, 2))
        assert not ris.contains((3, 2))

    def test_ris_s3(self, nprog):
        ris = self._ris(nprog, "S3")
        assert ris.count() == (N - 1) * N

    def test_ris_s4(self, nprog):
        ris = self._ris(nprog, "S4")
        assert ris.count() == N - 1
        assert ris.contains((5, N))
        assert not ris.contains((5, 1))

    def test_ris_s5(self, nprog):
        ris = self._ris(nprog, "S5")
        assert ris.count() == N - 1


class TestLexicalPositions:
    def test_lexpos_within_innermost_body(self, nprog):
        s1 = next(l for l in nprog.leaves if l.stmt_label == "S1")
        s2 = next(l for l in nprog.leaves if l.stmt_label == "S2")
        # S1 has one ref (lexpos 0); S2's read and write follow (1, 2).
        assert [r.lexpos for r in s1.refs] == [0]
        assert [r.lexpos for r in s2.refs] == [1, 2]

    def test_uids_are_global_and_unique(self, nprog):
        uids = [r.uid for r in nprog.refs]
        assert uids == sorted(uids)
        assert len(set(uids)) == len(uids)


class TestStepNormalisation:
    def test_positive_step(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (100,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 99, step=2) as i:
                pb.assign(a[i])
        np_ = normalize(pb.build().main)
        leaf = np_.leaves[0]
        ris = np_.ris(leaf)
        assert ris.count() == 50  # iterations 1, 3, ..., 99
        # Subscript rewritten to 1 + (I-1)*2 = 2*I - 1.
        assert leaf.refs[0].subscripts[0] == 2 * Var("I1") - 1

    def test_negative_step(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 10, 1, step=-1) as i:
                pb.assign(a[i])
        np_ = normalize(pb.build().main)
        leaf = np_.leaves[0]
        assert np_.ris(leaf).count() == 10
        assert leaf.refs[0].subscripts[0] == 11 - Var("I1")

    def test_blocked_loop_like_mmt(self):
        """DO J2 = 1, N, BJ — the blocked loops of the MMT kernel."""
        pb = ProgramBuilder("P")
        a = pb.array("A", (100,))
        with pb.subroutine("MAIN"):
            with pb.do("J2", 1, 100, step=25) as j2:
                with pb.do("J", j2, j2 + 24) as j:
                    pb.assign(a[j])
        np_ = normalize(pb.build().main)
        leaf = np_.leaves[0]
        assert np_.ris(leaf).count() == 100


class TestEdgeCases:
    def test_statement_outside_any_loop(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (5,))
        with pb.subroutine("MAIN"):
            pb.assign(a[1])
        np_ = normalize(pb.build().main)
        assert np_.depth == 1
        assert np_.ris(np_.leaves[0]).count() == 1

    def test_statement_before_and_after_loops_at_top_level(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        with pb.subroutine("MAIN"):
            pb.assign(a[1], label="PRE")
            with pb.do("I", 1, 10) as i:
                pb.assign(a[i], label="BODY")
            pb.assign(a[2], label="POST")
        np_ = normalize(pb.build().main)
        labels = {l.stmt_label: l for l in np_.leaves}
        assert set(labels) == {"PRE", "BODY", "POST"}
        # PRE guarded at I == 1, POST at I == 10.
        assert labels["PRE"].guard.satisfied({"I1": 1})
        assert not labels["PRE"].guard.satisfied({"I1": 2})
        assert labels["POST"].guard.satisfied({"I1": 10})

    def test_call_rejected(self):
        pb = ProgramBuilder("P")
        with pb.subroutine("MAIN"):
            pb.call("F")
        with pytest.raises(NonAnalysableError):
            normalize(pb.build().main)

    def test_empty_loops_pruned(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 10):
                pass
            with pb.do("I", 1, 10) as i:
                pb.assign(a[i])
        np_ = normalize(pb.build().main)
        assert len(np_.roots) == 1

    def test_if_guard_pushed_to_statement(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 10) as i:
                with pb.if_(i.ge(5)):
                    pb.assign(a[i])
        np_ = normalize(pb.build().main)
        assert np_.ris(np_.leaves[0]).count() == 6

    def test_deeply_imbalanced_nests(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (10, 10, 10))
        b = pb.array("B", (10,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 10) as i:
                with pb.do("J", 1, 10) as j:
                    with pb.do("K", 1, 10) as k:
                        pb.assign(a[k, j, i])
            with pb.do("I", 1, 10) as i:
                pb.assign(b[i])
        np_ = normalize(pb.build().main)
        assert np_.depth == 3
        shallow = next(l for l in np_.leaves if l.refs[0].array.name == "B")
        assert np_.ris(shallow).count() == 10  # padded with two unit loops

    def test_reused_variable_name_in_nest_rejected(self):
        from repro.ir import Loop, Statement

        pb = ProgramBuilder("P")
        a = pb.array("A", (10,))
        inner = Loop("I", 1, 5, [Statement.assign(a[Var("I")], [])])
        outer = Loop("I", 1, 5, [inner])
        with pb.subroutine("MAIN") as sb:
            pass
        pb.build().main.body.append(outer)
        with pytest.raises(Exception):
            normalize(pb.build().main)
