"""Tests for the Fraguela-style probabilistic baseline (Table 7 comparator)."""

import random

import pytest

from repro import CacheConfig, prepare, run_simulation
from repro.baselines import probabilistic_misses
from repro.baselines.probabilistic import _reuse_fraction, _window_iterations
from repro.cme import estimate_misses
from repro.ir import ProgramBuilder
from repro.kernels import build_mmt
from repro.normalize import normalize
from repro.layout import layout_for_refs
from repro.reuse import build_reuse_table


def scan_program(n=64):
    pb = ProgramBuilder("SCAN")
    a = pb.array("A", (n,))
    with pb.subroutine("MAIN"):
        with pb.do("T", 1, 2):
            with pb.do("I", 1, n) as i:
                pb.assign(a[i])
    return normalize(pb.build().main)


class TestMachinery:
    def test_reuse_fraction_unit_shift(self):
        nprog = scan_program(64)
        table = build_reuse_table(nprog, 32)
        ref = nprog.refs[0]
        # self-temporal along T: producer exists for T=2 only -> fraction 1/2
        rv = next(
            v for v in table.vectors_for(ref) if v.index_part() == (1, 0)
        )
        assert _reuse_fraction(nprog, ref, rv) == pytest.approx(0.5)

    def test_reuse_fraction_spatial_within_line(self):
        nprog = scan_program(64)
        table = build_reuse_table(nprog, 32)
        ref = nprog.refs[0]
        rv = next(
            v for v in table.vectors_for(ref) if v.index_part() == (0, 1)
        )
        # producer I-1 exists for I >= 2: fraction 63/64
        assert _reuse_fraction(nprog, ref, rv) == pytest.approx(63 / 64)

    def test_window_iterations_scales_with_depth(self):
        nprog = scan_program(64)
        table = build_reuse_table(nprog, 32)
        ref = nprog.refs[0]
        near = next(v for v in table.vectors_for(ref) if v.index_part() == (0, 1))
        far = next(v for v in table.vectors_for(ref) if v.index_part() == (1, 0))
        extents = [2, 64]
        assert _window_iterations(near, extents) < _window_iterations(far, extents)


class TestReport:
    @pytest.fixture(scope="class")
    def mmt(self):
        return prepare(build_mmt(24, 12, 6))

    def test_ratio_in_unit_interval(self, mmt):
        cache = CacheConfig.kb(1, 32, 1)
        report = probabilistic_misses(mmt.nprog, mmt.layout, cache)
        assert 0.0 <= report.miss_ratio <= 1.0
        assert report.total_accesses > 0

    def test_reference_without_reuse_is_all_miss(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (8,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 8) as i:
                pb.assign(a[8 * i - 7])  # stride 8 elements: no reuse at Ls=4
        nprog = normalize(pb.build().main)
        layout = layout_for_refs(nprog.refs)
        report = probabilistic_misses(nprog, layout, CacheConfig.kb(32, 32, 1))
        assert report.miss_ratio == pytest.approx(1.0)

    def test_estimate_beats_probabilistic_on_mmt(self, mmt):
        """The Table 7 claim: Δ_E < Δ_P across cache configurations."""
        wins = 0
        configs = [(1, 32, 1), (1, 32, 2), (4, 64, 2)]
        for kb, line, k in configs:
            cache = CacheConfig.kb(kb, line, k)
            sim = run_simulation(mmt, cache).miss_ratio_percent
            est = estimate_misses(
                mmt.nprog,
                mmt.layout,
                cache,
                reuse=mmt.reuse_table(cache.line_bytes),
                walker=mmt.walker,
                rng=random.Random(0),
            ).miss_ratio_percent
            prob = probabilistic_misses(
                mmt.nprog, mmt.layout, cache, reuse=mmt.reuse_table(cache.line_bytes)
            ).miss_ratio_percent
            if abs(est - sim) <= abs(prob - sim):
                wins += 1
        assert wins >= 2  # EstimateMisses wins (at least) nearly everywhere

    def test_probabilistic_is_fast(self, mmt):
        cache = CacheConfig.kb(1, 32, 1)
        report = probabilistic_misses(
            mmt.nprog, mmt.layout, cache, reuse=mmt.reuse_table(cache.line_bytes)
        )
        assert report.elapsed_seconds < 5.0


class TestRandomReplacementEquation:
    """The random-policy closed form: p_evict = 1 - (1 - 1/(S·k))^F."""

    @pytest.fixture(scope="class")
    def mmt(self):
        return prepare(build_mmt(24, 12, 6))

    def test_ratio_in_unit_interval(self, mmt):
        cache = CacheConfig.kb(1, 32, 2)
        report = probabilistic_misses(
            mmt.nprog, mmt.layout, cache, policy="random"
        )
        assert 0.0 <= report.miss_ratio <= 1.0
        assert report.total_accesses > 0

    def test_policy_none_and_auto_mean_lru(self, mmt):
        cache = CacheConfig.kb(1, 32, 2)
        reuse = mmt.reuse_table(cache.line_bytes)
        lru = probabilistic_misses(mmt.nprog, mmt.layout, cache, reuse=reuse)
        for alias in (None, "auto", "lru"):
            aliased = probabilistic_misses(
                mmt.nprog, mmt.layout, cache, reuse=reuse, policy=alias
            )
            assert aliased.ref_ratios == lru.ref_ratios

    def test_random_differs_from_lru_under_contention(self, mmt):
        cache = CacheConfig.kb(1, 32, 2)
        reuse = mmt.reuse_table(cache.line_bytes)
        lru = probabilistic_misses(mmt.nprog, mmt.layout, cache, reuse=reuse)
        rnd = probabilistic_misses(
            mmt.nprog, mmt.layout, cache, reuse=reuse, policy="random"
        )
        assert rnd.ref_ratios != lru.ref_ratios

    def test_random_moves_the_same_way_as_the_simulator(self, mmt):
        """Directional consistency: the footprint approximation makes the
        absolute figures loose (the Table 7 weakness), but switching
        LRU → random must move the analytical prediction the same way it
        moves the simulator on a contended configuration."""
        cache = CacheConfig.kb(1, 32, 2)
        sim_lru = run_simulation(mmt, cache).miss_ratio_percent
        sim_rnd = run_simulation(
            mmt, cache, policy="random", seed=0
        ).miss_ratio_percent
        reuse = mmt.reuse_table(cache.line_bytes)
        prob_lru = probabilistic_misses(
            mmt.nprog, mmt.layout, cache, reuse=reuse
        ).miss_ratio_percent
        prob_rnd = probabilistic_misses(
            mmt.nprog, mmt.layout, cache, reuse=reuse, policy="random"
        ).miss_ratio_percent
        assert sim_rnd > sim_lru  # random loses to LRU here...
        assert prob_rnd > prob_lru  # ...and the model agrees in direction

    def test_unsupported_policies_raise(self, mmt):
        from repro.errors import ReproError

        cache = CacheConfig.kb(1, 32, 2)
        for policy in ("fifo", "plru"):
            with pytest.raises(ReproError, match="no probabilistic"):
                probabilistic_misses(
                    mmt.nprog, mmt.layout, cache, policy=policy
                )

    def test_random_needs_no_scipy(self, mmt, monkeypatch):
        """The random branch must not import scipy (the LRU import is
        lazy so NumPy-only environments can still use it)."""
        import builtins
        import sys

        real_import = builtins.__import__

        def no_scipy(name, *args, **kwargs):
            if name.startswith("scipy"):
                raise ImportError("scipy blocked for this test")
            return real_import(name, *args, **kwargs)

        monkeypatch.delitem(sys.modules, "scipy.stats", raising=False)
        monkeypatch.delitem(sys.modules, "scipy", raising=False)
        monkeypatch.setattr(builtins, "__import__", no_scipy)
        cache = CacheConfig.kb(1, 32, 2)
        report = probabilistic_misses(
            mmt.nprog,
            mmt.layout,
            cache,
            reuse=mmt.reuse_table(cache.line_bytes),
            policy="random",
        )
        assert 0.0 <= report.miss_ratio <= 1.0
