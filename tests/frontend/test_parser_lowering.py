"""Parser + lowering tests, including DSL-vs-FORTRAN semantic equivalence."""

import pytest

from repro.errors import NonAffineError, ParseError
from repro.frontend import parse_program, parse_source
from repro.ir import Call, Loop, If, program_stats, statements_of
from repro.kernels import (
    FORTRAN_KERNELS,
    build_hydro,
    build_mmt,
    load_fortran_kernel,
)
from repro.layout import CacheConfig
from repro import prepare, run_simulation


class TestParser:
    def test_program_and_subroutine_units(self):
        sf = parse_source(
            """
      PROGRAM MAIN
      DIMENSION A(10)
      CALL F(A)
      END
      SUBROUTINE F(C)
      DIMENSION C(10)
      RETURN
      END
"""
        )
        assert [u.name for u in sf.units] == ["MAIN", "F"]
        assert sf.unit("F").formals == ["C"]

    def test_parameter_folding(self):
        prog = parse_program(
            """
      PROGRAM P
      PARAMETER (N=8, M=N*2)
      DIMENSION A(M+1)
      DO I = 1, N
        A(I) = 1.0
      ENDDO
      END
"""
        )
        assert prog.global_arrays[0].dims == (17,)

    def test_labelled_do_continue(self):
        prog = parse_program(
            """
      PROGRAM P
      DIMENSION A(10)
      DO 100 I = 1, 10
        A(I) = 0.0
100   CONTINUE
      END
"""
        )
        loop = prog.main.body[0]
        assert isinstance(loop, Loop)
        assert len(loop.body) == 1

    def test_shared_do_labels_mgrid_style(self):
        """Two nested DOs ending on the same CONTINUE (Fig. 8's MGRID)."""
        prog = parse_program(
            """
      PROGRAM P
      DIMENSION A(10,10)
      DO 200 I = 1, 10
        DO 200 J = 1, 10
          A(J,I) = 0.0
200   CONTINUE
      END
"""
        )
        outer = prog.main.body[0]
        assert isinstance(outer, Loop) and outer.var == "I"
        inner = outer.body[0]
        assert isinstance(inner, Loop) and inner.var == "J"

    def test_labelled_terminal_statement_inside_loop(self):
        prog = parse_program(
            """
      PROGRAM P
      DIMENSION A(10)
      DO 100 I = 1, 10
100     A(I) = 0.0
      END
"""
        )
        loop = prog.main.body[0]
        assert isinstance(loop.body[0].__class__, type)
        assert len(loop.body) == 1

    def test_block_if(self):
        prog = parse_program(
            """
      PROGRAM P
      DIMENSION A(10)
      DO I = 1, 10
        IF (I .EQ. 5) THEN
          A(I) = 0.0
        ENDIF
      ENDDO
      END
"""
        )
        assert isinstance(prog.main.body[0].body[0], If)

    def test_one_line_if(self):
        prog = parse_program(
            """
      PROGRAM P
      DIMENSION A(10)
      DO I = 1, 10
        IF (I .GE. 3) A(I) = 0.0
      ENDDO
      END
"""
        )
        guard_node = prog.main.body[0].body[0]
        assert isinstance(guard_node, If)
        assert len(guard_node.body) == 1

    def test_else_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                """
      PROGRAM P
      DIMENSION A(10)
      DO I = 1, 10
        IF (I .EQ. 1) THEN
          A(I) = 0.0
        ELSE
          A(I) = 1.0
        ENDIF
      ENDDO
      END
"""
            )

    def test_io_statements_skipped(self):
        prog = parse_program(
            """
      PROGRAM P
      DIMENSION A(10)
      WRITE(6,*) 'HELLO'
      DO I = 1, 10
        A(I) = 0.0
      ENDDO
      END
"""
        )
        assert len(prog.main.body) == 1

    def test_do_with_step(self):
        prog = parse_program(
            """
      PROGRAM P
      DIMENSION A(100)
      DO I = 1, 100, 25
        A(I) = 0.0
      ENDDO
      END
"""
        )
        assert prog.main.body[0].step == 25


class TestLowering:
    def test_reads_in_source_order_then_write(self):
        prog = parse_program(
            """
      PROGRAM P
      DIMENSION A(10), B(10), C(10)
      DO I = 1, 10
        C(I) = A(I+1) + B(I-1)
      ENDDO
      END
"""
        )
        stmt = next(statements_of(prog.main.body))
        names = [r.array.name for r in stmt.refs]
        writes = [r.is_write for r in stmt.refs]
        assert names == ["A", "B", "C"]
        assert writes == [False, False, True]

    def test_scalar_assignment_keeps_array_reads(self):
        prog = parse_program(
            """
      PROGRAM P
      DIMENSION A(10)
      DO I = 1, 10
        RA = A(I)
      ENDDO
      END
"""
        )
        stmt = next(statements_of(prog.main.body))
        assert len(stmt.refs) == 1
        assert not stmt.refs[0].is_write

    def test_intrinsic_arguments_still_read(self):
        prog = parse_program(
            """
      PROGRAM P
      DIMENSION A(10), B(10)
      DO I = 1, 10
        B(I) = SQRT(A(I))
      ENDDO
      END
"""
        )
        stmt = next(statements_of(prog.main.body))
        assert [r.array.name for r in stmt.refs] == ["A", "B"]

    def test_non_affine_subscript_rejected(self):
        with pytest.raises(NonAffineError):
            parse_program(
                """
      PROGRAM P
      DIMENSION A(10), IDX(10)
      DO I = 1, 10
        A(IDX(I)) = 0.0
      ENDDO
      END
"""
            )

    def test_scalar_in_subscript_rejected(self):
        with pytest.raises(NonAffineError):
            parse_program(
                """
      PROGRAM P
      DIMENSION A(10)
      DO I = 1, 10
        A(K) = 0.0
      ENDDO
      END
"""
            )

    def test_call_actual_kinds(self):
        prog = parse_program(
            """
      PROGRAM P
      DIMENSION A(10,10)
      DO I = 1, 10
        CALL F(X, A, A(I,1))
      ENDDO
      END
      SUBROUTINE F(Y, C, D)
      DIMENSION C(10,10), D(10,10)
      RETURN
      END
"""
        )
        call = prog.main.body[0].body[0]
        assert isinstance(call, Call)
        from repro.ir import ActualArray, ActualElement, ActualScalar

        assert isinstance(call.actuals[0], ActualScalar)
        assert isinstance(call.actuals[1], ActualArray)
        assert isinstance(call.actuals[2], ActualElement)


class TestFortranKernels:
    @pytest.mark.parametrize("name", FORTRAN_KERNELS)
    def test_bundled_kernels_parse(self, name):
        prog = load_fortran_kernel(name)
        assert program_stats(prog).references > 0

    def test_hydro_fortran_matches_dsl_semantics(self):
        """The frontend and the DSL builder must produce identical traces."""
        source = f"""
      PROGRAM HYDRO
      PARAMETER (JN=8, KN=8)
      REAL*8 ZA, ZP, ZQ, ZR, ZM, ZB, ZU, ZV, ZZ
      DIMENSION ZA(JN+1,KN+1), ZP(JN+1,KN+1), ZQ(JN+1,KN+1)
      DIMENSION ZR(JN+1,KN+1), ZM(JN+1,KN+1)
      DIMENSION ZB(JN+1,KN+1), ZU(JN+1,KN+1), ZV(JN+1,KN+1)
      DIMENSION ZZ(JN+1,KN+1)
      DO K = 2, KN
        DO J = 2, JN
          ZA(J,K) = (ZP(J-1,K+1) + ZQ(J-1,K+1) - ZP(J-1,K) - ZQ(J-1,K))
     &      * (ZR(J,K) + ZR(J-1,K)) / (ZM(J-1,K) + ZM(J-1,K+1))
          ZB(J,K) = (ZP(J-1,K) + ZQ(J-1,K) - ZP(J,K) - ZQ(J,K))
     &      * (ZR(J,K) + ZR(J,K-1)) / (ZM(J,K) + ZM(J-1,K))
        ENDDO
      ENDDO
      DO K = 2, KN
        DO J = 2, JN
          ZU(J,K) = ZU(J,K) + (ZA(J,K)*(ZZ(J,K) - ZZ(J+1,K))
     &      - ZA(J-1,K)*(ZZ(J-1,K))
     &      - ZB(J,K)*(ZZ(J,K-1)) + ZB(J,K+1)*(ZZ(J,K+1)))
          ZV(J,K) = ZV(J,K) + (ZA(J,K)*(ZR(J,K) - ZR(J+1,K))
     &      - ZA(J-1,K)*(ZR(J-1,K))
     &      - ZB(J,K)*(ZR(J,K-1)) + ZB(J,K+1)*(ZR(J,K+1)))
        ENDDO
      ENDDO
      DO K = 2, KN
        DO J = 2, JN
          ZR(J,K) = ZR(J,K) + ZU(J,K)
          ZZ(J,K) = ZZ(J,K) + ZV(J,K)
        ENDDO
      ENDDO
      END
"""
        from_fortran = prepare(parse_program(source))
        from_dsl = prepare(build_hydro(8, 8))
        cache = CacheConfig.kb(2, 32, 1)
        sim_f = run_simulation(from_fortran, cache)
        sim_d = run_simulation(from_dsl, cache)
        assert sim_f.total_accesses == sim_d.total_accesses
        assert sim_f.total_misses == sim_d.total_misses

    def test_mmt_fortran_matches_dsl_reference_count(self):
        prog = load_fortran_kernel("mmt")
        dsl = build_mmt(100, 100, 50)
        assert (
            program_stats(prog).references == program_stats(dsl).references
        )
