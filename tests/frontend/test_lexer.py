"""Lexer tests for the mini-FORTRAN frontend."""

import pytest

from repro.errors import LexerError
from repro.frontend import tokenize
from repro.frontend.lexer import EOF, INT, LABEL, NAME, NEWLINE, OP, REAL


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != NEWLINE][:-1]


class TestBasics:
    def test_names_uppercased(self):
        assert kinds("do i = 1, n") == [
            (NAME, "DO"), (NAME, "I"), (OP, "="), (INT, "1"), (OP, ","), (NAME, "N"),
        ]

    def test_integers_and_reals(self):
        toks = kinds("X = 0.5D0 + 2")
        assert (REAL, "0.5D0") in toks
        assert (INT, "2") in toks

    def test_real_without_leading_digit(self):
        toks = kinds("X = .25")
        assert any(k == REAL for k, _ in toks)

    def test_power_operator(self):
        assert (OP, "**") in kinds("Y = X**2")

    def test_relational_operators(self):
        toks = kinds("IF (I .EQ. J .AND. K .LE. 5) THEN")
        assert (OP, ".EQ.") in toks
        assert (OP, ".AND.") in toks
        assert (OP, ".LE.") in toks

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("A = B ; C")


class TestCommentsAndContinuations:
    def test_c_comment_lines_dropped(self):
        toks = tokenize("C this is a comment\n      A = 1\n")
        assert all(t.value != "THIS" for t in toks)

    def test_star_comment_lines_dropped(self):
        toks = tokenize("* star comment\n      A = 1\n")
        assert all(t.value != "STAR" for t in toks)

    def test_bang_comments(self):
        toks = kinds("A = 1 ! trailing comment")
        assert (NAME, "A") in toks
        assert all(v != "TRAILING" for _, v in toks)

    def test_fixed_form_continuation(self):
        source = "      A = B +\n     &    C\n"
        toks = kinds(source)
        assert (NAME, "C") in toks
        # single logical line: only one NEWLINE before EOF
        newlines = [t for t in tokenize(source) if t.kind == NEWLINE]
        assert len(newlines) == 1

    def test_ampersand_continuation(self):
        source = "A = B + &\n    C\n"
        newlines = [t for t in tokenize(source) if t.kind == NEWLINE]
        assert len(newlines) == 1

    def test_blank_lines_ignored(self):
        toks = tokenize("\n\n      A = 1\n\n")
        assert toks[-1].kind == EOF


class TestLabels:
    def test_statement_label(self):
        toks = tokenize("100   CONTINUE\n")
        assert toks[0].kind == LABEL
        assert toks[0].value == "100"

    def test_do_with_label_target(self):
        toks = [t for t in tokenize("      DO 400 I3 = 2, M-1\n")]
        assert toks[0].value == "DO"
        assert toks[1].kind == LABEL or toks[1].kind == INT
