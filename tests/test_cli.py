"""CLI tests: every subcommand end to end via ``main(argv)``."""

import pytest

from repro.cli import main


class TestStats:
    def test_stats_swim(self, capsys):
        assert main(["stats", "swim", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "#subroutines" in out
        assert "A-able" in out

    def test_stats_kernel(self, capsys):
        assert main(["stats", "mmt", "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "#references" in out


class TestAnalyze:
    def test_analyze_estimate(self, capsys):
        rc = main(["analyze", "hydro", "--size", "16", "--cache", "2:32:1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out
        assert "EstimateMisses" in out
        assert "Worst references" in out

    def test_analyze_find(self, capsys):
        rc = main(
            ["analyze", "mgrid", "--size", "8", "--cache", "2:32:2",
             "--method", "find"]
        )
        assert rc == 0
        assert "FindMisses" in capsys.readouterr().out


class TestSimulate:
    def test_simulate(self, capsys):
        rc = main(["simulate", "tomcatv", "--size", "16", "--steps", "1",
                   "--cache", "2:32:1"])
        assert rc == 0
        assert "miss ratio" in capsys.readouterr().out


class TestCompare:
    def test_compare(self, capsys):
        rc = main(["compare", "hydro", "--size", "16", "--cache", "2:32:1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Simulator" in out
        assert "abs. error" in out


class TestFortranInput:
    def test_dot_f_file(self, tmp_path, capsys):
        source = """
      PROGRAM TINY
      DIMENSION A(32)
      DO I = 1, 32
        A(I) = 0.0
      ENDDO
      END
"""
        path = tmp_path / "tiny.f"
        path.write_text(source)
        rc = main(["analyze", str(path), "--cache", "32:32:1",
                   "--method", "find"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TINY" in out


class TestErrors:
    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["analyze", "nonsense"])

    def test_bad_cache_spec(self):
        with pytest.raises(SystemExit):
            main(["analyze", "hydro", "--size", "8", "--cache", "banana"])
