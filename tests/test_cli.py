"""CLI tests: every subcommand end to end via ``main(argv)``."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.export import validate_snapshot


@pytest.fixture(autouse=True)
def clean_obs():
    """Observability flags mutate global state; start and end clean."""
    obs.disable()
    yield
    obs.disable()


class TestStats:
    def test_stats_swim(self, capsys):
        assert main(["stats", "swim", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "#subroutines" in out
        assert "A-able" in out

    def test_stats_kernel(self, capsys):
        assert main(["stats", "mmt", "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "#references" in out


class TestAnalyze:
    def test_analyze_estimate(self, capsys):
        rc = main(["analyze", "hydro", "--size", "16", "--cache", "2:32:1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out
        assert "EstimateMisses" in out
        assert "Worst references" in out

    def test_analyze_find(self, capsys):
        rc = main(
            ["analyze", "mgrid", "--size", "8", "--cache", "2:32:2",
             "--method", "find"]
        )
        assert rc == 0
        assert "FindMisses" in capsys.readouterr().out


class TestSimulate:
    def test_simulate(self, capsys):
        rc = main(["simulate", "tomcatv", "--size", "16", "--steps", "1",
                   "--cache", "2:32:1"])
        assert rc == 0
        assert "miss ratio" in capsys.readouterr().out


class TestCompare:
    def test_compare(self, capsys):
        rc = main(["compare", "hydro", "--size", "16", "--cache", "2:32:1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Simulator" in out
        assert "abs. error" in out


class TestFortranInput:
    def test_dot_f_file(self, tmp_path, capsys):
        source = """
      PROGRAM TINY
      DIMENSION A(32)
      DO I = 1, 32
        A(I) = 0.0
      ENDDO
      END
"""
        path = tmp_path / "tiny.f"
        path.write_text(source)
        rc = main(["analyze", str(path), "--cache", "32:32:1",
                   "--method", "find"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TINY" in out


class TestErrors:
    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["analyze", "nonsense"])

    def test_bad_cache_spec(self):
        with pytest.raises(SystemExit):
            main(["analyze", "hydro", "--size", "8", "--cache", "banana"])

    def test_profile_span_requires_profile_out(self):
        with pytest.raises(SystemExit):
            main(["analyze", "hydro", "--size", "8",
                  "--profile-span", "cme/estimate"])


ANALYZE = ["analyze", "hydro", "--size", "16", "--cache", "2:32:1"]


class TestObservabilityFlags:
    def test_trace_prints_span_tree_on_stderr(self, capsys):
        assert main(ANALYZE + ["--trace"]) == 0
        captured = capsys.readouterr()
        for phase in ("prepare/normalise", "prepare/layout",
                      "reuse/build_table", "cme/estimate"):
            assert phase in captured.err
        assert "Per-phase wall time" in captured.err
        assert phase not in captured.out

    def test_metrics_out_writes_schema_valid_json(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(ANALYZE + ["--metrics-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_snapshot(doc) == []
        assert doc["counters"]["cme.points.classified"] > 0
        assert "metrics written" in capsys.readouterr().out

    def test_metrics_out_dash_keeps_stdout_machine_readable(self, capsys):
        assert main(ANALYZE + ["--metrics-out", "-"]) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # stdout must be pure JSON
        assert validate_snapshot(doc) == []
        assert "Worst references" in captured.err

    def test_quiet_silences_everything_but_the_final_table(self, capsys):
        assert main(ANALYZE + ["--quiet"]) == 0
        out = capsys.readouterr().out
        assert "points analysed" not in out  # the diagnostic summary line
        assert "Worst references" in out  # the final table survives

    def test_quiet_simulate_keeps_result_line(self, capsys):
        assert main(["simulate", "hydro", "--size", "16",
                     "--cache", "2:32:1", "--quiet"]) == 0
        assert "miss ratio" in capsys.readouterr().out

    def test_profile_out_writes_pstats(self, tmp_path, capsys):
        import pstats

        out = tmp_path / "p.pstats"
        assert main(ANALYZE + ["--profile-out", str(out)]) == 0
        assert pstats.Stats(str(out)).total_calls > 0

    def test_profile_span_scopes_collection(self, tmp_path):
        import pstats

        out = tmp_path / "p.pstats"
        assert main(ANALYZE + ["--profile-out", str(out),
                    "--profile-span", "cme/estimate"]) == 0
        assert pstats.Stats(str(out)).total_calls > 0

    def test_jobs_metrics_match_serial(self, tmp_path):
        serial, parallel = tmp_path / "s.json", tmp_path / "p.json"
        assert main(ANALYZE + ["--metrics-out", str(serial)]) == 0
        assert main(ANALYZE + ["--jobs", "2", "--metrics-out",
                    str(parallel)]) == 0
        s = json.loads(serial.read_text())["counters"]
        p = json.loads(parallel.read_text())["counters"]
        for name in ("cme.points.classified", "polyhedra.intsolve.calls",
                     "cme.points.cold", "cme.points.hit"):
            assert p[name] == s[name], name


class TestTimelineFlag:
    def test_timeline_out_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(ANALYZE + ["--timeline-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs, "no span events exported"
        names = {e["name"] for e in xs}
        assert "cme/estimate" in names
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["name"] == "process_name"
            and e["args"]["name"] == "repro (parent)"
            for e in metas
        )
        assert "timeline" in capsys.readouterr().out

    def test_parallel_timeline_matches_metrics_within_one_percent(
        self, tmp_path
    ):
        from repro.obs.timeline import sum_durations

        timeline, metrics = tmp_path / "t.json", tmp_path / "m.json"
        assert main(ANALYZE + ["--jobs", "4", "--timeline-out", str(timeline),
                    "--metrics-out", str(metrics)]) == 0
        trace = json.loads(timeline.read_text())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len({e["pid"] for e in xs}) > 1  # distinct worker lanes
        # Per top-level phase, the summed lane durations (µs) must match
        # the aggregated tree's wall time within 1%.
        by_name = sum_durations(
            [{"name": e["name"], "dur": e["dur"] / 1e6} for e in xs]
        )
        spans = json.loads(metrics.read_text())["spans"]
        for span in spans:
            assert by_name[span["name"]] == pytest.approx(
                span["seconds"], rel=0.01
            ), span["name"]


class TestLedgerFlag:
    def test_ledger_out_appends_row(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        assert main(ANALYZE + ["--ledger-out", str(path)]) == 0
        assert main(ANALYZE + ["--ledger-out", str(path)]) == 0
        from repro.obs.ledger import read_ledger, row_key

        rows = read_ledger(str(path))
        assert len(rows) == 2
        row = rows[0]
        assert row["label"] == "analyze:hydro"
        assert row["program"] == "hydro"
        assert row["config"]["size"] == 16
        assert row["wall_seconds"] > 0
        assert row["counters"]["cme.points.classified"] > 0
        assert row_key(rows[0]) == row_key(rows[1])
        assert "ledger" in capsys.readouterr().out


class TestPerfVerbs:
    def seed_ledger(self, path, walls, label="bench:x"):
        from repro.obs.ledger import append_row, build_row

        for wall in walls:
            append_row(
                str(path),
                build_row(label, config={"jobs": 1}, phases={},
                          wall_seconds=wall, counters={}),
            )

    def test_check_fails_on_synthetic_two_x_slowdown(self, tmp_path, capsys):
        base = tmp_path / "base.jsonl"
        cur = tmp_path / "cur.jsonl"
        self.seed_ledger(base, [1.0, 1.0, 1.0])
        self.seed_ledger(cur, [2.0])
        rc = main(["perf", "check", str(base), "--current", str(cur)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "FAIL" in out

    def test_check_passes_on_baseline_replay(self, tmp_path, capsys):
        base = tmp_path / "base.jsonl"
        cur = tmp_path / "cur.jsonl"
        self.seed_ledger(base, [1.0, 1.0, 1.0])
        self.seed_ledger(cur, [1.0])
        assert main(["perf", "check", str(base), "--current", str(cur)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_check_warn_only_soft_passes_hard_fails(self, tmp_path, capsys):
        base = tmp_path / "base.jsonl"
        soft = tmp_path / "soft.jsonl"
        hard = tmp_path / "hard.jsonl"
        self.seed_ledger(base, [1.0] * 5)
        self.seed_ledger(soft, [2.0])
        self.seed_ledger(hard, [4.0])
        common = ["perf", "check", str(base), "--threshold", "1.5",
                  "--hard-threshold", "3.0", "--warn-only"]
        assert main(common + ["--current", str(soft)]) == 0
        assert main(common + ["--current", str(hard)]) == 1
        capsys.readouterr()

    def test_check_self_history_mode(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        self.seed_ledger(path, [1.0, 1.0, 1.0, 2.5])
        assert main(["perf", "check", str(path)]) == 1
        capsys.readouterr()

    def test_report_writes_html(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        out = tmp_path / "report.html"
        self.seed_ledger(path, [1.0, 1.1, 1.2])
        assert main(["perf", "report", str(path), "-o", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("<!doctype html>")
        assert "bench:x" in text
        assert "report" in capsys.readouterr().out


class TestMemProfileFlag:
    def test_mem_profile_prints_allocation_sites(self, capsys):
        assert main(ANALYZE + ["--mem-profile"]) == 0
        err = capsys.readouterr().err
        assert "top allocation sites" in err
        assert "KiB" in err or "MiB" in err or "B " in err


class TestSimBackendFlag:
    def test_sim_backends_print_identical_results(self, capsys):
        argv = ["simulate", "hydro", "--size", "16", "--cache", "2:32:2"]
        assert main(argv + ["--sim-backend", "scalar"]) == 0
        scalar = capsys.readouterr().out
        assert main(argv + ["--sim-backend", "numpy"]) == 0
        numpy_out = capsys.readouterr().out
        assert "miss ratio" in scalar
        # Identical up to the timing figure at the end of the line.
        assert scalar.split("accesses")[0] == numpy_out.split("accesses")[0]


class TestTraceVerbs:
    def test_export_then_simulate_matches_direct_simulation(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "hydro.trace"
        rc = main(
            ["trace", "export", "hydro", "--size", "16", "-o", str(trace)]
        )
        assert rc == 0
        assert "exported" in capsys.readouterr().out
        from repro.sim.tracefile import HEADER, MAGIC

        header = trace.read_bytes()[: HEADER.size]
        assert header[:4] == MAGIC

        for backend in ("scalar", "numpy"):
            rc = main(
                ["trace", "simulate", str(trace), "--cache", "2:32:2",
                 "--sim-backend", backend]
            )
            assert rc == 0
            replayed = capsys.readouterr().out
            assert main(
                ["simulate", "hydro", "--size", "16", "--cache", "2:32:2"]
            ) == 0
            direct = capsys.readouterr().out
            assert (
                replayed.split(":")[-1].split("accesses")[0]
                == direct.split(":")[-1].split("accesses")[0]
            )

    def test_import_converts_raw_addresses(self, tmp_path, capsys):
        raw = tmp_path / "raw.addr"
        raw.write_bytes(bytes(range(16)))  # four 4-byte big-endian words
        out = tmp_path / "ext.trace"
        rc = main(["trace", "import", str(raw), "-o", str(out)])
        assert rc == 0
        assert "imported 4" in capsys.readouterr().out
        from repro.sim.tracefile import read_trace

        assert [a for _, a in read_trace(out)] == [
            int.from_bytes(bytes(range(i, i + 4)), "big")
            for i in range(0, 16, 4)
        ]

    def test_malformed_trace_exits_with_message(self, tmp_path):
        bad = tmp_path / "bad.trace"
        bad.write_bytes(b"junk")
        with pytest.raises(SystemExit, match="too short"):
            main(["trace", "simulate", str(bad), "--cache", "1:16:1"])


class TestPolicyFlags:
    """The cache-model zoo surface: --policy/--policy-seed/--l2-cache."""

    POLICIES = ("lru", "fifo", "plru", "random")

    def test_trace_verbs_policy_backend_matrix(self, tmp_path, capsys):
        """All three trace verbs, every policy, both backends."""
        # export: the walk is policy-independent; one file feeds the matrix.
        trace = tmp_path / "hydro.trace"
        assert main(
            ["trace", "export", "hydro", "--size", "16", "-o", str(trace)]
        ) == 0
        capsys.readouterr()
        # import: a raw address file converted then replayed per policy.
        raw = tmp_path / "raw.addr"
        raw.write_bytes(
            b"".join((i * 32).to_bytes(4, "big") for i in [0, 1, 2, 0, 1, 2])
        )
        imported = tmp_path / "ext.trace"
        assert main(["trace", "import", str(raw), "-o", str(imported)]) == 0
        capsys.readouterr()
        # simulate: policy × backend, bit-identical output per policy.
        for source in (trace, imported):
            for policy in self.POLICIES:
                outputs = set()
                for backend in ("scalar", "numpy"):
                    rc = main(
                        ["trace", "simulate", str(source),
                         "--cache", "2:32:2", "--sim-backend", backend,
                         "--policy", policy, "--policy-seed", "5"]
                    )
                    assert rc == 0
                    out = capsys.readouterr().out
                    assert f"({policy})" in out
                    assert "miss ratio" in out
                    outputs.add(out.split("accesses")[0])
                assert len(outputs) == 1, (source, policy, outputs)

    def test_simulate_policy_flag(self, capsys):
        rc = main(["simulate", "hydro", "--size", "16",
                   "--cache", "2:32:2", "--policy", "plru"])
        assert rc == 0
        assert "(plru)" in capsys.readouterr().out

    def test_simulate_l2_hierarchy(self, capsys):
        rc = main(["simulate", "hydro", "--size", "16",
                   "--cache", "1:32:2", "--l2-cache", "8:32:4",
                   "--l2-policy", "random"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "L1 miss ratio" in out
        assert "L2 local" in out
        assert "(random)" in out
        assert "global" in out

    def test_compare_random_policy_deterministic_across_jobs(self, capsys):
        rows = []
        for jobs in ("1", "2"):
            rc = main(["compare", "hydro", "--size", "16",
                       "--cache", "2:32:2", "--policy", "random",
                       "--policy-seed", "9", "--jobs", jobs, "--quiet"])
            assert rc == 0
            out = capsys.readouterr().out
            (sim_row,) = [
                line for line in out.splitlines()
                if line.startswith("Simulator (random)")
            ]
            # Keep the miss figures, drop the timing column.
            rows.append(sim_row.rsplit("|", 1)[0])
        assert rows[0] == rows[1]

    def test_trace_simulate_reports_sim_counters(self, tmp_path, capsys):
        """Regression: trace replays produced no sim.* counters at all,
        making --sim-backend and --policy unobservable (unlike analyze's
        simulation path)."""
        pytest.importorskip("numpy")
        trace = tmp_path / "hydro.trace"
        assert main(
            ["trace", "export", "hydro", "--size", "16", "-o", str(trace)]
        ) == 0
        for backend, extra in (("scalar", set()),
                               ("numpy", {"sim.backend.batch.runs"})):
            metrics = tmp_path / f"{backend}.json"
            rc = main(["trace", "simulate", str(trace), "--cache", "2:32:2",
                       "--sim-backend", backend, "--policy", "fifo",
                       "--metrics-out", str(metrics), "--quiet"])
            assert rc == 0
            counters = json.loads(metrics.read_text())["counters"]
            assert counters["sim.policy.fifo"] == 1
            assert counters["sim.accesses"] > 0
            assert (counters["sim.hits"] + counters["sim.misses"]
                    == counters["sim.accesses"])
            assert extra <= set(counters)
        capsys.readouterr()
