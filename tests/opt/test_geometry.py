"""Cache-geometry sweep tests."""

from repro import CacheConfig, ProgramBuilder, prepare
from repro.opt import miss_ratio_curve, sweep_geometries


def streaming_program(n=1024):
    """Repeated sweep over an 8KB array: classic capacity-curve subject."""
    pb = ProgramBuilder("STREAM")
    a = pb.array("A", (n,))
    with pb.subroutine("MAIN"):
        with pb.do("T", 1, 2):
            with pb.do("I", 1, n) as i:
                pb.assign(a[i])
    return pb.build()


class TestSweep:
    def test_capacity_curve_is_monotone(self):
        points = miss_ratio_curve(
            streaming_program(), sizes_kb=[1, 2, 4, 8, 16], method="find"
        )
        ratios = [p.miss_ratio_percent for p in points]
        assert ratios == sorted(ratios, reverse=True)
        # once the array fits (>= 8KB), only cold misses remain
        assert ratios[-1] < ratios[0]

    def test_fitting_cache_leaves_only_cold_misses(self):
        points = miss_ratio_curve(
            streaming_program(), sizes_kb=[16], method="find"
        )
        # 2048 accesses, 256 lines -> 12.5% cold misses
        assert abs(points[0].miss_ratio_percent - 12.5) < 1e-9

    def test_prepared_program_is_shared(self):
        prepared = prepare(streaming_program())
        caches = [CacheConfig.kb(1, 32, 1), CacheConfig.kb(1, 32, 2)]
        points = sweep_geometries(prepared, caches, method="find")
        assert len(points) == 2
        assert points[0].cache.assoc == 1

    def test_associativity_sweep(self):
        prepared = prepare(streaming_program(256))  # 2KB array
        caches = [CacheConfig.kb(2, 32, a) for a in (1, 2, 4)]
        points = sweep_geometries(prepared, caches, method="find")
        assert all(0 <= p.miss_ratio_percent <= 100 for p in points)
