"""Optimisation-advisor tests: padding and tiling choices must be real wins."""

import pytest

from repro import CacheConfig, ProgramBuilder, prepare, run_simulation
from repro.kernels import build_mmt
from repro.opt import best_tile, evaluate_padding, search_padding, search_tiles


def conflict_copy(n=512):
    """Two arrays exactly one cache apart: the classic ping-pong victim."""
    pb = ProgramBuilder("COPY")
    a = pb.array("A", (n,))
    b = pb.array("B", (n,))
    with pb.subroutine("MAIN"):
        with pb.do("I", 1, n) as i:
            pb.assign(b[i], a[i])
    return pb.build()


class TestPadding:
    def test_search_ranks_nonzero_pad_first(self):
        program = conflict_copy()
        cache = CacheConfig.kb(4, 32, 1)
        choices = search_padding(
            program, cache, candidates=[0, 32, 64], array="A", method="find"
        )
        assert choices[0].pads() != {"A": 0}
        assert choices[-1].pads() == {"A": 0}

    def test_chosen_pad_wins_in_simulation(self):
        program = conflict_copy()
        cache = CacheConfig.kb(4, 32, 1)
        choices = search_padding(
            program, cache, candidates=[0, 32], array="A", method="find"
        )
        best, worst = choices[0], choices[-1]
        sims = {}
        for choice in (best, worst):
            prepared = prepare(
                program, align=cache.line_bytes, pad_bytes=choice.pads()
            )
            sims[choice.pad_bytes] = run_simulation(prepared, cache).miss_ratio
        assert sims[best.pad_bytes] < sims[worst.pad_bytes]

    def test_uniform_pad_spec(self):
        program = conflict_copy(128)
        cache = CacheConfig.kb(1, 32, 1)
        choice = evaluate_padding(program, cache, 64, method="find")
        assert isinstance(choice.pads(), int)
        assert 0.0 <= choice.miss_ratio_percent <= 100.0


class TestTiling:
    @pytest.fixture(scope="class")
    def search(self):
        cache = CacheConfig.kb(2, 32, 2)
        candidates = [(32, 32, 32), (32, 8, 8)]
        return (
            cache,
            search_tiles(
                lambda n, bj, bk: build_mmt(n, bj, bk), candidates, cache
            ),
        )

    def test_small_tiles_preferred_for_small_cache(self, search):
        _, choices = search
        assert choices[0].tile == (32, 8, 8)

    def test_ranking_confirmed_by_simulation(self, search):
        cache, choices = search
        sims = []
        for choice in choices:
            prepared = prepare(build_mmt(*choice.tile))
            sims.append(run_simulation(prepared, cache).miss_ratio)
        assert sims == sorted(sims)

    def test_best_tile_helper(self, search):
        cache, choices = search
        best = best_tile(
            lambda n, bj, bk: build_mmt(n, bj, bk),
            [c.tile for c in choices],
            cache,
        )
        assert best.tile == choices[0].tile


class TestMethodSelection:
    """The advisors' inner-solver choice (``choose_method``)."""

    def test_fully_covered_kernel_selects_regions(self):
        from repro import obs
        from repro.opt import choose_method

        prepared = prepare(conflict_copy(128))
        cache = CacheConfig.kb(1, 32, 1)
        obs.enable()
        obs.reset()
        try:
            method = choose_method(prepared, cache)
            assert method == "regions"
            assert obs.counter("opt.method.regions").value == 1
        finally:
            obs.disable()

    def test_partially_covered_kernel_selects_estimate(self):
        from repro import obs
        from repro.opt import choose_method

        # MMT's transposed references defeat the closed-form certificates,
        # so a bound-scaling regions fallback would make sweeps expensive.
        prepared = prepare(build_mmt(16, 16, 8))
        cache = CacheConfig.kb(1, 32, 1)
        obs.enable()
        obs.reset()
        try:
            method = choose_method(prepared, cache)
            assert method == "estimate"
            assert obs.counter("opt.method.estimate").value == 1
        finally:
            obs.disable()

    def test_padding_defaults_to_chosen_method(self):
        # method=None routes each evaluation through choose_method; on the
        # fully covered copy kernel that means the exact regional solver,
        # so the default choice must equal an explicit method="find" score.
        program = conflict_copy(128)
        cache = CacheConfig.kb(1, 32, 1)
        auto = evaluate_padding(program, cache, 32)
        exact = evaluate_padding(program, cache, 32, method="find")
        assert auto.miss_ratio_percent == exact.miss_ratio_percent
