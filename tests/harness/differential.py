"""Differential-testing harness: analytical solvers vs the LRU simulator.

The harness generates randomized small programs spanning the shapes the
paper's model must handle (strided scans, inter-nest reuse, 2-D stencils,
triangular and guarded spaces) paired with randomized cache geometries, and
diffs the two analytical solvers against the trace-driven
:class:`~repro.sim.cache.SetAssocLRUCache` ground truth:

* **FindMisses leg** — for *uniform* families (every reference uniformly
  generated, canonical offset patterns) the per-reference miss counts must
  match simulation **exactly**; for irregular families (random offsets,
  guards) the model may only **over-estimate**, per reference, never
  under-estimate.
* **EstimateMisses leg** — the estimator approximates ``FindMisses``, so
  for every *sampled* reference the normal-approximation confidence
  interval around the sampled miss ratio must contain the exhaustive miss
  ratio (up to the nominal confidence level: a bounded fraction of
  intervals may miss), and exhaustively analysed references must match
  ``FindMisses`` exactly.

Both legs run serially or through the parallel engine (``jobs``) — the
solvers guarantee identical reports either way, and the test module checks
that too.  Everything is seeded: a failing case can be reproduced from its
``Case.name`` alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir import Program, ProgramBuilder
from repro.layout import CacheConfig, layout_for_refs
from repro.normalize import normalize
from repro.cme import MissReport, estimate_misses, find_misses
from repro.sim import simulate
from repro.stats import wilson_interval

#: Cache geometries the generator samples from (size KB, line bytes, assoc).
GEOMETRIES = [
    (1, 16, 1),
    (1, 32, 1),
    (1, 32, 2),
    (2, 32, 1),
    (2, 32, 4),
    (2, 64, 2),
    (4, 32, 2),
    (4, 64, 4),
]

#: Alignments for the memory layout (1024 packs arrays one cache apart).
ALIGNS = [32, 64, 1024]


@dataclass
class Case:
    """One randomized program/cache-geometry pair."""

    name: str
    program: Program
    cache: CacheConfig
    align: int
    #: True when the family guarantees exact per-reference agreement.
    exact: bool

    def prepared(self):
        nprog = normalize(self.program.main)
        layout = layout_for_refs(
            nprog.refs,
            declared_order=self.program.global_arrays,
            align=self.align,
        )
        return nprog, layout


@dataclass
class DifferentialSummary:
    """Aggregated outcome of one harness run."""

    cases: int = 0
    failures: list[str] = field(default_factory=list)
    sampled_refs: int = 0
    contained_refs: int = 0

    @property
    def containment_rate(self) -> float:
        if self.sampled_refs == 0:
            return 1.0
        return self.contained_refs / self.sampled_refs

    @property
    def ok(self) -> bool:
        return not self.failures


# -- program families -----------------------------------------------------------------


def _gen_scan(rng: random.Random, pb: ProgramBuilder) -> bool:
    """Strided 1-D scans with constant offsets, optionally re-swept."""
    n = rng.randrange(48, 97)
    reps = rng.randrange(1, 3)
    a = pb.array("A", (n + 4,))
    offsets = sorted(rng.sample(range(4), rng.randrange(1, 4)))
    with pb.subroutine("MAIN"):
        with pb.do("T", 1, reps):
            with pb.do("I", 1, n) as i:
                pb.assign(a[i + offsets[0]], *[a[i + o] for o in offsets[1:]])
    return True  # single array, constant 1-D offsets: uniformly generated


def _gen_internest(rng: random.Random, pb: ProgramBuilder) -> bool:
    """Whole-program reuse across separate nests (the paper's pitch)."""
    n = rng.randrange(48, 97)
    # Pad the allocation to an 8-element (= 64B, the largest line) multiple:
    # if distinct arrays shared a memory line, the tail of A would feed
    # cross-array group reuse that no uniformly generated set covers, and
    # the family's exactness claim would not hold.
    size = -(-n // 8) * 8
    a = pb.array("A", (size,))
    b = pb.array("B", (size,))
    with pb.subroutine("MAIN"):
        with pb.do("I", 1, n) as i:
            pb.assign(a[i])
        with pb.do("I", 1, n) as i:
            if rng.random() < 0.5:
                pb.assign(b[i], a[i])
            else:
                pb.read(a[i])
    return True


def _gen_cross_stencil(rng: random.Random, pb: ProgramBuilder) -> bool:
    """2-D cross stencils (|offset| ≤ 1) — the Table 3 exact family."""
    n = rng.randrange(8, 15)
    a = pb.array("A", (n + 2, n + 2))
    b = pb.array("B", (n + 2, n + 2))
    points = rng.sample([(-1, 0), (1, 0), (0, -1), (0, 1), (0, 0)], 3)
    with pb.subroutine("MAIN"):
        with pb.do("J", 2, n + 1) as j:
            with pb.do("I", 2, n + 1) as i:
                pb.assign(b[i, j], *[a[i + di, j + dj] for di, dj in points])
    return True


def _gen_triangular(rng: random.Random, pb: ProgramBuilder) -> bool:
    """Triangular iteration spaces (count-weighted sampling territory)."""
    n = rng.randrange(10, 17)
    a = pb.array("A", (n, n))
    with pb.subroutine("MAIN"):
        with pb.do("J", 1, n) as j:
            with pb.do("I", j, n) as i:
                pb.assign(a[i, j])
    return True


def _gen_random_stencil(rng: random.Random, pb: ProgramBuilder) -> bool:
    """Random-offset stencils: reuse vectors may fall outside the generated
    family at boundaries, so only conservatism is guaranteed."""
    n = rng.randrange(8, 13)
    a = pb.array("A", (n + 4, n + 4))
    two = rng.random() < 0.5
    b = pb.array("B", (n + 4, n + 4)) if two else a
    count = rng.randrange(1, 4)
    offsets = set()
    while len(offsets) < count:
        offsets.add((rng.randrange(-2, 3), rng.randrange(-2, 3)))
    with pb.subroutine("MAIN"):
        with pb.do("J", 3, n + 2) as j:
            with pb.do("I", 3, n + 2) as i:
                pb.assign(b[i, j], *[a[i + di, j + dj] for di, dj in offsets])
    return False


def _gen_guarded(rng: random.Random, pb: ProgramBuilder) -> bool:
    """Guarded references (non-convex interference, conservative)."""
    n = rng.randrange(10, 17)
    a = pb.array("A", (n + 2, n + 2))
    with pb.subroutine("MAIN"):
        with pb.do("J", 1, n) as j:
            with pb.do("I", 1, n) as i:
                with pb.if_(i.le(j)):
                    pb.assign(a[i, j], a[i, j])
                pb.read(a[j, i])
    return False


def _gen_guarded_multinest(rng: random.Random, pb: ProgramBuilder) -> bool:
    """IF-guarded statements with reuse *across* nests: the guards make the
    interference non-convex (conservative) while the split into separate
    nests exercises cross-nest reuse vectors and multi-root interference
    spans at the same time."""
    n = rng.randrange(10, 17)
    cut = rng.randrange(2, n)
    a = pb.array("A", (n + 2, n + 2))
    b = pb.array("B", (n + 2, n + 2))
    with pb.subroutine("MAIN"):
        with pb.do("J", 1, n) as j:
            with pb.do("I", 1, n) as i:
                with pb.if_(i.le(cut)):
                    pb.assign(a[i, j])
                pb.assign(b[i, j])
        with pb.do("J", 1, n) as j:
            with pb.do("I", 1, n) as i:
                with pb.if_(i.ge(cut)):
                    pb.read(a[i, j], b[i, j])
    return False


FAMILIES = [
    ("scan", _gen_scan),
    ("internest", _gen_internest),
    ("cross", _gen_cross_stencil),
    ("tri", _gen_triangular),
    ("randstencil", _gen_random_stencil),
    ("guarded", _gen_guarded),
    ("guardednests", _gen_guarded_multinest),
]


def generate_cases(count: int, seed: int = 20260806) -> list[Case]:
    """Deterministically generate ``count`` program/geometry cases."""
    cases = []
    for k in range(count):
        family, gen = FAMILIES[k % len(FAMILIES)]
        rng = random.Random((seed << 8) ^ k)
        pb = ProgramBuilder(f"D{k}")
        exact = gen(rng, pb)
        size_kb, line, assoc = rng.choice(GEOMETRIES)
        cases.append(
            Case(
                name=f"{family}-{k}/{size_kb}KB:{line}B:{assoc}w",
                program=pb.build(),
                cache=CacheConfig.kb(size_kb, line, assoc),
                align=rng.choice(ALIGNS),
                exact=exact,
            )
        )
    return cases


def check_policy_bit_identity(
    case: Case,
    policy: str,
    seed: int = 0,
    prepared=None,
) -> list[str]:
    """Diff scalar vs vectorized simulation under one replacement policy.

    Non-LRU policies have no closed-form kernel — the vectorized engine
    replays run heads through the same set machines — so bit-identity
    here checks the run-compression and set-decomposition stages for
    every policy.  ``prepared`` (a ``(nprog, layout)`` pair) lets callers
    amortise normalisation across the per-policy sweeps.  PLRU cases
    with a non-power-of-two associativity are skipped (the policy
    rejects the geometry by contract).
    """
    from repro.sim.policy import check_policy_geometry
    from repro.errors import ReproError

    try:
        check_policy_geometry(policy, case.cache)
    except ReproError:
        return []
    nprog, layout = prepared if prepared is not None else case.prepared()
    scalar = simulate(
        nprog, layout, case.cache, backend="scalar", policy=policy, seed=seed
    )
    batch = simulate(
        nprog, layout, case.cache, backend="numpy", policy=policy, seed=seed
    )
    failures = []
    if batch.accesses != scalar.accesses:
        failures.append(f"{case.name} [{policy}]: access tallies diverge")
    if batch.misses != scalar.misses:
        failures.append(f"{case.name} [{policy}]: miss tallies diverge")
    return failures


# -- the two legs ---------------------------------------------------------------------


def check_find(
    case: Case, jobs: int = 1, backend: str = None, sim_backend: str = None
) -> list[str]:
    """Diff ``find_misses`` against the simulator; returns failure messages."""
    nprog, layout = case.prepared()
    analytic = find_misses(nprog, layout, case.cache, jobs=jobs, backend=backend)
    ground = simulate(nprog, layout, case.cache, backend=sim_backend)
    failures = []
    if analytic.total_accesses != ground.total_accesses:
        failures.append(
            f"{case.name}: access counts diverge "
            f"({analytic.total_accesses} vs {ground.total_accesses})"
        )
    for ref in nprog.refs:
        a = analytic.result_for(ref).misses
        s = ground.misses[ref.uid]
        if case.exact and a != s:
            failures.append(
                f"{case.name}: {ref.name()} expected exactly {s} misses, "
                f"FindMisses reported {a}"
            )
        elif a < s:
            failures.append(
                f"{case.name}: {ref.name()} under-estimated "
                f"({a} analytical < {s} simulated)"
            )
    return failures


def check_estimate(
    case: Case,
    summary: DifferentialSummary,
    confidence: float = 0.95,
    width: float = 0.10,
    seed: int = 0,
    jobs: int = 1,
    backend: str = None,
) -> MissReport:
    """Diff ``estimate_misses`` against ``FindMisses`` (its exact target).

    Sampled references must contain the exhaustive miss ratio in their
    confidence interval (tallied on ``summary`` — the caller asserts the
    rate, since a ``1 - confidence`` fraction of misses is nominal);
    exhaustively-analysed references must match ``FindMisses`` exactly.
    """
    nprog, layout = case.prepared()
    exact = find_misses(nprog, layout, case.cache, jobs=jobs, backend=backend)
    est = estimate_misses(
        nprog,
        layout,
        case.cache,
        confidence=confidence,
        width=width,
        seed=seed,
        jobs=jobs,
        backend=backend,
    )
    for ref in nprog.refs:
        e = est.result_for(ref)
        x = exact.result_for(ref)
        if e.analysed == e.population:
            if e.misses != x.misses:
                summary.failures.append(
                    f"{case.name}: {ref.name()} analysed exhaustively but "
                    f"disagrees with FindMisses ({e.misses} vs {x.misses})"
                )
            continue
        summary.sampled_refs += 1
        lo, hi = wilson_interval(e.misses, e.analysed, confidence)
        if lo - 1e-9 <= x.miss_ratio <= hi + 1e-9:
            summary.contained_refs += 1
    return est


def run_differential(
    cases: list[Case],
    jobs: int = 1,
    confidence: float = 0.95,
    width: float = 0.10,
    seed: int = 0,
    backend: str = None,
    sim_backend: str = None,
) -> DifferentialSummary:
    """Run both legs over ``cases``; the caller asserts on the summary."""
    summary = DifferentialSummary()
    for case in cases:
        summary.cases += 1
        summary.failures.extend(
            check_find(case, jobs=jobs, backend=backend, sim_backend=sim_backend)
        )
        check_estimate(
            case, summary, confidence=confidence, width=width, seed=seed,
            jobs=jobs, backend=backend,
        )
    return summary
