"""Run the differential harness: ≥ 50 randomized program/geometry cases.

The case list is fixed by seed, so these are regression tests, not flaky
statistical ones: the same programs, layouts, samples and outcomes are
produced on every run (and on every ``jobs`` value).
"""

import pytest

from tests.harness.differential import (
    Case,
    DifferentialSummary,
    check_estimate,
    check_find,
    generate_cases,
    run_differential,
)

CASE_COUNT = 60


@pytest.fixture(scope="module")
def cases() -> list[Case]:
    return generate_cases(CASE_COUNT)


class TestFindLeg:
    def test_serial_against_simulator(self, cases):
        failures = [msg for case in cases for msg in check_find(case)]
        assert not failures, "\n".join(failures)

    def test_parallel_against_simulator(self, cases):
        # A spread of families through the process pool (every 4th case).
        failures = [msg for case in cases[::4] for msg in check_find(case, jobs=2)]
        assert not failures, "\n".join(failures)

    def test_exact_and_conservative_families_both_present(self, cases):
        kinds = {case.exact for case in cases}
        assert kinds == {True, False}


class TestEstimateLeg:
    def test_confidence_interval_containment(self, cases):
        summary = DifferentialSummary()
        for case in cases:
            check_estimate(case, summary)
        assert not summary.failures, "\n".join(summary.failures)
        # Enough references must actually exercise the sampling path.
        assert summary.sampled_refs >= 50
        # At c = 95% about 5% of intervals may nominally miss; the case
        # list is seeded, so this rate is a deterministic regression value.
        assert summary.containment_rate >= 0.90

    def test_parallel_estimate_matches_serial(self, cases):
        for case in cases[::6]:
            s1 = DifferentialSummary()
            s2 = DifferentialSummary()
            serial = check_estimate(case, s1)
            parallel = check_estimate(case, s2, jobs=2)
            assert serial == parallel, case.name
            assert not s1.failures and not s2.failures


class TestWholeRun:
    def test_run_differential_summary(self, cases):
        summary = run_differential(cases[:12])
        assert summary.ok, "\n".join(summary.failures)
        assert summary.cases == 12
        assert summary.containment_rate >= 0.85
