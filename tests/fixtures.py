"""Shared test fixtures: the paper's running examples as IR programs."""

from __future__ import annotations

from repro.ir import ProgramBuilder


def figure1_program(n: int = 10):
    """The subroutine of Fig. 1 of the paper (with S4 after the second loop).

    ::

        DO I1 = 2, N
          S1:  A(I1-1) = ...
          DO I2 = I1, N
            S2:  B(I2-1, I1) = A(I2-1)
          DO I2 = 1, N
            S3:  ... = B(I2, I1)
          S4:  ... = A(I1)
        DO I1 = 1, N-1
          S5:  A(I1+1) = ...

    Returns ``(program, A, B)``.
    """
    pb = ProgramBuilder("FOO")
    a = pb.array("A", (n,))
    b = pb.array("B", (n, n))
    with pb.subroutine("MAIN"):
        with pb.do("I1", 2, n) as i1:
            pb.assign(a[i1 - 1], label="S1")
            with pb.do("I2", i1, n) as i2:
                pb.assign(b[i2 - 1, i1], a[i2 - 1], label="S2")
            with pb.do("I2", 1, n) as i2:
                pb.read(b[i2, i1], label="S3")
            pb.read(a[i1], label="S4")
        with pb.do("I1", 1, n - 1) as i1:
            pb.assign(a[i1 + 1], label="S5")
    return pb.build(), a, b


def single_nest_program(name: str, n: int, build_body):
    """Helper: one MAIN subroutine whose body is built by ``build_body(pb)``."""
    pb = ProgramBuilder(name)
    build_body(pb, n)
    return pb.build()
