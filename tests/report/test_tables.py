"""Tests for the paper-style table renderer."""

from repro.report import assoc_label, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["A", "Long header"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # all lines equal width

    def test_title(self):
        text = format_table(["X"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["X"], [(3.14159,)])
        assert "3.14" in text
        assert "3.14159" not in text

    def test_mixed_cell_types(self):
        text = format_table(["A", "B", "C"], [("name", 42, 0.5)])
        assert "name" in text and "42" in text and "0.50" in text

    def test_separator_row(self):
        text = format_table(["AA", "BB"], [(1, 2)])
        assert "-+-" in text.splitlines()[1]

    def test_empty_rows(self):
        text = format_table(["A"], [])
        assert "A" in text


class TestAssocLabel:
    def test_direct(self):
        assert assoc_label(1) == "direct"

    def test_n_way(self):
        assert assoc_label(2) == "2-way"
        assert assoc_label(8) == "8-way"
