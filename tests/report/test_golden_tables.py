"""Golden regression tests for the paper-table renderer.

``benchmarks/results/table3.txt`` … ``table6.txt`` are checked-in snapshots
produced by :func:`repro.report.format_table`.  Two guarantees are pinned:

* **format stability** — parsing every golden table back into cells and
  re-rendering reproduces each file byte-for-byte, so any change to the
  renderer (padding, separators, float formatting) is caught immediately;
* **data stability** — blocks that are deterministic functions of fixture
  programs (Table 5's structural statistics, the papers' published rows)
  are regenerated from scratch and must also match byte-for-byte.
"""

import os

import pytest

from repro import program_stats
from repro.programs import build_applu_like, build_swim_like, build_tomcatv_like
from repro.report import format_table

RESULTS_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "results"
)

GOLDEN_FILES = ["table3.txt", "table4.txt", "table5.txt", "table6.txt"]


def read_blocks(name: str) -> list[str]:
    """The golden file's tables (title + header + separator + rows)."""
    with open(os.path.join(RESULTS_DIR, name)) as fh:
        content = fh.read()
    return [b for b in content.rstrip("\n").split("\n\n") if b.strip()]


def parse_block(block: str):
    """Recover ``(title, headers, rows)`` from one rendered table."""
    lines = block.splitlines()
    title, header_line, rows_lines = lines[0], lines[1], lines[3:]
    headers = [h.strip() for h in header_line.split(" | ")]
    rows = [tuple(c.strip() for c in line.split(" | ")) for line in rows_lines]
    return title, headers, rows


@pytest.mark.parametrize("name", GOLDEN_FILES)
def test_golden_tables_round_trip_byte_for_byte(name):
    """Re-rendering the parsed cells must reproduce every block exactly."""
    blocks = read_blocks(name)
    assert blocks, f"{name} has no tables"
    for block in blocks:
        title, headers, rows = parse_block(block)
        assert format_table(headers, rows, title=title) == block


@pytest.mark.parametrize("name", GOLDEN_FILES)
def test_golden_tables_have_paper_and_measured_blocks(name):
    blocks = read_blocks(name)
    assert len(blocks) == 2
    assert "paper" in blocks[0].splitlines()[0]
    assert "measured" in blocks[1].splitlines()[0]


def test_table5_measured_block_regenerates_from_fixture_programs():
    """Table 5's measured rows are pure structure — regenerate and diff."""
    rows = [
        program_stats(p).as_row()
        for p in (
            build_tomcatv_like(64, 2),
            build_swim_like(64, 2),
            build_applu_like(32, 2),
        )
    ]
    rendered = format_table(
        ["Program", "#lines", "#subroutines", "#calls", "#references"],
        rows,
        title="Table 5 — measured (structural miniatures)",
    )
    assert rendered == read_blocks("table5.txt")[1]


def test_table5_paper_block_regenerates_from_published_rows():
    """The paper's published rows are constants: pin their rendering."""
    rendered = format_table(
        ["Program", "#lines", "#subroutines", "#calls", "#references"],
        [
            ("Tomcatv", 190, 1, 0, 79),
            ("Swim", 429, 6, 6, 52),
            ("Applu", 3868, 16, 27, 2565),
        ],
        title="Table 5 — paper (SPECfp95 originals)",
    )
    assert rendered == read_blocks("table5.txt")[0]
