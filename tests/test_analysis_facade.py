"""Tests of the high-level façade (prepare / analyze / run_simulation)."""

import pytest

from repro import (
    CacheConfig,
    ProgramBuilder,
    ReuseOptions,
    analyze,
    prepare,
    run_simulation,
)


def demo_program(n=32):
    pb = ProgramBuilder("DEMO")
    a = pb.array("A", (n, n))
    with pb.subroutine("MAIN"):
        with pb.do("J", 1, n) as j:
            with pb.do("I", 1, n) as i:
                pb.assign(a[i, j])
    return pb.build()


class TestPrepare:
    def test_prepare_returns_reusable_object(self):
        prepared = prepare(demo_program())
        assert prepared.nprog.depth == 2
        assert prepared.walker is not None
        assert prepared.inline_result.inlined_instances == 0

    def test_reuse_table_cached(self):
        prepared = prepare(demo_program())
        t1 = prepared.reuse_table(32)
        t2 = prepared.reuse_table(32)
        assert t1 is t2
        assert prepared.reuse_table(64) is not t1

    def test_reuse_table_options_are_part_of_key(self):
        prepared = prepare(demo_program())
        default = prepared.reuse_table(32)
        ablated = prepared.reuse_table(32, ReuseOptions(spatial=False))
        assert default is not ablated

    def test_stats(self):
        prepared = prepare(demo_program())
        assert prepared.stats().references == 1

    def test_padding_changes_layout(self):
        program = demo_program()
        p0 = prepare(program, pad_bytes=0)
        p1 = prepare(program, pad_bytes=64)
        assert p0.layout.total_bytes < p1.layout.total_bytes


class TestAnalyze:
    def test_program_accepted_directly(self):
        cache = CacheConfig.kb(8, 32, 1)
        report = analyze(demo_program(), cache, method="find")
        assert report.total_accesses == 32 * 32

    def test_prepared_accepted(self):
        cache = CacheConfig.kb(8, 32, 1)
        prepared = prepare(demo_program())
        a = analyze(prepared, cache, method="find")
        b = run_simulation(prepared, cache)
        assert a.total_misses == b.total_misses

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            analyze(demo_program(), CacheConfig.kb(8, 32, 1), method="magic")

    def test_seed_controls_sampling(self):
        prepared = prepare(demo_program(48))
        cache = CacheConfig.kb(2, 32, 1)
        r1 = analyze(prepared, cache, seed=1)
        r2 = analyze(prepared, cache, seed=1)
        r3 = analyze(prepared, cache, seed=2)
        assert r1.total_misses == r2.total_misses
        assert r1.analysed_points == r3.analysed_points

    def test_reuse_options_flow_through(self):
        prepared = prepare(demo_program())
        cache = CacheConfig.kb(8, 32, 1)
        full = analyze(prepared, cache, method="find")
        no_spatial = analyze(
            prepared, cache, method="find",
            reuse_options=ReuseOptions(spatial=False),
        )
        assert no_spatial.total_misses >= full.total_misses

    def test_sweeping_associativity_reuses_front_end(self):
        prepared = prepare(demo_program())
        ratios = []
        for assoc in (1, 2, 4):
            cache = CacheConfig.kb(1, 32, assoc)
            ratios.append(analyze(prepared, cache, method="find").miss_ratio)
        sims = [
            run_simulation(prepared, CacheConfig.kb(1, 32, assoc)).miss_ratio
            for assoc in (1, 2, 4)
        ]
        assert ratios == sims


class TestStackIntegration:
    def test_prepare_with_stack_model(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (16,))
        with pb.subroutine("MAIN"):
            pb.call("F", a)
        with pb.subroutine("F") as f:
            c = f.array_formal("C", (16,))
            with pb.do("I", 1, 16) as i:
                pb.assign(c[i])
        prepared = prepare(pb.build(), model_stack=True)
        assert prepared.inline_result.stack_array is not None
        cache = CacheConfig.kb(8, 32, 1)
        a_report = analyze(prepared, cache, method="find")
        s_report = run_simulation(prepared, cache)
        assert a_report.total_accesses == s_report.total_accesses
        # The stack stream adds accesses beyond the 16 array writes.
        assert s_report.total_accesses > 16
