"""Walker correctness: cross-validation against the naive trace oracle.

The walker is the single access-order oracle shared by the simulator and the
miss equations, so these tests are load-bearing: they compare it against a
completely independent enumeration (per-leaf polyhedral listing + sort).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import ProgramBuilder
from repro.iteration import Walker, interleave, lex_nonnegative, lex_positive, split, subtract
from repro.layout import layout_for_refs
from repro.normalize import normalize
from repro.sim import collect_walker_trace, naive_trace

from tests.fixtures import figure1_program


def build_fig1(n=6):
    prog, _, _ = figure1_program(n)
    nprog = normalize(prog.main)
    layout = layout_for_refs(nprog.refs, declared_order=prog.global_arrays)
    return nprog, layout


class TestPositionHelpers:
    def test_interleave_and_split(self):
        ivec = interleave((1, 2), (3, 4))
        assert ivec == (1, 3, 2, 4)
        assert split(ivec) == ((1, 2), (3, 4))

    def test_interleave_mismatch(self):
        with pytest.raises(ValueError):
            interleave((1,), (2, 3))

    def test_split_odd_length(self):
        with pytest.raises(ValueError):
            split((1, 2, 3))

    def test_subtract(self):
        assert subtract((1, 5, 2, 3), (0, 1, 0, 2)) == (1, 4, 2, 1)

    def test_lex_nonnegative(self):
        assert lex_nonnegative((0, 0))
        assert lex_nonnegative((0, 1, -5))
        assert not lex_nonnegative((0, -1, 5))

    def test_lex_positive(self):
        assert lex_positive((0, 1))
        assert not lex_positive((0, 0))


class TestFullWalk:
    def test_walker_matches_naive_trace(self):
        nprog, layout = build_fig1(6)
        walker = Walker(nprog, layout)
        got = collect_walker_trace(walker)
        expected = [(e.ref_uid, e.address) for e in naive_trace(nprog, layout)]
        assert got == expected

    def test_naive_positions_strictly_increase(self):
        nprog, layout = build_fig1(5)
        entries = naive_trace(nprog, layout)
        positions = [e.position for e in entries]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    def test_trace_length(self):
        n = 6
        nprog, layout = build_fig1(n)
        # S1: N-1, S2: 2*T (T = triangle), S3: (N-1)*N, S4: N-1, S5: N-1
        triangle = sum(n - i + 1 for i in range(2, n + 1))
        expected = (n - 1) + 2 * triangle + (n - 1) * n + (n - 1) + (n - 1)
        assert len(collect_walker_trace(Walker(nprog, layout))) == expected

    def test_walk_early_stop(self):
        nprog, layout = build_fig1(5)
        walker = Walker(nprog, layout)
        seen = []

        def visit(cr, addr):
            seen.append(addr)
            return len(seen) >= 3

        assert walker.walk(visit)
        assert len(seen) == 3

    def test_address_of_matches_trace(self):
        nprog, layout = build_fig1(5)
        walker = Walker(nprog, layout)
        entries = naive_trace(nprog, layout)
        by_uid = {r.uid: r for r in nprog.refs}
        for e in entries[:50]:
            ref = by_uid[e.ref_uid]
            _, index = split(e.position[0])
            assert walker.address_of(ref, index) == e.address


class TestWindowWalk:
    @pytest.fixture(scope="class")
    def setup(self):
        nprog, layout = build_fig1(5)
        walker = Walker(nprog, layout)
        entries = naive_trace(nprog, layout)
        return walker, entries

    def _window(self, walker, lo, hi):
        got = []

        def visit(cr, addr):
            got.append((cr.nref.uid, addr))
            return False

        walker.walk_between(lo, hi, visit)
        return got

    def test_full_range_with_none_bounds(self, setup):
        walker, entries = setup
        got = self._window(walker, None, None)
        assert got == [(e.ref_uid, e.address) for e in entries]

    def test_window_is_exclusive_both_ends(self, setup):
        walker, entries = setup
        lo, hi = entries[3].position, entries[10].position
        got = self._window(walker, lo, hi)
        expected = [(e.ref_uid, e.address) for e in entries[4:10]]
        assert got == expected

    def test_empty_window_adjacent(self, setup):
        walker, entries = setup
        lo, hi = entries[5].position, entries[6].position
        assert self._window(walker, lo, hi) == []

    def test_prefix_window(self, setup):
        walker, entries = setup
        hi = entries[7].position
        got = self._window(walker, None, hi)
        assert got == [(e.ref_uid, e.address) for e in entries[:7]]

    def test_suffix_window(self, setup):
        walker, entries = setup
        lo = entries[-4].position
        got = self._window(walker, lo, None)
        assert got == [(e.ref_uid, e.address) for e in entries[-3:]]

    def test_window_across_outer_nests(self, setup):
        """A window spanning the boundary between L(1) and L(2)."""
        walker, entries = setup
        # Find the first entry of the second outer nest (label starts with 2).
        boundary = next(
            i for i, e in enumerate(entries) if e.position[0][0] == 2
        )
        lo = entries[boundary - 3].position
        hi = entries[boundary + 3].position
        got = self._window(walker, lo, hi)
        expected = [(e.ref_uid, e.address) for e in entries[boundary - 2 : boundary + 3]]
        assert got == expected

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_windows_match_oracle(self, setup, data):
        walker, entries = setup
        i = data.draw(st.integers(0, len(entries) - 1))
        j = data.draw(st.integers(0, len(entries) - 1))
        lo, hi = entries[min(i, j)].position, entries[max(i, j)].position
        got = self._window(walker, lo, hi)
        expected = [
            (e.ref_uid, e.address) for e in entries[min(i, j) + 1 : max(i, j)]
        ]
        assert got == expected


class TestDistinctConflicts:
    def test_counts_distinct_lines_in_window(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (64,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 64) as i:
                pb.assign(a[i])
        nprog = normalize(pb.build().main)
        layout = layout_for_refs(nprog.refs)
        walker = Walker(nprog, layout)
        entries = naive_trace(nprog, layout)
        lo, hi = entries[0].position, entries[-1].position
        # 64 REAL*8 = 16 lines of 32B; with 4 sets, 4 distinct lines per set.
        line_bytes, num_sets = 32, 4
        assert walker.distinct_conflicts_reach(
            lo, hi, target_set=0, reused_line=-1, k=4,
            line_bytes=line_bytes, num_sets=num_sets,
        )
        assert not walker.distinct_conflicts_reach(
            lo, hi, target_set=0, reused_line=-1, k=5,
            line_bytes=line_bytes, num_sets=num_sets,
        )

    def test_reused_line_excluded(self):
        pb = ProgramBuilder("P")
        a = pb.array("A", (4,))
        with pb.subroutine("MAIN"):
            with pb.do("I", 1, 4) as i:
                pb.assign(a[i])
        nprog = normalize(pb.build().main)
        layout = layout_for_refs(nprog.refs)
        walker = Walker(nprog, layout)
        entries = naive_trace(nprog, layout)
        lo, hi = entries[0].position, entries[-1].position
        # All four accesses share line 0; excluding it leaves no conflicts.
        assert not walker.distinct_conflicts_reach(
            lo, hi, target_set=0, reused_line=0, k=1, line_bytes=32, num_sets=1
        )
