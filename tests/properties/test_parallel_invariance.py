"""Invariance properties of the parallel engine on seeded-random programs.

Complements the hypothesis tests in ``test_random_programs``: a seeded
``random.Random`` generator builds a fresh batch of small programs and the
same report must come back for every ``jobs`` value and — on the exhaustive
path — for every RNG seed.
"""

import random

import pytest

from repro.ir import ProgramBuilder
from repro.layout import CacheConfig, layout_for_refs
from repro.normalize import normalize
from repro.cme import estimate_misses, find_misses
from repro.parallel import ParallelEngine, resolve_jobs, solve_parallel
from repro.reuse import build_reuse_table

JOBS = [1, 2, 4]


def random_program(rng: random.Random):
    """A small random 2-D stencil (one or two arrays, optional guard)."""
    n = rng.randrange(6, 11)
    pb = ProgramBuilder("RAND")
    a = pb.array("A", (n + 4, n + 4))
    b = pb.array("B", (n + 4, n + 4)) if rng.random() < 0.5 else a
    offsets = {(rng.randrange(-2, 3), rng.randrange(-2, 3))
               for _ in range(rng.randrange(1, 4))}
    with pb.subroutine("MAIN"):
        with pb.do("J", 3, n + 2) as j:
            with pb.do("I", 3, n + 2) as i:
                if rng.random() < 0.3:
                    with pb.if_(i.le(j)):
                        pb.assign(b[i, j], *[a[i + x, j + y] for x, y in offsets])
                else:
                    pb.assign(b[i, j], *[a[i + x, j + y] for x, y in offsets])
    prog = pb.build()
    nprog = normalize(prog.main)
    layout = layout_for_refs(
        nprog.refs, declared_order=prog.global_arrays, align=32
    )
    return nprog, layout


@pytest.fixture(scope="module", params=range(4))
def program(request):
    return random_program(random.Random(0xD1F ^ request.param))


@pytest.fixture(scope="module", params=[CacheConfig.kb(1, 32, 1),
                                        CacheConfig.kb(2, 32, 2)],
                ids=["1k-direct", "2k-2way"])
def cache(request):
    return request.param


class TestJobsInvariance:
    def test_find_misses_invariant_under_jobs(self, program, cache):
        nprog, layout = program
        reports = [
            find_misses(nprog, layout, cache, jobs=jobs) for jobs in JOBS
        ]
        assert reports[0] == reports[1] == reports[2]
        assert [r.jobs for r in reports] == JOBS

    def test_estimate_misses_invariant_under_jobs(self, program, cache):
        nprog, layout = program
        reports = [
            estimate_misses(nprog, layout, cache, seed=11, jobs=jobs)
            for jobs in JOBS
        ]
        assert reports[0] == reports[1] == reports[2]

    def test_engine_reuse_across_solves(self, program, cache):
        """One pool, several solves: still identical to one-shot serial."""
        nprog, layout = program
        reuse = build_reuse_table(nprog, cache.line_bytes)
        with ParallelEngine(nprog, layout, cache, reuse, jobs=2) as engine:
            report = engine.find()
            assert report == find_misses(nprog, layout, cache)
            assert report.points_per_second > 0
            assert 0.0 <= report.parallel_efficiency <= 1.5
            assert engine.estimate(seed=5) == estimate_misses(
                nprog, layout, cache, seed=5
            )

    def test_engine_with_one_job_is_the_serial_solver(self, program, cache):
        """jobs=1 runs the chunk code in-process — no pool, same report."""
        nprog, layout = program
        reuse = build_reuse_table(nprog, cache.line_bytes)
        with ParallelEngine(nprog, layout, cache, reuse, jobs=1) as engine:
            assert engine._pool is None
            assert engine.find() == find_misses(nprog, layout, cache)
            assert engine._pool is None  # serial path never spawned one

    def test_single_reference_subset_avoids_the_pool(self, program, cache):
        nprog, layout = program
        reuse = build_reuse_table(nprog, cache.line_bytes)
        ref = nprog.refs[0]
        parallel = solve_parallel(
            "find", nprog, layout, cache, reuse, 4, refs=[ref]
        )
        serial = find_misses(nprog, layout, cache, refs=[ref])
        assert parallel == serial

    def test_unknown_method_rejected(self, program, cache):
        nprog, layout = program
        reuse = build_reuse_table(nprog, cache.line_bytes)
        with pytest.raises(ValueError):
            solve_parallel("simulate", nprog, layout, cache, reuse, 2)


class TestSeedInvariance:
    def test_exhaustive_path_ignores_seed(self, cache):
        """Small RISs are analysed exhaustively (Fig. 6): no RNG involved,
        so any seed — and any job count — gives the identical report."""
        pb = ProgramBuilder("TINY")
        a = pb.array("A", (9, 9))
        with pb.subroutine("MAIN"):
            with pb.do("J", 1, 5) as j:
                with pb.do("I", 1, 5) as i:  # RIS volume 25 < fallback n0
                    pb.assign(a[i, j], a[i + 1, j])
        prog = pb.build()
        nprog = normalize(prog.main)
        layout = layout_for_refs(
            nprog.refs, declared_order=prog.global_arrays, align=32
        )
        reports = [
            estimate_misses(nprog, layout, cache, seed=seed, jobs=jobs)
            for seed, jobs in [(0, 1), (123, 1), (0, 2), (999, 4)]
        ]
        for report in reports:
            for res in report.results.values():
                assert res.analysed == res.population
        assert reports[0] == reports[1] == reports[2] == reports[3]

    def test_find_misses_has_no_rng_dependence(self, program, cache):
        nprog, layout = program
        assert find_misses(nprog, layout, cache) == find_misses(
            nprog, layout, cache
        )


class TestResolveJobs:
    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_zero_none_negative_mean_all_cpus(self):
        import os

        expected = os.cpu_count() or 1
        assert resolve_jobs(0) == expected
        assert resolve_jobs(None) == expected
        assert resolve_jobs(-1) == expected
