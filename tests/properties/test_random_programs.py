"""Property-based end-to-end validation on randomly generated programs.

Hypothesis generates small stencil-family programs (random array shapes,
offsets, guards, strides and cache geometries); for every one of them:

* the compiled walker must agree with the naive per-leaf enumeration,
* normalisation must preserve the raw interpreter's access trace,
* ``FindMisses`` must never under-estimate the simulator, and
* for the single-array uniformly-generated family it must be *exact*.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir import ProgramBuilder
from repro.iteration import Walker
from repro.layout import CacheConfig, layout_for_refs
from repro.normalize import normalize
from repro.cme import find_misses
from repro.sim import (
    collect_walker_trace,
    naive_trace,
    reference_trace,
    simulate,
)


@st.composite
def stencil_programs(draw):
    """A 2-D stencil with random offsets over one or two arrays."""
    n = draw(st.integers(6, 12))
    two_arrays = draw(st.booleans())
    guard = draw(st.booleans())
    offsets = draw(
        st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    pb = ProgramBuilder("RAND")
    a = pb.array("A", (n + 4, n + 4))
    b = pb.array("B", (n + 4, n + 4)) if two_arrays else a
    with pb.subroutine("MAIN"):
        with pb.do("J", 3, n + 2) as j:
            with pb.do("I", 3, n + 2) as i:
                if guard:
                    with pb.if_(i.le(j)):
                        pb.assign(
                            b[i, j], *[a[i + di, j + dj] for di, dj in offsets]
                        )
                else:
                    pb.assign(
                        b[i, j], *[a[i + di, j + dj] for di, dj in offsets]
                    )
    return pb.build(), two_arrays or guard


caches = st.sampled_from(
    [CacheConfig.kb(1, 32, 1), CacheConfig.kb(1, 32, 2), CacheConfig.kb(2, 32, 4)]
)


def prepared(prog):
    nprog = normalize(prog.main)
    layout = layout_for_refs(
        nprog.refs, declared_order=prog.global_arrays, align=32
    )
    return nprog, layout


@settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(stencil_programs())
def test_walker_matches_naive_enumeration(case):
    prog, _ = case
    nprog, layout = prepared(prog)
    got = collect_walker_trace(Walker(nprog, layout))
    expected = [(e.ref_uid, e.address) for e in naive_trace(nprog, layout)]
    assert got == expected


@settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(stencil_programs())
def test_normalisation_preserves_trace(case):
    prog, _ = case
    nprog, layout = prepared(prog)
    raw = reference_trace(prog.main, layout)
    normalised = [a for _, a in collect_walker_trace(Walker(nprog, layout))]
    assert raw == normalised


@settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(stencil_programs(), caches)
def test_findmisses_never_underestimates(case, cache):
    prog, _ = case
    nprog, layout = prepared(prog)
    analytic = find_misses(nprog, layout, cache)
    ground = simulate(nprog, layout, cache)
    assert analytic.total_accesses == ground.total_accesses
    assert analytic.total_misses >= ground.total_misses


@settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(stencil_programs(), caches)
def test_findmisses_invariant_under_jobs(case, cache):
    """Sharding references across a process pool must not change a single
    classification: the parallel report compares equal to the serial one."""
    prog, _ = case
    nprog, layout = prepared(prog)
    serial = find_misses(nprog, layout, cache)
    parallel = find_misses(nprog, layout, cache, jobs=2)
    assert serial == parallel
    assert parallel.jobs == 2


@settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(stencil_programs(), caches)
def test_findmisses_near_exact_on_unguarded_single_array(case, cache):
    """When every reference is uniformly generated (one array, no guard),
    the analytical model is exact up to rare boundary points whose nearest
    producer needs a reuse vector outside the generated family (the
    paper's generator has the same completeness caveat).  The gap must be
    tiny and one-sided."""
    prog, irregular = case
    if irregular:
        return  # near-exactness is only claimed for the uniform family
    nprog, layout = prepared(prog)
    analytic = find_misses(nprog, layout, cache)
    ground = simulate(nprog, layout, cache)
    gap = analytic.total_misses - ground.total_misses
    assert gap >= 0
    assert gap <= max(2, 0.02 * ground.total_accesses)
