"""Differential fuzz sweep for the NumPy classification backend (ISSUE 5).

Over the same 210-case seeded pool as the memoization sweep (all harness
families, all cache geometries), the vectorized backend must be
**bit-identical** to the pure-Python one:

* ``FindMisses`` reports compare equal case-for-case (same tallies, same
  per-reference results);
* ``EstimateMisses`` at a fixed sampling seed compares equal — the batch
  path must consume the identical sample the scalar path draws;
* point-by-point, :meth:`BatchClassifier.classify_points` returns the same
  :class:`~repro.cme.Classification` — outcome *and* deciding reuse
  vector — as scalar :meth:`~repro.cme.PointClassifier.classify`, with the
  same ``vector_trials`` accounting.
"""

from __future__ import annotations

import pytest

from repro.cme import estimate_misses, find_misses, make_classifier
from repro.reuse import build_reuse_table
from tests.harness.differential import FAMILIES, generate_cases

pytest.importorskip("numpy", reason="the batch backend needs NumPy")

#: 30 cases per family — 210 total, same pool size as the memo sweep.
CASE_COUNT = 30 * len(FAMILIES)

_cases = None


def all_cases():
    global _cases
    if _cases is None:
        _cases = generate_cases(CASE_COUNT)
    return _cases


def test_find_reports_bit_identical():
    failures = []
    for case in all_cases():
        nprog, layout = case.prepared()
        scalar = find_misses(nprog, layout, case.cache, backend="scalar")
        batch = find_misses(nprog, layout, case.cache, backend="numpy")
        if batch != scalar:
            failures.append(f"{case.name}: numpy FindMisses != scalar")
    assert not failures, "\n".join(failures[:20])


def test_estimate_reports_bit_identical_at_fixed_seed():
    failures = []
    # Every third case keeps the sampling leg fast while still touching
    # every family (210 / 3 = 70 cases, family stride 7 is coprime to 3).
    for case in all_cases()[::3]:
        nprog, layout = case.prepared()
        scalar = estimate_misses(
            nprog, layout, case.cache, seed=20260806, backend="scalar"
        )
        batch = estimate_misses(
            nprog, layout, case.cache, seed=20260806, backend="numpy"
        )
        if batch != scalar:
            failures.append(f"{case.name}: numpy EstimateMisses != scalar")
    assert not failures, "\n".join(failures)


def test_classifications_agree_point_by_point():
    # One case per family: compare the full Classification (outcome and the
    # deciding reuse vector) for every point of every reference, plus the
    # drained trial counts.  The reuse table is shared so vector identity
    # carries across both classifiers.
    for case in all_cases()[: len(FAMILIES)]:
        nprog, layout = case.prepared()
        reuse = build_reuse_table(nprog, case.cache.line_bytes)
        batch = make_classifier("numpy", nprog, layout, case.cache, reuse)
        scalar = make_classifier("scalar", nprog, layout, case.cache, reuse)
        assert batch.backend_name == "numpy"
        for ref in nprog.refs:
            points = list(nprog.ris(ref.leaf).enumerate_points())
            got = batch.classify_points(ref, points)
            want = [scalar.classify(ref, p) for p in points]
            for point, g, w in zip(points, got, want):
                assert g == w, (
                    f"{case.name}: {ref.name()}@{point} classified {g} "
                    f"by the batch backend, {w} by the scalar backend"
                )
        assert batch.drain_vector_trials() == scalar.drain_vector_trials()
        vectorized, fallback = batch.drain_backend_counts()
        assert fallback == 0
        assert vectorized == sum(
            nprog.ris(ref.leaf).count() for ref in nprog.refs
        )
