"""Differential fuzz sweep for memoization (ISSUE 3 satellite).

Over 200+ seeded random programs (all harness families, including the
IF-guarded and multi-nest ones), memoized ``FindMisses`` must equal the
unmemoized solver report-for-report — and stay exact vs. the simulator for
exact families, conservative otherwise.  One :class:`Memoizer` is shared
across *all* cases, so any key collision between different programs,
layouts or geometries would surface as a wrong replay here.

Memoized ``EstimateMisses`` must be bit-identical to the unmemoized run at
a fixed seed, and a persisted warm round must replay without solving.
"""

from __future__ import annotations

import pytest

from repro import Memoizer
from repro.cme import estimate_misses, find_misses
from repro.sim import simulate
from tests.harness.differential import FAMILIES, generate_cases

#: 30 cases per family — 210 total, satisfying the >= 200 requirement.
CASE_COUNT = 30 * len(FAMILIES)

_cases = None


def all_cases():
    global _cases
    if _cases is None:
        _cases = generate_cases(CASE_COUNT)
    return _cases


def test_case_pool_is_large_and_diverse():
    cases = all_cases()
    assert len(cases) >= 200
    families = {c.name.split("-")[0] for c in cases}
    assert families == {name for name, _ in FAMILIES}


def test_memoized_find_matches_unmemoized_and_simulator():
    memo = Memoizer()  # shared across every case: collisions would misfire
    failures = []
    for case in all_cases():
        nprog, layout = case.prepared()
        base = find_misses(nprog, layout, case.cache)
        memoized = find_misses(nprog, layout, case.cache, memo=memo)
        if memoized != base:
            failures.append(f"{case.name}: memoized != unmemoized FindMisses")
            continue
        ground = simulate(nprog, layout, case.cache)
        for ref in nprog.refs:
            a = memoized.result_for(ref).misses
            s = ground.misses[ref.uid]
            if case.exact and a != s:
                failures.append(
                    f"{case.name}: {ref.name()} expected exactly {s} misses, "
                    f"memoized FindMisses reported {a}"
                )
            elif a < s:
                failures.append(
                    f"{case.name}: {ref.name()} under-estimated "
                    f"({a} analytical < {s} simulated)"
                )
    assert not failures, "\n".join(failures[:20])
    assert memo.misses > 0 and memo.groups == memo.misses


def test_memoized_estimate_bit_identical_at_fixed_seed():
    memo = Memoizer()
    failures = []
    # Every third case keeps the sampling leg fast while still touching
    # every family (210 / 3 = 70 cases, family stride 7 is coprime to 3).
    for case in all_cases()[::3]:
        nprog, layout = case.prepared()
        base = estimate_misses(nprog, layout, case.cache, seed=20260806)
        memoized = estimate_misses(
            nprog, layout, case.cache, seed=20260806, memo=memo
        )
        if memoized != base:
            failures.append(f"{case.name}: memoized != unmemoized estimate")
    assert not failures, "\n".join(failures)


@pytest.mark.parametrize("method", ["find", "estimate"])
def test_persisted_warm_round_replays_subset(tmp_path, method):
    def solve(case, memo):
        nprog, layout = case.prepared()
        if method == "find":
            return find_misses(nprog, layout, case.cache, memo=memo)
        return estimate_misses(nprog, layout, case.cache, seed=3, memo=memo)

    subset = all_cases()[:: len(FAMILIES)][:8]  # one per family stride
    with Memoizer.open(str(tmp_path)) as cold:
        cold_reports = [solve(case, cold) for case in subset]
    with Memoizer.open(str(tmp_path)) as warm:
        warm_reports = [solve(case, warm) for case in subset]
    assert warm_reports == cold_reports
    assert warm.misses == 0
    assert warm.hits == cold.hits + cold.misses
